//! Hard resource limits for autonomous runs.
//!
//! An agent loop without budgets can spin forever on a broken site or a
//! pathological goal; every counter here is a termination guarantee.

use serde::{Deserialize, Serialize};
use thiserror::Error;

/// Raised when a run would exceed its budget.
#[derive(Debug, Error, Clone, PartialEq, Eq)]
#[error("budget exhausted: {resource} limit {limit} reached")]
pub struct BudgetExhausted {
    pub resource: &'static str,
    pub limit: u32,
}

/// Consumable resource limits.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Budget {
    pub max_searches: u32,
    pub max_fetches: u32,
    pub max_cycles: u32,
    searches: u32,
    fetches: u32,
    cycles: u32,
}

impl Budget {
    pub fn new(max_searches: u32, max_fetches: u32, max_cycles: u32) -> Self {
        Budget {
            max_searches,
            max_fetches,
            max_cycles,
            searches: 0,
            fetches: 0,
            cycles: 0,
        }
    }

    /// A comfortable default for a full training run.
    pub fn standard() -> Self {
        Budget::new(200, 600, 1_000)
    }

    pub fn take_search(&mut self) -> Result<(), BudgetExhausted> {
        take(&mut self.searches, self.max_searches, "searches")
    }

    pub fn take_fetch(&mut self) -> Result<(), BudgetExhausted> {
        take(&mut self.fetches, self.max_fetches, "fetches")
    }

    pub fn take_cycle(&mut self) -> Result<(), BudgetExhausted> {
        take(&mut self.cycles, self.max_cycles, "cycles")
    }

    pub fn searches_used(&self) -> u32 {
        self.searches
    }

    pub fn fetches_used(&self) -> u32 {
        self.fetches
    }

    pub fn cycles_used(&self) -> u32 {
        self.cycles
    }
}

fn take(counter: &mut u32, limit: u32, resource: &'static str) -> Result<(), BudgetExhausted> {
    if *counter >= limit {
        return Err(BudgetExhausted { resource, limit });
    }
    *counter += 1;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_up_to_the_limit() {
        let mut b = Budget::new(2, 2, 2);
        assert!(b.take_search().is_ok());
        assert!(b.take_search().is_ok());
        let err = b.take_search().unwrap_err();
        assert_eq!(err.resource, "searches");
        assert_eq!(b.searches_used(), 2);
    }

    #[test]
    fn resources_are_independent() {
        let mut b = Budget::new(1, 5, 5);
        b.take_search().unwrap();
        assert!(b.take_search().is_err());
        assert!(b.take_fetch().is_ok());
        assert!(b.take_cycle().is_ok());
    }

    #[test]
    fn zero_budget_fails_immediately() {
        let mut b = Budget::new(0, 0, 0);
        assert!(b.take_cycle().is_err());
    }
}
