//! Structured event log for autonomous runs.
//!
//! Every command execution and its outcome is recorded with the virtual
//! timestamp, giving the experiments (E6 training cost, F1 stage
//! timing) their raw data and making agent behaviour auditable.

use ira_obs::{stage, ObsHandle, SharedCollector, TraceEvent};
use serde::{Deserialize, Serialize};

/// Kind of logged event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    CycleStart,
    Search,
    Fetch,
    Memorize,
    DuplicateDropped,
    Error,
    /// A ranked source was skipped because its host's circuit breaker
    /// is open: the agent rerouted to the next result instead of
    /// waiting out (or hammering) a failing host.
    SourceUnavailable,
    GoalComplete,
}

/// One log record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Event {
    /// Virtual time in microseconds.
    pub at_us: u64,
    pub kind: EventKind,
    pub detail: String,
}

impl EventKind {
    /// The trace stage/name this event kind maps to when forwarded to
    /// an `ira-obs` collector.
    fn trace_key(self) -> (&'static str, &'static str) {
        match self {
            EventKind::CycleStart => (stage::CYCLE, "start"),
            EventKind::Search => (stage::SEARCH, "issued"),
            EventKind::Fetch => (stage::FETCH, "page"),
            EventKind::Memorize => (stage::MEMORY, "memorize"),
            EventKind::DuplicateDropped => (stage::MEMORY, "duplicate_dropped"),
            EventKind::Error => (stage::CYCLE, "error"),
            EventKind::SourceUnavailable => (stage::BREAKER, "rerouted"),
            EventKind::GoalComplete => (stage::CYCLE, "goal_complete"),
        }
    }
}

/// A live connection from the event log to an `ira-obs` collector:
/// every recorded event is also forwarded as a trace point tagged with
/// the session id and parented under the session's current causal
/// scope. Not serialized — a deserialized log replays with no pipe
/// attached.
#[derive(Clone)]
pub struct ObsPipe {
    pub handle: ObsHandle,
}

impl std::fmt::Debug for ObsPipe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsPipe")
            .field("session", &self.handle.session())
            .field("enabled", &self.handle.enabled())
            .finish()
    }
}

/// Append-only event log with counters.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EventLog {
    events: Vec<Event>,
    #[serde(skip)]
    pipe: Option<ObsPipe>,
}

impl EventLog {
    pub fn new() -> Self {
        EventLog::default()
    }

    /// Attach a trace collector; every subsequent `record` call is also
    /// forwarded as a trace point under `session`. Creates a fresh
    /// causal context — use [`EventLog::attach_observer_handle`] to
    /// join an existing session tree.
    pub fn attach_observer(&mut self, sink: SharedCollector, session: u32) {
        self.attach_observer_handle(ObsHandle::new(sink, session));
    }

    /// Attach a shared [`ObsHandle`] so forwarded points nest under
    /// whatever scope the session currently has open.
    pub fn attach_observer_handle(&mut self, handle: ObsHandle) {
        self.pipe = Some(ObsPipe { handle });
    }

    pub fn record(&mut self, at_us: u64, kind: EventKind, detail: impl Into<String>) {
        let detail = detail.into();
        if let Some(pipe) = &self.pipe {
            pipe.handle.emit(|| {
                let (stage, name) = kind.trace_key();
                TraceEvent::point(pipe.handle.session(), at_us, stage, name, detail.as_str())
            });
        }
        self.events.push(Event {
            at_us,
            kind,
            detail,
        });
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    pub fn count(&self, kind: EventKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// Virtual time span covered by the log, microseconds.
    pub fn span_us(&self) -> u64 {
        match (self.events.first(), self.events.last()) {
            (Some(first), Some(last)) => last.at_us.saturating_sub(first.at_us),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts() {
        let mut log = EventLog::new();
        log.record(10, EventKind::Search, "q=solar storms");
        log.record(20, EventKind::Fetch, "sim://a.test/x");
        log.record(30, EventKind::Fetch, "sim://a.test/y");
        assert_eq!(log.len(), 3);
        assert_eq!(log.count(EventKind::Fetch), 2);
        assert_eq!(log.count(EventKind::Error), 0);
    }

    #[test]
    fn attached_observer_mirrors_records() {
        use std::sync::Arc;
        let sink = Arc::new(ira_obs::JsonlCollector::new());
        let mut log = EventLog::new();
        log.attach_observer(sink.clone(), 3);
        log.record(10, EventKind::Search, "q=bgp leak");
        log.record(40, EventKind::SourceUnavailable, "b.test");
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].session, 3);
        assert_eq!(events[0].metric_key(), "search.issued");
        assert_eq!(events[1].metric_key(), "breaker.rerouted");
        assert_eq!(log.len(), 2, "the log itself still records");
    }

    #[test]
    fn serialization_drops_the_pipe() {
        use std::sync::Arc;
        let sink = Arc::new(ira_obs::JsonlCollector::new());
        let mut log = EventLog::new();
        log.attach_observer(sink, 1);
        log.record(5, EventKind::Memorize, "fact");
        let json = serde_json::to_string(&log).unwrap();
        let back: EventLog = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), 1);
        assert!(back.pipe.is_none());
    }

    #[test]
    fn span_is_last_minus_first() {
        let mut log = EventLog::new();
        assert_eq!(log.span_us(), 0);
        log.record(100, EventKind::CycleStart, "");
        log.record(600, EventKind::GoalComplete, "");
        assert_eq!(log.span_us(), 500);
    }
}
