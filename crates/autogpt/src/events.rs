//! Structured event log for autonomous runs.
//!
//! Every command execution and its outcome is recorded with the virtual
//! timestamp, giving the experiments (E6 training cost, F1 stage
//! timing) their raw data and making agent behaviour auditable.

use serde::{Deserialize, Serialize};

/// Kind of logged event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    CycleStart,
    Search,
    Fetch,
    Memorize,
    DuplicateDropped,
    Error,
    /// A ranked source was skipped because its host's circuit breaker
    /// is open: the agent rerouted to the next result instead of
    /// waiting out (or hammering) a failing host.
    SourceUnavailable,
    GoalComplete,
}

/// One log record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Event {
    /// Virtual time in microseconds.
    pub at_us: u64,
    pub kind: EventKind,
    pub detail: String,
}

/// Append-only event log with counters.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EventLog {
    events: Vec<Event>,
}

impl EventLog {
    pub fn new() -> Self {
        EventLog::default()
    }

    pub fn record(&mut self, at_us: u64, kind: EventKind, detail: impl Into<String>) {
        self.events.push(Event {
            at_us,
            kind,
            detail: detail.into(),
        });
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    pub fn count(&self, kind: EventKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// Virtual time span covered by the log, microseconds.
    pub fn span_us(&self) -> u64 {
        match (self.events.first(), self.events.last()) {
            (Some(first), Some(last)) => last.at_us.saturating_sub(first.at_us),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts() {
        let mut log = EventLog::new();
        log.record(10, EventKind::Search, "q=solar storms");
        log.record(20, EventKind::Fetch, "sim://a.test/x");
        log.record(30, EventKind::Fetch, "sim://a.test/y");
        assert_eq!(log.len(), 3);
        assert_eq!(log.count(EventKind::Fetch), 2);
        assert_eq!(log.count(EventKind::Error), 0);
    }

    #[test]
    fn span_is_last_minus_first() {
        let mut log = EventLog::new();
        assert_eq!(log.span_us(), 0);
        log.record(100, EventKind::CycleStart, "");
        log.record(600, EventKind::GoalComplete, "");
        assert_eq!(log.span_us(), 500);
    }
}
