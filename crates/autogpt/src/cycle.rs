//! The per-iteration record: THOUGHTS / REASONING / PLAN / CRITICISM /
//! COMMAND, rendered the way Auto-GPT prints them (and the way the
//! paper's snippets show agent Bob thinking).

use crate::command::Command;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One loop iteration's full record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgentCycle {
    pub thoughts: String,
    pub reasoning: String,
    pub plan: Vec<String>,
    pub criticism: String,
    pub command: Command,
}

impl AgentCycle {
    pub fn new(thoughts: impl Into<String>, command: Command) -> Self {
        AgentCycle {
            thoughts: thoughts.into(),
            reasoning: String::new(),
            plan: Vec::new(),
            criticism: String::new(),
            command,
        }
    }

    pub fn with_reasoning(mut self, reasoning: impl Into<String>) -> Self {
        self.reasoning = reasoning.into();
        self
    }

    pub fn with_plan(mut self, plan: Vec<String>) -> Self {
        self.plan = plan;
        self
    }

    pub fn with_criticism(mut self, criticism: impl Into<String>) -> Self {
        self.criticism = criticism.into();
        self
    }
}

impl fmt::Display for AgentCycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "THOUGHTS: {}", self.thoughts)?;
        if !self.reasoning.is_empty() {
            writeln!(f, "REASONING: {}", self.reasoning)?;
        }
        if !self.plan.is_empty() {
            writeln!(f, "PLAN:")?;
            for step in &self.plan {
                writeln!(f, "- {step}")?;
            }
        }
        if !self.criticism.is_empty() {
            writeln!(f, "CRITICISM: {}", self.criticism)?;
        }
        write!(f, "NEXT ACTION: {}", self.command)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_like_autogpt_output() {
        let cycle = AgentCycle::new(
            "I need to gather information on solar superstorms.",
            Command::Google {
                query: "solar superstorms".into(),
            },
        )
        .with_plan(vec![
            "Use the 'google' command to search for information.".into(),
            "Analyze the search results.".into(),
        ]);
        let text = cycle.to_string();
        assert!(text.starts_with("THOUGHTS: I need to gather"));
        assert!(text.contains("PLAN:\n- Use the 'google' command"));
        assert!(text.ends_with("NEXT ACTION: google(query=\"solar superstorms\")"));
    }

    #[test]
    fn empty_sections_are_omitted() {
        let cycle = AgentCycle::new(
            "t",
            Command::TaskComplete {
                reason: "done".into(),
            },
        );
        let text = cycle.to_string();
        assert!(!text.contains("REASONING"));
        assert!(!text.contains("PLAN"));
        assert!(!text.contains("CRITICISM"));
    }
}
