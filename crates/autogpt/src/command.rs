//! The command vocabulary of the autonomous loop.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A command the agent can issue — the same verbs Auto-GPT exposes to
/// the model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Command {
    /// Search the web.
    Google { query: String },
    /// Fetch a page.
    BrowseWebsite { url: String },
    /// Save text to knowledge memory.
    Memorize { topic: String, url: String },
    /// Declare the current goal achieved.
    TaskComplete { reason: String },
}

impl Command {
    /// The Auto-GPT command name.
    pub fn name(&self) -> &'static str {
        match self {
            Command::Google { .. } => "google",
            Command::BrowseWebsite { .. } => "browse_website",
            Command::Memorize { .. } => "memorize",
            Command::TaskComplete { .. } => "task_complete",
        }
    }
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Command::Google { query } => write!(f, "google(query={query:?})"),
            Command::BrowseWebsite { url } => write!(f, "browse_website(url={url})"),
            Command::Memorize { topic, url } => write!(f, "memorize(topic={topic:?}, url={url})"),
            Command::TaskComplete { reason } => write!(f, "task_complete(reason={reason:?})"),
        }
    }
}

/// What happened when a command was executed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CommandOutcome {
    /// Search returned this many results.
    SearchResults { count: usize },
    /// Page fetched, this many bytes.
    PageFetched { bytes: usize },
    /// Entry stored (or deduplicated away).
    Memorized { stored: bool },
    /// Goal closed out.
    Completed,
    /// The command failed; the loop may retry or move on.
    Failed { error: String },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_autogpt_verbs() {
        assert_eq!(Command::Google { query: "x".into() }.name(), "google");
        assert_eq!(
            Command::BrowseWebsite {
                url: "sim://a.test/".into()
            }
            .name(),
            "browse_website"
        );
    }

    #[test]
    fn display_is_compact_and_informative() {
        let c = Command::Google {
            query: "solar storms".into(),
        };
        assert_eq!(c.to_string(), "google(query=\"solar storms\")");
    }

    #[test]
    fn serde_round_trip() {
        let c = Command::Memorize {
            topic: "t".into(),
            url: "sim://a.test/x".into(),
        };
        let json = serde_json::to_string(&c).unwrap();
        assert_eq!(serde_json::from_str::<Command>(&json).unwrap(), c);
    }
}
