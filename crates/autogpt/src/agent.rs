//! The executor: drives goals and single queries through the command
//! loop against the web services, memorising what it reads.
//!
//! Flow for a goal (mirroring the paper's §3.2 snippets):
//!
//! 1. Ask the model for an action plan (`PLAN:` with search steps).
//! 2. For each search step, issue `google`; if a step returns too few
//!    results, invoke chain-of-thought decomposition and retry with the
//!    sub-queries.
//! 3. `browse_website` the top results; `memorize` each fetched page
//!    into the knowledge store with importance decaying down the
//!    ranking.
//!
//! The loop speaks only the `ira-services` traits: any
//! [`WebServices`] (search + fetch + clock), any [`LanguageModel`],
//! any [`Memory`]. The canonical bindings are the simulation substrate
//! (`ira_simnet::Client` over the `ira-webcorpus` sites,
//! `ira_simllm::Llm`, `ira_agentmem::KnowledgeStore`), but nothing
//! here depends on those concrete types.
//!
//! Every command respects the [`Budget`] and is recorded in the
//! [`EventLog`].

use crate::budget::Budget;
use crate::command::{Command, CommandOutcome};
use crate::cycle::AgentCycle;
use crate::events::{EventKind, EventLog};
use ira_services::{LanguageModel, Memory, SearchHit, ServiceError, StepAction, WebServices};
use serde::{Deserialize, Serialize};

/// Loop configuration.
#[derive(Debug, Clone, Copy)]
pub struct AutoGptConfig {
    /// Results requested per search.
    pub results_per_search: usize,
    /// Of those, how many to actually fetch and memorise.
    pub fetches_per_search: usize,
    /// Below this many results, decompose the query (CoT) and retry.
    pub cot_threshold: usize,
    /// Crawler extension (§5 "Limitations of Auto-GPT"): follow up to
    /// this many "Related:" links per fetched page, one level deep.
    /// 0 disables crawling (the paper's baseline behaviour).
    pub crawl_links: usize,
}

impl Default for AutoGptConfig {
    fn default() -> Self {
        AutoGptConfig {
            results_per_search: 8,
            fetches_per_search: 3,
            cot_threshold: 1,
            crawl_links: 0,
        }
    }
}

/// Summary of one goal run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GoalReport {
    pub goal: String,
    pub cycles: u32,
    pub searches: u32,
    pub fetches: u32,
    pub memorized: u32,
    pub duplicates: u32,
    pub errors: u32,
    /// Ranked sources skipped (or abandoned) because their host was
    /// unavailable (circuit breaker open); the agent rerouted to later
    /// results.
    #[serde(default)]
    pub source_unavailable: u32,
    /// Virtual time consumed, microseconds.
    pub elapsed_us: u64,
}

/// The autonomous agent loop, generic over its service backends.
pub struct AutoGpt<'a> {
    web: &'a dyn WebServices,
    llm: &'a dyn LanguageModel,
    memory: &'a dyn Memory,
    config: AutoGptConfig,
    budget: Budget,
    log: EventLog,
    cycles: Vec<AgentCycle>,
}

impl<'a> AutoGpt<'a> {
    pub fn new(
        web: &'a dyn WebServices,
        llm: &'a dyn LanguageModel,
        memory: &'a dyn Memory,
        config: AutoGptConfig,
        budget: Budget,
    ) -> Self {
        AutoGpt {
            web,
            llm,
            memory,
            config,
            budget,
            log: EventLog::new(),
            cycles: Vec::new(),
        }
    }

    /// Mirror every logged event into an `ira-obs` collector tagged
    /// with `session`. Cycle/command boundaries then appear on the
    /// same virtual timeline as the network-level trace.
    pub fn attach_observer(&mut self, sink: ira_obs::SharedCollector, session: u32) {
        self.log.attach_observer(sink, session);
    }

    /// Mirror logged events through a shared [`ira_obs::ObsHandle`],
    /// joining the session's causal tree (points nest under the
    /// caller's open scopes).
    pub fn attach_observer_handle(&mut self, handle: ira_obs::ObsHandle) {
        self.log.attach_observer_handle(handle);
    }

    pub fn log(&self) -> &EventLog {
        &self.log
    }

    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// The full THOUGHTS/PLAN/COMMAND transcript.
    pub fn transcript(&self) -> &[AgentCycle] {
        &self.cycles
    }

    fn now_us(&self) -> u64 {
        self.web.now_us()
    }

    /// Pursue a goal end to end. Budget exhaustion ends the run early
    /// but is not an error: the report says how far it got.
    pub fn run_goal(&mut self, goal: &str) -> GoalReport {
        let started = self.now_us();
        let mut report = GoalReport {
            goal: goal.to_string(),
            ..GoalReport::default()
        };

        let plan = self.llm.plan_goal(goal);
        let plan_lines: Vec<String> = plan.steps.iter().map(|s| s.description.clone()).collect();

        for step in &plan.steps {
            let StepAction::Search { query } = &step.action else {
                continue; // analysis/memorize steps are folded into search handling
            };
            if self.budget.take_cycle().is_err() {
                break;
            }
            report.cycles += 1;
            self.log.record(
                self.now_us(),
                EventKind::CycleStart,
                step.description.clone(),
            );
            self.cycles.push(
                AgentCycle::new(
                    plan.thoughts.clone(),
                    Command::Google {
                        query: query.clone(),
                    },
                )
                .with_plan(plan_lines.clone())
                .with_reasoning(format!("Goal: {goal}")),
            );
            self.search_and_absorb(goal, query, &mut report);
        }

        self.log
            .record(self.now_us(), EventKind::GoalComplete, goal.to_string());
        self.cycles.push(AgentCycle::new(
            format!("I have gathered the available information for: {goal}"),
            Command::TaskComplete {
                reason: "plan executed".into(),
            },
        ));
        report.elapsed_us = self.now_us().saturating_sub(started);
        report
    }

    /// Pursue a single query (the self-learning path: one proposed
    /// search, absorb the results).
    pub fn pursue_query(&mut self, topic: &str, query: &str) -> GoalReport {
        let started = self.now_us();
        let mut report = GoalReport {
            goal: topic.to_string(),
            ..GoalReport::default()
        };
        if self.budget.take_cycle().is_ok() {
            report.cycles += 1;
            self.cycles.push(AgentCycle::new(
                format!("To better answer questions about {topic}, I will search for: {query}"),
                Command::Google {
                    query: query.to_string(),
                },
            ));
            self.search_and_absorb(topic, query, &mut report);
        }
        report.elapsed_us = self.now_us().saturating_sub(started);
        report
    }

    /// Execute one search; on thin results, decompose and retry the
    /// sub-queries; fetch and memorise the top hits.
    fn search_and_absorb(&mut self, topic: &str, query: &str, report: &mut GoalReport) {
        let results = self.google(query, report);
        let results = if results.len() <= self.config.cot_threshold {
            // Chain-of-thought: break the step into subplans.
            let mut all = results;
            for sub in self.llm.decompose(query) {
                if sub == query {
                    continue;
                }
                all.extend(self.google(&sub, report));
            }
            all
        } else {
            results
        };

        let mut fetched = 0usize;
        for (rank, hit) in results.iter().enumerate() {
            if fetched >= self.config.fetches_per_search {
                break;
            }
            // Never spend a fetch slot re-reading a memorised page: a
            // repeated query pages deeper into the ranking instead.
            if self.memory.has_url(&hit.url) {
                continue;
            }
            // Degrade around dead hosts: if this result's source is
            // unavailable (its breaker is open), reroute to the
            // next-ranked result without spending any fetch budget.
            if !self.web.source_available(&hit.url) {
                report.source_unavailable += 1;
                self.log
                    .record(self.now_us(), EventKind::SourceUnavailable, hit.url.clone());
                continue;
            }
            if self.budget.take_fetch().is_err() {
                return;
            }
            match self.web.fetch(&hit.url) {
                Ok(page) => {
                    fetched += 1;
                    report.fetches += 1;
                    self.log
                        .record(self.now_us(), EventKind::Fetch, hit.url.clone());
                    let importance = 1.0 / (1.0 + rank as f64);
                    self.absorb_page(topic, &hit.url, &page, importance, report);
                    // Crawler extension: follow related links one level.
                    for link in related_links(&page)
                        .into_iter()
                        .take(self.config.crawl_links)
                    {
                        if self.memory.has_url(&link) {
                            continue;
                        }
                        if !self.web.source_available(&link) {
                            report.source_unavailable += 1;
                            self.log.record(
                                self.now_us(),
                                EventKind::SourceUnavailable,
                                link.clone(),
                            );
                            continue;
                        }
                        if self.budget.take_fetch().is_err() {
                            return;
                        }
                        match self.web.fetch(&link) {
                            Ok(linked_page) => {
                                report.fetches += 1;
                                self.log
                                    .record(self.now_us(), EventKind::Fetch, link.clone());
                                self.absorb_page(
                                    topic,
                                    &link,
                                    &linked_page,
                                    importance * 0.5,
                                    report,
                                );
                            }
                            Err(err) => self.record_fetch_failure(&link, err, report),
                        }
                    }
                }
                Err(err) => self.record_fetch_failure(&hit.url, err, report),
            }
        }
    }

    /// Classify a fetch failure: an unavailable source means the agent
    /// reroutes, anything else is a hard error.
    fn record_fetch_failure(&mut self, url: &str, err: ServiceError, report: &mut GoalReport) {
        if err.is_source_unavailable() {
            report.source_unavailable += 1;
            self.log
                .record(self.now_us(), EventKind::SourceUnavailable, url.to_string());
        } else {
            report.errors += 1;
            self.log
                .record(self.now_us(), EventKind::Error, err.to_string());
        }
    }

    /// Issue one `google` command.
    fn google(&mut self, query: &str, report: &mut GoalReport) -> Vec<SearchHit> {
        if self.budget.take_search().is_err() {
            return Vec::new();
        }
        report.searches += 1;
        match self.web.search(query, self.config.results_per_search) {
            Ok(hits) => {
                self.log.record(
                    self.now_us(),
                    EventKind::Search,
                    format!("{query} -> {} results", hits.len()),
                );
                hits
            }
            Err(err) => {
                report.errors += 1;
                self.log
                    .record(self.now_us(), EventKind::Error, err.to_string());
                Vec::new()
            }
        }
    }

    /// Memorise one fetched page and log the outcome.
    fn absorb_page(
        &mut self,
        topic: &str,
        url: &str,
        page: &str,
        importance: f64,
        report: &mut GoalReport,
    ) {
        let kind = source_kind_of(url);
        let stored = self
            .memory
            .memorize(topic, page, url, kind, self.now_us(), importance);
        if stored {
            report.memorized += 1;
            self.log
                .record(self.now_us(), EventKind::Memorize, url.to_string());
        } else {
            report.duplicates += 1;
            self.log
                .record(self.now_us(), EventKind::DuplicateDropped, url.to_string());
        }
        self.cycles.push(AgentCycle::new(
            format!("Saving what I learned from {url}"),
            Command::Memorize {
                topic: topic.to_string(),
                url: url.to_string(),
            },
        ));
    }

    /// Outcome classification helper for external drivers.
    pub fn classify_outcome(report: &GoalReport) -> CommandOutcome {
        if report.errors > 0 && report.memorized == 0 {
            CommandOutcome::Failed {
                error: format!("{} errors, nothing learned", report.errors),
            }
        } else {
            CommandOutcome::Memorized {
                stored: report.memorized > 0,
            }
        }
    }
}

/// Extract the "Related: <url>" trailer links from a fetched page.
fn related_links(page: &str) -> Vec<String> {
    page.lines()
        .filter_map(|l| l.strip_prefix("Related: "))
        .map(|l| l.trim().to_string())
        .filter(|l| l.starts_with("sim://"))
        .collect()
}

/// The host part of a `sim://` URL, without pulling in a URL parser.
fn host_of(url: &str) -> Option<&str> {
    let rest = url.strip_prefix("sim://")?;
    let host = rest.split(['/', '?']).next().unwrap_or(rest);
    if host.is_empty() {
        None
    } else {
        Some(host)
    }
}

/// Infer the source category from a result URL's host.
fn source_kind_of(url: &str) -> &'static str {
    match host_of(url) {
        Some("encyclopedia.test") => "encyclopedia",
        Some("news.test") => "news",
        Some("blog.test") => "blog",
        Some("forum.test") => "forum",
        Some("micro.test") => "micropost",
        Some("papers.test") => "paper",
        _ => "web",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ira_agentmem::KnowledgeStore;
    use ira_simllm::Llm;
    use ira_simnet::{Client, Network, NetworkConfig};
    use ira_webcorpus::{register_sites, Corpus, CorpusConfig};
    use ira_worldmodel::World;
    use std::sync::Arc;

    fn setup() -> (Client, Llm, KnowledgeStore) {
        let corpus = Arc::new(Corpus::generate(
            &World::standard(),
            CorpusConfig::default(),
        ));
        let mut net = Network::new(NetworkConfig::default(), 42);
        register_sites(&mut net, corpus);
        (
            Client::new(Arc::new(net)),
            Llm::gpt4(7),
            KnowledgeStore::with_defaults(),
        )
    }

    #[test]
    fn goal_run_learns_something() {
        let (client, llm, memory) = setup();
        let mut agent = AutoGpt::new(
            &client,
            &llm,
            &memory,
            AutoGptConfig::default(),
            Budget::standard(),
        );
        let report = agent.run_goal(
            "Understand solar superstorms and Coronal Mass Ejection, and principles of their \
             formation and effects.",
        );
        assert!(report.searches >= 1, "report: {report:?}");
        assert!(report.memorized >= 1, "report: {report:?}");
        assert!(!memory.is_empty());
        assert!(report.elapsed_us > 0, "virtual time must pass");
        // Transcript shows Auto-GPT-style cycles.
        assert!(agent
            .transcript()
            .iter()
            .any(|c| c.command.name() == "google"));
        assert!(agent
            .transcript()
            .iter()
            .any(|c| c.command.name() == "task_complete"));
    }

    #[test]
    fn pursue_query_absorbs_cable_knowledge() {
        let (client, llm, memory) = setup();
        let mut agent = AutoGpt::new(
            &client,
            &llm,
            &memory,
            AutoGptConfig::default(),
            Budget::standard(),
        );
        let report = agent.pursue_query(
            "cable routes",
            "specific route of the fiber optic submarine cable connecting brazil to europe",
        );
        assert!(report.memorized >= 1);
        let texts = memory.retrieve_texts("brazil europe cable", 3, u64::MAX);
        assert!(
            texts
                .iter()
                .any(|t| t.contains("EllaLink") || t.contains("Atlantis")),
            "memory should hold the Brazil–Europe cable page"
        );
    }

    #[test]
    fn budget_zero_searches_learns_nothing() {
        let (client, llm, memory) = setup();
        let mut agent = AutoGpt::new(
            &client,
            &llm,
            &memory,
            AutoGptConfig::default(),
            Budget::new(0, 10, 10),
        );
        let report = agent.pursue_query("anything", "solar storms");
        assert_eq!(report.memorized, 0);
        assert!(memory.is_empty());
    }

    #[test]
    fn repeated_queries_page_deeper_instead_of_refetching() {
        let (client, llm, memory) = setup();
        let mut agent = AutoGpt::new(
            &client,
            &llm,
            &memory,
            AutoGptConfig::default(),
            Budget::standard(),
        );
        let first = agent.pursue_query("t", "coronal mass ejection solar superstorm");
        let before: Vec<String> = memory
            .entries()
            .iter()
            .map(|e| e.source_url.clone())
            .collect();
        let second = agent.pursue_query("t", "coronal mass ejection solar superstorm");
        assert!(first.memorized >= 1);
        // The second pass must not spend fetches on pages already in
        // memory: every new fetch lands on a previously unseen URL.
        let after = memory.entries();
        let new_urls: Vec<&str> = after
            .iter()
            .map(|e| e.source_url.as_str())
            .filter(|u| !before.iter().any(|b| b == u))
            .collect();
        assert_eq!(
            new_urls.len(),
            second.fetches as usize,
            "second pass fetched known URLs: {second:?}"
        );
    }

    #[test]
    fn event_log_records_the_run() {
        let (client, llm, memory) = setup();
        let mut agent = AutoGpt::new(
            &client,
            &llm,
            &memory,
            AutoGptConfig::default(),
            Budget::standard(),
        );
        agent.pursue_query("t", "submarine cable repeater vulnerable component fiber");
        assert!(agent.log().count(EventKind::Search) >= 1);
        assert!(agent.log().count(EventKind::Fetch) >= 1);
        assert!(agent.log().count(EventKind::Memorize) >= 1);
    }

    #[test]
    fn related_links_parse_from_page_trailers() {
        let page =
            "Title\n\nBody text.\nRelated: sim://a.test/x\nRelated: sim://b.test/y\nnot a link";
        assert_eq!(
            related_links(page),
            vec!["sim://a.test/x".to_string(), "sim://b.test/y".to_string()]
        );
        assert!(related_links("no links here").is_empty());
    }

    #[test]
    fn crawler_broadens_what_one_search_learns() {
        let (client, llm, memory) = setup();
        let mut no_crawl = AutoGpt::new(
            &client,
            &llm,
            &memory,
            AutoGptConfig {
                crawl_links: 0,
                ..AutoGptConfig::default()
            },
            Budget::standard(),
        );
        let base = no_crawl.pursue_query("t", "coronal mass ejection solar superstorm");

        let (client2, llm2, memory2) = setup();
        let mut crawl = AutoGpt::new(
            &client2,
            &llm2,
            &memory2,
            AutoGptConfig {
                crawl_links: 2,
                ..AutoGptConfig::default()
            },
            Budget::standard(),
        );
        let crawled = crawl.pursue_query("t", "coronal mass ejection solar superstorm");
        assert!(
            crawled.fetches > base.fetches,
            "crawling must fetch more: {} vs {}",
            crawled.fetches,
            base.fetches
        );
        assert!(crawled.memorized >= base.memorized);
    }

    #[test]
    fn circuit_open_sources_are_rerouted_not_fatal() {
        use ira_simnet::{ClientConfig, Duration, FaultPlan, Instant};

        let corpus = Arc::new(Corpus::generate(
            &World::standard(),
            CorpusConfig::default(),
        ));
        let mut net = Network::new(NetworkConfig::default(), 42);
        register_sites(&mut net, corpus);
        let client = Client::with_config(Arc::new(net), ClientConfig::resilient());

        // Black out most content hosts for the whole run; only the
        // search engine and the encyclopedia stay reachable.
        let forever = Instant::EPOCH + Duration::from_secs(86_400);
        let mut plan = FaultPlan::new();
        for host in [
            "archive.test",
            "news.test",
            "blog.test",
            "forum.test",
            "micro.test",
            "papers.test",
        ] {
            plan = plan.with_blackout(host, Instant::EPOCH, forever);
        }
        client.network().set_fault_plan(plan);

        let llm = Llm::gpt4(7);
        let memory = KnowledgeStore::with_defaults();
        let mut agent = AutoGpt::new(
            &client,
            &llm,
            &memory,
            AutoGptConfig {
                results_per_search: 16,
                ..AutoGptConfig::default()
            },
            Budget::standard(),
        );
        let report = agent.run_goal(
            "Understand solar superstorms and Coronal Mass Ejection, and principles of their \
             formation and effects.",
        );
        // The run must finish with partial knowledge, not abort: dead
        // hosts trip their breakers, later hits on them are rerouted.
        assert!(
            report.errors >= 1,
            "the tripping fetches surface as errors: {report:?}"
        );
        assert!(
            report.source_unavailable >= 1,
            "later hits on dead hosts must be skipped at the breaker: {report:?}"
        );
        assert!(
            agent.log().count(EventKind::SourceUnavailable) as u32 == report.source_unavailable,
            "every reroute must be recorded in the event log"
        );
        assert!(
            client.breaker_totals().opened >= 1,
            "at least one host breaker must have opened"
        );
    }

    #[test]
    fn source_kind_inference() {
        assert_eq!(
            source_kind_of("sim://encyclopedia.test/wiki/x"),
            "encyclopedia"
        );
        assert_eq!(source_kind_of("sim://forum.test/thread/9"), "forum");
        assert_eq!(source_kind_of("not a url"), "web");
        assert_eq!(source_kind_of("sim://news.test?id=1"), "news");
    }
}
