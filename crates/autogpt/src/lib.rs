//! # ira-autogpt
//!
//! The Auto-GPT-style autonomous loop (§3.1 of the paper): the layer
//! that turns LLM "thoughts" into executed commands — web searches,
//! page fetches, and memory writes — without a human in the loop.
//!
//! * [`command`] — the command vocabulary (`google`, `browse_website`,
//!   `memorize`, `task_complete`) and results.
//! * [`cycle`] — the THOUGHTS / REASONING / PLAN / CRITICISM / COMMAND
//!   record each iteration produces, rendered the way Auto-GPT prints
//!   them.
//! * [`budget`] — hard resource limits so an autonomous run always
//!   terminates.
//! * [`events`] — a structured event log for observability and the
//!   cost experiments.
//! * [`agent`] — the executor: pursues goals and single queries against
//!   the simulated web, memorising what it reads.

pub mod agent;
pub mod budget;
pub mod command;
pub mod cycle;
pub mod events;

pub use agent::{AutoGpt, AutoGptConfig, GoalReport};
pub use budget::{Budget, BudgetExhausted};
pub use command::{Command, CommandOutcome};
pub use cycle::AgentCycle;
pub use events::{Event, EventKind, EventLog};
