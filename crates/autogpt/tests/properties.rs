//! Property-based tests for the autonomous-loop primitives.

use ira_autogpt::{AgentCycle, Budget, Command, EventKind, EventLog};
use proptest::prelude::*;

proptest! {
    #[test]
    fn budget_grants_exactly_the_limits(
        max_searches in 0u32..30,
        max_fetches in 0u32..30,
        max_cycles in 0u32..30,
        attempts in 0u32..100,
    ) {
        let mut budget = Budget::new(max_searches, max_fetches, max_cycles);
        let mut granted = (0u32, 0u32, 0u32);
        for i in 0..attempts {
            match i % 3 {
                0 => {
                    if budget.take_search().is_ok() {
                        granted.0 += 1;
                    }
                }
                1 => {
                    if budget.take_fetch().is_ok() {
                        granted.1 += 1;
                    }
                }
                _ => {
                    if budget.take_cycle().is_ok() {
                        granted.2 += 1;
                    }
                }
            }
        }
        prop_assert!(granted.0 <= max_searches);
        prop_assert!(granted.1 <= max_fetches);
        prop_assert!(granted.2 <= max_cycles);
        prop_assert_eq!(budget.searches_used(), granted.0);
        prop_assert_eq!(budget.fetches_used(), granted.1);
        prop_assert_eq!(budget.cycles_used(), granted.2);
    }

    #[test]
    fn event_log_counts_are_consistent(
        events in prop::collection::vec((0u64..1_000_000, 0usize..4), 0..50),
    ) {
        let kinds = [
            EventKind::CycleStart,
            EventKind::Search,
            EventKind::Fetch,
            EventKind::Memorize,
        ];
        let mut log = EventLog::new();
        // Record in ascending-time order, as the loop does.
        let mut sorted = events.clone();
        sorted.sort_by_key(|(t, _)| *t);
        for (t, k) in &sorted {
            log.record(*t, kinds[*k], "detail");
        }
        let total: usize = kinds.iter().map(|k| log.count(*k)).sum();
        prop_assert_eq!(total, sorted.len());
        prop_assert_eq!(log.len(), sorted.len());
        if let (Some(first), Some(last)) = (sorted.first(), sorted.last()) {
            prop_assert_eq!(log.span_us(), last.0 - first.0);
        } else {
            prop_assert_eq!(log.span_us(), 0);
        }
    }

    #[test]
    fn cycle_rendering_never_panics_and_keeps_structure(
        thoughts in "\\PC{0,120}",
        reasoning in "\\PC{0,120}",
        plan in prop::collection::vec("\\PC{0,60}", 0..5),
        query in "[ -~]{0,60}",
    ) {
        let cycle = AgentCycle::new(thoughts.clone(), Command::Google { query })
            .with_reasoning(reasoning.clone())
            .with_plan(plan.clone());
        let rendered = cycle.to_string();
        prop_assert!(rendered.starts_with("THOUGHTS: "));
        prop_assert!(rendered.contains("NEXT ACTION: google"));
        if !plan.is_empty() {
            prop_assert!(rendered.contains("PLAN:"));
        }
    }
}
