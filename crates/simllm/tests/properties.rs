//! Property-based tests for the simulated LLM: total functions over
//! arbitrary text, bounded confidence, and calibration monotonicity.

use ira_simllm::extract::Extraction;
use ira_simllm::intent::classify;
use ira_simllm::plangen;
use ira_simllm::Llm;
use proptest::prelude::*;

proptest! {
    #[test]
    fn extraction_never_panics(text in "\\PC{0,1000}") {
        let _ = Extraction::from_text(&text, None);
    }

    #[test]
    fn classify_never_panics(q in "\\PC{0,300}") {
        let _ = classify(&q);
    }

    #[test]
    fn plan_generation_is_total_and_closes(goal in "\\PC{0,200}") {
        let plan = plangen::plan_goal(&goal);
        // Plans always end with analysis + memorize steps.
        prop_assert!(plan.steps.len() >= 2);
    }

    #[test]
    fn confidence_is_always_in_range(
        question in "\\PC{0,200}",
        knowledge in prop::collection::vec("\\PC{0,200}", 0..6),
    ) {
        let llm = Llm::gpt4(0);
        let ans = llm.answer(&question, &knowledge);
        prop_assert!(ans.confidence <= 10);
        prop_assert!((0.0..=1.0).contains(&ans.coverage));
        prop_assert!(!ans.text.is_empty());
    }

    #[test]
    fn adding_knowledge_never_lowers_cable_confidence(
        extra in prop::collection::vec("[a-z ]{10,80}", 0..4),
    ) {
        // Irrelevant extra snippets must not reduce confidence: the
        // evidence slots only accumulate.
        const Q: &str = "Which is more vulnerable to solar activity? The fiber optic cable \
                         that connects Brazil to Europe or the one that connects the US to \
                         Europe?";
        let relevant = vec![
            "Geomagnetically induced currents grow stronger at higher geomagnetic latitudes."
                .to_string(),
        ];
        let llm = Llm::gpt4(0);
        let base = llm.answer(Q, &relevant).confidence;
        let mut more = extra;
        more.extend(relevant);
        let with_noise = llm.answer(Q, &more).confidence;
        prop_assert!(with_noise >= base, "noise lowered confidence {base} -> {with_noise}");
    }

    #[test]
    fn extraction_merge_is_idempotent(text in "[ -~]{0,500}") {
        let a = Extraction::from_text(&text, None);
        let mut b = a.clone();
        b.merge(&a);
        prop_assert_eq!(a.facts.len(), b.facts.len());
        prop_assert_eq!(a.principles.len(), b.principles.len());
    }

    #[test]
    fn proposed_searches_are_unique_and_bounded(max in 0usize..8) {
        const Q: &str = "Whose datacenter is more vulnerable to a solar superstorm, Google's \
                         or Facebook's?";
        let llm = Llm::gpt4(0);
        let queries = llm.propose_searches(Q, &[], max);
        prop_assert!(queries.len() <= max);
        let mut dedup = queries.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), queries.len(), "duplicate queries proposed");
    }
}
