//! The ungrounded "pretraining prior": fluent hedging.
//!
//! Without relevant knowledge in context, a real foundation model
//! produces exactly the kind of non-committal answer the paper quotes
//! from ChatGPT ("Both … can be vulnerable … the exact impact and
//! vulnerability can vary …"). These generators reproduce that regime
//! so the evaluation's baseline comparison is faithful.

use crate::intent::RouteSpec;
use crate::reason::Answer;

/// Hedge for a two-route cable comparison.
pub fn cable_hedge(a: &RouteSpec, b: &RouteSpec, knows_latitude_principle: bool) -> String {
    let base = format!(
        "Both the fiber optic cable that connects {} and the one that connects {} can be \
         vulnerable to solar activity. Solar activity, such as solar flares or geomagnetic \
         storms, can cause disruptions in satellite communications, power grids, and other \
         electronic systems, which can indirectly affect the functioning of fiber optic \
         cables as well. However, the exact impact and vulnerability can vary depending on \
         the location and specific design of the cables.",
        a.display(),
        b.display()
    );
    if knows_latitude_principle {
        format!(
            "{base} To accurately determine the vulnerability of the specific cables, factors \
             such as their routes and the geomagnetic latitudes they traverse would need to \
             be considered; that specific information is not available."
        )
    } else {
        base
    }
}

/// Hedge for an operator comparison.
pub fn operator_hedge(op_a: &str, op_b: &str, knows_dispersion_principle: bool) -> String {
    let base = format!(
        "It is difficult to definitively answer this without additional information. Both \
         {} and {} operate many data centers throughout the world, designed and maintained \
         to high standards to ensure resilience and redundancy.",
        capitalize(op_a),
        capitalize(op_b)
    );
    if knows_dispersion_principle {
        format!(
            "{base} Geographic dispersion matters for resilience, but without specific \
             information on the location and spread of the data centers in question it is \
             hard to say which fleet would be more exposed."
        )
    } else {
        base
    }
}

/// Generic hedge mentioning the topic.
pub fn generic_hedge(topic: &str) -> String {
    format!(
        "There is not enough specific information available to give a confident answer about \
         {topic}. In general, extreme space weather can affect electrical and communication \
         systems in complex, situation-dependent ways, and the details would depend on the \
         specific infrastructure involved."
    )
}

/// Hedge for an unanswered scenario-class question. Same ungrounded
/// regime as [`generic_hedge`], flavoured by the incident class (labels
/// mirror `ScenarioClass::label()` in `ira-worldmodel`) so traces show
/// which rule family hedged.
pub fn scenario_hedge(class_label: &str, topic: &str) -> String {
    format!(
        "There is not enough specific information available to give a confident answer about \
         {topic}. In general, {class_label} incidents unfold in situation-dependent ways, and \
         the details would depend on the specific infrastructure and event involved."
    )
}

/// Full answer object for an unclassifiable question.
pub fn unknown_answer(question: &str) -> Answer {
    let topic = question
        .trim_end_matches(['?', '.'])
        .split_whitespace()
        .rev()
        .take(4)
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect::<Vec<_>>()
        .join(" ");
    Answer {
        text: generic_hedge(&format!("\"{topic}\"")),
        verdict: None,
        confidence: 2,
        coverage: 0.0,
        missing: Vec::new(),
        principles_used: Vec::new(),
        facts_used: 0,
        reasoning: vec!["no recognised investigation intent; answering from the prior".into()],
    }
}

fn capitalize(s: &str) -> String {
    let mut c = s.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cable_hedge_mentions_both_routes_and_commits_to_nothing() {
        let a = RouteSpec::new("brazil", "europe");
        let b = RouteSpec::new("the US", "europe");
        let text = cable_hedge(&a, &b, false);
        assert!(text.contains("Brazil To Europe") || text.contains("Brazil to Europe"));
        assert!(text.contains("can vary"));
        assert!(!text.contains("is more vulnerable."));
    }

    #[test]
    fn principle_awareness_adds_the_self_diagnosis() {
        let a = RouteSpec::new("brazil", "europe");
        let b = RouteSpec::new("us", "europe");
        let with = cable_hedge(&a, &b, true);
        let without = cable_hedge(&a, &b, false);
        assert!(with.len() > without.len());
        assert!(with.contains("not available"));
    }

    #[test]
    fn operator_hedge_names_both() {
        let text = operator_hedge("google", "facebook", false);
        assert!(text.contains("Google") && text.contains("Facebook"));
    }

    #[test]
    fn scenario_hedge_names_class_and_topic() {
        let text = scenario_hedge("routing", "what took facebook.com offline");
        assert!(text.contains("routing incidents"));
        assert!(text.contains("facebook.com"));
        assert!(text.contains("not enough specific information"));
    }

    #[test]
    fn unknown_answer_is_low_confidence() {
        let ans = unknown_answer("What is the best pasta shape?");
        assert_eq!(ans.confidence, 2);
        assert!(ans.verdict.is_none());
        assert!(ans.text.contains("pasta"));
    }
}
