//! # ira-simllm
//!
//! A deterministic, seeded simulation of a large language model — the
//! stand-in for GPT-4 in the HotNets '23 reproduction (see DESIGN.md
//! for the substitution argument).
//!
//! The model has exactly the two behavioural regimes the paper's agent
//! architecture exploits:
//!
//! 1. **Ungrounded** — with nothing relevant in context, it produces
//!    fluent, hedging, non-committal answers (the paper quotes ChatGPT
//!    doing precisely this) and reports low confidence.
//! 2. **Grounded** — with retrieved knowledge in context, it extracts
//!    facts and general principles from that text, reasons over them,
//!    commits to an answer, and reports calibrated high confidence.
//!
//! The pieces:
//!
//! * [`token`] — tokenizer and context-window accounting.
//! * [`chat`] — chat message / prompt types.
//! * [`extract`] — the fact-extraction layer ("reading"): parses
//!   entity facts and general principles out of context text.
//! * [`intent`] — question understanding: classifies a question into
//!   one of the investigation intents and fills its slots.
//! * [`lexicon`] — deterministic term interning, content fingerprints,
//!   and the virtual-op counters behind the hot-path perf baseline.
//! * [`reason`] — the reasoning engine: evidence slots per intent,
//!   verdict selection, calibrated confidence, missing-knowledge
//!   reporting.
//! * [`prior`] — the ungrounded "pretraining prior" responses.
//! * [`plangen`] — goal → action-plan generation and chain-of-thought
//!   decomposition.
//! * [`model`] — the [`model::Llm`] facade tying it together, with
//!   token accounting and deterministic sampling.

pub mod chat;
pub mod classterms;
pub mod extract;
pub mod intent;
pub mod lexicon;
pub mod model;
pub mod plangen;
pub mod prior;
pub mod reason;
pub mod token;

pub use chat::{Message, Prompt, Role};
pub use extract::{Extraction, ExtractionIndex, Fact, Principle};
pub use intent::{Intent, RouteSpec};
pub use lexicon::{fingerprint64, fingerprint_texts, Interner, Term, TermSet};
pub use model::{Llm, LlmConfig, LlmStats};
pub use plangen::{ActionPlan, PlanStep};
pub use reason::{Answer, MissingKnowledge};
