//! Term interning, content fingerprints, and virtual-op accounting —
//! the shared vocabulary layer of the retrieval/grounding hot path.
//!
//! Every confidence decision used to re-lowercase the same operator,
//! region, and entity strings on every call. This module provides the
//! machinery to pay that normalization cost **once**:
//!
//! * [`Interner`] — a deterministic, insertion-ordered string interner
//!   mapping normalized strings to dense `u32` [`Term`] symbols.
//!   Identical input sequences always produce identical symbol
//!   assignments, so interned structures are safe inside the
//!   byte-identical determinism envelope.
//! * [`TermSet`] — a sorted, deduplicated set of term symbols with
//!   cheap membership and intersection.
//! * [`fingerprint64`] / [`fingerprint_texts`] — stable 64-bit FNV-1a
//!   content fingerprints, the cache keys of the grounding cache in
//!   [`crate::model::Llm`].
//! * [`ops`] — process-wide virtual-op counters (characters
//!   normalized, extraction/answer cache hits and misses). These count
//!   *deterministic work units*, not time, so a perf baseline built on
//!   them can be checked with strict equality in CI.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// A dense interned-term symbol. Symbols are assigned in first-seen
/// order starting at 0, so equal insertion sequences yield equal
/// symbols.
pub type Term = u32;

/// Deterministic insertion-ordered string interner.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    map: HashMap<String, Term>,
    strings: Vec<String>,
}

impl Interner {
    pub fn new() -> Self {
        Interner::default()
    }

    /// Intern `s`, returning its symbol (allocating the next dense id
    /// on first sight).
    pub fn intern(&mut self, s: &str) -> Term {
        if let Some(&t) = self.map.get(s) {
            return t;
        }
        let t = self.strings.len() as Term;
        self.map.insert(s.to_string(), t);
        self.strings.push(s.to_string());
        t
    }

    /// Look up a string without interning it. `None` means the term
    /// was never seen, which callers treat as "cannot match".
    pub fn get(&self, s: &str) -> Option<Term> {
        self.map.get(s).copied()
    }

    /// The string behind a symbol.
    pub fn resolve(&self, t: Term) -> Option<&str> {
        self.strings.get(t as usize).map(String::as_str)
    }

    pub fn len(&self) -> usize {
        self.strings.len()
    }

    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

/// A sorted, deduplicated set of interned terms.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct TermSet {
    terms: Vec<Term>,
}

impl TermSet {
    /// Build from arbitrary (unsorted, possibly duplicated) terms.
    pub fn from_terms(mut terms: Vec<Term>) -> Self {
        terms.sort_unstable();
        terms.dedup();
        TermSet { terms }
    }

    pub fn contains(&self, t: Term) -> bool {
        self.terms.binary_search(&t).is_ok()
    }

    /// Number of terms shared with `other` (linear merge — both sides
    /// are sorted).
    pub fn intersection_count(&self, other: &TermSet) -> usize {
        let (mut i, mut j, mut n) = (0, 0, 0);
        while i < self.terms.len() && j < other.terms.len() {
            match self.terms[i].cmp(&other.terms[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }

    pub fn len(&self) -> usize {
        self.terms.len()
    }

    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = Term> + '_ {
        self.terms.iter().copied()
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Stable 64-bit FNV-1a fingerprint of a string.
pub fn fingerprint64(s: &str) -> u64 {
    let mut h = FNV_OFFSET;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Fingerprint of an ordered sequence of texts. Each text's length is
/// folded in before its bytes so `["ab","c"]` and `["a","bc"]` differ.
pub fn fingerprint_texts(texts: &[String]) -> u64 {
    let mut h = FNV_OFFSET;
    for t in texts {
        for b in (t.len() as u64).to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        for b in t.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// Process-wide deterministic virtual-op counters for the grounding
/// hot path. Counts are *work units* (characters normalized, cache
/// probes), not timers: the same workload always produces the same
/// counts, which is what lets `p1_hotpath --check` enforce them with
/// strict equality in CI.
pub mod ops {
    use super::{AtomicU64, Ordering};

    static TOKENIZE_CHARS: AtomicU64 = AtomicU64::new(0);
    static ABSORB_CALLS: AtomicU64 = AtomicU64::new(0);
    static CLASSIFY_CALLS: AtomicU64 = AtomicU64::new(0);
    static EXTRACT_HITS: AtomicU64 = AtomicU64::new(0);
    static EXTRACT_MISSES: AtomicU64 = AtomicU64::new(0);
    static ANSWER_HITS: AtomicU64 = AtomicU64::new(0);
    static ANSWER_MISSES: AtomicU64 = AtomicU64::new(0);

    /// `n` characters of text were normalized (lowercased / scanned
    /// for markers) during extraction, classification, or index build.
    pub fn tokenize_chars(n: usize) {
        TOKENIZE_CHARS.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// One full-text `absorb` pass ran.
    pub fn absorb_call() {
        ABSORB_CALLS.fetch_add(1, Ordering::Relaxed);
    }

    /// One question classification ran.
    pub fn classify_call() {
        CLASSIFY_CALLS.fetch_add(1, Ordering::Relaxed);
    }

    /// Per-chunk extraction cache probe results.
    pub fn extract_hit() {
        EXTRACT_HITS.fetch_add(1, Ordering::Relaxed);
    }
    pub fn extract_miss() {
        EXTRACT_MISSES.fetch_add(1, Ordering::Relaxed);
    }

    /// Grounded-answer cache probe results.
    pub fn answer_hit() {
        ANSWER_HITS.fetch_add(1, Ordering::Relaxed);
    }
    pub fn answer_miss() {
        ANSWER_MISSES.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time reading of every counter.
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
    pub struct OpSnapshot {
        pub tokenize_chars: u64,
        pub absorb_calls: u64,
        pub classify_calls: u64,
        pub extract_hits: u64,
        pub extract_misses: u64,
        pub answer_hits: u64,
        pub answer_misses: u64,
    }

    impl OpSnapshot {
        /// Counter-wise difference since `earlier` (saturating).
        pub fn since(&self, earlier: &OpSnapshot) -> OpSnapshot {
            OpSnapshot {
                tokenize_chars: self.tokenize_chars.saturating_sub(earlier.tokenize_chars),
                absorb_calls: self.absorb_calls.saturating_sub(earlier.absorb_calls),
                classify_calls: self.classify_calls.saturating_sub(earlier.classify_calls),
                extract_hits: self.extract_hits.saturating_sub(earlier.extract_hits),
                extract_misses: self.extract_misses.saturating_sub(earlier.extract_misses),
                answer_hits: self.answer_hits.saturating_sub(earlier.answer_hits),
                answer_misses: self.answer_misses.saturating_sub(earlier.answer_misses),
            }
        }
    }

    pub fn snapshot() -> OpSnapshot {
        OpSnapshot {
            tokenize_chars: TOKENIZE_CHARS.load(Ordering::Relaxed),
            absorb_calls: ABSORB_CALLS.load(Ordering::Relaxed),
            classify_calls: CLASSIFY_CALLS.load(Ordering::Relaxed),
            extract_hits: EXTRACT_HITS.load(Ordering::Relaxed),
            extract_misses: EXTRACT_MISSES.load(Ordering::Relaxed),
            answer_hits: ANSWER_HITS.load(Ordering::Relaxed),
            answer_misses: ANSWER_MISSES.load(Ordering::Relaxed),
        }
    }

    /// Zero every counter. Benchmarks call this between phases; tests
    /// must NOT rely on it (tests in one binary run concurrently) and
    /// should measure snapshot deltas instead.
    pub fn reset() {
        TOKENIZE_CHARS.store(0, Ordering::Relaxed);
        ABSORB_CALLS.store(0, Ordering::Relaxed);
        CLASSIFY_CALLS.store(0, Ordering::Relaxed);
        EXTRACT_HITS.store(0, Ordering::Relaxed);
        EXTRACT_MISSES.store(0, Ordering::Relaxed);
        ANSWER_HITS.store(0, Ordering::Relaxed);
        ANSWER_MISSES.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_assigns_dense_insertion_ordered_symbols() {
        let mut i = Interner::new();
        assert_eq!(i.intern("google"), 0);
        assert_eq!(i.intern("facebook"), 1);
        assert_eq!(i.intern("google"), 0, "re-interning is stable");
        assert_eq!(i.get("facebook"), Some(1));
        assert_eq!(i.get("amazon"), None);
        assert_eq!(i.resolve(0), Some("google"));
        assert_eq!(i.resolve(9), None);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn interner_is_deterministic_across_builds() {
        let words = ["asia", "europe", "asia", "north america", "europe"];
        let build = || {
            let mut i = Interner::new();
            words.iter().map(|w| i.intern(w)).collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
        assert_eq!(build(), vec![0, 1, 0, 2, 1]);
    }

    #[test]
    fn term_set_membership_and_intersection() {
        let a = TermSet::from_terms(vec![3, 1, 2, 1]);
        let b = TermSet::from_terms(vec![2, 3, 5]);
        assert_eq!(a.len(), 3);
        assert!(a.contains(1));
        assert!(!a.contains(5));
        assert_eq!(a.intersection_count(&b), 2);
        assert_eq!(TermSet::default().intersection_count(&a), 0);
        assert!(TermSet::default().is_empty());
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn fingerprints_are_stable_and_discriminating() {
        assert_eq!(fingerprint64("abc"), fingerprint64("abc"));
        assert_ne!(fingerprint64("abc"), fingerprint64("abd"));
        // FNV-1a test vector: empty input hashes to the offset basis.
        assert_eq!(fingerprint64(""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn text_sequence_fingerprint_is_boundary_aware() {
        let ab_c = fingerprint_texts(&["ab".into(), "c".into()]);
        let a_bc = fingerprint_texts(&["a".into(), "bc".into()]);
        let abc = fingerprint_texts(&["abc".into()]);
        assert_ne!(ab_c, a_bc);
        assert_ne!(ab_c, abc);
        assert_eq!(ab_c, fingerprint_texts(&["ab".into(), "c".into()]));
    }

    #[test]
    fn op_counters_accumulate() {
        let before = ops::snapshot();
        ops::tokenize_chars(120);
        ops::absorb_call();
        ops::classify_call();
        ops::extract_hit();
        ops::extract_miss();
        ops::answer_hit();
        ops::answer_miss();
        let delta = ops::snapshot().since(&before);
        // Other tests may add concurrently; ours are a lower bound.
        assert!(delta.tokenize_chars >= 120);
        assert!(delta.absorb_calls >= 1);
        assert!(delta.classify_calls >= 1);
        assert!(delta.extract_hits >= 1);
        assert!(delta.extract_misses >= 1);
        assert!(delta.answer_hits >= 1);
        assert!(delta.answer_misses >= 1);
    }
}
