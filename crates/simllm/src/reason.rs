//! The reasoning engine: evidence slots, verdicts, calibrated
//! confidence, and missing-knowledge reporting.
//!
//! Every intent defines a set of weighted *evidence slots*. The engine
//! checks which slots the in-context extraction fills, computes a
//! coverage score in [0, 1], and maps it to the 0–10 confidence scale
//! the paper's agent self-reports:
//!
//! ```text
//! confidence = floor(2 + 7 · coverage)
//! ```
//!
//! so an empty context scores 2, general principles alone land near the
//! paper's observed pre-learning confidence of 3, and a fully grounded
//! answer reaches 9 — matching the 8–9 the paper reports after one
//! round of self-learning. Unfilled slots become [`MissingKnowledge`]
//! items, which the self-learning loop turns into search queries.

use crate::extract::{Extraction, ExtractionIndex, Fact, Principle};
use crate::intent::{CableQuestion, GridQuestion, Intent, RouteSpec, RoutingQuestion};
use crate::prior;
use serde::{Deserialize, Serialize};

/// Knowledge the model knows it lacks for the current question.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MissingKnowledge {
    /// Nothing memorised about a named incident.
    IncidentInfo(String),
    /// No cable matching this route is known.
    CableRoute(RouteSpec),
    /// A cable is known by name but its latitude profile is not.
    CableApex { cable: String },
    /// An operator's aggregate footprint numbers are unknown.
    OperatorFootprint(String),
    /// An operator's site list is unknown.
    OperatorPresence(String),
    /// No grid latitude data for a region.
    RegionLatitude(String),
    /// A causal principle is missing.
    Principle(Principle),
    /// No response-planning guidance in context.
    PlanningGuidance,
    /// Nothing memorised about a named cable-damage incident
    /// (scenario class `physical-damage`).
    CableIncidentInfo { cable: String },
    /// Nothing memorised about a power-grid collapse or the GIC
    /// exposure ranking (scenario class `power-failure`).
    GridIncidentInfo { grid: String },
    /// Nothing memorised about a routing incident affecting a service
    /// (scenario class `routing`).
    RoutingIncidentInfo { service: String },
}

/// The model's answer to a question.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Answer {
    /// Natural-language answer text.
    pub text: String,
    /// The committed choice for comparison questions; `None` when the
    /// model hedges.
    pub verdict: Option<String>,
    /// Self-reported confidence, 0–10.
    pub confidence: u8,
    /// Raw evidence coverage in [0, 1].
    pub coverage: f64,
    /// What the model would need to answer better.
    pub missing: Vec<MissingKnowledge>,
    /// Principles that grounded the answer.
    pub principles_used: Vec<Principle>,
    /// Number of entity facts consulted.
    pub facts_used: usize,
    /// The visible reasoning steps taken (chain of thought), in order.
    #[serde(default)]
    pub reasoning: Vec<String>,
}

impl Answer {
    fn confidence_from(coverage: f64) -> u8 {
        (2.0 + 7.0 * coverage.clamp(0.0, 1.0)).floor() as u8
    }
}

/// Accumulates weighted evidence slots.
struct Slots {
    coverage: f64,
    missing: Vec<MissingKnowledge>,
    principles: Vec<Principle>,
    facts: usize,
    steps: Vec<String>,
}

impl Slots {
    fn new() -> Self {
        Slots {
            coverage: 0.0,
            missing: Vec::new(),
            principles: Vec::new(),
            facts: 0,
            steps: Vec::new(),
        }
    }

    fn principle(&mut self, ex: &Extraction, p: Principle, weight: f64) -> bool {
        if ex.principles.contains(&p) {
            self.coverage += weight;
            self.principles.push(p);
            self.step(format!("recalled the {p:?} principle from context"));
            true
        } else {
            self.missing.push(MissingKnowledge::Principle(p));
            self.step(format!("could not find the {p:?} principle in context"));
            false
        }
    }

    fn filled(&mut self, weight: f64, facts: usize) {
        self.coverage += weight;
        self.facts += facts;
    }

    fn missing(&mut self, item: MissingKnowledge) {
        self.missing.push(item);
    }

    /// Record a visible reasoning step.
    fn step(&mut self, text: String) {
        self.steps.push(text);
    }
}

/// Answer `question` (already classified as `intent`) from `ex`.
///
/// The extraction is indexed once up front ([`ExtractionIndex`]) so
/// every keyed lookup below — operator coverage, region latitudes,
/// route endpoints, incident names — is a hash probe over interned
/// terms instead of a re-lowercasing scan of the fact list.
pub fn answer(question: &str, intent: &Intent, ex: &Extraction) -> Answer {
    let idx = ExtractionIndex::build(ex);
    match intent {
        Intent::CompareCableVulnerability { route_a, route_b } => {
            compare_cables(&idx, route_a, route_b)
        }
        Intent::CompareOperatorVulnerability { op_a, op_b } => compare_operators(&idx, op_a, op_b),
        Intent::LatitudeDependence => latitude_dependence(&idx),
        Intent::WeakComponent => weak_component(&idx),
        Intent::SubmarineVsTerrestrial => submarine_vs_terrestrial(&idx),
        Intent::CompareRegionSusceptibility { region_a, region_b } => {
            compare_regions(&idx, region_a, region_b)
        }
        Intent::LengthEffect => length_effect(&idx),
        Intent::PartitionImpact => partition_impact(&idx),
        Intent::ShutdownPlan => shutdown_plan(&idx),
        Intent::IncidentCause { incident } => incident_cause(&idx, incident),
        Intent::IncidentImpact { incident } => incident_impact(&idx, incident),
        Intent::CableIncident { kind, cable } => cable_incident(&idx, *kind, cable),
        Intent::GridIncident { kind, grid } => grid_incident(&idx, *kind, grid),
        Intent::RoutingIncident { kind, service } => routing_incident(&idx, *kind, service),
        Intent::Unknown => prior::unknown_answer(question),
    }
}

fn finish(slots: Slots, text: String, verdict: Option<String>) -> Answer {
    // An answer that cannot commit is not a confident answer, whatever
    // partial evidence accumulated: cap hedges below any sensible
    // confidence threshold so the self-learning loop keeps digging.
    let raw = if verdict.is_none() {
        slots.coverage.min(0.5)
    } else {
        slots.coverage
    };
    let coverage = raw.clamp(0.0, 1.0);
    Answer {
        text,
        verdict,
        confidence: Answer::confidence_from(coverage),
        coverage,
        missing: slots.missing,
        principles_used: slots.principles,
        facts_used: slots.facts,
        reasoning: slots.steps,
    }
}

fn compare_cables(idx: &ExtractionIndex<'_>, spec_a: &RouteSpec, spec_b: &RouteSpec) -> Answer {
    let mut slots = Slots::new();
    let has_principle = slots.principle(idx.ex(), Principle::LatitudeRisk, 0.15);

    let mut sides: Vec<(Option<(String, f64)>, &RouteSpec)> = Vec::new();
    for spec in [spec_a, spec_b] {
        let cables = idx.routes_matching(&spec.a, &spec.b);
        if cables.is_empty() {
            slots.missing(MissingKnowledge::CableRoute(spec.clone()));
            slots.step(format!(
                "no known cable matches the {} route",
                spec.display()
            ));
            sides.push((None, spec));
            continue;
        }
        slots.step(format!(
            "matched {} candidate cable(s) for the {} route: {}",
            cables.len(),
            spec.display(),
            cables.join(", ")
        ));
        slots.filled(0.125, cables.len());
        // Risk along a route is dominated by its highest-latitude cable.
        let best = cables
            .iter()
            .filter_map(|name| idx.apex_of(name).map(|deg| (name.to_string(), deg)))
            .max_by(|a, b| a.1.total_cmp(&b.1));
        match best {
            Some(pair) => {
                // Conflicting sources (possible poisoning or stale data)
                // earn a confidence discount: the model still answers
                // from the median value but flags reduced certainty.
                if idx.apex_conflict(&pair.0, 15.0) {
                    slots.step(format!(
                        "sources disagree on {}'s latitude; using the median with reduced \
                         certainty",
                        pair.0
                    ));
                    slots.filled(0.15, 1);
                } else {
                    slots.step(format!(
                        "{} peaks at {:.1} degrees geomagnetic latitude",
                        pair.0, pair.1
                    ));
                    slots.filled(0.30, 1);
                }
                sides.push((Some(pair), spec));
            }
            None => {
                for name in cables.iter().take(2) {
                    slots.missing(MissingKnowledge::CableApex {
                        cable: name.to_string(),
                    });
                }
                sides.push((None, spec));
            }
        }
    }

    let (a, b) = (&sides[0], &sides[1]);
    match (&a.0, &b.0, has_principle) {
        (Some((name_a, deg_a)), Some((name_b, deg_b)), true) => {
            let ((hi_name, hi_deg, hi_spec), (lo_name, lo_deg, lo_spec)) = if deg_a >= deg_b {
                ((name_a, deg_a, a.1), (name_b, deg_b, b.1))
            } else {
                ((name_b, deg_b, b.1), (name_a, deg_a, a.1))
            };
            let verdict = format!("the cable connecting {}", hi_spec.display());
            let text = format!(
                "The cable connecting {} is more vulnerable. Solar activity has a more \
                 significant impact at higher geomagnetic latitudes, and the {} route reaches \
                 about {:.0} degrees geomagnetic latitude, while the {} route (connecting {}) \
                 reaches only about {:.0} degrees.",
                hi_spec.display(),
                hi_name,
                hi_deg,
                lo_name,
                lo_spec.display(),
                lo_deg
            );
            finish(slots, text, Some(verdict))
        }
        _ => {
            let text = prior::cable_hedge(spec_a, spec_b, has_principle);
            finish(slots, text, None)
        }
    }
}

fn compare_operators(idx: &ExtractionIndex<'_>, op_a: &str, op_b: &str) -> Answer {
    let mut slots = Slots::new();
    let has_principle = slots.principle(idx.ex(), Principle::DispersionResilience, 0.15);

    let mut profiles = Vec::new();
    for op in [op_a, op_b] {
        let coverage = idx.coverage_of(op);
        let lowlat = idx.low_lat_share_of(op);
        let presences = idx.presence_count(op);
        if coverage.is_some() {
            slots.filled(0.15, 1);
        } else {
            slots.missing(MissingKnowledge::OperatorFootprint(op.to_string()));
        }
        if lowlat.is_some() {
            slots.filled(0.10, 1);
        }
        if presences >= 3 {
            slots.filled(0.175, presences);
        } else {
            slots.missing(MissingKnowledge::OperatorPresence(op.to_string()));
        }
        profiles.push((op.to_string(), coverage, lowlat, presences));
    }

    let (pa, pb) = (&profiles[0], &profiles[1]);
    match (pa.1, pb.1, has_principle) {
        (Some(cov_a), Some(cov_b), true) => {
            // Fewer regions covered (tie-broken by low-latitude share)
            // means more storm exposure.
            let a_more_vulnerable = match cov_a.cmp(&cov_b) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Greater => false,
                std::cmp::Ordering::Equal => pa.2.unwrap_or(0.0) < pb.2.unwrap_or(0.0),
            };
            let (loser, winner) = if a_more_vulnerable {
                (pa, pb)
            } else {
                (pb, pa)
            };
            let regions_note = if winner.3 >= 3 {
                " including regions less likely to be affected, such as Asia and South America,"
            } else {
                ""
            };
            let text = format!(
                "By looking at the geographical spread of data centers, {}'s are more globally \
                 dispersed, covering {} major regions{} while {} covers {}. A dispersed \
                 footprint provides more resilience against regional events, so {}'s data \
                 centers are more vulnerable to a solar superstorm.",
                cap(&winner.0),
                winner.1.unwrap_or(0),
                regions_note,
                cap(&loser.0),
                loser.1.unwrap_or(0),
                cap(&loser.0),
            );
            let verdict = format!("{}'s data centers are more vulnerable", cap(&loser.0));
            finish(slots, text, Some(verdict))
        }
        _ => {
            let text = prior::operator_hedge(op_a, op_b, has_principle);
            finish(slots, text, None)
        }
    }
}

fn latitude_dependence(idx: &ExtractionIndex<'_>) -> Answer {
    let ex = idx.ex();
    let mut slots = Slots::new();
    let has = slots.principle(ex, Principle::LatitudeRisk, 0.6);
    slots.principle(ex, Principle::GridThreat, 0.2);
    let example = ex.facts.iter().find_map(|f| match f {
        Fact::MaxGeomagLatitude { entity, degrees } => Some(format!(
            "For example, the {entity} route reaches about {degrees:.0} degrees geomagnetic \
                 latitude, placing it in the zone of strongest induced currents."
        )),
        Fact::RegionGridLatitude { grid, degrees, .. } => Some(format!(
            "For example, the {grid} operates at about {degrees:.0} degrees geomagnetic \
                 latitude, inside the higher-risk band."
        )),
        _ => None,
    });
    if example.is_some() {
        slots.filled(0.2, 1);
    }
    if has {
        let text = format!(
            "Yes — the risk increases sharply at higher latitudes. Geomagnetically induced \
             currents grow stronger at higher geomagnetic latitudes, concentrating damage in \
             the auroral zones while equatorial infrastructure is largely spared. {}",
            example.unwrap_or_default()
        );
        finish(
            slots,
            text.trim_end().to_string(),
            Some("risk increases at higher latitudes".into()),
        )
    } else {
        finish(
            slots,
            prior::generic_hedge("the latitude dependence of storm risk"),
            None,
        )
    }
}

fn weak_component(idx: &ExtractionIndex<'_>) -> Answer {
    let ex = idx.ex();
    let mut slots = Slots::new();
    let has = slots.principle(ex, Principle::RepeaterWeakness, 0.7);
    slots.principle(ex, Principle::TerrestrialSafety, 0.15);
    if ex
        .facts
        .iter()
        .any(|f| matches!(f, Fact::RepeaterCount { .. }))
    {
        slots.filled(0.15, 1);
    }
    if has {
        let text = "The powered repeaters. The optical fiber itself is unaffected by \
                    geomagnetically induced currents; it is the powered repeaters spaced along \
                    the cable — and the power feed that drives them — that are vulnerable, and \
                    a single repeater failure can take the whole span out of service."
            .to_string();
        finish(slots, text, Some("the powered repeaters".into()))
    } else {
        finish(
            slots,
            prior::generic_hedge("submarine cable failure modes"),
            None,
        )
    }
}

fn submarine_vs_terrestrial(idx: &ExtractionIndex<'_>) -> Answer {
    let ex = idx.ex();
    let mut slots = Slots::new();
    let has = slots.principle(ex, Principle::TerrestrialSafety, 0.5);
    slots.principle(ex, Principle::RepeaterWeakness, 0.3);
    slots.principle(ex, Principle::LengthRisk, 0.2);
    if has {
        let text = "Submarine cables are more at risk. Terrestrial fiber links are short and \
                    unrepeated, so a storm can only reach them indirectly through the power \
                    grid, while long submarine cables depend on many powered repeaters exposed \
                    to induced currents along the whole route."
            .to_string();
        finish(slots, text, Some("submarine cables".into()))
    } else {
        finish(
            slots,
            prior::generic_hedge("submarine versus terrestrial exposure"),
            None,
        )
    }
}

fn compare_regions(idx: &ExtractionIndex<'_>, region_a: &str, region_b: &str) -> Answer {
    let mut slots = Slots::new();
    let has_principle = slots.principle(idx.ex(), Principle::LatitudeRisk, 0.2);

    let mut lats = Vec::new();
    for region in [region_a, region_b] {
        match idx.region_latitude(region) {
            Some(lat) => {
                slots.filled(0.3, 1);
                lats.push(Some(lat));
            }
            None => {
                slots.missing(MissingKnowledge::RegionLatitude(region.to_string()));
                lats.push(None);
            }
        }
    }
    // Supporting color: any low-latitude Asian grid mention.
    let singapore = idx.has_singapore_grid();
    if singapore {
        slots.filled(0.2, 1);
    }

    match (lats[0], lats[1], has_principle) {
        (Some(lat_a), Some(lat_b), true) => {
            let (hi, hi_lat, lo, lo_lat) = if lat_a >= lat_b {
                (region_a, lat_a, region_b, lat_b)
            } else {
                (region_b, lat_b, region_a, lat_a)
            };
            let hi_display = if hi == "North America" {
                "The United States"
            } else {
                hi
            };
            let sing_note = if singapore {
                " Asian hubs such as Singapore lie near the geomagnetic equator."
            } else {
                ""
            };
            let text = format!(
                "{hi_display} is more susceptible. Its grids and infrastructure sit at roughly \
                 {hi_lat:.0} degrees geomagnetic latitude, well inside the band of strong \
                 induced currents, while {lo} averages only about {lo_lat:.0} degrees, closer \
                 to the equator.{sing_note}"
            );
            finish(
                slots,
                text,
                Some(format!("{hi_display} is more susceptible").to_lowercase()),
            )
        }
        _ => finish(
            slots,
            prior::generic_hedge("regional susceptibility differences"),
            None,
        ),
    }
}

fn length_effect(idx: &ExtractionIndex<'_>) -> Answer {
    let ex = idx.ex();
    let mut slots = Slots::new();
    let has = slots.principle(ex, Principle::LengthRisk, 0.6);
    if ex
        .facts
        .iter()
        .any(|f| matches!(f, Fact::RepeaterCount { .. }))
    {
        slots.filled(0.2, 1);
    }
    if ex.facts.iter().any(|f| matches!(f, Fact::LengthKm { .. })) {
        slots.filled(0.2, 1);
    }
    if has {
        let text = "Yes — longer cables are more vulnerable. Length matters because longer \
                    cables contain more powered repeaters, and each repeater is a potential \
                    failure point under induced currents, so the risk accumulates with every \
                    additional span."
            .to_string();
        finish(
            slots,
            text,
            Some("yes, longer cables are more vulnerable".into()),
        )
    } else {
        finish(
            slots,
            prior::generic_hedge("the effect of cable length"),
            None,
        )
    }
}

fn partition_impact(idx: &ExtractionIndex<'_>) -> Answer {
    let ex = idx.ex();
    let mut slots = Slots::new();
    let has = slots.principle(ex, Principle::PartitionRisk, 0.5);
    slots.principle(ex, Principle::GridThreat, 0.15);
    slots.principle(ex, Principle::TerrestrialSafety, 0.15);
    let routes_known = ex.routes().count();
    if routes_known >= 3 {
        slots.filled(0.2, routes_known);
    }
    if has {
        let text = "A Carrington-class storm could sever many transoceanic cables at once — \
                    especially the dense bundle of high-latitude North Atlantic crossings — \
                    partitioning entire continents from each other even as regional networks, \
                    built on short terrestrial fiber, keep running."
            .to_string();
        finish(
            slots,
            text,
            Some("intercontinental links fail while regional networks survive".into()),
        )
    } else {
        finish(
            slots,
            prior::generic_hedge("large-scale connectivity impact"),
            None,
        )
    }
}

fn shutdown_plan(idx: &ExtractionIndex<'_>) -> Answer {
    let ex = idx.ex();
    let mut slots = Slots::new();
    let components: [(Principle, &str, &str); 5] = [
        (
            Principle::PredictiveShutdown,
            "Predictive Shutdown",
            "Upon receiving information about a CME, start with shutting down the systems \
             that are most vulnerable, particularly those located at higher latitudes and \
             those that lack shielding or redundancy.",
        ),
        (
            Principle::RedundancyUtilization,
            "Redundancy Utilization",
            "Redirect traffic and operations to redundant systems that are in safer zones, \
             scaling them up in anticipation of the additional load.",
        ),
        (
            Principle::PhasedShutdown,
            "Phased Shutdown",
            "Implement a phased shutdown approach, sequenced by the vulnerability of each \
             system and the services it supports.",
        ),
        (
            Principle::DataPreservation,
            "Data Preservation",
            "Ensure that critical data is preserved and backed up before the shutdown.",
        ),
        (
            Principle::GradualReboot,
            "Gradual Reboot",
            "After the CME impact, restore systems through a phased, gradual reboot, checking \
             for damage before returning each to normal operation.",
        ),
    ];

    let mut lines = Vec::new();
    for (p, title, detail) in &components {
        if slots.principle(ex, *p, 0.2) {
            lines.push(format!("- {title}: {detail}"));
        }
    }

    if lines.is_empty() {
        slots.missing(MissingKnowledge::PlanningGuidance);
        return finish(slots, prior::generic_hedge("a storm response plan"), None);
    }
    let mut text = format!("Suggesting the following strategy:\n{}", lines.join("\n"));

    // "Particularly those located at higher latitudes": when the
    // context carries concrete latitude facts, turn the principle into
    // a ranked shutdown order.
    let mut assets: Vec<(String, f64)> = ex
        .facts
        .iter()
        .filter_map(|f| match f {
            Fact::MaxGeomagLatitude { entity, degrees } => Some((entity.clone(), *degrees)),
            _ => None,
        })
        .collect();
    assets.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    assets.dedup_by(|a, b| a.0 == b.0);
    if !assets.is_empty() {
        slots.step(format!(
            "ranked {} known assets by geomagnetic latitude for shutdown order",
            assets.len()
        ));
        text.push_str("\nShutdown priority from known latitude data:");
        for (i, (name, deg)) in assets.iter().take(5).enumerate() {
            text.push_str(&format!("\n  {}. {name} ({deg:.1} degrees)", i + 1));
        }
    }
    finish(
        slots,
        text,
        Some("staged shutdown and redundancy plan".into()),
    )
}

fn incident_cause(idx: &ExtractionIndex<'_>, needle: &str) -> Answer {
    let mut slots = Slots::new();
    let facts = idx.incident_facts(needle);
    let cause = facts.iter().find_map(|f| match f {
        Fact::IncidentCause { incident, cause } => Some((incident.clone(), cause.clone())),
        _ => None,
    });
    let effect = facts.iter().find_map(|f| match f {
        Fact::IncidentEffect { effect, .. } => Some(effect.clone()),
        _ => None,
    });
    match cause {
        Some((incident, cause)) => {
            slots.filled(0.7, 1);
            let mut text = format!("The {incident} was caused by {cause}.");
            match &effect {
                Some(effect) => {
                    slots.filled(0.2, 1);
                    text.push_str(&format!(" The main effect on the Internet was {effect}."));
                }
                None => slots.missing(MissingKnowledge::IncidentInfo(needle.to_string())),
            }
            if facts.len() > 2 {
                slots.filled(0.1, facts.len() - 2);
            }
            finish(slots, text, Some(cause))
        }
        None => {
            slots.missing(MissingKnowledge::IncidentInfo(needle.to_string()));
            finish(
                slots,
                prior::generic_hedge(&format!("the cause of the {needle}")),
                None,
            )
        }
    }
}

fn incident_impact(idx: &ExtractionIndex<'_>, needle: &str) -> Answer {
    let mut slots = Slots::new();
    let facts = idx.incident_facts(needle);
    if facts.is_empty() {
        slots.missing(MissingKnowledge::IncidentInfo(needle.to_string()));
        return finish(
            slots,
            prior::generic_hedge(&format!("the impact of the {needle}")),
            None,
        );
    }

    let cables = facts.iter().find_map(|f| match f {
        Fact::IncidentCablesCut { count, .. } => Some(*count),
        _ => None,
    });
    let traffic = facts.iter().find_map(|f| match f {
        Fact::IncidentTraffic { percent, .. } => Some(*percent),
        _ => None,
    });
    let duration = facts.iter().find_map(|f| match f {
        Fact::IncidentDuration { hours, .. } => Some(*hours),
        _ => None,
    });
    let effect = facts.iter().find_map(|f| match f {
        Fact::IncidentEffect { effect, .. } => Some(effect.clone()),
        _ => None,
    });

    let mut sentences: Vec<String> = Vec::new();
    let verdict;
    if let Some(count) = cables {
        slots.filled(0.6, 1);
        let weeks = duration.map(|h| (h / 168.0).round() as u32);
        let lead = match weeks {
            Some(w) => {
                slots.filled(0.2, 1);
                format!(
                    "It severed {count} submarine cables; repairs took about {w} weeks before \
                     capacity fully returned."
                )
            }
            None => format!("It severed {count} submarine cables."),
        };
        verdict = lead.clone();
        sentences.push(lead);
    } else if let Some(percent) = traffic {
        slots.filled(0.6, 1);
        let lead = format!(
            "Global Internet traffic grew by about {percent:.0} percent, yet the Internet \
             absorbed the surge without systemic collapse."
        );
        verdict = lead.clone();
        sentences.push(lead);
    } else if let Some(hours) = duration {
        slots.filled(0.6, 1);
        let lead = format!("Services were disrupted for about {hours:.0} hours.");
        verdict = lead.clone();
        sentences.push(lead);
    } else {
        slots.missing(MissingKnowledge::IncidentInfo(needle.to_string()));
        let text = match effect {
            Some(effect) => format!("The main effect on the Internet was {effect}."),
            None => prior::generic_hedge(&format!("the impact of the {needle}")),
        };
        return finish(slots, text, None);
    }
    if let Some(effect) = effect {
        slots.filled(0.2, 1);
        sentences.push(format!("The main effect on the Internet was {effect}."));
    }
    finish(slots, sentences.join(" "), Some(verdict))
}

/// Does a fact's entity name match a question slot? Slots are
/// lowercase (questions are lowercased before classification) and may
/// be empty when the question names no entity; facts keep original
/// case. Same bidirectional-containment rule as incident matching.
fn entity_matches(fact_entity: &str, slot: &str) -> bool {
    if slot.is_empty() {
        return true;
    }
    let e = fact_entity.to_lowercase();
    e.contains(slot) || slot.contains(e.as_str())
}

fn cable_incident(idx: &ExtractionIndex<'_>, kind: CableQuestion, cable: &str) -> Answer {
    let ex = idx.ex();
    let mut slots = Slots::new();
    let cut = ex.facts.iter().find_map(|f| match f {
        Fact::CableCut { cable: c, cause } if entity_matches(c, cable) => {
            Some((c.clone(), cause.clone()))
        }
        _ => None,
    });
    let survivors = ex.facts.iter().find_map(|f| match f {
        Fact::CorridorSurvivors { count } => Some(*count),
        _ => None,
    });
    let length = ex.facts.iter().find_map(|f| match f {
        Fact::LengthKm { entity, km } if entity_matches(entity, cable) => {
            Some((entity.clone(), *km))
        }
        _ => None,
    });
    let repeaters = ex.facts.iter().find_map(|f| match f {
        Fact::RepeaterCount { entity, count } if entity_matches(entity, cable) => {
            Some((entity.clone(), *count))
        }
        _ => None,
    });
    let need = || MissingKnowledge::CableIncidentInfo {
        cable: cable.to_string(),
    };

    match kind {
        CableQuestion::Cause => match cut {
            Some((name, cause)) => {
                slots.filled(0.7, 1);
                slots.step(format!("recalled what severed the {name}"));
                let mut text = format!("The {name} cable was severed by {cause}.");
                match survivors {
                    Some(n) => {
                        slots.filled(0.2, 1);
                        text.push_str(&format!(
                            " Traffic rerouted onto {n} parallel transatlantic cable systems."
                        ));
                    }
                    None => slots.missing(need()),
                }
                slots.principle(ex, Principle::CableRepair, 0.1);
                let verdict = format!("the {name} cable was severed by {cause}");
                finish(slots, text, Some(verdict))
            }
            None => {
                slots.missing(need());
                let topic = format!("the cause of the {cable} cable outage");
                finish(
                    slots,
                    prior::scenario_hedge("physical-damage", &topic),
                    None,
                )
            }
        },
        CableQuestion::CorridorRedundancy => match survivors {
            Some(n) => {
                slots.filled(0.7, 1);
                slots.step("recalled the corridor's parallel cable systems".to_string());
                let mut text = format!(
                    "Yes — traffic rerouted onto {n} parallel transatlantic cable systems, so \
                     North America and Europe stayed connected."
                );
                match &cut {
                    Some((name, cause)) => {
                        slots.filled(0.2, 1);
                        text.push_str(&format!(" The {name} itself was severed by {cause}."));
                    }
                    None => slots.missing(need()),
                }
                if repeaters.is_some() || length.is_some() {
                    slots.filled(0.1, 1);
                }
                let verdict =
                    format!("yes — traffic rerouted onto {n} parallel transatlantic cable systems");
                finish(slots, text, Some(verdict))
            }
            None => {
                slots.missing(need());
                let topic = format!("corridor redundancy after the {cable} cut");
                finish(
                    slots,
                    prior::scenario_hedge("physical-damage", &topic),
                    None,
                )
            }
        },
        CableQuestion::RepeatersLost => match repeaters {
            Some((name, n)) => {
                slots.filled(0.7, 1);
                slots.step(format!("recalled the {name}'s repeater count"));
                let mut text =
                    format!("About {n} optical repeaters went dark when the {name} failed.");
                match &length {
                    Some((_, km)) => {
                        slots.filled(0.2, 1);
                        text.push_str(&format!(" The system spans about {km:.0} km."));
                    }
                    None => slots.missing(need()),
                }
                if cut.is_some() {
                    slots.filled(0.1, 1);
                }
                finish(slots, text, Some(format!("about {n} repeaters")))
            }
            None => {
                slots.missing(need());
                let topic = format!("the {cable} repeater count");
                finish(
                    slots,
                    prior::scenario_hedge("physical-damage", &topic),
                    None,
                )
            }
        },
        CableQuestion::RepairMethod => {
            let has = slots.principle(ex, Principle::CableRepair, 0.75);
            if has {
                let mut text = "A cable repair ship grapples the damaged section and splices in \
                                a new span; until the splice completes, the cable remains dark \
                                end to end."
                    .to_string();
                if let Some((name, _)) = &cut {
                    slots.filled(0.15, 1);
                    text.push_str(&format!(
                        " That is how the severed {name} will be restored."
                    ));
                }
                let verdict = "a cable repair ship grapples the damaged section and splices in \
                               a new span"
                    .to_string();
                finish(slots, text, Some(verdict))
            } else {
                slots.missing(need());
                finish(
                    slots,
                    prior::scenario_hedge("physical-damage", "submarine cable repair procedure"),
                    None,
                )
            }
        }
        CableQuestion::Length => match length {
            Some((name, km)) => {
                slots.filled(0.7, 1);
                slots.step(format!("recalled the {name}'s span"));
                let mut text = format!("The {name} system spans about {km:.0} km.");
                match &repeaters {
                    Some((_, n)) => {
                        slots.filled(0.15, 1);
                        text.push_str(&format!(
                            " It is powered through about {n} optical repeaters."
                        ));
                    }
                    None => slots.missing(need()),
                }
                if cut.is_some() {
                    slots.filled(0.15, 1);
                }
                finish(slots, text, Some(format!("about {km:.0} km")))
            }
            None => {
                slots.missing(need());
                let topic = format!("the {cable} cable length");
                finish(
                    slots,
                    prior::scenario_hedge("physical-damage", &topic),
                    None,
                )
            }
        },
    }
}

fn grid_incident(idx: &ExtractionIndex<'_>, kind: GridQuestion, grid: &str) -> Answer {
    let ex = idx.ex();
    let mut slots = Slots::new();
    let collapse = ex.facts.iter().find_map(|f| match f {
        Fact::GridCollapse { grid: g, cause } if entity_matches(g, grid) => {
            Some((g.clone(), cause.clone()))
        }
        _ => None,
    });
    let most = ex.facts.iter().find_map(|f| match f {
        Fact::GridMostExposed { grid: g } => Some(g.clone()),
        _ => None,
    });
    let low = ex.facts.iter().find_map(|f| match f {
        Fact::GridLowLatitude { grid: g } if entity_matches(g, grid) => Some(g.clone()),
        _ => None,
    });
    let need = || MissingKnowledge::GridIncidentInfo {
        grid: grid.to_string(),
    };

    match kind {
        GridQuestion::Cause => match collapse {
            Some((name, cause)) => {
                slots.filled(0.7, 1);
                slots.step(format!("recalled what collapsed the {name} grid"));
                let mut text = format!(
                    "The {name} power grid collapsed when {cause} during a severe geomagnetic \
                     storm."
                );
                slots.principle(ex, Principle::TransformerSaturation, 0.2);
                if most.is_some() {
                    slots.filled(0.1, 1);
                    text.push_str(&format!(
                        " {name} has the highest GIC exposure of any major grid."
                    ));
                }
                let verdict = format!(
                    "the {name} power grid collapsed when {cause} during a severe geomagnetic \
                     storm"
                );
                finish(slots, text, Some(verdict))
            }
            None => {
                slots.missing(need());
                let topic = format!("the cause of the {grid} grid collapse");
                finish(slots, prior::scenario_hedge("power-failure", &topic), None)
            }
        },
        GridQuestion::MostExposed => match most {
            Some(name) => {
                slots.filled(0.7, 1);
                slots.step(format!("recalled the GIC exposure ranking: {name} leads"));
                let mut text = format!("{name} has the highest GIC exposure of any major grid.");
                if collapse.is_some() {
                    slots.filled(0.2, 1);
                    text.push_str(" Its storm-driven collapse bore the ranking out.");
                }
                if let Some(lo) = &low {
                    slots.filled(0.1, 1);
                    text.push_str(&format!(
                        " Grids at low geomagnetic latitude, such as {lo}, show negligible \
                         exposure."
                    ));
                }
                finish(slots, text, Some(name))
            }
            None => {
                slots.missing(need());
                finish(
                    slots,
                    prior::scenario_hedge("power-failure", "the grid GIC exposure ranking"),
                    None,
                )
            }
        },
        GridQuestion::LowLatitudeRisk => match low {
            Some(name) => {
                slots.filled(0.7, 1);
                slots.step(format!(
                    "recalled that {name} sits at low geomagnetic latitude"
                ));
                let mut text = format!(
                    "No — grids at low geomagnetic latitude such as {name} face negligible GIC \
                     exposure."
                );
                match &most {
                    Some(m) => {
                        slots.filled(0.2, 1);
                        text.push_str(&format!(
                            " The exposure ranking is led by {m}, at high geomagnetic latitude."
                        ));
                    }
                    None => slots.missing(need()),
                }
                if collapse.is_some() {
                    slots.filled(0.1, 1);
                }
                let verdict = format!(
                    "no — grids at low geomagnetic latitude such as {name} face negligible GIC \
                     exposure"
                );
                finish(slots, text, Some(verdict))
            }
            None => {
                slots.missing(need());
                finish(
                    slots,
                    prior::scenario_hedge("power-failure", "low-latitude grid exposure"),
                    None,
                )
            }
        },
        GridQuestion::FailingComponent => {
            let has = slots.principle(ex, Principle::TransformerSaturation, 0.75);
            if has {
                let mut text = "Extra-high-voltage transformers saturate and overheat under \
                                sustained geomagnetically induced currents."
                    .to_string();
                if let Some((name, _)) = &collapse {
                    slots.filled(0.2, 1);
                    text.push_str(&format!(
                        " That failure mode is what collapsed the {name} grid."
                    ));
                }
                let verdict = "extra-high-voltage transformers saturate and overheat".to_string();
                finish(slots, text, Some(verdict))
            } else {
                slots.missing(need());
                finish(
                    slots,
                    prior::scenario_hedge(
                        "power-failure",
                        "grid failure modes under geomagnetic storms",
                    ),
                    None,
                )
            }
        }
    }
}

fn routing_incident(idx: &ExtractionIndex<'_>, kind: RoutingQuestion, service: &str) -> Answer {
    let ex = idx.ex();
    let mut slots = Slots::new();
    let during = ex.facts.iter().find_map(|f| match f {
        Fact::EdgeAvailability {
            during: true,
            percent,
        } => Some(*percent),
        _ => None,
    });
    let restored = ex.facts.iter().find_map(|f| match f {
        Fact::EdgeAvailability {
            during: false,
            percent,
        } => Some(*percent),
        _ => None,
    });
    let content = ex
        .facts
        .iter()
        .any(|f| matches!(f, Fact::ContentPrefixesAnnounced));
    let need = || MissingKnowledge::RoutingIncidentInfo {
        service: service.to_string(),
    };

    match kind {
        RoutingQuestion::Cause => {
            let has = slots.principle(ex, Principle::BgpDnsWithdrawal, 0.7);
            if has {
                let mut verdict =
                    "a configuration error withdrew the BGP routes for the DNS prefixes"
                        .to_string();
                let mut text = "A configuration error withdrew the BGP routes for the service's \
                                DNS prefixes."
                    .to_string();
                if content {
                    slots.filled(0.2, 1);
                    verdict.push_str(", so the nameservers became unreachable");
                    text.push_str(
                        " The content prefixes stayed announced, but with the nameservers \
                         unreachable no client could resolve the service.",
                    );
                } else {
                    slots.missing(need());
                }
                if let Some(p) = during {
                    slots.filled(0.1, 1);
                    text.push_str(&format!(
                        " Only {p:.0} percent of edge networks could reach it during the \
                         incident."
                    ));
                }
                finish(slots, text, Some(verdict))
            } else {
                slots.missing(need());
                let topic = format!("what took {service} offline");
                finish(slots, prior::scenario_hedge("routing", &topic), None)
            }
        }
        RoutingQuestion::AvailabilityDuring => match during {
            Some(p) => {
                slots.filled(0.7, 1);
                slots.step("recalled edge-network reachability during the withdrawal".to_string());
                let mut text = format!(
                    "About {p:.0} percent of edge networks could reach the service during the \
                     route withdrawal."
                );
                match restored {
                    Some(r) => {
                        slots.filled(0.2, 1);
                        text.push_str(&format!(
                            " Availability returned to {r:.0} percent after re-announcement."
                        ));
                    }
                    None => slots.missing(need()),
                }
                if content {
                    slots.filled(0.1, 1);
                }
                let verdict = format!("about {p:.0} percent of edge networks");
                finish(slots, text, Some(verdict))
            }
            None => {
                slots.missing(need());
                finish(
                    slots,
                    prior::scenario_hedge("routing", "edge availability during the withdrawal"),
                    None,
                )
            }
        },
        RoutingQuestion::ContentPrefixes => {
            if content {
                slots.filled(0.7, 1);
                slots.step("recalled that only the DNS prefixes were withdrawn".to_string());
                let mut text = "No — the content prefixes stayed announced; only the nameservers \
                                became unreachable, so no client could resolve the service."
                    .to_string();
                slots.principle(ex, Principle::BgpDnsWithdrawal, 0.2);
                if during.is_some() {
                    slots.filled(0.1, 1);
                }
                if let Some(p) = during {
                    text.push_str(&format!(
                        " Reachability by name fell to {p:.0} percent regardless."
                    ));
                }
                let verdict = "no — the content prefixes stayed announced; only the nameservers \
                               became unreachable"
                    .to_string();
                finish(slots, text, Some(verdict))
            } else {
                slots.missing(need());
                finish(
                    slots,
                    prior::scenario_hedge("routing", "the withdrawal's prefix scope"),
                    None,
                )
            }
        }
        RoutingQuestion::Recovery => match restored {
            Some(r) => {
                slots.filled(0.7, 1);
                slots.step("recalled availability after re-announcement".to_string());
                let mut text = format!(
                    "Yes — availability was restored to {r:.0} percent once the prefixes were \
                     re-announced."
                );
                match during {
                    Some(p) => {
                        slots.filled(0.2, 1);
                        text.push_str(&format!(
                            " During the withdrawal only {p:.0} percent of edge networks could \
                             reach the service."
                        ));
                    }
                    None => slots.missing(need()),
                }
                slots.principle(ex, Principle::BgpDnsWithdrawal, 0.1);
                let verdict = format!(
                    "yes — availability was restored to {r:.0} percent once the prefixes were \
                     re-announced"
                );
                finish(slots, text, Some(verdict))
            }
            None => {
                slots.missing(need());
                finish(
                    slots,
                    prior::scenario_hedge("routing", "availability after re-announcement"),
                    None,
                )
            }
        },
    }
}

fn cap(s: &str) -> String {
    let mut c = s.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intent::classify;

    const CABLE_Q: &str = "Which is more vulnerable to solar activity? The fiber optic cable \
                           that connects Brazil to Europe or the one that connects the US to \
                           Europe?";

    fn full_cable_context() -> Extraction {
        Extraction::from_text(
            "Geomagnetically induced currents grow stronger at higher geomagnetic latitudes. \
             The EllaLink submarine cable connects Fortaleza, Brazil to Sines, Portugal, \
             linking South America and Europe. Along its route it reaches a maximum \
             geomagnetic latitude of 46.0 degrees. \
             The Grace Hopper submarine cable connects New York, United States to Bude, United \
             Kingdom, linking North America and Europe. Along its route it reaches a maximum \
             geomagnetic latitude of 63.0 degrees.",
            None,
        )
    }

    #[test]
    fn ungrounded_cable_answer_hedges_at_low_confidence() {
        let intent = classify(CABLE_Q);
        let ans = answer(CABLE_Q, &intent, &Extraction::default());
        assert!(ans.verdict.is_none());
        assert_eq!(ans.confidence, 2);
        assert!(!ans.missing.is_empty());
    }

    #[test]
    fn principle_only_matches_paper_pre_learning_confidence() {
        let intent = classify(CABLE_Q);
        let ex = Extraction::from_text(
            "Geomagnetically induced currents grow stronger at higher geomagnetic latitudes.",
            None,
        );
        let ans = answer(CABLE_Q, &intent, &ex);
        assert_eq!(ans.confidence, 3, "paper reports confidence 3 pre-learning");
        assert!(ans.verdict.is_none());
        assert!(ans
            .missing
            .iter()
            .any(|m| matches!(m, MissingKnowledge::CableRoute(_))));
    }

    #[test]
    fn grounded_cable_answer_commits_with_high_confidence() {
        let intent = classify(CABLE_Q);
        let ans = answer(CABLE_Q, &intent, &full_cable_context());
        assert_eq!(ans.confidence, 9, "paper reports 8-9 post-learning");
        let verdict = ans.verdict.expect("should commit");
        assert!(verdict.contains("United States"), "verdict: {verdict}");
        assert!(ans.text.contains("higher geomagnetic latitude"));
        assert!(ans.text.contains("63"));
    }

    #[test]
    fn missing_apex_requests_it_by_cable_name() {
        let intent = classify(CABLE_Q);
        let ex = Extraction::from_text(
            "Geomagnetically induced currents grow stronger at higher geomagnetic latitudes. \
             The EllaLink submarine cable connects Fortaleza, Brazil to Sines, Portugal, \
             linking South America and Europe.",
            None,
        );
        let ans = answer(CABLE_Q, &intent, &ex);
        assert!(ans.verdict.is_none());
        assert!(ans
            .missing
            .iter()
            .any(|m| matches!(m, MissingKnowledge::CableApex { cable } if cable == "EllaLink")));
        assert!(
            (3..=6).contains(&ans.confidence),
            "partial knowledge: {}",
            ans.confidence
        );
    }

    const DC_Q: &str = "Whose datacenter is more vulnerable to a solar superstorm, Google's or \
                        Facebook's?";

    #[test]
    fn operator_comparison_with_footprints_matches_paper_shape() {
        let intent = classify(DC_Q);
        let ex = Extraction::from_text(
            "A geographically dispersed data center footprint improves resilience against \
             regional disasters. Google operates data centers in 7 of the world's 7 major \
             regions. About 26 percent of Google's data center sites sit at low geomagnetic \
             latitudes. Facebook operates data centers in 3 of the world's 7 major regions. \
             About 5 percent of Facebook's data center sites sit at low geomagnetic latitudes.",
            None,
        );
        let ans = answer(DC_Q, &intent, &ex);
        let verdict = ans.verdict.expect("commits");
        assert!(verdict.contains("Facebook"), "verdict: {verdict}");
        assert!(ans.text.contains("spread") || ans.text.contains("dispersed"));
        // Overview-only grounding: the paper reports ~6 here.
        assert!((5..=7).contains(&ans.confidence), "got {}", ans.confidence);
    }

    #[test]
    fn operator_comparison_ungrounded_hedges() {
        let intent = classify(DC_Q);
        let ans = answer(DC_Q, &intent, &Extraction::default());
        assert!(ans.verdict.is_none());
        assert!(ans.confidence <= 3);
    }

    #[test]
    fn latitude_question_grounded() {
        let q = "Does the risk a solar superstorm poses to Internet infrastructure depend on \
                 latitude, and if so, how?";
        let ex = Extraction::from_text(
            "Geomagnetically induced currents grow stronger at higher geomagnetic latitudes. \
             An extreme geomagnetic storm can induce damaging currents in long power lines, \
             threatening grid transformers.",
            None,
        );
        let ans = answer(q, &classify(q), &ex);
        assert!(ans.verdict.is_some());
        assert!(ans.confidence >= 7);
        assert!(ans.text.to_lowercase().contains("auroral"));
    }

    #[test]
    fn weak_component_answer_names_repeaters() {
        let q = "Which component of a submarine cable system is most at risk during a \
                 geomagnetic storm?";
        let ex = Extraction::from_text(
            "The powered repeaters are the most vulnerable component of a submarine cable, \
             while the optical fiber itself is unaffected by induced currents.",
            None,
        );
        let ans = answer(q, &classify(q), &ex);
        assert_eq!(ans.verdict.as_deref(), Some("the powered repeaters"));
        assert!(ans.text.contains("fiber"));
    }

    #[test]
    fn region_comparison_uses_grid_latitudes() {
        let q = "Is the United States or Asia more susceptible to Internet disruption from a \
                 solar superstorm?";
        let ex = Extraction::from_text(
            "Geomagnetically induced currents grow stronger at higher geomagnetic latitudes. \
             The US Eastern Interconnection serves North America and sits at about 50 degrees \
             geomagnetic latitude. The Singapore Grid serves Asia and sits at about 8 degrees \
             geomagnetic latitude.",
            None,
        );
        let ans = answer(q, &classify(q), &ex);
        let verdict = ans.verdict.expect("commits");
        assert!(verdict.contains("united states"), "verdict {verdict}");
        assert!(ans.text.contains("Singapore"));
        assert!(ans.confidence >= 8);
    }

    #[test]
    fn shutdown_plan_lists_found_components() {
        let q = "Plan a shutdown strategy for operators facing an incoming CME.";
        let ex = Extraction::from_text(
            "Upon warning of a coronal mass ejection, operators should preemptively shut down \
             the most vulnerable systems, especially those at higher latitudes. Traffic and \
             operations should be redirected to redundant systems located in safer, \
             lower-latitude zones.",
            None,
        );
        let ans = answer(q, &classify(q), &ex);
        assert!(ans.text.contains("Predictive Shutdown"));
        assert!(ans.text.contains("Redundancy Utilization"));
        assert!(!ans.text.contains("Gradual Reboot"));
        assert_eq!(ans.principles_used.len(), 2);
    }

    #[test]
    fn shutdown_plan_with_all_guidance_is_complete() {
        let q = "Plan a shutdown strategy for operators facing an incoming CME.";
        let ex = Extraction::from_text(
            "Upon warning of a coronal mass ejection, operators should preemptively shut down \
             the most vulnerable systems. Traffic should be redirected to redundant systems in \
             safer zones. A phased shutdown sequence, ordered by vulnerability, reduces \
             damage. Critical data should be backed up and preserved before the storm's \
             impact. After the storm passes, systems should be rebooted gradually.",
            None,
        );
        let ans = answer(q, &classify(q), &ex);
        for title in [
            "Predictive Shutdown",
            "Redundancy Utilization",
            "Phased Shutdown",
            "Data Preservation",
            "Gradual Reboot",
        ] {
            assert!(ans.text.contains(title), "missing {title}");
        }
        assert_eq!(ans.confidence, 9);
    }

    #[test]
    fn incident_cause_grounded_and_ungrounded() {
        let q = "What caused the 2021 Facebook outage?";
        let intent = classify(q);
        let hedge = answer(q, &intent, &Extraction::default());
        assert!(hedge.verdict.is_none());
        assert!(hedge
            .missing
            .iter()
            .any(|m| matches!(m, MissingKnowledge::IncidentInfo(_))));

        let ex = Extraction::from_text(
            "The 2021 Facebook outage was caused by a faulty BGP configuration change that \
             withdrew the routes to its own DNS servers. The main effect on the Internet was \
             that every service became unreachable at once.",
            None,
        );
        let ans = answer(q, &intent, &ex);
        assert!(ans.verdict.unwrap().contains("BGP"));
        assert!(ans.confidence >= 8);
    }

    #[test]
    fn incident_impact_prefers_concrete_numbers() {
        let q = "What was the impact of the 2006 Hengchun earthquake on the Internet?";
        let intent = classify(q);
        let ex = Extraction::from_text(
            "The 2006 Hengchun earthquake was caused by a magnitude 7.0 earthquake off the \
             coast of Taiwan. Service was disrupted for about 1176 hours. The 2006 Hengchun \
             earthquake severed 8 submarine cables.",
            None,
        );
        let ans = answer(q, &intent, &ex);
        let text = ans.text;
        assert!(text.contains("severed 8 submarine cables"), "text: {text}");
        assert!(
            text.contains("7 weeks"),
            "duration should be converted: {text}"
        );
        assert!(ans.confidence >= 7);
    }

    #[test]
    fn reasoning_chain_is_visible_and_ordered() {
        let intent = classify(CABLE_Q);
        let ans = answer(CABLE_Q, &intent, &full_cable_context());
        assert!(!ans.reasoning.is_empty());
        let chain = ans.reasoning.join(" | ");
        assert!(chain.contains("LatitudeRisk"), "principle step: {chain}");
        assert!(chain.contains("candidate cable"), "candidate step: {chain}");
        assert!(chain.contains("geomagnetic latitude"), "apex step: {chain}");
        // Hedged answers explain what was missing.
        let hedge = answer(CABLE_Q, &intent, &Extraction::default());
        assert!(hedge
            .reasoning
            .iter()
            .any(|s| s.contains("no known cable matches")));
    }

    #[test]
    fn shutdown_plan_ranks_assets_when_latitudes_are_known() {
        let q = "Plan a shutdown strategy for operators facing an incoming CME.";
        let ex = Extraction::from_text(
            "Upon warning of a coronal mass ejection, operators should preemptively shut \
             down the most vulnerable systems. \
             The FARICE-1 cable reaches a maximum geomagnetic latitude of 70.1 degrees. \
             The EllaLink cable reaches a maximum geomagnetic latitude of 46.0 degrees. \
             The Grace Hopper cable reaches a maximum geomagnetic latitude of 63.0 degrees.",
            None,
        );
        let ans = answer(q, &classify(q), &ex);
        let text = &ans.text;
        assert!(text.contains("Shutdown priority"), "{text}");
        let farice = text.find("FARICE-1").expect("FARICE listed");
        let grace = text.find("Grace Hopper").expect("Grace listed");
        let ella = text.find("EllaLink").expect("EllaLink listed");
        assert!(
            farice < grace && grace < ella,
            "must be ordered by latitude: {text}"
        );
    }

    fn cable_scenario_context() -> Extraction {
        Extraction::from_text(
            "The Anjana cable was severed by a subsea landslide on the continental slope. \
             Traffic rerouted onto 14 parallel transatlantic cable systems within minutes. \
             The Anjana system spans about 7675 km. \
             The break took about 109 optical repeaters out of service. \
             A cable repair ship grapples the damaged section and splices in a new span.",
            None,
        )
    }

    #[test]
    fn cable_incident_grounded_commits_ungrounded_requests_info() {
        let q = "What caused the Anjana submarine cable outage?";
        let intent = classify(q);
        let ans = answer(q, &intent, &cable_scenario_context());
        let verdict = ans.verdict.expect("commits");
        assert!(verdict.contains("landslide"), "verdict: {verdict}");
        assert!(ans.confidence >= 7, "got {}", ans.confidence);

        let hedge = answer(q, &intent, &Extraction::default());
        assert!(hedge.verdict.is_none());
        assert_eq!(hedge.confidence, 2);
        assert!(hedge.missing.iter().any(
            |m| matches!(m, MissingKnowledge::CableIncidentInfo { cable } if cable == "anjana")
        ));
    }

    #[test]
    fn cable_incident_answers_every_question_kind_from_one_context() {
        let ex = cable_scenario_context();
        for (q, expect) in [
            (
                "Did North America and Europe stay connected after the Anjana was cut?",
                "14 parallel",
            ),
            (
                "How many optical repeaters went dark when the Anjana failed?",
                "about 109 repeaters",
            ),
            (
                "How is a severed submarine cable repaired?",
                "repair ship grapples",
            ),
            ("How long is the Anjana cable?", "about 7675 km"),
        ] {
            let ans = answer(q, &classify(q), &ex);
            let verdict = ans.verdict.unwrap_or_else(|| panic!("hedged on {q}"));
            assert!(verdict.contains(expect), "{q} -> {verdict}");
            assert!(ans.confidence >= 7, "{q} -> {}", ans.confidence);
        }
    }

    #[test]
    fn grid_incident_grounded_commits_ungrounded_requests_info() {
        let ex = Extraction::from_text(
            "The Hydro-Québec power grid collapsed when geomagnetically induced currents \
             saturated its extra-high-voltage transformers. \
             Extra-high-voltage transformers saturate and overheat under sustained GIC. \
             Hydro-Québec has the highest GIC exposure of any major grid. \
             Grids at low geomagnetic latitude, such as Singapore Grid, show negligible \
             exposure.",
            None,
        );
        let q = "Which power grid is most exposed to geomagnetic storms?";
        let ans = answer(q, &classify(q), &ex);
        assert_eq!(ans.verdict.as_deref(), Some("Hydro-Québec"));
        assert!(ans.confidence >= 8, "got {}", ans.confidence);

        let q2 = "What caused the Hydro-Québec power grid collapse?";
        let ans2 = answer(q2, &classify(q2), &ex);
        let verdict = ans2.verdict.expect("commits");
        assert!(verdict.contains("geomagnetically induced currents"));
        assert!(ans2.confidence >= 7);

        let q3 = "Are equatorial power grids like Singapore Grid at similar geomagnetic risk?";
        let ans3 = answer(q3, &classify(q3), &ex);
        assert!(ans3.verdict.expect("commits").starts_with("no — "));

        let hedge = answer(q2, &classify(q2), &Extraction::default());
        assert!(hedge.verdict.is_none());
        assert!(hedge
            .missing
            .iter()
            .any(|m| matches!(m, MissingKnowledge::GridIncidentInfo { .. })));
    }

    #[test]
    fn routing_incident_grounded_commits_ungrounded_requests_info() {
        let ex = Extraction::from_text(
            "A configuration error withdrew the BGP routes for Facebook's DNS prefixes. \
             Only 0 percent of edge networks could reach facebook.com during the incident. \
             The content prefixes stayed announced, but with the nameservers unreachable no \
             client could resolve the service. \
             Availability was restored to 100 percent once the prefixes were re-announced.",
            None,
        );
        for (q, expect) in [
            (
                "What took facebook.com offline in the routing incident?",
                "configuration error withdrew the BGP routes",
            ),
            (
                "What fraction of edge networks could reach facebook.com during the route \
                 withdrawal?",
                "about 0 percent of edge networks",
            ),
            (
                "Were the content prefixes also withdrawn during the outage?",
                "no — the content prefixes stayed announced",
            ),
            (
                "Did availability recover once the routes were re-announced?",
                "yes — availability was restored to 100 percent",
            ),
        ] {
            let ans = answer(q, &classify(q), &ex);
            let verdict = ans.verdict.unwrap_or_else(|| panic!("hedged on {q}"));
            assert!(verdict.contains(expect), "{q} -> {verdict}");
            assert!(ans.confidence >= 7, "{q} -> {}", ans.confidence);
        }
        let q = "What took facebook.com offline in the routing incident?";
        let hedge = answer(q, &classify(q), &Extraction::default());
        assert!(hedge.verdict.is_none());
        assert!(hedge.missing.iter().any(
            |m| matches!(m, MissingKnowledge::RoutingIncidentInfo { service } if service == "facebook.com")
        ));
    }

    #[test]
    fn confidence_mapping_endpoints() {
        assert_eq!(Answer::confidence_from(0.0), 2);
        assert_eq!(Answer::confidence_from(1.0), 9);
        assert_eq!(Answer::confidence_from(2.0), 9); // clamped
    }
}
