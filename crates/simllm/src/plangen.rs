//! Goal planning and chain-of-thought decomposition.
//!
//! Given a role goal ("Understand solar superstorms and Coronal Mass
//! Ejection…"), the model produces an Auto-GPT-style action plan:
//! search steps with concrete queries, an analysis step, and a
//! memorisation step — mirroring the PLAN block the paper shows. The
//! chain-of-thought decomposition splits a compound goal into aspect
//! phrases, each of which becomes a search query.

use serde::{Deserialize, Serialize};

/// What a plan step does when executed by the agent loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StepAction {
    /// Issue a web search for `query`.
    Search { query: String },
    /// Fetch and read the top results of the previous search.
    BrowseResults,
    /// Save what was learned into knowledge memory.
    Memorize,
}

/// One step of an action plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanStep {
    pub description: String,
    pub action: StepAction,
}

/// A full plan for one goal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActionPlan {
    pub goal: String,
    /// The Auto-GPT "THOUGHTS" line accompanying the plan.
    pub thoughts: String,
    pub steps: Vec<PlanStep>,
}

impl ActionPlan {
    /// Number of search steps in the plan.
    pub fn search_count(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s.action, StepAction::Search { .. }))
            .count()
    }
}

/// Words that carry no search signal when building queries from goals.
const GOAL_STOPWORDS: &[&str] = &[
    "a",
    "an",
    "and",
    "are",
    "as",
    "been",
    "but",
    "by",
    "current",
    "etc",
    "for",
    "from",
    "gain",
    "global",
    "have",
    "how",
    "in",
    "into",
    "is",
    "it",
    "its",
    "knowledge",
    "large",
    "learn",
    "my",
    "of",
    "on",
    "or",
    "past",
    "principles",
    "scale",
    "several",
    "such",
    "that",
    "the",
    "their",
    "them",
    "these",
    "this",
    "to",
    "understand",
    "understanding",
    "up",
    "via",
    "well",
    "what",
    "which",
    "with",
];

fn is_goal_stopword(w: &str) -> bool {
    GOAL_STOPWORDS.contains(&w)
}

/// Chain-of-thought decomposition: split a compound goal into aspect
/// phrases along clause boundaries.
pub fn decompose(goal: &str) -> Vec<String> {
    let mut aspects = Vec::new();
    for clause in goal.split([',', ';']) {
        // "such as X, Y" enumerations become their own aspects upstream
        // of the comma split; strip the connective here.
        let clause = clause.trim();
        let clause = clause.strip_prefix("and ").unwrap_or(clause);
        let clause = clause.strip_prefix("such as ").unwrap_or(clause);
        if clause.is_empty() {
            continue;
        }
        let keywords = keywords_of(clause);
        if keywords.split_whitespace().count() >= 1 {
            aspects.push(keywords);
        }
    }
    aspects.dedup();
    aspects
}

/// Extract the content words of a clause, preserving order.
fn keywords_of(clause: &str) -> String {
    clause
        .split_whitespace()
        .map(|w| w.trim_matches(|c: char| !c.is_alphanumeric() && c != '-'))
        .filter(|w| w.len() > 1 && !is_goal_stopword(&w.to_lowercase()))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Build the action plan for a goal.
pub fn plan_goal(goal: &str) -> ActionPlan {
    let aspects = decompose(goal);
    let mut steps = Vec::new();
    for aspect in &aspects {
        steps.push(PlanStep {
            description: format!("Use the 'google' command to search for information on {aspect}."),
            action: StepAction::Search {
                query: aspect.clone(),
            },
        });
    }
    steps.push(PlanStep {
        description: "Analyze the search results and gather relevant information.".into(),
        action: StepAction::BrowseResults,
    });
    steps.push(PlanStep {
        description: "Save important information to memory for future reference.".into(),
        action: StepAction::Memorize,
    });

    ActionPlan {
        goal: goal.to_string(),
        thoughts: format!(
            "I need to gather information on {}. I will start by using the 'google' command \
             to search for relevant information.",
            aspects
                .first()
                .cloned()
                .unwrap_or_else(|| "the topic".into())
        ),
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOAL_1: &str = "Understand solar superstorms and Coronal Mass Ejection, and \
                          principles of their formation and effects.";
    const GOAL_3: &str = "Learn the current global large-scale network infrastructure \
                          equipment such as optic fiber cables, power supply systems, etc.";

    #[test]
    fn decompose_splits_compound_goals() {
        let aspects = decompose(GOAL_1);
        assert!(aspects.len() >= 2, "got {aspects:?}");
        assert!(aspects[0].contains("solar superstorms"));
        assert!(aspects[0].contains("Coronal Mass Ejection"));
    }

    #[test]
    fn decompose_handles_such_as_enumerations() {
        let aspects = decompose(GOAL_3);
        assert!(
            aspects.iter().any(|a| a.contains("optic fiber cables")),
            "got {aspects:?}"
        );
        assert!(aspects.iter().any(|a| a.contains("power supply systems")));
    }

    #[test]
    fn keywords_drop_scaffolding_words() {
        let kw = keywords_of("Understand the principles of their formation and effects");
        assert!(!kw.to_lowercase().contains("understand"));
        assert!(!kw.contains("the"));
        assert!(kw.contains("formation"));
    }

    #[test]
    fn plan_has_searches_then_analysis_then_memorize() {
        let plan = plan_goal(GOAL_1);
        assert!(plan.search_count() >= 2);
        let n = plan.steps.len();
        assert_eq!(plan.steps[n - 2].action, StepAction::BrowseResults);
        assert_eq!(plan.steps[n - 1].action, StepAction::Memorize);
        assert!(plan.thoughts.contains("google"));
    }

    #[test]
    fn plan_for_vacuous_goal_still_closes() {
        let plan = plan_goal("and the of");
        assert_eq!(plan.search_count(), 0);
        assert_eq!(plan.steps.len(), 2);
    }

    #[test]
    fn decompose_is_idempotent_on_simple_phrases() {
        let aspects = decompose("submarine cable routes");
        assert_eq!(aspects, vec!["submarine cable routes".to_string()]);
    }
}
