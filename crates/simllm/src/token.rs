//! Token counting and context-window accounting.
//!
//! The simulated model charges tokens like a real one: prompts and
//! completions are measured, and context assembly truncates oldest
//! knowledge first when the window would overflow. Token costs feed
//! experiment E6 (training cost).

/// Approximate tokens in a text: whitespace-separated words count one
/// token each, plus one per 4 characters of long words (mimicking BPE
/// splitting of rare/long strings).
pub fn count_tokens(text: &str) -> usize {
    text.split_whitespace().map(|w| 1 + w.len() / 8).sum()
}

/// A context-window budget tracker.
#[derive(Debug, Clone, Copy)]
pub struct ContextWindow {
    /// Maximum tokens the model accepts per prompt.
    pub max_tokens: usize,
}

impl ContextWindow {
    pub fn new(max_tokens: usize) -> Self {
        assert!(max_tokens >= 64, "context window too small to be useful");
        ContextWindow { max_tokens }
    }

    /// GPT-4-class default (8k).
    pub fn gpt4() -> Self {
        ContextWindow::new(8_192)
    }

    /// Select a suffix of `chunks` (newest last) that fits alongside
    /// `reserved` tokens of fixed prompt content. Returns the number of
    /// chunks dropped from the front.
    pub fn fit<'a>(&self, chunks: &'a [String], reserved: usize) -> (&'a [String], usize) {
        let budget = self.max_tokens.saturating_sub(reserved);
        let mut used = 0;
        let mut start = chunks.len();
        // Walk backwards so the newest knowledge always survives.
        for (i, chunk) in chunks.iter().enumerate().rev() {
            let cost = count_tokens(chunk);
            if used + cost > budget {
                break;
            }
            used += cost;
            start = i;
        }
        (&chunks[start..], start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_is_roughly_word_count() {
        assert_eq!(count_tokens("three small words"), 3);
        assert_eq!(count_tokens(""), 0);
        // long tokens cost extra
        assert!(count_tokens("antidisestablishmentarianism") > 1);
    }

    #[test]
    fn fit_keeps_newest_chunks() {
        let window = ContextWindow::new(64);
        let chunks: Vec<String> = (0..10)
            .map(|i| format!("chunk {i} with a handful of words inside"))
            .collect();
        let (kept, dropped) = window.fit(&chunks, 0);
        assert!(dropped > 0, "should not all fit");
        assert_eq!(kept.len() + dropped, 10);
        // Newest chunk must be present.
        assert!(kept.last().unwrap().contains("chunk 9"));
    }

    #[test]
    fn fit_with_reservation_shrinks_budget() {
        let window = ContextWindow::new(100);
        let chunks: Vec<String> = (0..10)
            .map(|i| format!("word word word word {i}"))
            .collect();
        let (no_reserve, _) = window.fit(&chunks, 0);
        let (reserved, _) = window.fit(&chunks, 80);
        assert!(reserved.len() < no_reserve.len());
    }

    #[test]
    fn everything_fits_in_a_large_window() {
        let window = ContextWindow::gpt4();
        let chunks: Vec<String> = (0..5).map(|i| format!("small {i}")).collect();
        let (kept, dropped) = window.fit(&chunks, 100);
        assert_eq!(kept.len(), 5);
        assert_eq!(dropped, 0);
    }

    #[test]
    #[should_panic(expected = "context window")]
    fn tiny_window_is_rejected() {
        ContextWindow::new(8);
    }
}
