//! Token counting and context-window accounting.
//!
//! The simulated model charges tokens like a real one: prompts and
//! completions are measured, and context assembly truncates oldest
//! knowledge first when the window would overflow. Token costs feed
//! experiment E6 (training cost).

/// Approximate tokens in a text: whitespace-separated words count one
/// token each, plus one per 8 characters of word length (mimicking BPE
/// splitting of rare/long strings).
///
/// The divisor is 8, not the folk "~4 characters per token": the base
/// cost of 1 already covers a typical short word, so the surcharge only
/// models the *extra* subword pieces long words split into. Checked-in
/// experiment results (E6 training cost) and context-fit behaviour are
/// pinned to this formula — see `count_pins_the_divisor` below.
pub fn count_tokens(text: &str) -> usize {
    text.split_whitespace().map(|w| 1 + w.len() / 8).sum()
}

/// A context-window budget tracker.
#[derive(Debug, Clone, Copy)]
pub struct ContextWindow {
    /// Maximum tokens the model accepts per prompt.
    pub max_tokens: usize,
}

impl ContextWindow {
    pub fn new(max_tokens: usize) -> Self {
        assert!(max_tokens >= 64, "context window too small to be useful");
        ContextWindow { max_tokens }
    }

    /// GPT-4-class default (8k).
    pub fn gpt4() -> Self {
        ContextWindow::new(8_192)
    }

    /// Select a suffix of `chunks` (newest last) that fits alongside
    /// `reserved` tokens of fixed prompt content. Returns the number of
    /// chunks dropped from the front.
    ///
    /// Boundary behaviour (pinned by tests):
    /// * a chunk that lands exactly on the remaining budget is kept;
    /// * `reserved >= max_tokens` leaves a zero budget, so every chunk
    ///   is dropped;
    /// * if even the *newest* chunk exceeds the budget, everything is
    ///   dropped — chunks are atomic (never split mid-text), and
    ///   skipping the newest to admit older ones would violate the
    ///   newest-first retention contract, so the model simply answers
    ///   ungrounded.
    pub fn fit<'a>(&self, chunks: &'a [String], reserved: usize) -> (&'a [String], usize) {
        let budget = self.max_tokens.saturating_sub(reserved);
        let mut used = 0;
        let mut start = chunks.len();
        // Walk backwards so the newest knowledge always survives.
        for (i, chunk) in chunks.iter().enumerate().rev() {
            let cost = count_tokens(chunk);
            if used + cost > budget {
                break;
            }
            used += cost;
            start = i;
        }
        (&chunks[start..], start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_is_roughly_word_count() {
        assert_eq!(count_tokens("three small words"), 3);
        assert_eq!(count_tokens(""), 0);
        // long tokens cost extra
        assert!(count_tokens("antidisestablishmentarianism") > 1);
    }

    #[test]
    fn fit_keeps_newest_chunks() {
        let window = ContextWindow::new(64);
        let chunks: Vec<String> = (0..10)
            .map(|i| format!("chunk {i} with a handful of words inside"))
            .collect();
        let (kept, dropped) = window.fit(&chunks, 0);
        assert!(dropped > 0, "should not all fit");
        assert_eq!(kept.len() + dropped, 10);
        // Newest chunk must be present.
        assert!(kept.last().unwrap().contains("chunk 9"));
    }

    #[test]
    fn fit_with_reservation_shrinks_budget() {
        let window = ContextWindow::new(100);
        let chunks: Vec<String> = (0..10)
            .map(|i| format!("word word word word {i}"))
            .collect();
        let (no_reserve, _) = window.fit(&chunks, 0);
        let (reserved, _) = window.fit(&chunks, 80);
        assert!(reserved.len() < no_reserve.len());
    }

    #[test]
    fn everything_fits_in_a_large_window() {
        let window = ContextWindow::gpt4();
        let chunks: Vec<String> = (0..5).map(|i| format!("small {i}")).collect();
        let (kept, dropped) = window.fit(&chunks, 100);
        assert_eq!(kept.len(), 5);
        assert_eq!(dropped, 0);
    }

    #[test]
    #[should_panic(expected = "context window")]
    fn tiny_window_is_rejected() {
        ContextWindow::new(8);
    }

    #[test]
    fn count_pins_the_divisor() {
        // One base token per word plus len/8 surcharge. These pins
        // guard the checked-in E6 numbers against "fixing" the divisor
        // to the folk 4-chars-per-token rule.
        assert_eq!(count_tokens("sevench"), 1); // 7 chars: no surcharge
        assert_eq!(count_tokens("eightchr"), 2); // 8 chars: +1
        assert_eq!(count_tokens("antidisestablishmentarianism"), 4); // 28 chars: +3
        assert_eq!(count_tokens("a bb ccc dddd"), 4);
        assert_eq!(count_tokens("  spaced   out  "), 2);
    }

    #[test]
    fn fit_keeps_an_exact_budget_chunk() {
        let window = ContextWindow::new(64);
        // 32 words of 1 token each = exactly the remaining budget.
        let chunk = vec!["w"; 32].join(" ");
        assert_eq!(count_tokens(&chunk), 32);
        let chunks = vec![chunk];
        let (kept, dropped) = window.fit(&chunks, 32);
        assert_eq!(kept.len(), 1, "exact fit must be kept, not dropped");
        assert_eq!(dropped, 0);
        // One token over the line and it no longer fits.
        let (kept, dropped) = window.fit(&chunks, 33);
        assert!(kept.is_empty());
        assert_eq!(dropped, 1);
    }

    #[test]
    fn fit_with_reservation_at_or_over_capacity_drops_everything() {
        let window = ContextWindow::new(64);
        let chunks: Vec<String> = vec!["tiny".into()];
        for reserved in [64, 65, 1000] {
            let (kept, dropped) = window.fit(&chunks, reserved);
            assert!(kept.is_empty(), "reserved={reserved} leaves no budget");
            assert_eq!(dropped, 1);
        }
    }

    #[test]
    fn fit_drops_everything_when_newest_chunk_is_oversized() {
        let window = ContextWindow::new(64);
        let oversized = vec!["w"; 200].join(" ");
        let chunks = vec!["old but small".to_string(), oversized];
        let (kept, dropped) = window.fit(&chunks, 0);
        // Chunks are atomic and retention is strictly newest-first: an
        // oversized newest chunk blocks the walk immediately, so even
        // the older chunk that would fit is not admitted.
        assert!(kept.is_empty());
        assert_eq!(dropped, 2);
    }
}
