//! Chat message and prompt types, mirroring the ChatML-style interface
//! of the real model.

use crate::token::count_tokens;
use serde::{Deserialize, Serialize};

/// Speaker role of a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Role {
    System,
    User,
    Assistant,
}

/// One chat message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Message {
    pub role: Role,
    pub content: String,
}

impl Message {
    pub fn system(content: impl Into<String>) -> Self {
        Message {
            role: Role::System,
            content: content.into(),
        }
    }
    pub fn user(content: impl Into<String>) -> Self {
        Message {
            role: Role::User,
            content: content.into(),
        }
    }
    pub fn assistant(content: impl Into<String>) -> Self {
        Message {
            role: Role::Assistant,
            content: content.into(),
        }
    }
}

/// A full prompt: ordered messages.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Prompt {
    pub messages: Vec<Message>,
}

impl Prompt {
    pub fn new() -> Self {
        Prompt::default()
    }

    pub fn with(mut self, msg: Message) -> Self {
        self.messages.push(msg);
        self
    }

    pub fn push(&mut self, msg: Message) {
        self.messages.push(msg);
    }

    /// Total prompt tokens.
    pub fn token_count(&self) -> usize {
        self.messages
            .iter()
            .map(|m| count_tokens(&m.content) + 4)
            .sum()
    }

    /// All user/system text concatenated — the model's working context.
    pub fn context_text(&self) -> String {
        self.messages
            .iter()
            .filter(|m| m.role != Role::Assistant)
            .map(|m| m.content.as_str())
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// The last user message, which carries the actual question.
    pub fn last_user(&self) -> Option<&str> {
        self.messages
            .iter()
            .rev()
            .find(|m| m.role == Role::User)
            .map(|m| m.content.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_set_roles() {
        assert_eq!(Message::system("x").role, Role::System);
        assert_eq!(Message::user("x").role, Role::User);
        assert_eq!(Message::assistant("x").role, Role::Assistant);
    }

    #[test]
    fn prompt_accumulates_and_counts() {
        let p = Prompt::new()
            .with(Message::system("You are a helpful researcher."))
            .with(Message::user("What is a CME?"));
        assert_eq!(p.messages.len(), 2);
        assert!(p.token_count() > 8);
    }

    #[test]
    fn last_user_finds_the_question() {
        let p = Prompt::new()
            .with(Message::user("first"))
            .with(Message::assistant("reply"))
            .with(Message::user("second"));
        assert_eq!(p.last_user(), Some("second"));
    }

    #[test]
    fn context_text_excludes_assistant_turns() {
        let p = Prompt::new()
            .with(Message::system("sys"))
            .with(Message::assistant("hidden"))
            .with(Message::user("query"));
        let ctx = p.context_text();
        assert!(ctx.contains("sys") && ctx.contains("query"));
        assert!(!ctx.contains("hidden"));
    }

    #[test]
    fn empty_prompt_has_no_user() {
        assert_eq!(Prompt::new().last_user(), None);
    }
}
