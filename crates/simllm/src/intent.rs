//! Question understanding: classify an investigation question into an
//! intent with filled slots.
//!
//! The intents cover the question space of the evaluation (the eight
//! expert conclusions plus response planning). Unrecognised questions
//! fall back to [`Intent::Unknown`], which the model answers from its
//! hedging prior.

use serde::{Deserialize, Serialize};

/// A cable-route descriptor: two endpoint descriptors in lowercase
/// normalized form (e.g. `"brazil"`, `"united states"`, `"europe"`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteSpec {
    pub a: String,
    pub b: String,
}

impl RouteSpec {
    pub fn new(a: &str, b: &str) -> Self {
        RouteSpec {
            a: normalize_place(a),
            b: normalize_place(b),
        }
    }

    /// Human-readable form for answer text.
    pub fn display(&self) -> String {
        format!("{} to {}", title_case(&self.a), title_case(&self.b))
    }
}

/// Sub-question kinds for a physical cable-damage incident
/// (scenario class `physical-damage`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CableQuestion {
    /// What severed the cable?
    Cause,
    /// Did the corridor stay connected after the cut?
    CorridorRedundancy,
    /// How many repeaters went dark?
    RepeatersLost,
    /// How is a severed cable repaired?
    RepairMethod,
    /// How long is the cable?
    Length,
}

/// Sub-question kinds for a power-grid collapse
/// (scenario class `power-failure`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GridQuestion {
    /// What collapsed the grid?
    Cause,
    /// Which grid is most exposed to geomagnetic storms?
    MostExposed,
    /// Are low-latitude grids at similar risk?
    LowLatitudeRisk,
    /// Which component fails during a severe storm?
    FailingComponent,
}

/// Sub-question kinds for a control-plane routing incident
/// (scenario class `routing`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoutingQuestion {
    /// What took the service offline?
    Cause,
    /// What fraction of edge networks could still reach it?
    AvailabilityDuring,
    /// Were the content prefixes also withdrawn?
    ContentPrefixes,
    /// Did availability recover on re-announcement?
    Recovery,
}

/// Classified question intent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Intent {
    /// Which of two cable routes is more vulnerable?
    CompareCableVulnerability {
        route_a: RouteSpec,
        route_b: RouteSpec,
    },
    /// Which operator's data centers are more vulnerable?
    CompareOperatorVulnerability { op_a: String, op_b: String },
    /// Does risk depend on latitude?
    LatitudeDependence,
    /// Which cable component is the weak point?
    WeakComponent,
    /// Submarine vs terrestrial exposure?
    SubmarineVsTerrestrial,
    /// Which of two regions is more susceptible?
    CompareRegionSusceptibility { region_a: String, region_b: String },
    /// Does cable length matter?
    LengthEffect,
    /// Large-scale connectivity impact of a superstorm?
    PartitionImpact,
    /// Produce a response/shutdown plan.
    ShutdownPlan,
    /// What caused a named historical incident?
    IncidentCause { incident: String },
    /// What was a named historical incident's impact?
    IncidentImpact { incident: String },
    /// A question about a physical cable-damage incident. `cable` is
    /// the lowercase cable name when the question names one, else
    /// empty.
    CableIncident { kind: CableQuestion, cable: String },
    /// A question about a power-grid collapse or GIC exposure
    /// ranking. `grid` is the lowercase grid name when the question
    /// names one, else empty.
    GridIncident { kind: GridQuestion, grid: String },
    /// A question about a control-plane routing incident. `service`
    /// is the lowercase service name when the question names one,
    /// else empty.
    RoutingIncident {
        kind: RoutingQuestion,
        service: String,
    },
    /// Anything else.
    Unknown,
}

/// Normalize a place descriptor to a canonical lowercase name.
pub fn normalize_place(raw: &str) -> String {
    let p = raw
        .trim()
        .trim_end_matches(['?', '.', ','])
        .trim()
        .to_lowercase();
    let p = p.strip_prefix("the ").unwrap_or(&p);
    match p {
        "us" | "u.s" | "usa" | "united states of america" | "america" => "united states".into(),
        "uk" | "u.k" | "britain" | "great britain" => "united kingdom".into(),
        other => other.to_string(),
    }
}

/// Map a normalized place descriptor to its coarse region name, when
/// the descriptor is itself country-like.
pub fn place_region(place: &str) -> Option<&'static str> {
    match place {
        "united states" | "canada" | "mexico" | "greenland" => Some("North America"),
        "brazil" | "argentina" | "chile" | "uruguay" => Some("South America"),
        "united kingdom" | "portugal" | "spain" | "france" | "ireland" | "denmark" | "norway"
        | "iceland" | "sweden" | "finland" | "netherlands" | "belgium" | "germany" | "italy"
        | "russia" => Some("Europe"),
        "japan" | "china" | "singapore" | "india" | "south korea" | "taiwan" | "indonesia" => {
            Some("Asia")
        }
        "australia" | "new zealand" => Some("Oceania"),
        "south africa" | "kenya" | "angola" | "cameroon" | "nigeria" | "egypt" | "sudan"
        | "mozambique" => Some("Africa"),
        // Power-grid service areas: scenario event docs name grids
        // directly, so the grid names round-trip like countries do.
        "hydro-québec"
        | "hydro-quebec"
        | "québec"
        | "quebec"
        | "us eastern interconnection"
        | "us western interconnection"
        | "ercot (texas)"
        | "ercot" => Some("North America"),
        "nordic grid"
        | "uk national grid"
        | "continental europe (entso-e)"
        | "continental europe"
        | "iberian grid" => Some("Europe"),
        "china state grid" | "japan (tepco/kansai)" | "india grid" | "singapore grid" => {
            Some("Asia")
        }
        "australia nem" => Some("Oceania"),
        "south africa (eskom)" => Some("Africa"),
        "brazil interconnected system" => Some("South America"),
        "north america" | "south america" | "europe" | "asia" | "africa" | "oceania"
        | "middle east" => Some(region_const(place)),
        _ => None,
    }
}

fn region_const(p: &str) -> &'static str {
    match p {
        "north america" => "North America",
        "south america" => "South America",
        "europe" => "Europe",
        "asia" => "Asia",
        "africa" => "Africa",
        "oceania" => "Oceania",
        "middle east" => "Middle East",
        _ => unreachable!("region_const called on non-region"),
    }
}

fn title_case(s: &str) -> String {
    s.split_whitespace()
        .map(|w| {
            let mut c = w.chars();
            match c.next() {
                Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
                None => String::new(),
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// Known hyperscale operators for the operator-comparison intent.
const OPERATORS: &[&str] = &["google", "facebook", "meta", "amazon", "microsoft", "apple"];

/// Region words recognised for the region-comparison intent.
const REGION_WORDS: &[&str] = &[
    "united states",
    "north america",
    "south america",
    "europe",
    "asia",
    "africa",
    "oceania",
    "brazil",
    "japan",
    "singapore",
    "china",
    "india",
];

/// Classify `question` into an [`Intent`].
///
/// Accepts both bare questions and the paper's §4.1 quiz-prompt
/// wrapper ("solely based on {agent}'s knowledge, what will {agent}
/// answer the following question: …? How confident … Rate his
/// confidence on a scale from 1 to 10."): the wrapper is stripped
/// before classification.
pub fn classify(question: &str) -> Intent {
    crate::lexicon::ops::classify_call();
    crate::lexicon::ops::tokenize_chars(question.len());
    let q = strip_quiz_wrapper(&question.to_lowercase());

    // Planning requests first: they often mention storms and impact too.
    if (q.contains("plan") || q.contains("strategy") || q.contains("playbook"))
        && (q.contains("shutdown") || q.contains("shut down") || q.contains("response"))
    {
        return Intent::ShutdownPlan;
    }

    // Named-incident questions, before the generic impact branch.
    if let Some(idx) = q.find("what caused ") {
        let tail = &q[idx + "what caused ".len()..];
        let tail = tail
            .strip_prefix("the internet disruption during ")
            .unwrap_or(tail);
        let tail = tail.strip_prefix("the ").unwrap_or(tail);
        let incident = tail.trim_end_matches(['?', '.']).trim();
        // Scenario-class causes carry their infrastructure kind in the
        // incident name; route them to class-specific intents so the
        // answer engine knows which fact shapes to look for.
        if let Some(cable) = incident.strip_suffix(" submarine cable outage") {
            if !cable.is_empty() {
                return Intent::CableIncident {
                    kind: CableQuestion::Cause,
                    cable: cable.to_string(),
                };
            }
        }
        if let Some(grid) = incident.strip_suffix(" power grid collapse") {
            if !grid.is_empty() {
                return Intent::GridIncident {
                    kind: GridQuestion::Cause,
                    grid: grid.to_string(),
                };
            }
        }
        if !incident.is_empty() && !incident.contains("storm") {
            return Intent::IncidentCause {
                incident: incident.to_string(),
            };
        }
    }
    if let Some(idx) = q.find("impact of the ") {
        let tail = &q[idx + "impact of the ".len()..];
        let end = tail
            .find(" on the")
            .unwrap_or_else(|| tail.trim_end_matches(['?', '.']).len());
        let incident = tail[..end].trim();
        if !incident.is_empty() && !incident.contains("storm") {
            return Intent::IncidentImpact {
                incident: incident.to_string(),
            };
        }
    }

    // Cable route comparison: two "connects X to Y" phrases.
    let routes = parse_route_phrases(&q);
    if routes.len() >= 2 && (q.contains("vulnerab") || q.contains("affect") || q.contains("risk")) {
        return Intent::CompareCableVulnerability {
            route_a: routes[0].clone(),
            route_b: routes[1].clone(),
        };
    }

    // Operator comparison.
    if (q.contains("datacenter") || q.contains("data center")) && q.contains("vulnerab") {
        let found: Vec<&str> = OPERATORS
            .iter()
            .copied()
            .filter(|op| q.contains(op))
            .collect();
        if found.len() >= 2 {
            return Intent::CompareOperatorVulnerability {
                op_a: found[0].to_string(),
                op_b: found[1].to_string(),
            };
        }
    }

    if q.contains("component") && q.contains("cable") {
        return Intent::WeakComponent;
    }

    if q.contains("submarine") && q.contains("terrestrial") {
        return Intent::SubmarineVsTerrestrial;
    }

    if q.contains("length") && q.contains("cable") {
        return Intent::LengthEffect;
    }

    if q.contains("latitude") && (q.contains("depend") || q.contains("risk")) {
        return Intent::LatitudeDependence;
    }

    if (q.contains("susceptib") || q.contains("vulnerab")) && !q.contains("cable") {
        let found: Vec<&str> = REGION_WORDS
            .iter()
            .copied()
            .filter(|r| q.contains(r))
            .collect();
        // "united states" also matches nothing else here; take first two
        // distinct regions mentioned.
        let mut regions: Vec<String> = Vec::new();
        for f in found {
            if let Some(r) = place_region(&normalize_place(f)) {
                if !regions.contains(&r.to_string()) {
                    regions.push(r.to_string());
                }
            }
        }
        if regions.len() >= 2 {
            return Intent::CompareRegionSusceptibility {
                region_a: regions[0].clone(),
                region_b: regions[1].clone(),
            };
        }
    }

    if (q.contains("connectivity") || q.contains("large-scale") || q.contains("internet"))
        && q.contains("impact")
    {
        return Intent::PartitionImpact;
    }

    // Scenario-class rules, checked last: every branch keys on phrases
    // absent from the solar-superstorm question space, so questions
    // that used to reach a specific intent above still do.
    if let Some(intent) = classify_scenario_class(&q) {
        return intent;
    }

    Intent::Unknown
}

/// Scenario-class question shapes (physical-damage, power-failure,
/// routing). These recognise the question templates that scenario
/// conclusions generate; anything they match previously fell through
/// to [`Intent::Unknown`].
fn classify_scenario_class(q: &str) -> Option<Intent> {
    // Physical damage: corridor redundancy, repeater loss, repair
    // doctrine, cable length.
    if q.contains("stay connected") {
        if let Some(cable) = between(q, "after the ", " was cut") {
            return Some(Intent::CableIncident {
                kind: CableQuestion::CorridorRedundancy,
                cable,
            });
        }
    }
    if q.contains("repeaters") && q.contains("went dark") {
        let cable = between(q, "when the ", " failed").unwrap_or_default();
        return Some(Intent::CableIncident {
            kind: CableQuestion::RepeatersLost,
            cable,
        });
    }
    if q.contains("severed") && q.contains("cable") && q.contains("repair") {
        return Some(Intent::CableIncident {
            kind: CableQuestion::RepairMethod,
            cable: String::new(),
        });
    }
    if let Some(idx) = q.find("how long is the ") {
        let tail = &q[idx + "how long is the ".len()..];
        if let Some(end) = tail.find(" cable") {
            let cable = tail[..end].trim();
            if !cable.is_empty() {
                return Some(Intent::CableIncident {
                    kind: CableQuestion::Length,
                    cable: cable.to_string(),
                });
            }
        }
    }

    // Power failure: exposure ranking, low-latitude immunity, failure
    // mode.
    if q.contains("power grid") && q.contains("most exposed") {
        return Some(Intent::GridIncident {
            kind: GridQuestion::MostExposed,
            grid: String::new(),
        });
    }
    if q.contains("equatorial") && q.contains("grid") {
        let grid = between(q, "like ", " at similar").unwrap_or_default();
        return Some(Intent::GridIncident {
            kind: GridQuestion::LowLatitudeRisk,
            grid,
        });
    }
    if q.contains("component") && q.contains("grid") {
        return Some(Intent::GridIncident {
            kind: GridQuestion::FailingComponent,
            grid: String::new(),
        });
    }

    // Routing: withdrawal cause, availability during/after, scope.
    if let Some(idx) = q.find("what took ") {
        let tail = &q[idx + "what took ".len()..];
        if let Some(end) = tail.find(" offline") {
            let service = tail[..end].trim();
            if !service.is_empty() {
                return Some(Intent::RoutingIncident {
                    kind: RoutingQuestion::Cause,
                    service: service.to_string(),
                });
            }
        }
    }
    if q.contains("fraction") && q.contains("edge networks") {
        let service = between(q, "could reach ", " during").unwrap_or_default();
        return Some(Intent::RoutingIncident {
            kind: RoutingQuestion::AvailabilityDuring,
            service,
        });
    }
    if q.contains("content prefixes") && q.contains("withdrawn") {
        return Some(Intent::RoutingIncident {
            kind: RoutingQuestion::ContentPrefixes,
            service: String::new(),
        });
    }
    if q.contains("availability") && q.contains("re-announced") {
        return Some(Intent::RoutingIncident {
            kind: RoutingQuestion::Recovery,
            service: String::new(),
        });
    }

    None
}

/// The trimmed text between the first `start` marker and the next
/// `end` marker after it, when both are present and non-adjacent.
fn between(q: &str, start: &str, end: &str) -> Option<String> {
    let idx = q.find(start)?;
    let tail = &q[idx + start.len()..];
    let stop = tail.find(end)?;
    let got = tail[..stop].trim();
    (!got.is_empty()).then(|| got.to_string())
}

/// Strip the paper's quiz-prompt scaffolding, leaving the bare
/// question.
fn strip_quiz_wrapper(q: &str) -> String {
    let mut core = q;
    if let Some(idx) = core.find("answer the following question:") {
        core = &core[idx + "answer the following question:".len()..];
    }
    // Drop the trailing confidence probe if present.
    for marker in [
        "how confident",
        "rate his confidence",
        "rate your confidence",
    ] {
        if let Some(idx) = core.find(marker) {
            core = &core[..idx];
        }
    }
    core.trim().to_string()
}

/// Pull "connects X to Y" phrases out of a question.
fn parse_route_phrases(q: &str) -> Vec<RouteSpec> {
    let mut specs = Vec::new();
    let mut rest = q;
    while let Some(idx) = rest.find("connects ") {
        let tail = &rest[idx + "connects ".len()..];
        // Endpoint A runs to " to ".
        if let Some((a, after)) = tail.split_once(" to ") {
            // Endpoint B runs to the next delimiter.
            let b_end = after
                .find(" or ")
                .or_else(|| after.find('?'))
                .or_else(|| after.find(','))
                .unwrap_or(after.len());
            let b = &after[..b_end];
            if !a.is_empty() && !b.is_empty() && b.split_whitespace().count() <= 4 {
                specs.push(RouteSpec::new(a, b));
            }
            rest = after;
        } else {
            break;
        }
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cable_question_parses() {
        let q = "Which is more vulnerable to solar activity? The fiber optic cable that \
                 connects Brazil to Europe or the one that connects the US to Europe?";
        match classify(q) {
            Intent::CompareCableVulnerability { route_a, route_b } => {
                assert_eq!(route_a, RouteSpec::new("brazil", "europe"));
                assert_eq!(route_b.a, "united states");
                assert_eq!(route_b.b, "europe");
            }
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn paper_datacenter_question_parses() {
        let q = "Whose datacenter is more vulnerable to a solar superstorm, Google's or \
                 Facebook's?";
        match classify(q) {
            Intent::CompareOperatorVulnerability { op_a, op_b } => {
                assert_eq!(op_a, "google");
                assert_eq!(op_b, "facebook");
            }
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn latitude_question_parses() {
        let q = "Does the risk a solar superstorm poses to Internet infrastructure depend on \
                 latitude, and if so, how?";
        assert_eq!(classify(q), Intent::LatitudeDependence);
    }

    #[test]
    fn component_question_parses() {
        let q = "Which component of a submarine cable system is most at risk during a \
                 geomagnetic storm?";
        assert_eq!(classify(q), Intent::WeakComponent);
    }

    #[test]
    fn terrestrial_question_parses() {
        let q = "Are submarine cables or terrestrial fiber links more at risk during a solar \
                 superstorm?";
        assert_eq!(classify(q), Intent::SubmarineVsTerrestrial);
    }

    #[test]
    fn region_question_parses() {
        let q = "Is the United States or Asia more susceptible to Internet disruption from a \
                 solar superstorm?";
        match classify(q) {
            Intent::CompareRegionSusceptibility { region_a, region_b } => {
                assert_eq!(region_a, "North America");
                assert_eq!(region_b, "Asia");
            }
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn length_question_parses() {
        let q = "Does the length of a submarine cable affect its vulnerability to solar \
                 superstorms?";
        assert_eq!(classify(q), Intent::LengthEffect);
    }

    #[test]
    fn partition_question_parses() {
        let q = "What is the large-scale connectivity impact of a Carrington-class solar \
                 superstorm on the Internet?";
        assert_eq!(classify(q), Intent::PartitionImpact);
    }

    #[test]
    fn plan_question_parses() {
        let q = "Plan a shutdown strategy for operators facing an incoming CME.";
        assert_eq!(classify(q), Intent::ShutdownPlan);
    }

    #[test]
    fn incident_cause_question_parses() {
        match classify("What caused the 2021 Facebook outage?") {
            Intent::IncidentCause { incident } => assert_eq!(incident, "2021 facebook outage"),
            other => panic!("got {other:?}"),
        }
        match classify(
            "What caused the Internet disruption during the 2004 Indian Ocean earthquake and \
             tsunami?",
        ) {
            Intent::IncidentCause { incident } => {
                assert!(incident.contains("indian ocean"));
            }
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn incident_impact_question_parses() {
        match classify("What was the impact of the 2006 Hengchun earthquake on the Internet?") {
            Intent::IncidentImpact { incident } => {
                assert_eq!(incident, "2006 hengchun earthquake");
            }
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn storm_impact_question_is_not_an_incident() {
        // The Carrington question must keep routing to PartitionImpact.
        let q = "What is the large-scale connectivity impact of a Carrington-class solar \
                 superstorm on the Internet?";
        assert_eq!(classify(q), Intent::PartitionImpact);
    }

    #[test]
    fn the_papers_full_quiz_prompt_wrapper_is_stripped() {
        // Verbatim from §4.1 of the paper.
        let q = "Solely based on Bob's knowledge, what will Bob answer the following \
                 question: Which is more vulnerable to solar activity? The fiber optic cable \
                 that connects Brazil to Europe or the one that connects the US to Europe? \
                 How confident he will be to answer the following question. Rate his \
                 confidence on a scale from 1 to 10.";
        match classify(q) {
            Intent::CompareCableVulnerability { route_a, route_b } => {
                assert_eq!(route_a, RouteSpec::new("brazil", "europe"));
                assert_eq!(route_b.a, "united states");
            }
            other => panic!("got {other:?}"),
        }
        let q2 = "Solely based on Bob's knowledge, what will Bob answer the following \
                  question: Whose datacenter is more vulnerable? Google's or Facebook's? How \
                  confident he will be to answer the following question. Rate his confidence \
                  on a scale from 1 to 10.";
        assert!(matches!(
            classify(q2),
            Intent::CompareOperatorVulnerability { .. }
        ));
    }

    #[test]
    fn nonsense_is_unknown() {
        assert_eq!(classify("What is the best pasta shape?"), Intent::Unknown);
    }

    #[test]
    fn place_normalization() {
        assert_eq!(normalize_place("the US"), "united states");
        assert_eq!(normalize_place("US?"), "united states");
        assert_eq!(normalize_place("Brazil"), "brazil");
        assert_eq!(normalize_place("the UK"), "united kingdom");
    }

    #[test]
    fn place_regions() {
        assert_eq!(place_region("brazil"), Some("South America"));
        assert_eq!(place_region("united states"), Some("North America"));
        assert_eq!(place_region("europe"), Some("Europe"));
        assert_eq!(place_region("atlantis"), None);
    }

    #[test]
    fn scenario_places_have_regions() {
        // Cable-cut landing geographies.
        assert_eq!(place_region("greenland"), Some("North America"));
        assert_eq!(place_region("iceland"), Some("Europe"));
        // Grid-failure service areas, straight from the event docs.
        assert_eq!(place_region("hydro-québec"), Some("North America"));
        assert_eq!(place_region("nordic grid"), Some("Europe"));
        assert_eq!(place_region("singapore grid"), Some("Asia"));
        assert_eq!(
            place_region(&normalize_place("The Hydro-Québec?")),
            Some("North America")
        );
    }

    #[test]
    fn cable_incident_questions_classify() {
        let cases: &[(&str, CableQuestion, &str)] = &[
            (
                "What caused the Anjana submarine cable outage?",
                CableQuestion::Cause,
                "anjana",
            ),
            (
                "Did North America and Europe stay connected after the Anjana was cut?",
                CableQuestion::CorridorRedundancy,
                "anjana",
            ),
            (
                "How many optical repeaters went dark when the Anjana failed?",
                CableQuestion::RepeatersLost,
                "anjana",
            ),
            (
                "How is a severed submarine cable repaired?",
                CableQuestion::RepairMethod,
                "",
            ),
            (
                "How long is the Anjana cable?",
                CableQuestion::Length,
                "anjana",
            ),
        ];
        for (q, kind, cable) in cases {
            match classify(q) {
                Intent::CableIncident { kind: k, cable: c } => {
                    assert_eq!(k, *kind, "kind for {q:?}");
                    assert_eq!(c, *cable, "cable slot for {q:?}");
                }
                other => panic!("{q:?} classified as {other:?}"),
            }
        }
    }

    #[test]
    fn grid_incident_questions_classify() {
        let cases: &[(&str, GridQuestion, &str)] = &[
            (
                "What caused the Hydro-Québec power grid collapse?",
                GridQuestion::Cause,
                "hydro-québec",
            ),
            (
                "Which power grid is most exposed to geomagnetic storms?",
                GridQuestion::MostExposed,
                "",
            ),
            (
                "Are equatorial power grids like Singapore Grid at similar geomagnetic risk?",
                GridQuestion::LowLatitudeRisk,
                "singapore grid",
            ),
            (
                "Which grid component fails during a severe geomagnetic storm?",
                GridQuestion::FailingComponent,
                "",
            ),
        ];
        for (q, kind, grid) in cases {
            match classify(q) {
                Intent::GridIncident { kind: k, grid: g } => {
                    assert_eq!(k, *kind, "kind for {q:?}");
                    assert_eq!(g, *grid, "grid slot for {q:?}");
                }
                other => panic!("{q:?} classified as {other:?}"),
            }
        }
    }

    #[test]
    fn routing_incident_questions_classify() {
        let cases: &[(&str, RoutingQuestion, &str)] = &[
            (
                "What took facebook.com offline in the routing incident?",
                RoutingQuestion::Cause,
                "facebook.com",
            ),
            (
                "What fraction of edge networks could reach facebook.com during the route \
                 withdrawal?",
                RoutingQuestion::AvailabilityDuring,
                "facebook.com",
            ),
            (
                "Were the content prefixes also withdrawn during the outage?",
                RoutingQuestion::ContentPrefixes,
                "",
            ),
            (
                "Did availability recover once the routes were re-announced?",
                RoutingQuestion::Recovery,
                "",
            ),
        ];
        for (q, kind, service) in cases {
            match classify(q) {
                Intent::RoutingIncident {
                    kind: k,
                    service: s,
                } => {
                    assert_eq!(k, *kind, "kind for {q:?}");
                    assert_eq!(s, *service, "service slot for {q:?}");
                }
                other => panic!("{q:?} classified as {other:?}"),
            }
        }
    }

    #[test]
    fn route_display_is_title_cased() {
        assert_eq!(
            RouteSpec::new("the US", "europe").display(),
            "United States to Europe"
        );
    }
}
