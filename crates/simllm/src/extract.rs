//! The fact-extraction layer — the model's "reading comprehension".
//!
//! Real LLMs absorb facts from prose in context; this module gives the
//! simulated model the same ability over the prose the synthetic web
//! actually publishes (the *fact sentence contract*, documented in
//! `ira-webcorpus::templates`). Extraction is per-sentence, with a
//! running subject so anaphora like "The system spans…" binds to the
//! entity the passage is about.
//!
//! Extraction is intentionally tolerant of surrounding text — facts are
//! found anywhere within a sentence — but strict about the fact shapes
//! themselves, so distractor text never produces phantom facts.

use crate::lexicon::{ops, Interner, Term};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};

/// A general causal principle the model can pick up from explainer
/// text. These carry the "why" of an answer; entity facts carry the
/// "which".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Principle {
    /// Induced currents grow with geomagnetic latitude.
    LatitudeRisk,
    /// Repeaters, not fiber, are the vulnerable cable component.
    RepeaterWeakness,
    /// Dispersed data-center footprints are more resilient.
    DispersionResilience,
    /// Longer cables accumulate more repeater risk.
    LengthRisk,
    /// Terrestrial fiber is short/unrepeated and safer.
    TerrestrialSafety,
    /// Storms threaten power grids through long lines.
    GridThreat,
    /// Enough cable failures partition continents.
    PartitionRisk,
    /// Planning: shut vulnerable systems down preemptively.
    PredictiveShutdown,
    /// Planning: redirect to redundant, safer systems.
    RedundancyUtilization,
    /// Planning: shut down in phases ordered by vulnerability.
    PhasedShutdown,
    /// Planning: back critical data up pre-impact.
    DataPreservation,
    /// Planning: reboot gradually after impact.
    GradualReboot,
    /// Severed cables are repaired by ship-borne grapple-and-splice.
    CableRepair,
    /// EHV transformers saturate and overheat under sustained GIC.
    TransformerSaturation,
    /// Withdrawing the prefixes under authoritative nameservers takes
    /// a service offline by name.
    BgpDnsWithdrawal,
}

impl Principle {
    /// The distinctive key-phrase marking each principle in text.
    fn marker(&self) -> &'static str {
        match self {
            Principle::LatitudeRisk => "grow stronger at higher geomagnetic latitudes",
            Principle::RepeaterWeakness => "most vulnerable component",
            Principle::DispersionResilience => "dispersed data center footprint",
            Principle::LengthRisk => "more repeaters and therefore accumulate",
            Principle::TerrestrialSafety => "short and unrepeated",
            Principle::GridThreat => "damaging currents in long power lines",
            Principle::PartitionRisk => "partitioned from the internet",
            Principle::PredictiveShutdown => "preemptively shut down",
            Principle::RedundancyUtilization => "redirected to redundant systems",
            Principle::PhasedShutdown => "phased shutdown sequence",
            Principle::DataPreservation => "backed up and preserved before",
            Principle::GradualReboot => "rebooted gradually",
            Principle::CableRepair => "repair ship grapples the damaged section",
            Principle::TransformerSaturation => "transformers saturate and overheat",
            Principle::BgpDnsWithdrawal => "withdrew the bgp routes for",
        }
    }

    pub const ALL: [Principle; 15] = [
        Principle::LatitudeRisk,
        Principle::RepeaterWeakness,
        Principle::DispersionResilience,
        Principle::LengthRisk,
        Principle::TerrestrialSafety,
        Principle::GridThreat,
        Principle::PartitionRisk,
        Principle::PredictiveShutdown,
        Principle::RedundancyUtilization,
        Principle::PhasedShutdown,
        Principle::DataPreservation,
        Principle::GradualReboot,
        Principle::CableRepair,
        Principle::TransformerSaturation,
        Principle::BgpDnsWithdrawal,
    ];
}

/// A structured fact extracted from context text.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Fact {
    /// "{name} submarine cable connects {cityA}, {countryA} to {cityB},
    /// {countryB}, linking {regionA} and {regionB}."
    CableRoute {
        name: String,
        from_city: String,
        from_country: String,
        to_city: String,
        to_country: String,
        from_region: String,
        to_region: String,
    },
    /// Maximum |geomagnetic latitude| along an entity's route.
    MaxGeomagLatitude { entity: String, degrees: f64 },
    /// Cable length in km.
    LengthKm { entity: String, km: f64 },
    /// Number of powered repeaters.
    RepeaterCount { entity: String, count: u32 },
    /// Operator's region coverage count.
    RegionCoverage { operator: String, regions: u32 },
    /// Share of operator's sites at low geomagnetic latitude, percent.
    LowLatShare { operator: String, percent: f64 },
    /// Operator runs a data center at a site.
    DcPresence {
        operator: String,
        city: String,
        country: String,
        region: String,
    },
    /// Historic storm intensity.
    StormDst {
        name: String,
        year: Option<u16>,
        dst: f64,
    },
    /// A regional grid's geomagnetic latitude.
    RegionGridLatitude {
        grid: String,
        region: String,
        degrees: f64,
    },
    /// "The {year} {name} was caused by {cause}."
    IncidentCause { incident: String, cause: String },
    /// "The main effect on the Internet was {effect}." (subject-bound)
    IncidentEffect { incident: String, effect: String },
    /// "Service was disrupted for about {h} hours." (subject-bound)
    IncidentDuration { incident: String, hours: f64 },
    /// "The {year} {name} severed {n} submarine cables."
    IncidentCablesCut { incident: String, count: u32 },
    /// "During the {year} {name}, global Internet traffic grew by
    /// about {p} percent."
    IncidentTraffic { incident: String, percent: f64 },
    /// "The {cable} cable was severed by {cause}."
    CableCut { cable: String, cause: String },
    /// "Traffic rerouted onto {n} parallel transatlantic cable
    /// systems…" / "Because {n} parallel systems serve the corridor…"
    CorridorSurvivors { count: u32 },
    /// "The {grid} power grid collapsed when {cause}."
    GridCollapse { grid: String, cause: String },
    /// "{grid} has the highest GIC exposure of any major grid." /
    /// "…and find {grid} most exposed."
    GridMostExposed { grid: String },
    /// "Grids at low geomagnetic latitude, such as {grid}, show
    /// negligible exposure."
    GridLowLatitude { grid: String },
    /// "Only {p} percent of edge networks could reach…" (`during`) /
    /// "…restored to {p} percent…" (`!during`).
    EdgeAvailability { during: bool, percent: f64 },
    /// "The content prefixes stayed announced…"
    ContentPrefixesAnnounced,
}

/// Everything read out of a body of context text.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Extraction {
    pub facts: Vec<Fact>,
    pub principles: BTreeSet<Principle>,
}

impl Extraction {
    /// Read `text`, optionally knowing up front what entity the passage
    /// is about (e.g. a page title).
    pub fn from_text(text: &str, subject_hint: Option<&str>) -> Self {
        let mut ex = Extraction::default();
        ex.absorb(text, subject_hint);
        ex
    }

    /// Read more text into this extraction.
    pub fn absorb(&mut self, text: &str, subject_hint: Option<&str>) {
        ops::absorb_call();
        ops::tokenize_chars(text.len());
        let lower = text.to_lowercase();
        for p in Principle::ALL {
            if lower.contains(p.marker()) {
                self.principles.insert(p);
            }
        }

        let mut subject: Option<String> = subject_hint.map(str::to_owned);
        for sentence in split_sentences(text) {
            if let Some(fact) = parse_route(sentence) {
                if let Fact::CableRoute { name, .. } = &fact {
                    subject = Some(name.clone());
                }
                self.push(fact);
            }
            if let Some(deg) = parse_apex(sentence) {
                let entity = apex_entity(sentence).or_else(|| subject.clone());
                if let Some(entity) = entity {
                    self.push(Fact::MaxGeomagLatitude {
                        entity,
                        degrees: deg,
                    });
                }
            }
            if let Some(km) = parse_after_number(sentence, "spans approximately ", " kilometres") {
                if let Some(entity) = subject.clone() {
                    self.push(Fact::LengthKm { entity, km });
                }
            }
            if let Some(n) =
                parse_after_number(sentence, "powered through roughly ", " optical repeaters")
            {
                if let Some(entity) = subject.clone() {
                    self.push(Fact::RepeaterCount {
                        entity,
                        count: n as u32,
                    });
                }
            }
            if let Some(fact) = parse_coverage(sentence) {
                self.push(fact);
            }
            if let Some(fact) = parse_low_lat_share(sentence) {
                self.push(fact);
            }
            if let Some(fact) = parse_presence(sentence) {
                self.push(fact);
            }
            if let Some(fact) = parse_storm(sentence) {
                self.push(fact);
            }
            if let Some(fact) = parse_grid(sentence) {
                self.push(fact);
            }
            if let Some(fact) = parse_incident_cause(sentence) {
                if let Fact::IncidentCause { incident, .. } = &fact {
                    subject = Some(incident.clone());
                }
                self.push(fact);
            }
            if let Some(effect) =
                parse_after_marker(sentence, "The main effect on the Internet was ")
            {
                if let Some(incident) = subject.clone() {
                    self.push(Fact::IncidentEffect { incident, effect });
                }
            }
            if let Some(hours) = parse_after_number(sentence, "disrupted for about ", " hours") {
                if let Some(incident) = subject.clone() {
                    self.push(Fact::IncidentDuration { incident, hours });
                }
            }
            if let Some(fact) = parse_cables_cut(sentence) {
                self.push(fact);
            }
            if let Some(fact) = parse_incident_traffic(sentence) {
                self.push(fact);
            }
            if let Some(fact) = parse_cable_cut(sentence) {
                if let Fact::CableCut { cable, .. } = &fact {
                    subject = Some(cable.clone());
                }
                self.push(fact);
            }
            if let Some(fact) = parse_cable_span(sentence) {
                if let Fact::LengthKm { entity, .. } = &fact {
                    subject = Some(entity.clone());
                }
                self.push(fact);
            }
            if let Some(n) = parse_after_number(sentence, "break took about ", " optical repeaters")
            {
                if let Some(entity) = subject.clone() {
                    self.push(Fact::RepeaterCount {
                        entity,
                        count: n as u32,
                    });
                }
            }
            for (prefix, suffix) in [
                ("rerouted onto ", " parallel"),
                ("Because ", " parallel systems"),
            ] {
                if let Some(n) = parse_after_number(sentence, prefix, suffix) {
                    self.push(Fact::CorridorSurvivors { count: n as u32 });
                }
            }
            if let Some(fact) = parse_grid_collapse(sentence) {
                self.push(fact);
            }
            if let Some(fact) = parse_grid_most_exposed(sentence) {
                self.push(fact);
            }
            if let Some(fact) = parse_grid_low_latitude(sentence) {
                self.push(fact);
            }
            if let Some(p) = parse_after_number(sentence, "Only ", " percent of edge networks") {
                self.push(Fact::EdgeAvailability {
                    during: true,
                    percent: p,
                });
            }
            if sentence.contains("restored to ") && sentence.contains("re-announced") {
                if let Some(p) = parse_after_number(sentence, "restored to ", " percent") {
                    self.push(Fact::EdgeAvailability {
                        during: false,
                        percent: p,
                    });
                }
            }
            if sentence.contains("content prefixes stayed announced") {
                self.push(Fact::ContentPrefixesAnnounced);
            }
        }
    }

    /// Merge another extraction into this one, deduplicating.
    pub fn merge(&mut self, other: &Extraction) {
        for f in &other.facts {
            self.push(f.clone());
        }
        self.principles.extend(other.principles.iter().copied());
    }

    fn push(&mut self, fact: Fact) {
        if !self.facts.contains(&fact) {
            self.facts.push(fact);
        }
    }

    pub fn is_empty(&self) -> bool {
        self.facts.is_empty() && self.principles.is_empty()
    }

    /// All cable-route facts.
    pub fn routes(&self) -> impl Iterator<Item = &Fact> {
        self.facts
            .iter()
            .filter(|f| matches!(f, Fact::CableRoute { .. }))
    }

    /// Max geomagnetic latitude recorded for `entity`, if any.
    /// All distinct apex values recorded for `entity`.
    pub fn apex_values(&self, entity: &str) -> Vec<f64> {
        self.facts
            .iter()
            .filter_map(|f| match f {
                Fact::MaxGeomagLatitude { entity: e, degrees } if e == entity => Some(*degrees),
                _ => None,
            })
            .collect()
    }

    /// The apex value the model believes, robust to adversarial
    /// context: the *median* of the distinct values it has read. A
    /// single poisoned source cannot drag the estimate past the
    /// midpoint, and with two honest corroborating sources it cannot
    /// move it at all (§5 "the knowledge memory file can be hacked
    /// with adversarial data").
    pub fn apex_of(&self, entity: &str) -> Option<f64> {
        let mut values = self.apex_values(entity);
        if values.is_empty() {
            return None;
        }
        values.sort_by(f64::total_cmp);
        let n = values.len();
        Some(if n % 2 == 1 {
            values[n / 2]
        } else {
            (values[n / 2 - 1] + values[n / 2]) / 2.0
        })
    }

    /// Whether sources disagree materially about an entity's apex
    /// (spread above `tolerance` degrees).
    pub fn apex_conflict(&self, entity: &str, tolerance: f64) -> bool {
        let values = self.apex_values(entity);
        match (
            values.iter().copied().reduce(f64::min),
            values.iter().copied().reduce(f64::max),
        ) {
            (Some(lo), Some(hi)) => hi - lo > tolerance,
            _ => false,
        }
    }

    /// Region coverage for an operator (case-insensitive).
    pub fn coverage_of(&self, operator: &str) -> Option<u32> {
        let op = operator.to_lowercase();
        self.facts.iter().find_map(|f| match f {
            Fact::RegionCoverage {
                operator: o,
                regions,
            } if o.to_lowercase() == op => Some(*regions),
            _ => None,
        })
    }

    /// Low-latitude share for an operator (percent).
    pub fn low_lat_share_of(&self, operator: &str) -> Option<f64> {
        let op = operator.to_lowercase();
        self.facts.iter().find_map(|f| match f {
            Fact::LowLatShare {
                operator: o,
                percent,
            } if o.to_lowercase() == op => Some(*percent),
            _ => None,
        })
    }

    /// Data-center presence facts for an operator.
    pub fn presences_of(&self, operator: &str) -> Vec<&Fact> {
        let op = operator.to_lowercase();
        self.facts
            .iter()
            .filter(|f| matches!(f, Fact::DcPresence { operator: o, .. } if o.to_lowercase() == op))
            .collect()
    }

    /// Mean |grid geomagnetic latitude| for a region, if known.
    pub fn region_latitude(&self, region: &str) -> Option<f64> {
        let wanted = region.to_lowercase();
        let values: Vec<f64> = self
            .facts
            .iter()
            .filter_map(|f| match f {
                Fact::RegionGridLatitude {
                    region: r, degrees, ..
                } if r.to_lowercase() == wanted => Some(*degrees),
                _ => None,
            })
            .collect();
        if values.is_empty() {
            None
        } else {
            Some(values.iter().sum::<f64>() / values.len() as f64)
        }
    }
}

/// One route endpoint with its normalization precomputed: the
/// lowercase forms a question descriptor is compared against, plus the
/// original-case region for [`place_region`] equality.
///
/// [`place_region`]: crate::intent::place_region
struct SideKey<'e> {
    city: String,
    country: String,
    region: String,
    region_orig: &'e str,
}

impl SideKey<'_> {
    /// Does descriptor `d` (normalized lowercase) match this endpoint?
    /// Byte-for-byte the same predicate the reasoning engine used to
    /// recompute per call.
    fn matches(&self, d: &str) -> bool {
        d == self.country
            || d == self.region
            || d == self.city
            || crate::intent::place_region(d) == Some(self.region_orig)
    }
}

/// A cable-route fact with both endpoints pre-normalized.
struct RouteKey<'e> {
    name: &'e str,
    sides: [SideKey<'e>; 2],
}

/// A precomputed, interned lookup index over one [`Extraction`].
///
/// The reasoning engine consults the same handful of keyed views on
/// every call — operator coverage, operator low-latitude share,
/// presence counts, region grid latitudes, entity apex values, route
/// endpoints, incident names. The plain [`Extraction`] accessors
/// re-lowercase every fact per lookup; this index normalizes and
/// interns each key **once** at build time (u32 [`Term`] symbols from
/// a deterministic insertion-ordered [`Interner`]), so lookups are a
/// single hash probe and endpoint matching compares precomputed
/// strings.
///
/// The index is a pure derived view: building it never changes what
/// any accessor returns relative to the scan-based equivalents (the
/// unit tests pin this), which is what keeps answers byte-identical.
pub struct ExtractionIndex<'e> {
    ex: &'e Extraction,
    interner: Interner,
    coverage: HashMap<Term, u32>,
    lowlat: HashMap<Term, f64>,
    presence_counts: HashMap<Term, usize>,
    region_lat: HashMap<Term, (f64, usize)>,
    apex: HashMap<Term, Vec<f64>>,
    routes: Vec<RouteKey<'e>>,
    /// `(fact index, lowercased incident name)` for every
    /// incident-tagged fact, in fact order.
    incidents: Vec<(usize, String)>,
    singapore_grid: bool,
}

impl<'e> ExtractionIndex<'e> {
    /// Build the index in one pass over the facts.
    pub fn build(ex: &'e Extraction) -> Self {
        let mut idx = ExtractionIndex {
            ex,
            interner: Interner::new(),
            coverage: HashMap::new(),
            lowlat: HashMap::new(),
            presence_counts: HashMap::new(),
            region_lat: HashMap::new(),
            apex: HashMap::new(),
            routes: Vec::new(),
            incidents: Vec::new(),
            singapore_grid: false,
        };
        for (i, fact) in ex.facts.iter().enumerate() {
            match fact {
                Fact::RegionCoverage { operator, regions } => {
                    ops::tokenize_chars(operator.len());
                    let t = idx.interner.intern(&operator.to_lowercase());
                    // First occurrence wins, like the scan's `find_map`.
                    idx.coverage.entry(t).or_insert(*regions);
                }
                Fact::LowLatShare { operator, percent } => {
                    ops::tokenize_chars(operator.len());
                    let t = idx.interner.intern(&operator.to_lowercase());
                    idx.lowlat.entry(t).or_insert(*percent);
                }
                Fact::DcPresence { operator, .. } => {
                    ops::tokenize_chars(operator.len());
                    let t = idx.interner.intern(&operator.to_lowercase());
                    *idx.presence_counts.entry(t).or_insert(0) += 1;
                }
                Fact::RegionGridLatitude {
                    grid,
                    region,
                    degrees,
                } => {
                    ops::tokenize_chars(region.len() + grid.len());
                    let t = idx.interner.intern(&region.to_lowercase());
                    let slot = idx.region_lat.entry(t).or_insert((0.0, 0));
                    slot.0 += *degrees;
                    slot.1 += 1;
                    if grid.to_lowercase().contains("singapore") {
                        idx.singapore_grid = true;
                    }
                }
                Fact::MaxGeomagLatitude { entity, degrees } => {
                    let t = idx.interner.intern(entity);
                    idx.apex.entry(t).or_default().push(*degrees);
                }
                Fact::CableRoute {
                    name,
                    from_city,
                    from_country,
                    to_city,
                    to_country,
                    from_region,
                    to_region,
                } => {
                    ops::tokenize_chars(
                        from_city.len()
                            + from_country.len()
                            + from_region.len()
                            + to_city.len()
                            + to_country.len()
                            + to_region.len(),
                    );
                    idx.routes.push(RouteKey {
                        name,
                        sides: [
                            SideKey {
                                city: from_city.to_lowercase(),
                                country: from_country.to_lowercase(),
                                region: from_region.to_lowercase(),
                                region_orig: from_region,
                            },
                            SideKey {
                                city: to_city.to_lowercase(),
                                country: to_country.to_lowercase(),
                                region: to_region.to_lowercase(),
                                region_orig: to_region,
                            },
                        ],
                    });
                }
                Fact::IncidentCause { incident, .. }
                | Fact::IncidentEffect { incident, .. }
                | Fact::IncidentDuration { incident, .. }
                | Fact::IncidentCablesCut { incident, .. }
                | Fact::IncidentTraffic { incident, .. } => {
                    ops::tokenize_chars(incident.len());
                    idx.incidents.push((i, incident.to_lowercase()));
                }
                Fact::LengthKm { .. }
                | Fact::RepeaterCount { .. }
                | Fact::StormDst { .. }
                | Fact::CableCut { .. }
                | Fact::CorridorSurvivors { .. }
                | Fact::GridCollapse { .. }
                | Fact::GridMostExposed { .. }
                | Fact::GridLowLatitude { .. }
                | Fact::EdgeAvailability { .. }
                | Fact::ContentPrefixesAnnounced => {}
            }
        }
        idx
    }

    /// The extraction this index derives from (for raw fact scans that
    /// never normalized strings in the first place).
    pub fn ex(&self) -> &'e Extraction {
        self.ex
    }

    /// Region coverage for an operator (case-insensitive, first fact
    /// wins).
    pub fn coverage_of(&self, operator: &str) -> Option<u32> {
        let t = self.interner.get(&operator.to_lowercase())?;
        self.coverage.get(&t).copied()
    }

    /// Low-latitude share for an operator (percent).
    pub fn low_lat_share_of(&self, operator: &str) -> Option<f64> {
        let t = self.interner.get(&operator.to_lowercase())?;
        self.lowlat.get(&t).copied()
    }

    /// Number of data-center presence facts for an operator.
    pub fn presence_count(&self, operator: &str) -> usize {
        self.interner
            .get(&operator.to_lowercase())
            .and_then(|t| self.presence_counts.get(&t).copied())
            .unwrap_or(0)
    }

    /// Mean |grid geomagnetic latitude| for a region, if known.
    pub fn region_latitude(&self, region: &str) -> Option<f64> {
        let t = self.interner.get(&region.to_lowercase())?;
        self.region_lat.get(&t).map(|(sum, n)| sum / *n as f64)
    }

    /// Median apex latitude for an entity (same robust-median rule as
    /// [`Extraction::apex_of`]).
    pub fn apex_of(&self, entity: &str) -> Option<f64> {
        let t = self.interner.get(entity)?;
        let stored = self.apex.get(&t)?;
        let mut values = stored.clone();
        values.sort_by(f64::total_cmp);
        let n = values.len();
        Some(if n % 2 == 1 {
            values[n / 2]
        } else {
            (values[n / 2 - 1] + values[n / 2]) / 2.0
        })
    }

    /// Whether sources disagree materially about an entity's apex.
    pub fn apex_conflict(&self, entity: &str, tolerance: f64) -> bool {
        let Some(values) = self.interner.get(entity).and_then(|t| self.apex.get(&t)) else {
            return false;
        };
        match (
            values.iter().copied().reduce(f64::min),
            values.iter().copied().reduce(f64::max),
        ) {
            (Some(lo), Some(hi)) => hi - lo > tolerance,
            _ => false,
        }
    }

    /// Names of cables whose route matches `(a, b)` in either
    /// direction, in fact order. Descriptors must be normalized
    /// lowercase (the [`crate::intent::RouteSpec`] form).
    pub fn routes_matching(&self, a: &str, b: &str) -> Vec<&'e str> {
        self.routes
            .iter()
            .filter_map(|r| {
                let fwd = r.sides[0].matches(a) && r.sides[1].matches(b);
                let rev = r.sides[0].matches(b) && r.sides[1].matches(a);
                (fwd || rev).then_some(r.name)
            })
            .collect()
    }

    /// Every incident-tagged fact matching `needle` (containment
    /// either way, case-insensitive), in fact order.
    pub fn incident_facts(&self, needle: &str) -> Vec<&'e Fact> {
        ops::tokenize_chars(needle.len());
        let needle = needle.to_lowercase();
        self.incidents
            .iter()
            .filter(|(_, inc)| inc.contains(&needle) || needle.contains(inc.as_str()))
            .map(|(i, _)| &self.ex.facts[*i])
            .collect()
    }

    /// Whether any grid fact mentions Singapore (supporting color for
    /// region comparisons).
    pub fn has_singapore_grid(&self) -> bool {
        self.singapore_grid
    }
}

/// Find all facts about an incident whose name matches `needle`
/// (containment either way, case-insensitive).
pub fn incident_matches(incident: &str, needle: &str) -> bool {
    let a = incident.to_lowercase();
    let b = needle.to_lowercase();
    a.contains(&b) || b.contains(&a)
}

/// Split text into sentences, avoiding splits after short capitalised
/// abbreviations ("St. Ghislain").
pub fn split_sentences(text: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut start = 0;
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'.' || bytes[i] == b'\n' || bytes[i] == b'?' || bytes[i] == b'!' {
            let is_break = if bytes[i] == b'.' {
                let next_ws = bytes.get(i + 1).is_none_or(|b| b.is_ascii_whitespace());
                let prev_word_len = text[start..i]
                    .rsplit(|c: char| c.is_whitespace())
                    .next()
                    .map_or(0, str::len);
                next_ws && prev_word_len > 2
            } else {
                true
            };
            if is_break {
                let s = text[start..=i.min(text.len() - 1)].trim();
                if !s.is_empty() {
                    out.push(s);
                }
                start = i + 1;
            }
        }
        i += 1;
    }
    let tail = text[start.min(text.len())..].trim();
    if !tail.is_empty() {
        out.push(tail);
    }
    out
}

/// Parse a leading f64 (optionally signed) from `s`.
fn leading_number(s: &str) -> Option<f64> {
    let s = s.trim_start();
    let end = s
        .char_indices()
        .take_while(|(i, c)| c.is_ascii_digit() || *c == '.' || (*i == 0 && *c == '-'))
        .map(|(i, c)| i + c.len_utf8())
        .last()?;
    s[..end].trim_end_matches('.').parse().ok()
}

/// Find `prefix`…number…`suffix` in a sentence; return the number.
fn parse_after_number(sentence: &str, prefix: &str, suffix: &str) -> Option<f64> {
    let idx = sentence.find(prefix)?;
    let rest = &sentence[idx + prefix.len()..];
    let n = leading_number(rest)?;
    // Require the suffix to follow the number closely.
    let after_num = &rest[rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len())..];
    after_num
        .starts_with(suffix.trim_start())
        .then_some(n)
        .or_else(|| rest.contains(suffix).then_some(n))
}

fn parse_route(sentence: &str) -> Option<Fact> {
    const MARKER: &str = " submarine cable connects ";
    let idx = sentence.find(MARKER)?;
    let mut name = sentence[..idx].trim();
    name = name.strip_prefix("The ").unwrap_or(name);
    // Guard against prose like "...systems. The submarine cable connects…"
    if name.is_empty() || name.len() > 60 {
        return None;
    }
    let rest = &sentence[idx + MARKER.len()..];
    let (from_part, rest) = rest.split_once(" to ")?;
    let (to_part, regions) = rest.split_once(", linking ")?;
    let (from_city, from_country) = from_part.split_once(", ")?;
    let (to_city, to_country) = to_part.split_once(", ")?;
    let regions = regions.trim_end_matches('.');
    let (from_region, to_region) = regions.split_once(" and ")?;
    Some(Fact::CableRoute {
        name: name.to_string(),
        from_city: from_city.trim().to_string(),
        from_country: from_country.trim().to_string(),
        to_city: to_city.trim().to_string(),
        to_country: to_country.trim().to_string(),
        from_region: from_region.trim().to_string(),
        to_region: to_region.trim().to_string(),
    })
}

fn parse_apex(sentence: &str) -> Option<f64> {
    const MARKER: &str = "maximum geomagnetic latitude of ";
    let idx = sentence.find(MARKER)?;
    let rest = &sentence[idx + MARKER.len()..];
    let deg = leading_number(rest)?;
    rest.contains("degrees").then_some(deg)
}

/// "The {name} cable reaches a maximum geomagnetic latitude…" — the
/// short social-post form carries its own entity.
fn apex_entity(sentence: &str) -> Option<String> {
    let idx = sentence.find(" cable reaches a maximum geomagnetic latitude")?;
    let head = &sentence[..idx];
    let name_start = head.rfind("The ")?;
    let name = head[name_start + 4..].trim();
    (!name.is_empty()).then(|| name.to_string())
}

fn parse_coverage(sentence: &str) -> Option<Fact> {
    const MARKER: &str = " operates data centers in ";
    let idx = sentence.find(MARKER)?;
    let operator = last_word_span(&sentence[..idx])?;
    let rest = &sentence[idx + MARKER.len()..];
    let regions = leading_number(rest)? as u32;
    rest.contains("major regions")
        .then_some(Fact::RegionCoverage { operator, regions })
}

fn parse_low_lat_share(sentence: &str) -> Option<Fact> {
    const MARKER: &str = " percent of ";
    const TAIL: &str = "'s data center sites sit at low geomagnetic latitudes";
    let tail_idx = sentence.find(TAIL)?;
    let idx = sentence[..tail_idx].find(MARKER)?;
    let operator = sentence[idx + MARKER.len()..tail_idx].trim().to_string();
    let head = &sentence[..idx];
    let num_start = head.rfind(' ').map(|i| i + 1).unwrap_or(0);
    let percent = leading_number(&head[num_start..])?;
    Some(Fact::LowLatShare { operator, percent })
}

fn parse_presence(sentence: &str) -> Option<Fact> {
    const MARKER: &str = " operates a data center in ";
    let idx = sentence.find(MARKER)?;
    let operator = last_word_span(&sentence[..idx])?;
    let rest = sentence[idx + MARKER.len()..].trim_end_matches('.');
    let (site, region) = rest.rsplit_once(", in ")?;
    let (city, country) = site.rsplit_once(", ")?;
    Some(Fact::DcPresence {
        operator,
        city: city.trim().to_string(),
        country: country.trim().to_string(),
        region: region.trim().to_string(),
    })
}

fn parse_storm(sentence: &str) -> Option<Fact> {
    const MARKER: &str = " reached an estimated Dst of ";
    let idx = sentence.find(MARKER)?;
    let head = sentence[..idx].trim();
    let head = head.strip_prefix("The ").unwrap_or(head);
    let (year, name) = match head.split_once(' ') {
        Some((y, rest)) if y.len() == 4 && y.chars().all(|c| c.is_ascii_digit()) => {
            (y.parse().ok(), rest.to_string())
        }
        _ => (None, head.to_string()),
    };
    let rest = &sentence[idx + MARKER.len()..];
    let dst = leading_number(rest)?;
    rest.contains("nanotesla")
        .then_some(Fact::StormDst { name, year, dst })
}

fn parse_grid(sentence: &str) -> Option<Fact> {
    const SERVES: &str = " serves ";
    const SITS: &str = " and sits at about ";
    let serves_idx = sentence.find(SERVES)?;
    let sits_idx = sentence.find(SITS)?;
    if sits_idx <= serves_idx {
        return None;
    }
    let grid = sentence[..serves_idx]
        .trim()
        .strip_prefix("The ")
        .unwrap_or(&sentence[..serves_idx])
        .to_string();
    let region = sentence[serves_idx + SERVES.len()..sits_idx]
        .trim()
        .to_string();
    let rest = &sentence[sits_idx + SITS.len()..];
    let degrees = leading_number(rest)?;
    rest.contains("degrees geomagnetic latitude")
        .then_some(Fact::RegionGridLatitude {
            grid,
            region,
            degrees,
        })
}

fn parse_incident_cause(sentence: &str) -> Option<Fact> {
    const MARKER: &str = " was caused by ";
    let idx = sentence.find(MARKER)?;
    let head = sentence[..idx].trim();
    let head = head.strip_prefix("The ").unwrap_or(head);
    // Require the "{year} {name}" shape so prose like "the outage was
    // caused by" without a named subject is ignored.
    let (year, _) = head.split_once(' ')?;
    if !(year.len() == 4 && year.chars().all(|c| c.is_ascii_digit())) {
        return None;
    }
    let cause = sentence[idx + MARKER.len()..].trim_end_matches('.').trim();
    (!cause.is_empty()).then(|| Fact::IncidentCause {
        incident: head.to_string(),
        cause: cause.to_string(),
    })
}

/// Text following a marker up to the sentence end.
fn parse_after_marker(sentence: &str, marker: &str) -> Option<String> {
    let idx = sentence.find(marker)?;
    let rest = sentence[idx + marker.len()..].trim_end_matches('.').trim();
    (!rest.is_empty()).then(|| rest.to_string())
}

fn parse_cables_cut(sentence: &str) -> Option<Fact> {
    const MARKER: &str = " severed ";
    const TAIL: &str = " submarine cables";
    let idx = sentence.find(MARKER)?;
    let head = sentence[..idx].trim();
    let head = head.strip_prefix("The ").unwrap_or(head);
    let rest = &sentence[idx + MARKER.len()..];
    let count = leading_number(rest)? as u32;
    rest.contains(TAIL.trim_start())
        .then(|| Fact::IncidentCablesCut {
            incident: head.to_string(),
            count,
        })
}

fn parse_incident_traffic(sentence: &str) -> Option<Fact> {
    const HEAD: &str = "During the ";
    const MARKER: &str = "global Internet traffic grew by about ";
    let head_idx = sentence.find(HEAD)?;
    let marker_idx = sentence.find(MARKER)?;
    if marker_idx <= head_idx {
        return None;
    }
    let incident = sentence[head_idx + HEAD.len()..marker_idx]
        .trim_end_matches(|c: char| c == ',' || c.is_whitespace())
        .to_string();
    let rest = &sentence[marker_idx + MARKER.len()..];
    let percent = leading_number(rest)?;
    rest.contains("percent")
        .then_some(Fact::IncidentTraffic { incident, percent })
}

/// "The {cable} cable was severed by {cause}."
fn parse_cable_cut(sentence: &str) -> Option<Fact> {
    const MARKER: &str = " cable was severed by ";
    let idx = sentence.find(MARKER)?;
    let head = sentence[..idx].trim();
    let cable = head.strip_prefix("The ").unwrap_or(head);
    if cable.is_empty() || cable.len() > 60 {
        return None;
    }
    let cause = sentence[idx + MARKER.len()..].trim_end_matches('.').trim();
    (!cause.is_empty()).then(|| Fact::CableCut {
        cable: cable.to_string(),
        cause: cause.to_string(),
    })
}

/// "The {cable} system spans about {n} km." — the scenario-doc length
/// form carries its own entity (unlike the solar "spans approximately
/// … kilometres" form, which binds to the running subject).
fn parse_cable_span(sentence: &str) -> Option<Fact> {
    const MARKER: &str = " system spans about ";
    let idx = sentence.find(MARKER)?;
    let head = sentence[..idx].trim();
    let entity = head.strip_prefix("The ").unwrap_or(head);
    if entity.is_empty() || entity.len() > 60 {
        return None;
    }
    let rest = &sentence[idx + MARKER.len()..];
    let km = leading_number(rest)?;
    rest.contains(" km").then(|| Fact::LengthKm {
        entity: entity.to_string(),
        km,
    })
}

/// "The {grid} power grid collapsed when {cause}."
fn parse_grid_collapse(sentence: &str) -> Option<Fact> {
    const MARKER: &str = " power grid collapsed when ";
    let idx = sentence.find(MARKER)?;
    let head = sentence[..idx].trim();
    let grid = head.strip_prefix("The ").unwrap_or(head);
    if grid.is_empty() || grid.len() > 60 {
        return None;
    }
    let cause = sentence[idx + MARKER.len()..].trim_end_matches('.').trim();
    (!cause.is_empty()).then(|| Fact::GridCollapse {
        grid: grid.to_string(),
        cause: cause.to_string(),
    })
}

/// "{grid} has the highest GIC exposure of any major grid." /
/// "We rank grids by GIC exposure and find {grid} most exposed."
fn parse_grid_most_exposed(sentence: &str) -> Option<Fact> {
    if let Some(idx) = sentence.find(" has the highest GIC exposure") {
        let head = sentence[..idx].trim();
        let grid = head.strip_prefix("The ").unwrap_or(head);
        if !grid.is_empty() && grid.len() <= 60 {
            return Some(Fact::GridMostExposed {
                grid: grid.to_string(),
            });
        }
    }
    const FIND: &str = "and find ";
    const TAIL: &str = " most exposed";
    let idx = sentence.find(FIND)?;
    let rest = &sentence[idx + FIND.len()..];
    let end = rest.find(TAIL)?;
    let grid = rest[..end].trim();
    (!grid.is_empty() && grid.len() <= 60).then(|| Fact::GridMostExposed {
        grid: grid.to_string(),
    })
}

/// "Grids at low geomagnetic latitude, such as {grid}, show
/// negligible exposure."
fn parse_grid_low_latitude(sentence: &str) -> Option<Fact> {
    if !sentence.contains("low geomagnetic latitude") {
        return None;
    }
    const FIND: &str = "such as ";
    let idx = sentence.find(FIND)?;
    let rest = &sentence[idx + FIND.len()..];
    let end = rest.find(", show negligible")?;
    let grid = rest[..end].trim();
    (!grid.is_empty() && grid.len() <= 60).then(|| Fact::GridLowLatitude {
        grid: grid.to_string(),
    })
}

/// The word(s) immediately before a marker — operator names are one
/// word ("Google", "Facebook"), so take the trailing word.
fn last_word_span(head: &str) -> Option<String> {
    let w = head.trim_end().rsplit(|c: char| c.is_whitespace()).next()?;
    let w = w.trim_matches(|c: char| !c.is_alphanumeric());
    (!w.is_empty()).then(|| w.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    const ROUTE: &str = "The EllaLink submarine cable connects Fortaleza, Brazil to Sines, \
                         Portugal, linking South America and Europe.";

    #[test]
    fn route_parses_fully() {
        let ex = Extraction::from_text(ROUTE, None);
        assert_eq!(ex.facts.len(), 1);
        match &ex.facts[0] {
            Fact::CableRoute {
                name,
                from_country,
                to_country,
                from_region,
                to_region,
                ..
            } => {
                assert_eq!(name, "EllaLink");
                assert_eq!(from_country, "Brazil");
                assert_eq!(to_country, "Portugal");
                assert_eq!(from_region, "South America");
                assert_eq!(to_region, "Europe");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn subject_binds_following_facts() {
        let text = format!(
            "{ROUTE} The system spans approximately 6134 kilometres. Along its route it \
             reaches a maximum geomagnetic latitude of 46.3 degrees. The cable is powered \
             through roughly 87 optical repeaters."
        );
        let ex = Extraction::from_text(&text, None);
        assert_eq!(ex.apex_of("EllaLink"), Some(46.3));
        assert!(ex.facts.contains(&Fact::LengthKm {
            entity: "EllaLink".into(),
            km: 6134.0
        }));
        assert!(ex.facts.contains(&Fact::RepeaterCount {
            entity: "EllaLink".into(),
            count: 87
        }));
    }

    #[test]
    fn subject_hint_binds_when_no_route_sentence() {
        let text = "Along its route it reaches a maximum geomagnetic latitude of 63.0 degrees.";
        let ex = Extraction::from_text(text, Some("Grace Hopper"));
        assert_eq!(ex.apex_of("Grace Hopper"), Some(63.0));
        // Without a hint the fact is dropped rather than misattributed.
        let ex = Extraction::from_text(text, None);
        assert!(ex.facts.is_empty());
    }

    #[test]
    fn social_apex_form_carries_its_own_entity() {
        let text = "TIL: The MAREA cable reaches a maximum geomagnetic latitude of 55.2 degrees.";
        let ex = Extraction::from_text(text, None);
        assert_eq!(ex.apex_of("MAREA"), Some(55.2));
    }

    #[test]
    fn fleet_facts_parse() {
        let text = "Google operates data centers in 7 of the world's 7 major regions. About 26 \
                    percent of Google's data center sites sit at low geomagnetic latitudes.";
        let ex = Extraction::from_text(text, None);
        assert_eq!(ex.coverage_of("google"), Some(7));
        assert_eq!(ex.low_lat_share_of("Google"), Some(26.0));
    }

    #[test]
    fn presence_parses_with_abbreviated_city() {
        let text = "Google operates a data center in St. Ghislain, Belgium, in Europe.";
        let ex = Extraction::from_text(text, None);
        assert_eq!(ex.presences_of("google").len(), 1);
        match ex.presences_of("google")[0] {
            Fact::DcPresence {
                city,
                country,
                region,
                ..
            } => {
                assert_eq!(city, "St. Ghislain");
                assert_eq!(country, "Belgium");
                assert_eq!(region, "Europe");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn storm_dst_parses() {
        let text = "The 1859 Carrington event reached an estimated Dst of -1760 nanotesla.";
        let ex = Extraction::from_text(text, None);
        assert_eq!(
            ex.facts[0],
            Fact::StormDst {
                name: "Carrington event".into(),
                year: Some(1859),
                dst: -1760.0
            }
        );
    }

    #[test]
    fn grid_latitude_parses() {
        let text = "The Singapore Grid serves Asia and sits at about 8 degrees geomagnetic \
                    latitude.";
        let ex = Extraction::from_text(text, None);
        assert_eq!(ex.region_latitude("Asia"), Some(8.0));
    }

    #[test]
    fn region_latitude_averages_multiple_grids() {
        let text = "The US Eastern Interconnection serves North America and sits at about 50 \
                    degrees geomagnetic latitude. The ERCOT serves North America and sits at \
                    about 40 degrees geomagnetic latitude.";
        let ex = Extraction::from_text(text, None);
        assert_eq!(ex.region_latitude("North America"), Some(45.0));
    }

    #[test]
    fn principles_detected_case_insensitively() {
        let text = "Geomagnetically induced currents grow stronger at higher geomagnetic \
                    latitudes. Terrestrial fiber links are short and unrepeated, leaving them \
                    far less exposed than submarine cables.";
        let ex = Extraction::from_text(text, None);
        assert!(ex.principles.contains(&Principle::LatitudeRisk));
        assert!(ex.principles.contains(&Principle::TerrestrialSafety));
        assert!(!ex.principles.contains(&Principle::GridThreat));
    }

    #[test]
    fn distractor_text_yields_nothing() {
        let text = "The storm dropped five centimetres of rain in an hour. Streaming services \
                    continue to erode the cable subscriber base. Rooftop solar output peaks \
                    around noon local time.";
        let ex = Extraction::from_text(text, None);
        assert!(ex.is_empty(), "got {ex:?}");
    }

    #[test]
    fn merge_deduplicates() {
        let a = Extraction::from_text(ROUTE, None);
        let mut b = Extraction::from_text(ROUTE, None);
        b.merge(&a);
        assert_eq!(b.facts.len(), 1);
    }

    #[test]
    fn sentence_splitter_respects_abbreviations() {
        let s = split_sentences(
            "Google operates a data center in St. Ghislain, Belgium, in Europe. Next sentence.",
        );
        assert_eq!(s.len(), 2);
        assert!(s[0].contains("St. Ghislain"));
    }

    #[test]
    fn sentence_splitter_handles_decimals() {
        let s = split_sentences("It reaches 46.3 degrees. Second.");
        assert_eq!(s.len(), 2);
        assert!(s[0].contains("46.3"));
    }

    const INCIDENT_TEXT: &str = "The 2021 Facebook outage was caused by a faulty BGP \
        configuration change that withdrew the routes to its own DNS servers. The main \
        effect on the Internet was that every service became unreachable at once. Service \
        was disrupted for about 7 hours.";

    #[test]
    fn incident_cause_effect_and_duration_parse_with_subject_binding() {
        let ex = Extraction::from_text(INCIDENT_TEXT, None);
        assert!(ex.facts.iter().any(|f| matches!(
            f,
            Fact::IncidentCause { incident, cause }
                if incident == "2021 Facebook outage" && cause.contains("BGP")
        )));
        assert!(ex.facts.iter().any(|f| matches!(
            f,
            Fact::IncidentEffect { incident, effect }
                if incident == "2021 Facebook outage" && effect.contains("unreachable")
        )));
        assert!(ex.facts.iter().any(|f| matches!(
            f,
            Fact::IncidentDuration { incident, hours }
                if incident == "2021 Facebook outage" && *hours == 7.0
        )));
    }

    #[test]
    fn cables_cut_and_traffic_parse() {
        let text = "The 2006 Hengchun earthquake severed 8 submarine cables. During the 2020 \
                    COVID-19 lockdown surge, global Internet traffic grew by about 20 percent.";
        let ex = Extraction::from_text(text, None);
        assert!(ex.facts.contains(&Fact::IncidentCablesCut {
            incident: "2006 Hengchun earthquake".into(),
            count: 8
        }));
        assert!(ex.facts.contains(&Fact::IncidentTraffic {
            incident: "2020 COVID-19 lockdown surge".into(),
            percent: 20.0
        }));
    }

    #[test]
    fn cause_without_year_shape_is_ignored() {
        let ex = Extraction::from_text("The outage was caused by a squirrel.", None);
        assert!(ex.facts.is_empty());
    }

    #[test]
    fn incident_matching_is_bidirectional_containment() {
        assert!(incident_matches("2021 Facebook outage", "facebook outage"));
        assert!(incident_matches("facebook outage", "2021 Facebook outage"));
        assert!(!incident_matches(
            "2021 Facebook outage",
            "hengchun earthquake"
        ));
    }

    #[test]
    fn apex_of_is_the_median_of_distinct_values() {
        let text = "The EllaLink cable reaches a maximum geomagnetic latitude of 46.0 degrees. \
                    The EllaLink cable reaches a maximum geomagnetic latitude of 75.0 degrees. \
                    The EllaLink cable reaches a maximum geomagnetic latitude of 46.2 degrees.";
        let ex = Extraction::from_text(text, None);
        assert_eq!(ex.apex_values("EllaLink").len(), 3);
        assert_eq!(
            ex.apex_of("EllaLink"),
            Some(46.2),
            "median resists one outlier"
        );
    }

    #[test]
    fn apex_conflict_detects_disagreeing_sources() {
        let honest = Extraction::from_text(
            "The MAREA cable reaches a maximum geomagnetic latitude of 55.0 degrees. \
             The MAREA cable reaches a maximum geomagnetic latitude of 55.4 degrees.",
            None,
        );
        assert!(!honest.apex_conflict("MAREA", 15.0));
        let poisoned = Extraction::from_text(
            "The MAREA cable reaches a maximum geomagnetic latitude of 55.0 degrees. \
             The MAREA cable reaches a maximum geomagnetic latitude of 80.0 degrees.",
            None,
        );
        assert!(poisoned.apex_conflict("MAREA", 15.0));
        assert!(!poisoned.apex_conflict("unknown entity", 15.0));
    }

    #[test]
    fn cable_cut_doc_sentences_parse() {
        let text = "The Anjana cable was severed by a subsea landslide on the continental \
                    slope. Traffic rerouted onto 14 parallel transatlantic cable systems \
                    within minutes. The Anjana system spans about 7675 km. The break took \
                    about 109 optical repeaters out of service. Because 14 parallel systems \
                    serve the corridor, North America and Europe stayed connected. A cable \
                    repair ship grapples the damaged section and splices in a new span.";
        let ex = Extraction::from_text(text, None);
        assert!(ex.facts.contains(&Fact::CableCut {
            cable: "Anjana".into(),
            cause: "a subsea landslide on the continental slope".into()
        }));
        assert!(ex.facts.contains(&Fact::CorridorSurvivors { count: 14 }));
        assert!(ex.facts.contains(&Fact::LengthKm {
            entity: "Anjana".into(),
            km: 7675.0
        }));
        assert!(
            ex.facts.contains(&Fact::RepeaterCount {
                entity: "Anjana".into(),
                count: 109
            }),
            "span sentence must bind the subject for the repeater count: {ex:?}"
        );
        assert!(ex.principles.contains(&Principle::CableRepair));
    }

    #[test]
    fn grid_failure_doc_sentences_parse() {
        let text = "The Hydro-Québec power grid collapsed when geomagnetically induced \
                    currents saturated its extra-high-voltage transformers. Extra-high-voltage \
                    transformers saturate and overheat under sustained GIC. Hydro-Québec has \
                    the highest GIC exposure of any major grid. We rank grids by GIC exposure \
                    and find Hydro-Québec most exposed. Grids at low geomagnetic latitude, \
                    such as Singapore Grid, show negligible exposure.";
        let ex = Extraction::from_text(text, None);
        assert!(ex.facts.contains(&Fact::GridCollapse {
            grid: "Hydro-Québec".into(),
            cause: "geomagnetically induced currents saturated its extra-high-voltage \
                    transformers"
                .into()
        }));
        assert!(ex.facts.contains(&Fact::GridMostExposed {
            grid: "Hydro-Québec".into()
        }));
        assert!(ex.facts.contains(&Fact::GridLowLatitude {
            grid: "Singapore Grid".into()
        }));
        assert!(ex.principles.contains(&Principle::TransformerSaturation));
    }

    #[test]
    fn route_leak_doc_sentences_parse() {
        let text = "A configuration error withdrew the BGP routes for Facebook's DNS \
                    prefixes. Only 0 percent of edge networks could reach facebook.com during \
                    the incident. The content prefixes stayed announced, but with the \
                    nameservers unreachable no client could resolve the service. Availability \
                    was restored to 100 percent once the prefixes were re-announced.";
        let ex = Extraction::from_text(text, None);
        assert!(ex.principles.contains(&Principle::BgpDnsWithdrawal));
        assert!(ex.facts.contains(&Fact::EdgeAvailability {
            during: true,
            percent: 0.0
        }));
        assert!(ex.facts.contains(&Fact::EdgeAvailability {
            during: false,
            percent: 100.0
        }));
        assert!(ex.facts.contains(&Fact::ContentPrefixesAnnounced));
    }

    #[test]
    fn scenario_parsers_ignore_solar_and_distractor_prose() {
        // Sentences the solar corpus actually publishes must not grow
        // any of the scenario-class facts.
        let text = "The EllaLink submarine cable connects Fortaleza, Brazil to Sines, \
                    Portugal, linking South America and Europe. The 2006 Hengchun earthquake \
                    severed 8 submarine cables. The storm dropped five centimetres of rain.";
        let ex = Extraction::from_text(text, None);
        assert!(!ex.facts.iter().any(|f| matches!(
            f,
            Fact::CableCut { .. }
                | Fact::CorridorSurvivors { .. }
                | Fact::GridCollapse { .. }
                | Fact::GridMostExposed { .. }
                | Fact::GridLowLatitude { .. }
                | Fact::EdgeAvailability { .. }
                | Fact::ContentPrefixesAnnounced
        )));
    }

    #[test]
    fn numbers_with_signs_parse() {
        assert_eq!(leading_number("-1760 nanotesla"), Some(-1760.0));
        assert_eq!(leading_number("46.3 degrees"), Some(46.3));
        assert_eq!(leading_number("no number"), None);
    }

    /// A context exercising every fact shape the index covers.
    fn rich_extraction() -> Extraction {
        Extraction::from_text(
            "The EllaLink submarine cable connects Fortaleza, Brazil to Sines, Portugal, \
             linking South America and Europe. Along its route it reaches a maximum \
             geomagnetic latitude of 46.0 degrees. \
             The Grace Hopper submarine cable connects New York, United States to Bude, \
             United Kingdom, linking North America and Europe. Along its route it reaches a \
             maximum geomagnetic latitude of 63.0 degrees. \
             Google operates data centers in 7 of the world's 7 major regions. About 26 \
             percent of Google's data center sites sit at low geomagnetic latitudes. \
             Google operates a data center in St. Ghislain, Belgium, in Europe. \
             Google operates a data center in Singapore, Singapore, in Asia. \
             The US Eastern Interconnection serves North America and sits at about 50 \
             degrees geomagnetic latitude. The Singapore Grid serves Asia and sits at about \
             8 degrees geomagnetic latitude. \
             The 2021 Facebook outage was caused by a faulty BGP configuration change. \
             Service was disrupted for about 7 hours.",
            None,
        )
    }

    #[test]
    fn index_agrees_with_scan_accessors() {
        let ex = rich_extraction();
        let idx = ExtractionIndex::build(&ex);
        for op in ["google", "Google", "GOOGLE", "facebook", "nobody"] {
            assert_eq!(idx.coverage_of(op), ex.coverage_of(op), "coverage {op}");
            assert_eq!(
                idx.low_lat_share_of(op),
                ex.low_lat_share_of(op),
                "lowlat {op}"
            );
            assert_eq!(
                idx.presence_count(op),
                ex.presences_of(op).len(),
                "presences {op}"
            );
        }
        for region in ["Asia", "north america", "Europe", "Atlantis"] {
            assert_eq!(
                idx.region_latitude(region),
                ex.region_latitude(region),
                "region {region}"
            );
        }
        for entity in ["EllaLink", "Grace Hopper", "ellalink", "nope"] {
            assert_eq!(idx.apex_of(entity), ex.apex_of(entity), "apex {entity}");
            assert_eq!(
                idx.apex_conflict(entity, 15.0),
                ex.apex_conflict(entity, 15.0),
                "conflict {entity}"
            );
        }
        assert!(idx.has_singapore_grid());
    }

    #[test]
    fn index_coverage_first_fact_wins_like_the_scan() {
        let text = "Google operates data centers in 7 of the world's 7 major regions. \
                    Google operates data centers in 3 of the world's 7 major regions.";
        let ex = Extraction::from_text(text, None);
        let idx = ExtractionIndex::build(&ex);
        assert_eq!(ex.coverage_of("google"), Some(7));
        assert_eq!(idx.coverage_of("google"), Some(7));
    }

    #[test]
    fn index_route_matching_covers_both_directions() {
        let ex = rich_extraction();
        let idx = ExtractionIndex::build(&ex);
        assert_eq!(idx.routes_matching("brazil", "europe"), vec!["EllaLink"]);
        assert_eq!(idx.routes_matching("europe", "brazil"), vec!["EllaLink"]);
        assert_eq!(
            idx.routes_matching("united states", "europe"),
            vec!["Grace Hopper"]
        );
        assert!(idx.routes_matching("asia", "africa").is_empty());
    }

    #[test]
    fn index_incident_facts_match_bidirectional_containment() {
        let ex = rich_extraction();
        let idx = ExtractionIndex::build(&ex);
        assert_eq!(idx.incident_facts("facebook outage").len(), 2);
        assert_eq!(idx.incident_facts("2021 Facebook outage").len(), 2);
        assert!(idx.incident_facts("hengchun").is_empty());
        // Order is fact order.
        assert!(matches!(
            idx.incident_facts("facebook outage")[0],
            Fact::IncidentCause { .. }
        ));
    }
}
