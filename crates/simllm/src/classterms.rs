//! Per-scenario-class search vocabulary, built on the interned
//! lexicon.
//!
//! The self-learning loop turns scenario-class [`MissingKnowledge`]
//! items into search queries. Instead of hard-coding one query string
//! per intent, the query vocabulary lives here in per-class term
//! tables — one table per registered scenario-class label (mirroring
//! `ScenarioClass::label()` in `ira-worldmodel`; `ira-evalkit` pins
//! the correspondence) — interned once into a shared [`Interner`] so
//! membership tests are symbol compares. Queries drawn from a class's
//! table carry the lexicon its scenarios' event documents actually
//! publish, which is what lets BM25 retrieval surface those documents
//! ahead of distractors.
//!
//! [`MissingKnowledge`]: crate::reason::MissingKnowledge

use crate::lexicon::{Interner, Term, TermSet};
use std::sync::OnceLock;

/// One vocabulary table per scenario class. Labels mirror
/// `ScenarioClass::label()` in `ira-worldmodel`; word order is query
/// order.
const TABLES: &[(&str, &[&str])] = &[
    (
        "geomagnetic",
        &[
            "solar",
            "superstorm",
            "geomagnetic",
            "storm",
            "cable",
            "repeaters",
            "latitude",
            "grid",
        ],
    ),
    (
        "physical-damage",
        &[
            "submarine",
            "cable",
            "severed",
            "landslide",
            "repair",
            "ship",
            "splice",
            "rerouted",
            "parallel",
            "transatlantic",
            "repeaters",
            "spans",
        ],
    ),
    (
        "power-failure",
        &[
            "power",
            "grid",
            "collapse",
            "geomagnetically",
            "induced",
            "currents",
            "transformers",
            "gic",
            "exposure",
            "latitude",
            "negligible",
        ],
    ),
    (
        "routing",
        &[
            "bgp",
            "routes",
            "withdrawn",
            "dns",
            "prefixes",
            "nameservers",
            "availability",
            "edge",
            "networks",
            "re-announced",
        ],
    ),
];

/// The interned per-class vocabulary tables.
pub struct ClassLexicon {
    interner: Interner,
    classes: Vec<(&'static str, Vec<Term>, TermSet)>,
}

impl ClassLexicon {
    fn build() -> Self {
        let mut interner = Interner::new();
        let mut classes = Vec::new();
        for (label, words) in TABLES {
            let terms: Vec<Term> = words.iter().map(|w| interner.intern(w)).collect();
            let set = TermSet::from_terms(terms.clone());
            classes.push((*label, terms, set));
        }
        ClassLexicon { interner, classes }
    }

    /// The process-wide table set (built once; the tables are static).
    pub fn shared() -> &'static ClassLexicon {
        static SHARED: OnceLock<ClassLexicon> = OnceLock::new();
        SHARED.get_or_init(ClassLexicon::build)
    }

    /// Every class label with a vocabulary table, in table order.
    pub fn labels(&self) -> Vec<&'static str> {
        self.classes.iter().map(|(l, _, _)| *l).collect()
    }

    /// The vocabulary for a class label, in query order.
    pub fn vocabulary(&self, label: &str) -> Option<Vec<&str>> {
        let (_, terms, _) = self.classes.iter().find(|(l, _, _)| *l == label)?;
        Some(
            terms
                .iter()
                .filter_map(|t| self.interner.resolve(*t))
                .collect(),
        )
    }

    /// Is `word` (lowercase) in the class's vocabulary? Symbol compare
    /// via the shared interner.
    pub fn covers(&self, label: &str, word: &str) -> bool {
        let Some((_, _, set)) = self.classes.iter().find(|(l, _, _)| *l == label) else {
            return false;
        };
        self.interner.get(word).is_some_and(|t| set.contains(t))
    }

    /// Render a search query for a class, optionally anchored on a
    /// named entity (cable, grid, or service).
    pub fn query(&self, label: &str, entity: &str) -> String {
        let vocab = self.vocabulary(label).unwrap_or_default().join(" ");
        if entity.is_empty() {
            vocab
        } else {
            format!("{entity} {vocab}")
        }
    }
}

/// Convenience: a class-table query through the shared tables.
pub fn incident_query(label: &str, entity: &str) -> String {
    ClassLexicon::shared().query(label, entity)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_table_resolves_its_own_vocabulary() {
        let lex = ClassLexicon::shared();
        for label in lex.labels() {
            let vocab = lex.vocabulary(label).expect("table exists");
            assert!(!vocab.is_empty(), "{label} table empty");
            for word in &vocab {
                assert!(lex.covers(label, word), "{label} must cover {word}");
            }
        }
    }

    #[test]
    fn registered_scenario_classes_all_have_tables() {
        // Labels must mirror ScenarioClass::label() in ira-worldmodel;
        // the evalkit integration suite pins the live correspondence.
        let labels = ClassLexicon::shared().labels();
        for expected in ["geomagnetic", "physical-damage", "power-failure", "routing"] {
            assert!(labels.contains(&expected), "missing table for {expected}");
        }
    }

    #[test]
    fn queries_carry_entity_and_class_vocabulary() {
        let q = incident_query("physical-damage", "anjana");
        assert!(q.starts_with("anjana "), "{q}");
        assert!(q.contains("severed") && q.contains("landslide"), "{q}");
        let generic = incident_query("routing", "");
        assert!(generic.starts_with("bgp"), "{generic}");
        assert!(!generic.starts_with(' '));
    }

    #[test]
    fn unknown_class_yields_empty_query() {
        assert_eq!(incident_query("volcanic", ""), "");
        assert!(!ClassLexicon::shared().covers("volcanic", "lava"));
    }
}
