//! The [`Llm`] facade: the single entry point agents use to "call the
//! model". Assembles prompts under the context window, runs extraction
//! and reasoning, accounts tokens, and exposes the typed helper calls
//! the agent architecture needs (answering, confidence assessment,
//! search proposal, planning).

use crate::chat::{Message, Prompt};
use crate::extract::{Extraction, Principle};
use crate::intent::classify;
use crate::lexicon::{fingerprint64, fingerprint_texts, ops};
use crate::plangen::{self, ActionPlan};
use crate::reason::{self, Answer, MissingKnowledge};
use crate::token::{count_tokens, ContextWindow};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Model configuration.
#[derive(Debug, Clone, Copy)]
pub struct LlmConfig {
    pub context: ContextWindow,
    /// Seed for sampling (query phrasing variation).
    pub seed: u64,
    /// Sampling temperature in [0, 1]; 0 = always the canonical
    /// phrasing.
    pub temperature: f64,
    /// Memoize grounded answers and per-chunk extractions (on by
    /// default). Cache hits replay the exact token charges of the
    /// computation they skip, so stats, traces, and the virtual clock
    /// are byte-identical either way; `false` re-derives everything
    /// per call (the legacy hot path, kept for the perf baseline).
    pub grounding_cache: bool,
}

impl Default for LlmConfig {
    fn default() -> Self {
        LlmConfig {
            context: ContextWindow::gpt4(),
            seed: 0,
            temperature: 0.0,
            grounding_cache: true,
        }
    }
}

/// Cumulative usage counters, the basis of the training-cost
/// experiment (E6).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LlmStats {
    pub calls: u64,
    pub prompt_tokens: u64,
    pub completion_tokens: u64,
}

/// Callback invoked after every model call with (prompt_tokens,
/// completion_tokens). The agent layer uses it to charge simulated
/// inference latency to the virtual clock, reproducing the fact that a
/// real agent's wall time is dominated by API calls.
pub type InferenceHook = Arc<dyn Fn(usize, usize) + Send + Sync>;

/// A memoized grounded answer together with the token charges it
/// incurred when first computed. Replaying the charges on a hit keeps
/// [`LlmStats`] and the inference hook (and hence the virtual clock)
/// byte-identical to the uncached path.
#[derive(Clone)]
struct CachedAnswer {
    answer: Answer,
    prompt_tokens: usize,
    completion_tokens: usize,
}

/// Memoization state for the grounding hot path.
///
/// * `chunks` maps a knowledge chunk's exact text to its extraction.
///   Keyed by content (not a fingerprint) so a hash collision can never
///   substitute the wrong extraction. Absorbing chunks in kept order
///   from cached per-chunk extractions is provably identical to
///   absorbing the concatenated text sequentially: subject binding in
///   `Extraction::absorb` is local to each call, fact dedup is
///   order-preserving `contains`, and principles live in a `BTreeSet`.
/// * `answers` maps `(grounding mode, fingerprint64(question),
///   fingerprint_texts(kept_knowledge))` to the full answer. Because
///   retrieval (which is recency-dependent) happens *outside* the
///   model, the fingerprinted texts capture everything the answer
///   depends on; the mode component (see
///   [`Llm::set_grounding_mode`]) keeps answers computed under one
///   retrieval regime from ever being replayed under another.
#[derive(Default)]
struct GroundingState {
    chunks: HashMap<String, Arc<Extraction>>,
    answers: HashMap<(u64, u64, u64), CachedAnswer>,
}

/// The simulated language model.
pub struct Llm {
    config: LlmConfig,
    stats: Mutex<LlmStats>,
    rng: Mutex<ChaCha8Rng>,
    hook: Mutex<Option<InferenceHook>>,
    grounding: Mutex<GroundingState>,
    /// Retrieval-mode salt of the answer-cache key (0 = legacy flat
    /// retrieval). See [`Llm::set_grounding_mode`].
    grounding_mode: AtomicU64,
}

impl Llm {
    pub fn new(config: LlmConfig) -> Self {
        Llm {
            stats: Mutex::new(LlmStats::default()),
            rng: Mutex::new(ChaCha8Rng::seed_from_u64(config.seed)),
            hook: Mutex::new(None),
            grounding: Mutex::new(GroundingState::default()),
            grounding_mode: AtomicU64::new(0),
            config,
        }
    }

    /// A GPT-4-shaped model with the given seed.
    pub fn gpt4(seed: u64) -> Self {
        Llm::new(LlmConfig {
            seed,
            ..LlmConfig::default()
        })
    }

    pub fn stats(&self) -> LlmStats {
        *self.stats.lock().expect("stats lock")
    }

    /// Install the inference-latency hook (see [`InferenceHook`]).
    pub fn set_inference_hook(&self, hook: InferenceHook) {
        *self.hook.lock().expect("hook lock") = Some(hook);
    }

    fn charge(&self, prompt: usize, completion: usize) {
        {
            let mut s = self.stats.lock().expect("stats lock");
            s.calls += 1;
            s.prompt_tokens += prompt as u64;
            s.completion_tokens += completion as u64;
        }
        if let Some(hook) = self.hook.lock().expect("hook lock").clone() {
            hook(prompt, completion);
        }
    }

    /// Assemble the knowledge context that fits the window alongside
    /// the question, newest-first retention. Returns the extraction and
    /// the prompt-token charge it incurred.
    fn grounded_extraction(&self, question: &str, knowledge: &[String]) -> (Extraction, usize) {
        let reserved = count_tokens(question) + 64;
        let (kept, _dropped) = self.config.context.fit(knowledge, reserved);
        let mut ex = Extraction::default();
        if self.config.grounding_cache {
            let mut g = self.grounding.lock().expect("grounding lock");
            for chunk in kept {
                let one = match g.chunks.get(chunk.as_str()) {
                    Some(hit) => {
                        ops::extract_hit();
                        Arc::clone(hit)
                    }
                    None => {
                        ops::extract_miss();
                        let mut fresh = Extraction::default();
                        fresh.absorb(chunk, None);
                        let fresh = Arc::new(fresh);
                        g.chunks.insert(chunk.clone(), Arc::clone(&fresh));
                        fresh
                    }
                };
                // Merging per-chunk extractions in kept order is
                // byte-identical to absorbing the chunks sequentially:
                // subject binding is local to each absorb call, fact
                // dedup preserves first-seen order, and principles are
                // an ordered set.
                ex.merge(&one);
            }
        } else {
            for chunk in kept {
                ex.absorb(chunk, None);
            }
        }
        let prompt_tokens: usize = kept.iter().map(|c| count_tokens(c)).sum::<usize>() + reserved;
        self.charge(prompt_tokens, 0);
        (ex, prompt_tokens)
    }

    /// Answer a question grounded in the supplied knowledge snippets.
    ///
    /// With [`LlmConfig::grounding_cache`] on, repeated calls with the
    /// same question and knowledge replay the memoized answer — and its
    /// exact token charges — instead of re-extracting and re-reasoning.
    pub fn answer(&self, question: &str, knowledge: &[String]) -> Answer {
        let key = (
            self.grounding_mode.load(Ordering::Relaxed),
            fingerprint64(question),
            fingerprint_texts(knowledge),
        );
        if self.config.grounding_cache {
            let hit = self
                .grounding
                .lock()
                .expect("grounding lock")
                .answers
                .get(&key)
                .cloned();
            if let Some(hit) = hit {
                ops::answer_hit();
                self.charge(hit.prompt_tokens, 0);
                self.charge(0, hit.completion_tokens);
                return hit.answer;
            }
            ops::answer_miss();
        }
        let intent = classify(question);
        let (ex, prompt_tokens) = self.grounded_extraction(question, knowledge);
        let ans = reason::answer(question, &intent, &ex);
        let completion_tokens = count_tokens(&ans.text);
        self.charge(0, completion_tokens);
        if self.config.grounding_cache {
            self.grounding
                .lock()
                .expect("grounding lock")
                .answers
                .insert(
                    key,
                    CachedAnswer {
                        answer: ans.clone(),
                        prompt_tokens,
                        completion_tokens,
                    },
                );
        }
        ans
    }

    /// Drop memoized answers. The agent layer calls this whenever its
    /// knowledge store changes: retrieval may now surface different
    /// chunks for the same question, so cached answers keyed on the old
    /// retrieved texts must not be trusted blindly. (Per-chunk
    /// extractions are content-addressed and stay valid forever.)
    ///
    /// Note the answer key already fingerprints the retrieved texts, so
    /// this is a belt-and-braces measure: it also bounds the map's
    /// growth across training epochs.
    pub fn invalidate_grounding(&self) {
        self.grounding
            .lock()
            .expect("grounding lock")
            .answers
            .clear();
    }

    /// Declare the retrieval mode producing this model's grounding
    /// knowledge (0 = legacy flat retrieval, the default; the agent
    /// layer passes 1 for graph-mode retrieval). The mode salts every
    /// answer-cache key, so answers cached under one retrieval regime
    /// are never replayed under another — with the default mode the
    /// keys (and therefore all cache behaviour, op counters, and token
    /// charges) are identical to the pre-mode cache.
    pub fn set_grounding_mode(&self, mode: u64) {
        self.grounding_mode.store(mode, Ordering::Relaxed);
    }

    /// The paper's confidence probe: "rate confidence on a scale from
    /// 0 to 10 to answer the following question".
    pub fn assess_confidence(&self, question: &str, knowledge: &[String]) -> u8 {
        self.answer(question, knowledge).confidence
    }

    /// The paper's self-learning probe: "what will you search for to
    /// get more information on this question?". Returns up to `max`
    /// deduplicated queries.
    pub fn propose_searches(
        &self,
        question: &str,
        knowledge: &[String],
        max: usize,
    ) -> Vec<String> {
        let ans = self.answer(question, knowledge);
        let mut queries = Vec::new();
        for missing in &ans.missing {
            if queries.len() >= max {
                break;
            }
            let q = self.query_for(missing);
            if !queries.contains(&q) {
                queries.push(q);
            }
        }
        queries
    }

    /// Render one missing-knowledge item as a search query.
    pub fn query_for(&self, missing: &MissingKnowledge) -> String {
        let alt = self.config.temperature > 0.0 && self.rng.lock().expect("rng").gen::<f64>() < 0.5;
        match missing {
            MissingKnowledge::CableRoute(spec) => {
                if alt {
                    format!("submarine cable between {} and {} route", spec.a, spec.b)
                } else {
                    // Deliberately not "fiber optic …": the discriminating
                    // terms are the endpoints, and padding the query with
                    // generic vocabulary lets lexical luck outrank them.
                    format!(
                        "specific route of the submarine cable connecting {} to {}",
                        spec.a, spec.b
                    )
                }
            }
            MissingKnowledge::CableApex { cable } => {
                format!("{cable} submarine cable maximum geomagnetic latitude degrees")
            }
            MissingKnowledge::OperatorFootprint(op) => {
                if alt {
                    format!("{op} data center regions worldwide")
                } else {
                    format!("{op} global data center footprint major regions")
                }
            }
            MissingKnowledge::OperatorPresence(op) => {
                format!("{op} data centers locations Asia South America Europe")
            }
            MissingKnowledge::RegionLatitude(region) => {
                format!("power grid geomagnetic latitude {region}")
            }
            MissingKnowledge::Principle(p) => principle_query(*p).to_string(),
            MissingKnowledge::PlanningGuidance => {
                "solar storm response plan shutdown strategy network operators".to_string()
            }
            MissingKnowledge::IncidentInfo(incident) => {
                format!("{incident} internet outage cause impact")
            }
            MissingKnowledge::CableIncidentInfo { cable } => {
                crate::classterms::incident_query("physical-damage", cable)
            }
            MissingKnowledge::GridIncidentInfo { grid } => {
                crate::classterms::incident_query("power-failure", grid)
            }
            MissingKnowledge::RoutingIncidentInfo { service } => {
                crate::classterms::incident_query("routing", service)
            }
        }
    }

    /// Plan how to achieve a goal (the Auto-GPT planning phase).
    pub fn plan_goal(&self, goal: &str) -> ActionPlan {
        let plan = plangen::plan_goal(goal);
        self.charge(
            count_tokens(goal) + 32,
            plan.steps
                .iter()
                .map(|s| count_tokens(&s.description))
                .sum(),
        );
        plan
    }

    /// Chain-of-thought decomposition of a compound task.
    pub fn decompose(&self, task: &str) -> Vec<String> {
        let aspects = plangen::decompose(task);
        self.charge(
            count_tokens(task) + 16,
            aspects.iter().map(|a| count_tokens(a)).sum(),
        );
        aspects
    }

    /// Generate a storm response / shutdown strategy from knowledge.
    pub fn shutdown_strategy(&self, knowledge: &[String]) -> Answer {
        self.answer(
            "Plan a shutdown strategy for network operators facing an incoming CME.",
            knowledge,
        )
    }

    /// Generic chat completion: classify the last user message and
    /// answer it from the prompt's own context. This is the untyped
    /// interface Auto-GPT-style tools drive.
    pub fn complete(&self, prompt: &Prompt) -> String {
        let question = prompt.last_user().unwrap_or_default().to_string();
        let context = prompt.context_text();
        let intent = classify(&question);
        let mut ex = Extraction::default();
        ex.absorb(&context, None);
        let ans = reason::answer(&question, &intent, &ex);
        self.charge(prompt.token_count(), count_tokens(&ans.text));
        ans.text
    }

    /// Convenience: a prompt carrying knowledge plus a question, the
    /// shape the agent uses for quiz answering.
    pub fn quiz_prompt(agent_name: &str, knowledge: &[String], question: &str) -> Prompt {
        let mut p = Prompt::new().with(Message::system(format!(
            "You are {agent_name}, an Internet researcher. Answer solely based on \
             {agent_name}'s knowledge below."
        )));
        for k in knowledge {
            p.push(Message::system(k.clone()));
        }
        p.push(Message::user(question.to_string()));
        p
    }
}

fn principle_query(p: Principle) -> &'static str {
    match p {
        Principle::LatitudeRisk => "geomagnetically induced currents higher latitudes effect",
        Principle::RepeaterWeakness => "submarine cable repeater vulnerable component fiber",
        Principle::DispersionResilience => "data center geographic dispersion resilience",
        Principle::LengthRisk => "long submarine cables repeaters failure risk",
        Principle::TerrestrialSafety => "terrestrial fiber links storm exposure",
        Principle::GridThreat => "geomagnetic storm power grid transformers",
        Principle::PartitionRisk => "internet continents partition cable failures",
        Principle::CableRepair => "submarine cable repair ship splice grapple",
        Principle::TransformerSaturation => {
            "extra-high-voltage transformer saturation GIC overheat"
        }
        Principle::BgpDnsWithdrawal => "bgp route withdrawal dns prefixes configuration error",
        Principle::PredictiveShutdown
        | Principle::RedundancyUtilization
        | Principle::PhasedShutdown
        | Principle::DataPreservation
        | Principle::GradualReboot => "solar storm response plan shutdown strategy operators",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CABLE_Q: &str = "Which is more vulnerable to solar activity? The fiber optic cable \
                           that connects Brazil to Europe or the one that connects the US to \
                           Europe?";

    fn knowledge() -> Vec<String> {
        vec![
            "Geomagnetically induced currents grow stronger at higher geomagnetic latitudes."
                .into(),
            "The EllaLink submarine cable connects Fortaleza, Brazil to Sines, Portugal, \
             linking South America and Europe. Along its route it reaches a maximum \
             geomagnetic latitude of 46.0 degrees."
                .into(),
            "The Grace Hopper submarine cable connects New York, United States to Bude, \
             United Kingdom, linking North America and Europe. Along its route it reaches a \
             maximum geomagnetic latitude of 63.0 degrees."
                .into(),
        ]
    }

    #[test]
    fn grounded_answer_through_the_facade() {
        let llm = Llm::gpt4(1);
        let ans = llm.answer(CABLE_Q, &knowledge());
        assert_eq!(ans.confidence, 9);
        assert!(ans.verdict.unwrap().contains("United States"));
    }

    #[test]
    fn confidence_probe_matches_answer() {
        let llm = Llm::gpt4(1);
        assert_eq!(llm.assess_confidence(CABLE_Q, &knowledge()), 9);
        assert_eq!(llm.assess_confidence(CABLE_Q, &[]), 2);
    }

    #[test]
    fn propose_searches_targets_missing_routes() {
        let llm = Llm::gpt4(1);
        let queries = llm.propose_searches(CABLE_Q, &[], 4);
        assert!(!queries.is_empty());
        assert!(
            queries
                .iter()
                .any(|q| q.contains("brazil") && q.contains("europe")),
            "queries: {queries:?}"
        );
        assert!(queries.iter().any(|q| q.contains("united states")));
    }

    #[test]
    fn scenario_questions_propose_class_searches() {
        let llm = Llm::gpt4(1);
        let cable = llm.propose_searches("What caused the Anjana submarine cable outage?", &[], 4);
        assert!(
            cable
                .iter()
                .any(|q| q.contains("anjana") && q.contains("landslide")),
            "cable queries: {cable:?}"
        );
        let grid = llm.propose_searches(
            "Which power grid is most exposed to geomagnetic storms?",
            &[],
            4,
        );
        assert!(
            grid.iter().any(|q| q.contains("gic") && q.contains("grid")),
            "grid queries: {grid:?}"
        );
        let routing = llm.propose_searches(
            "What took facebook.com offline in the routing incident?",
            &[],
            4,
        );
        assert!(
            routing
                .iter()
                .any(|q| q.contains("facebook.com") && q.contains("bgp")),
            "routing queries: {routing:?}"
        );
    }

    #[test]
    fn stats_accumulate_per_call() {
        let llm = Llm::gpt4(1);
        assert_eq!(llm.stats().calls, 0);
        llm.answer(CABLE_Q, &knowledge());
        let s = llm.stats();
        assert!(s.calls >= 1);
        assert!(s.prompt_tokens > 0);
        assert!(s.completion_tokens > 0);
    }

    #[test]
    fn oversized_knowledge_is_truncated_not_fatal() {
        let llm = Llm::new(LlmConfig {
            context: ContextWindow::new(256),
            ..LlmConfig::default()
        });
        let mut k = vec!["filler text that is irrelevant ".repeat(50); 20];
        k.extend(knowledge());
        // Newest-first retention keeps the real knowledge at the end.
        let ans = llm.answer(CABLE_Q, &k);
        assert_eq!(ans.confidence, 9);
    }

    #[test]
    fn complete_answers_from_prompt_context() {
        let llm = Llm::gpt4(1);
        let prompt = Llm::quiz_prompt("Bob", &knowledge(), CABLE_Q);
        let text = llm.complete(&prompt);
        assert!(text.contains("United States"), "got: {text}");
    }

    #[test]
    fn temperature_zero_is_deterministic() {
        let a = Llm::gpt4(7).propose_searches(CABLE_Q, &[], 4);
        let b = Llm::gpt4(7).propose_searches(CABLE_Q, &[], 4);
        assert_eq!(a, b);
    }

    #[test]
    fn plan_and_decompose_charge_tokens() {
        let llm = Llm::gpt4(1);
        let plan = llm.plan_goal("Understand solar superstorms and Coronal Mass Ejection");
        assert!(plan.search_count() >= 1);
        let aspects = llm.decompose("optic fiber cables, power supply systems");
        assert_eq!(aspects.len(), 2);
        assert!(llm.stats().calls >= 2);
    }

    #[test]
    fn cached_answer_replays_identical_charges() {
        let cached = Llm::gpt4(1);
        let uncached = Llm::new(LlmConfig {
            grounding_cache: false,
            ..LlmConfig::default()
        });
        let k = knowledge();
        for _ in 0..3 {
            let a = cached.answer(CABLE_Q, &k);
            let b = uncached.answer(CABLE_Q, &k);
            assert_eq!(a.text, b.text);
            assert_eq!(a.confidence, b.confidence);
            assert_eq!(cached.stats(), uncached.stats());
        }
        // Three answers, two charges each, either way.
        assert_eq!(cached.stats().calls, 6);
    }

    #[test]
    fn cache_distinguishes_questions_and_knowledge() {
        let llm = Llm::gpt4(1);
        let grounded = llm.answer(CABLE_Q, &knowledge());
        let ungrounded = llm.answer(CABLE_Q, &[]);
        assert_ne!(grounded.confidence, ungrounded.confidence);
        // Same inputs again must reproduce the first results exactly.
        assert_eq!(llm.answer(CABLE_Q, &knowledge()).text, grounded.text);
        assert_eq!(llm.answer(CABLE_Q, &[]).text, ungrounded.text);
    }

    #[test]
    fn invalidate_grounding_recomputes_to_the_same_answer() {
        let llm = Llm::gpt4(1);
        let before = llm.answer(CABLE_Q, &knowledge());
        llm.invalidate_grounding();
        let after = llm.answer(CABLE_Q, &knowledge());
        assert_eq!(before.text, after.text);
        assert_eq!(before.confidence, after.confidence);
        // Inputs were unchanged, so even the recomputation charges the
        // same tokens: 3 answers x 2 charges.
        let third = llm.answer(CABLE_Q, &knowledge());
        assert_eq!(third.text, before.text);
        assert_eq!(llm.stats().calls, 6);
    }

    #[test]
    fn inference_hook_fires_identically_on_cache_hits() {
        let fired = Arc::new(Mutex::new(Vec::new()));
        let llm = Llm::gpt4(1);
        let sink = Arc::clone(&fired);
        llm.set_inference_hook(Arc::new(move |p, c| {
            sink.lock().unwrap().push((p, c));
        }));
        llm.answer(CABLE_Q, &knowledge());
        llm.answer(CABLE_Q, &knowledge());
        let events = fired.lock().unwrap().clone();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0], events[2], "prompt charge must replay");
        assert_eq!(events[1], events[3], "completion charge must replay");
    }

    #[test]
    fn shutdown_strategy_uses_planning_knowledge() {
        let llm = Llm::gpt4(1);
        let k = vec![
            "Upon warning of a coronal mass ejection, operators should preemptively shut \
             down the most vulnerable systems."
                .into(),
            "Traffic and operations should be redirected to redundant systems located in \
             safer, lower-latitude zones."
                .into(),
        ];
        let ans = llm.shutdown_strategy(&k);
        assert!(ans.text.contains("Predictive Shutdown"));
        assert!(ans.text.contains("Redundancy Utilization"));
    }
}
