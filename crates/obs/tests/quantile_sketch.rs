//! Property-based tests for the live-telemetry quantile sketch.
//!
//! The sketch's contract is algebraic: its state is a pure function of
//! the observed multiset, so merging shards in any grouping or order
//! must equal observing one combined stream — the property that makes
//! sharded serve telemetry worker-invariant.

use ira_obs::{QuantileSketch, SKETCH_EXACT_CAP};
use proptest::prelude::*;

fn sketch_of(values: &[u64]) -> QuantileSketch {
    let mut s = QuantileSketch::new();
    for &v in values {
        s.observe(v);
    }
    s
}

/// Ground truth: nearest-rank percentile over the sorted raw values.
fn nearest_rank(values: &[u64], ppm: u64) -> u64 {
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let rank =
        ((ppm as u128 * sorted.len() as u128).div_ceil(1_000_000) as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Durations spanning sub-ms up to beyond the largest bucket bound, so
/// cases explore both the exact and the saturated regime. The vendored
/// proptest has no `prop_oneof`, so regimes are picked by a class tag.
fn durations(max_len: usize) -> impl Strategy<Value = Vec<(usize, u64)>> {
    prop::collection::vec((0usize..4, 0u64..100_000_000), 0..max_len)
}

fn widen(tagged: &[(usize, u64)]) -> Vec<u64> {
    tagged
        .iter()
        .map(|&(class, raw)| match class {
            0 => raw % 1_000,
            1 => 1_000 + raw % 999_000,
            2 => 1_000_000 + raw,
            _ => u64::MAX,
        })
        .collect()
}

proptest! {
    #[test]
    fn merge_is_commutative(a in durations(100), b in durations(100)) {
        let (a, b) = (widen(&a), widen(&b));
        let mut ab = sketch_of(&a);
        ab.merge(&sketch_of(&b));
        let mut ba = sketch_of(&b);
        ba.merge(&sketch_of(&a));
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative(a in durations(60), b in durations(60), c in durations(60)) {
        let (a, b, c) = (widen(&a), widen(&b), widen(&c));
        let (sa, sb, sc) = (sketch_of(&a), sketch_of(&b), sketch_of(&c));
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn sharded_merge_equals_single_stream(values in durations(150), cut in 0usize..150) {
        let values = widen(&values);
        let cut = cut.min(values.len());
        let mut sharded = sketch_of(&values[..cut]);
        sharded.merge(&sketch_of(&values[cut..]));
        // Observation order must not matter either: the single stream
        // sees the same multiset sorted.
        let mut sorted = values.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sharded, sketch_of(&sorted));
    }

    #[test]
    fn small_windows_agree_exactly_with_sorted_percentiles(
        values in prop::collection::vec(0u64..u64::MAX, 1..=SKETCH_EXACT_CAP),
        ppm in 1u64..=1_000_000,
    ) {
        let sketch = sketch_of(&values);
        prop_assert!(sketch.is_exact());
        prop_assert_eq!(sketch.quantile_ppm(ppm), nearest_rank(&values, ppm));
    }

    #[test]
    fn saturated_quantiles_are_bounded_and_monotone(values in durations(300)) {
        prop_assume!(!values.is_empty());
        let values = widen(&values);
        let sketch = sketch_of(&values);
        let max = *values.iter().max().unwrap();
        let mut previous = 0u64;
        for ppm in [1, 100_000, 500_000, 950_000, 990_000, 1_000_000] {
            let q = sketch.quantile_ppm(ppm);
            prop_assert!(q <= max, "quantile {q} above observed max {max}");
            prop_assert!(q >= previous, "quantiles must be monotone in ppm");
            previous = q;
        }
        prop_assert_eq!(sketch.quantile_ppm(1_000_000), max,
            "p100 is the observed max even when bucketed");
        prop_assert_eq!(sketch.count, values.len() as u64);
    }

    #[test]
    fn count_boundary_controls_the_representation(extra in 0usize..10) {
        // Exactly at the cap the sketch stays exact; any observation or
        // merge past it saturates into buckets.
        let at_cap: Vec<u64> = (0..SKETCH_EXACT_CAP as u64).collect();
        let sketch = sketch_of(&at_cap);
        prop_assert!(sketch.is_exact());
        let mut grown = sketch.clone();
        grown.merge(&sketch_of(&vec![7; extra + 1]));
        prop_assert!(!grown.is_exact());
        prop_assert_eq!(grown.count, (SKETCH_EXACT_CAP + extra + 1) as u64);
    }
}
