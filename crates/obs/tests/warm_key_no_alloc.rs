//! Pins the zero-allocation contract of warm-key metrics folding.
//!
//! [`SummaryCollector::record`] formats the metric key into a reused
//! buffer and updates warm registry slots in place, so once a key has
//! been seen, folding further events for it must not touch the
//! allocator. A counting `#[global_allocator]` makes that a hard
//! assertion instead of a code-review promise.
//!
//! This test lives alone in its own integration-test binary: the
//! allocation counter is process-global, so no other test may run
//! concurrently with the measured window.

use ira_obs::{stage, Collector, SummaryCollector, TraceEvent};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn warm_key_summary_folding_allocates_nothing() {
    let collector = SummaryCollector::new();

    // Pre-build the events so constructing them (String fields) is not
    // charged to the folding path under test.
    let mut events = Vec::new();
    for i in 0..1_000u64 {
        events.push(TraceEvent::point(0, i, stage::NET, "cache_hit", ""));
        events.push(TraceEvent::span(0, i, stage::LLM, "call", "", 40 + i));
        events.push(TraceEvent::gauge(0, i, stage::MEMORY, "entries", i));
    }

    // Warm-up: first sight of each key allocates (registry slot, key
    // buffer capacity) — that is expected and paid once.
    for ev in events.drain(..3) {
        collector.record(ev);
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for ev in events {
        collector.record(ev);
    }
    let during = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        during, 0,
        "warm-key folding must not allocate ({during} allocations over 2997 events)"
    );

    let snap = collector.snapshot();
    assert_eq!(snap.counters["net.cache_hit"], 1_000);
    assert_eq!(snap.counters["llm.call"], 1_000);
}
