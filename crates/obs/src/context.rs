//! Span identity and causal threading.
//!
//! An [`ObsContext`] owns a session's span-id allocator and the
//! "current parent" slot; an [`ObsHandle`] bundles a context with a
//! [`Collector`] sink and is the thing instrumented code holds. Every
//! event emitted through a handle gets a session-local `span_id`
//! (allocated in emission order, starting at 1) and the `parent_id` of
//! the innermost open [`ScopedSpan`] (0 when no scope is open).
//!
//! Determinism: ids are allocated by a session-local counter and each
//! session runs on exactly one thread, so for a fixed seed set the id
//! assignment — like the virtual timestamps — is identical across
//! runs and thread counts. Ids are only allocated when the sink is
//! enabled, which keeps the [`NullCollector`] path down to one branch:
//! no atomics touched, no closures run.
//!
//! [`NullCollector`]: crate::collector::NullCollector
//! [`Collector`]: crate::collector::Collector

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::collector::{null_collector, SharedCollector};
use crate::event::TraceEvent;

/// Per-session causal state: the span-id allocator and the current
/// parent span. One context is shared (via [`ObsHandle`] clones) by
/// every layer driving the same session — client, agent, event log —
/// so nesting works across crate boundaries.
#[derive(Debug)]
pub struct ObsContext {
    session: u32,
    /// Next id to hand out; ids start at 1 (0 is "no span").
    next_id: AtomicU64,
    /// `span_id` of the innermost open scope; 0 = session root.
    parent: AtomicU64,
}

impl ObsContext {
    pub fn new(session: u32) -> Self {
        ObsContext {
            session,
            next_id: AtomicU64::new(1),
            parent: AtomicU64::new(0),
        }
    }

    pub fn session(&self) -> u32 {
        self.session
    }

    /// Allocate the next span id. Relaxed ordering is enough: a
    /// session is driven by one thread, the atomic only provides
    /// `Sync` for the shared handle.
    pub fn alloc_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// The innermost open scope's id (0 = root).
    pub fn current_parent(&self) -> u64 {
        self.parent.load(Ordering::Relaxed)
    }

    /// Install a new current parent, returning the previous one.
    pub fn swap_parent(&self, id: u64) -> u64 {
        self.parent.swap(id, Ordering::Relaxed)
    }
}

/// A collector sink plus the session's causal context. Cheap to clone
/// (two `Arc`s); clones share the id allocator and parent slot, which
/// is exactly what lets a client-level fetch span nest under an
/// agent-level cycle span.
#[derive(Clone)]
pub struct ObsHandle {
    sink: SharedCollector,
    ctx: Arc<ObsContext>,
}

impl ObsHandle {
    pub fn new(sink: SharedCollector, session: u32) -> Self {
        ObsHandle {
            sink,
            ctx: Arc::new(ObsContext::new(session)),
        }
    }

    /// A handle wired to the [`NullCollector`](crate::NullCollector):
    /// emission is a single branch, scopes are inert.
    pub fn disabled() -> Self {
        ObsHandle::new(null_collector(), 0)
    }

    /// Rebind this handle's context to a different sink. Used when a
    /// layer (e.g. the auto-GPT event log) wants to mirror into the
    /// same causal tree.
    pub fn with_sink(&self, sink: SharedCollector) -> Self {
        ObsHandle {
            sink,
            ctx: Arc::clone(&self.ctx),
        }
    }

    pub fn enabled(&self) -> bool {
        self.sink.enabled()
    }

    pub fn session(&self) -> u32 {
        self.ctx.session
    }

    pub fn sink(&self) -> SharedCollector {
        Arc::clone(&self.sink)
    }

    pub fn context(&self) -> &Arc<ObsContext> {
        &self.ctx
    }

    /// Emit one event with causal identity filled in. The closure only
    /// runs — and an id is only allocated — when the sink is enabled,
    /// so the disabled path stays free.
    pub fn emit(&self, build: impl FnOnce() -> TraceEvent) {
        if self.sink.enabled() {
            let id = self.ctx.alloc_id();
            let parent = self.ctx.current_parent();
            self.sink.record(build().with_ids(id, parent));
        }
    }

    /// Open a causal scope at virtual time `start_us`. Until the
    /// returned guard is finished (or dropped), every event emitted
    /// through any clone of this handle is parented under it.
    pub fn scope(&self, start_us: u64, stage: &'static str, name: &'static str) -> ScopedSpan<'_> {
        if !self.sink.enabled() {
            return ScopedSpan {
                handle: self,
                start_us,
                stage,
                name,
                span_id: 0,
                prev_parent: 0,
                active: false,
            };
        }
        let span_id = self.ctx.alloc_id();
        let prev_parent = self.ctx.swap_parent(span_id);
        ScopedSpan {
            handle: self,
            start_us,
            stage,
            name,
            span_id,
            prev_parent,
            active: true,
        }
    }
}

impl std::fmt::Debug for ObsHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsHandle")
            .field("session", &self.ctx.session)
            .field("enabled", &self.enabled())
            .finish()
    }
}

/// An open causal scope: children emitted while it is open are
/// parented under it; finishing emits the scope's own `Span` event
/// (parented under the *previous* scope) and restores that previous
/// scope as current.
///
/// Note the event order this produces: children appear in the trace
/// *before* their parent's `Span` record, because the parent's
/// duration is only known at finish. The profiler resolves parents by
/// id, not position, so this is fine — and the id assignment is still
/// deterministic because ids are allocated at open, in program order.
#[must_use = "a scope that is never finished emits no span"]
pub struct ScopedSpan<'a> {
    handle: &'a ObsHandle,
    start_us: u64,
    stage: &'static str,
    name: &'static str,
    span_id: u64,
    prev_parent: u64,
    active: bool,
}

impl ScopedSpan<'_> {
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// This scope's span id (0 when the sink is disabled).
    pub fn id(&self) -> u64 {
        self.span_id
    }

    /// Close the scope at virtual time `end_us`, emitting its `Span`
    /// event. The detail closure only runs when the scope is active.
    pub fn finish(self, end_us: u64, detail: impl FnOnce() -> String) {
        let name = self.name;
        self.finish_as(end_us, name, detail);
    }

    /// Like [`ScopedSpan::finish`] but with an outcome-dependent name
    /// (e.g. a fetch scope closing as `ok` or `err`).
    pub fn finish_as(mut self, end_us: u64, name: &'static str, detail: impl FnOnce() -> String) {
        if !self.active {
            return;
        }
        self.active = false;
        self.handle.ctx.swap_parent(self.prev_parent);
        let dur = end_us.saturating_sub(self.start_us);
        self.handle.sink.record(
            TraceEvent::span(
                self.handle.ctx.session,
                self.start_us,
                self.stage,
                name,
                detail(),
                dur,
            )
            .with_ids(self.span_id, self.prev_parent),
        );
    }
}

impl Drop for ScopedSpan<'_> {
    fn drop(&mut self) {
        // Abandoned scope (early return / error path): restore the
        // parent chain but emit nothing — there is no end time.
        if self.active {
            self.handle.ctx.swap_parent(self.prev_parent);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::JsonlCollector;
    use crate::event::stage;

    fn jsonl_handle(session: u32) -> (Arc<JsonlCollector>, ObsHandle) {
        let sink = Arc::new(JsonlCollector::new());
        let handle = ObsHandle::new(sink.clone(), session);
        (sink, handle)
    }

    #[test]
    fn ids_are_allocated_in_emission_order() {
        let (sink, handle) = jsonl_handle(0);
        handle.emit(|| TraceEvent::point(0, 1, stage::CYCLE, "start", "a"));
        handle.emit(|| TraceEvent::point(0, 2, stage::CYCLE, "start", "b"));
        let events = sink.events();
        assert_eq!(events[0].span_id, 1);
        assert_eq!(events[1].span_id, 2);
        assert_eq!(events[0].parent_id, 0);
    }

    #[test]
    fn scopes_thread_parents_through_nesting() {
        let (sink, handle) = jsonl_handle(0);
        let outer = handle.scope(10, stage::CYCLE, "goal"); // id 1
        handle.emit(|| TraceEvent::point(0, 11, stage::SEARCH, "issued", "q")); // id 2
        let inner = handle.scope(12, stage::FETCH, "ok"); // id 3
        handle.emit(|| TraceEvent::point(0, 13, stage::NET, "cache_miss", "")); // id 4
        inner.finish(20, String::new);
        handle.emit(|| TraceEvent::point(0, 21, stage::MEMORY, "memorize", "")); // id 5
        outer.finish(30, String::new);

        let by_id: std::collections::BTreeMap<u64, TraceEvent> =
            sink.events().into_iter().map(|e| (e.span_id, e)).collect();
        assert_eq!(by_id[&2].parent_id, 1, "point under outer scope");
        assert_eq!(by_id[&3].parent_id, 1, "inner span under outer");
        assert_eq!(by_id[&4].parent_id, 3, "point under inner scope");
        assert_eq!(by_id[&5].parent_id, 1, "after inner finished");
        assert_eq!(by_id[&1].parent_id, 0, "outer is a root");
        assert_eq!(by_id[&1].value, 20, "outer duration");
    }

    #[test]
    fn clones_share_the_causal_context() {
        let (sink, handle) = jsonl_handle(7);
        let client_view = handle.clone();
        let scope = handle.scope(0, stage::CYCLE, "goal");
        client_view.emit(|| TraceEvent::point(7, 1, stage::NET, "cache_hit", ""));
        scope.finish(5, String::new);
        let events = sink.events();
        assert_eq!(
            events[0].parent_id,
            scope_id(&events),
            "clone saw the scope"
        );
    }

    fn scope_id(events: &[TraceEvent]) -> u64 {
        events.iter().find(|e| e.stage == "cycle").unwrap().span_id
    }

    #[test]
    fn abandoned_scope_restores_parent_without_emitting() {
        let (sink, handle) = jsonl_handle(0);
        let outer = handle.scope(0, stage::CYCLE, "goal");
        {
            let _inner = handle.scope(1, stage::FETCH, "ok");
            // dropped without finish — error path
        }
        handle.emit(|| TraceEvent::point(0, 2, stage::SEARCH, "issued", "q"));
        outer.finish(3, String::new);
        let events = sink.events();
        // Only the point and the outer span were emitted.
        assert_eq!(events.len(), 2);
        let point = events.iter().find(|e| e.stage == "search").unwrap();
        let outer_ev = events.iter().find(|e| e.stage == "cycle").unwrap();
        assert_eq!(point.parent_id, outer_ev.span_id);
    }

    #[test]
    fn disabled_handle_allocates_nothing() {
        let handle = ObsHandle::disabled();
        let scope = handle.scope(0, stage::CYCLE, "goal");
        assert!(!scope.is_active());
        assert_eq!(scope.id(), 0);
        handle.emit(|| panic!("closure ran on a disabled handle"));
        scope.finish(10, || panic!("detail closure ran on a disabled handle"));
        // The allocator was never touched.
        assert_eq!(handle.context().alloc_id(), 1);
    }

    #[test]
    fn with_sink_mirrors_into_the_same_tree() {
        let (sink, handle) = jsonl_handle(0);
        let mirror = handle.with_sink(sink.clone() as SharedCollector);
        let scope = handle.scope(0, stage::CYCLE, "goal");
        mirror.emit(|| TraceEvent::point(0, 1, stage::MEMORY, "memorize", ""));
        scope.finish(2, String::new);
        let events = sink.events();
        let point = events.iter().find(|e| e.stage == "memory").unwrap();
        let span = events.iter().find(|e| e.stage == "cycle").unwrap();
        assert_eq!(point.parent_id, span.span_id);
        assert_ne!(
            point.span_id, span.span_id,
            "shared allocator, distinct ids"
        );
    }
}
