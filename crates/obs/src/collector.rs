//! Pluggable trace sinks.
//!
//! The contract that keeps observability off the hot path: callers go
//! through [`CollectorExt::emit`], which takes a *closure* building the
//! event. When the collector is disabled (the [`NullCollector`]
//! default) the closure never runs, so no strings are formatted and no
//! allocations happen — tracing that is off costs one virtual call and
//! one branch.

use std::io::Write;
use std::path::Path;
use std::sync::Arc;

use parking_lot::Mutex;
use std::collections::BTreeMap;

use crate::event::{EventClass, TraceEvent};
use crate::metrics::{MetricsRegistry, MetricsSnapshot};

/// A sink for trace events. Implementations must be thread-safe: in a
/// parallel sweep every session thread shares one collector.
pub trait Collector: Send + Sync {
    /// Whether events should be built at all. Hot paths consult this
    /// (via [`CollectorExt::emit`]) before doing any formatting work.
    fn enabled(&self) -> bool;
    /// Record one event. Only called when [`Collector::enabled`] is true.
    fn record(&self, event: TraceEvent);
}

/// Shared handle to a collector; cheap to clone into every layer.
pub type SharedCollector = Arc<dyn Collector>;

/// Lazy emission: the event-building closure only runs when the
/// collector is enabled.
pub trait CollectorExt {
    fn emit(&self, build: impl FnOnce() -> TraceEvent);
}

impl<C: Collector + ?Sized> CollectorExt for C {
    fn emit(&self, build: impl FnOnce() -> TraceEvent) {
        if self.enabled() {
            self.record(build());
        }
    }
}

/// The zero-cost default: always disabled, drops everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullCollector;

impl Collector for NullCollector {
    fn enabled(&self) -> bool {
        false
    }
    fn record(&self, _event: TraceEvent) {}
}

/// Returns the process-wide disabled collector.
pub fn null_collector() -> SharedCollector {
    Arc::new(NullCollector)
}

/// Buffers events grouped by session and renders them in session-id
/// order, each session's events in arrival order. Because every
/// session is driven by exactly one thread, per-session arrival order
/// is deterministic — so the rendered document is byte-identical
/// regardless of how many threads the sweep used.
#[derive(Debug, Default)]
pub struct JsonlCollector {
    sessions: Mutex<BTreeMap<u32, Vec<TraceEvent>>>,
}

impl JsonlCollector {
    pub fn new() -> Self {
        Self::default()
    }

    /// All events, session-id order then arrival order.
    pub fn events(&self) -> Vec<TraceEvent> {
        let sessions = self.sessions.lock();
        sessions.values().flat_map(|v| v.iter().cloned()).collect()
    }

    /// Render the full trace as a JSONL document.
    pub fn render(&self) -> String {
        let sessions = self.sessions.lock();
        let mut out = String::new();
        for events in sessions.values() {
            for ev in events {
                out.push_str(&ev.to_jsonl());
                out.push('\n');
            }
        }
        out
    }

    /// Write the rendered trace to `path`.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.render().as_bytes())?;
        file.flush()
    }
}

impl Collector for JsonlCollector {
    fn enabled(&self) -> bool {
        true
    }
    fn record(&self, event: TraceEvent) {
        self.sessions
            .lock()
            .entry(event.session)
            .or_default()
            .push(event);
    }
}

/// Aggregates events into a [`MetricsRegistry`] instead of retaining
/// them: points count, spans count + feed a virtual-time histogram,
/// gauges keep their high-watermark (a commutative merge, so snapshots
/// are thread-count invariant).
///
/// The metric key is formatted into a reused buffer rather than a
/// fresh `String` per event, and the registry updates warm keys
/// in place, so steady-state folding allocates nothing (pinned by an
/// assertion in the `obs_overhead` bench).
#[derive(Debug, Default)]
pub struct SummaryCollector {
    registry: MetricsRegistry,
    key_buf: Mutex<String>,
}

impl SummaryCollector {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }
}

impl Collector for SummaryCollector {
    fn enabled(&self) -> bool {
        true
    }
    fn record(&self, event: TraceEvent) {
        // The buffer keeps its capacity across events; after warm-up no
        // key formatting allocates.
        let mut key = self.key_buf.lock();
        event.write_metric_key(&mut key);
        match event.class {
            EventClass::Point => self.registry.incr(&key, 1),
            EventClass::Span => {
                self.registry.incr(&key, 1);
                self.registry.observe_us(&key, event.value);
            }
            EventClass::Gauge => self.registry.gauge_max(&key, event.value),
        }
    }
}

/// Broadcasts each event to several collectors (e.g. a trace file and
/// a metrics summary at once). Enabled iff any child is.
pub struct Fanout {
    children: Vec<SharedCollector>,
}

impl Fanout {
    pub fn new(children: Vec<SharedCollector>) -> Self {
        Fanout { children }
    }
}

impl Collector for Fanout {
    fn enabled(&self) -> bool {
        self.children.iter().any(|c| c.enabled())
    }
    fn record(&self, event: TraceEvent) {
        for child in &self.children {
            if child.enabled() {
                child.record(event.clone());
            }
        }
    }
}

/// A span in flight: remembers its virtual start time and emits a
/// `Span` event when finished. Inert (no allocations) when the
/// collector is disabled.
pub struct SpanGuard<'a> {
    sink: &'a dyn Collector,
    session: u32,
    start_us: u64,
    stage: &'static str,
    name: &'static str,
    active: bool,
}

impl<'a> SpanGuard<'a> {
    /// Open a span at virtual time `start_us`.
    pub fn start(
        sink: &'a dyn Collector,
        session: u32,
        start_us: u64,
        stage: &'static str,
        name: &'static str,
    ) -> Self {
        SpanGuard {
            session,
            start_us,
            stage,
            name,
            active: sink.enabled(),
            sink,
        }
    }

    /// Close the span at virtual time `end_us` with a detail payload.
    /// The detail closure only runs when the span is active.
    pub fn finish(self, end_us: u64, detail: impl FnOnce() -> String) {
        if self.active {
            let dur = end_us.saturating_sub(self.start_us);
            self.sink.record(TraceEvent::span(
                self.session,
                self.start_us,
                self.stage,
                self.name,
                detail(),
                dur,
            ));
        }
    }

    pub fn is_active(&self) -> bool {
        self.active
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::stage;

    /// A collector that panics if an event is ever built or recorded —
    /// used to prove the disabled path never evaluates closures.
    struct TripwireCollector;
    impl Collector for TripwireCollector {
        fn enabled(&self) -> bool {
            false
        }
        fn record(&self, _event: TraceEvent) {
            panic!("disabled collector received an event");
        }
    }

    #[test]
    fn disabled_collector_never_builds_events() {
        let sink = TripwireCollector;
        sink.emit(|| panic!("event closure ran on a disabled collector"));
        let span = SpanGuard::start(&sink, 0, 10, stage::FETCH, "ok");
        assert!(!span.is_active());
        span.finish(20, || panic!("detail closure ran on a disabled collector"));
    }

    #[test]
    fn jsonl_collector_orders_by_session_then_arrival() {
        let sink = JsonlCollector::new();
        sink.record(TraceEvent::point(1, 5, stage::CYCLE, "start", "b"));
        sink.record(TraceEvent::point(0, 9, stage::CYCLE, "start", "a"));
        sink.record(TraceEvent::point(1, 6, stage::CYCLE, "end", "b"));
        let events = sink.events();
        assert_eq!(
            events
                .iter()
                .map(|e| (e.session, e.at_us))
                .collect::<Vec<_>>(),
            vec![(0, 9), (1, 5), (1, 6)]
        );
        let doc = sink.render();
        assert_eq!(doc.lines().count(), 3);
        assert!(doc.ends_with('\n'));
    }

    #[test]
    fn summary_collector_aggregates_by_class() {
        let sink = SummaryCollector::new();
        sink.record(TraceEvent::point(0, 0, stage::NET, "cache_hit", ""));
        sink.record(TraceEvent::point(0, 1, stage::NET, "cache_hit", ""));
        sink.record(TraceEvent::span(0, 2, stage::FETCH, "ok", "u", 500));
        sink.record(TraceEvent::gauge(0, 3, stage::MEMORY, "entries", 4));
        sink.record(TraceEvent::gauge(0, 4, stage::MEMORY, "entries", 2));
        let snap = sink.snapshot();
        assert_eq!(snap.counters.get("net.cache_hit"), Some(&2));
        assert_eq!(snap.counters.get("fetch.ok"), Some(&1));
        assert_eq!(snap.gauges.get("memory.entries"), Some(&4));
        let hist = snap.histograms.get("fetch.ok").unwrap();
        assert_eq!(hist.count, 1);
        assert_eq!(hist.sum_us, 500);
    }

    #[test]
    fn fanout_reaches_every_enabled_child() {
        let trace = Arc::new(JsonlCollector::new());
        let summary = Arc::new(SummaryCollector::new());
        let fan = Fanout::new(vec![
            trace.clone() as SharedCollector,
            summary.clone() as SharedCollector,
            Arc::new(NullCollector) as SharedCollector,
        ]);
        assert!(fan.enabled());
        fan.emit(|| TraceEvent::point(0, 0, stage::SEARCH, "issued", "q"));
        assert_eq!(trace.events().len(), 1);
        assert_eq!(summary.snapshot().counters.get("search.issued"), Some(&1));
    }

    #[test]
    fn span_guard_charges_virtual_duration() {
        let sink = JsonlCollector::new();
        let span = SpanGuard::start(&sink, 3, 100, stage::LLM, "call");
        span.finish(460, || "prompt=12".to_string());
        let events = sink.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].value, 360);
        assert_eq!(events[0].at_us, 100);
        assert_eq!(events[0].session, 3);
    }
}
