//! Deterministic trace profiler: fold a flat event stream into causal
//! span trees and aggregate virtual time per pipeline stage.
//!
//! Everything here is a pure function of the trace, and the trace is a
//! pure function of the run's seeds — so a profile (and its JSON
//! serialization) is byte-identical across runs and thread counts.
//! That is what lets CI diff a fresh profile against a checked-in
//! baseline with **zero** tolerance.
//!
//! Key facts the folding relies on:
//!
//! - Span ids are allocated at scope *open*, in program order, so a
//!   parent's id is always smaller than its children's. We use that to
//!   reject malformed parent links (a "child" with a smaller id than
//!   its parent cannot exist) which also makes the recursion
//!   cycle-proof.
//! - A scope's `Span` event is emitted at *finish*, i.e. after its
//!   children appear in the stream. Parents are therefore resolved by
//!   id, never by position.
//! - Legacy traces (span_id 0 everywhere) degrade gracefully: spans
//!   become flat roots in arrival order, points stay unattributed.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::event::{EventClass, TraceEvent};

/// One span in the causal tree, with its children nested inside.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanNode {
    pub span_id: u64,
    /// `stage.name`, e.g. `cycle.goal`.
    pub key: String,
    pub detail: String,
    pub start_us: u64,
    /// Total virtual time of this span.
    pub inclusive_us: u64,
    /// Virtual time not covered by child spans
    /// (`inclusive - Σ child inclusive`, saturating).
    pub exclusive_us: u64,
    /// Per-span op attribution: counts of direct child points/gauges
    /// by metric key, plus token counts parsed from `llm.call` details.
    #[serde(default)]
    pub ops: BTreeMap<String, u64>,
    #[serde(default)]
    pub children: Vec<SpanNode>,
}

/// One step on a session's critical path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathStep {
    pub key: String,
    pub inclusive_us: u64,
}

/// All spans of one session, as a forest of causal trees.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionProfile {
    pub session: u32,
    /// Σ inclusive time of the root spans.
    pub total_us: u64,
    pub roots: Vec<SpanNode>,
    /// The chain of heaviest spans: starting from the heaviest root,
    /// repeatedly descend into the child with the largest inclusive
    /// time (ties broken by smaller span id).
    pub critical_path: Vec<PathStep>,
}

/// Per-`stage.name` aggregate over every span in the run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageAgg {
    pub count: u64,
    pub inclusive_us: u64,
    pub exclusive_us: u64,
    pub max_us: u64,
}

/// The full run profile: per-session trees plus run-level aggregates.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    pub sessions: Vec<SessionProfile>,
    /// Span aggregates keyed by `stage.name`.
    pub stages: BTreeMap<String, StageAgg>,
    /// Run-level op totals: every point/gauge key counted across the
    /// trace, llm token sums, and — when the profiling harness runs the
    /// workload in-process — the `lexicon`/`opstats` virtual-op
    /// counters merged in via [`Profile::merge_run_ops`].
    pub ops: BTreeMap<String, u64>,
    /// Total events in the trace.
    pub events: u64,
}

/// Parse `prompt_tokens=N completion_tokens=M` out of an `llm.call`
/// span's detail. Best-effort: unknown shapes contribute nothing.
fn parse_llm_tokens(detail: &str, ops: &mut BTreeMap<String, u64>) {
    for part in detail.split_whitespace() {
        if let Some(n) = part.strip_prefix("prompt_tokens=") {
            if let Ok(v) = n.parse::<u64>() {
                *ops.entry("llm.prompt_tokens".to_string()).or_insert(0) += v;
            }
        } else if let Some(n) = part.strip_prefix("completion_tokens=") {
            if let Ok(v) = n.parse::<u64>() {
                *ops.entry("llm.completion_tokens".to_string()).or_insert(0) += v;
            }
        }
    }
}

/// Fold a trace into a [`Profile`]. Deterministic: same events in the
/// same order always produce the same profile, and the per-session
/// event order is itself thread-count invariant.
pub fn fold_trace(events: &[TraceEvent]) -> Profile {
    let mut by_session: BTreeMap<u32, Vec<&TraceEvent>> = BTreeMap::new();
    for ev in events {
        by_session.entry(ev.session).or_default().push(ev);
    }

    let mut profile = Profile {
        events: events.len() as u64,
        ..Profile::default()
    };

    for (&session, evs) in &by_session {
        let sp = fold_session(session, evs, &mut profile);
        profile.sessions.push(sp);
    }
    profile
}

fn fold_session(session: u32, events: &[&TraceEvent], profile: &mut Profile) -> SessionProfile {
    // Span events by id; legacy (id 0) spans are kept separately as
    // flat roots in arrival order — they cannot parent anything.
    let mut spans: BTreeMap<u64, &TraceEvent> = BTreeMap::new();
    let mut legacy: Vec<&TraceEvent> = Vec::new();
    // Child span ids per parent id. Parent ids are allocated before
    // child ids, so requiring child > parent rejects malformed links
    // and guarantees the recursion terminates.
    let mut children_of: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    // Point/gauge attribution per parent span id.
    let mut ops_of: BTreeMap<u64, BTreeMap<String, u64>> = BTreeMap::new();

    for ev in events {
        match ev.class {
            EventClass::Span => {
                if ev.span_id == 0 {
                    legacy.push(ev);
                } else {
                    spans.insert(ev.span_id, ev);
                }
            }
            EventClass::Point | EventClass::Gauge => {
                let key = ev.metric_key();
                *profile.ops.entry(key.clone()).or_insert(0) += 1;
                if ev.parent_id != 0 {
                    *ops_of
                        .entry(ev.parent_id)
                        .or_default()
                        .entry(key)
                        .or_insert(0) += 1;
                }
            }
        }
    }

    for (&id, ev) in &spans {
        if ev.parent_id != 0 && ev.parent_id < id && spans.contains_key(&ev.parent_id) {
            children_of.entry(ev.parent_id).or_default().push(id);
        }
    }
    // Children sorted by span id = scope-open order (arrival order in
    // the stream is finish order, which is not what a tree view wants).
    for kids in children_of.values_mut() {
        kids.sort_unstable();
    }

    let mut roots: Vec<SpanNode> = Vec::new();
    for (&id, ev) in &spans {
        let is_root = ev.parent_id == 0 || ev.parent_id >= id || !spans.contains_key(&ev.parent_id);
        if is_root {
            roots.push(build_node(id, &spans, &children_of, &ops_of, profile));
        }
    }
    for ev in &legacy {
        let mut ops = BTreeMap::new();
        if ev.stage == "llm" {
            parse_llm_tokens(&ev.detail, &mut ops);
        }
        let node = SpanNode {
            span_id: 0,
            key: ev.metric_key(),
            detail: ev.detail.clone(),
            start_us: ev.at_us,
            inclusive_us: ev.value,
            exclusive_us: ev.value,
            ops,
            children: Vec::new(),
        };
        aggregate(&node, profile);
        roots.push(node);
    }

    let total_us = roots.iter().map(|r| r.inclusive_us).sum();
    let critical_path = critical_path(&roots);
    SessionProfile {
        session,
        total_us,
        roots,
        critical_path,
    }
}

fn build_node(
    id: u64,
    spans: &BTreeMap<u64, &TraceEvent>,
    children_of: &BTreeMap<u64, Vec<u64>>,
    ops_of: &BTreeMap<u64, BTreeMap<String, u64>>,
    profile: &mut Profile,
) -> SpanNode {
    let ev = spans[&id];
    let children: Vec<SpanNode> = children_of
        .get(&id)
        .map(|kids| {
            kids.iter()
                .map(|&kid| build_node(kid, spans, children_of, ops_of, profile))
                .collect()
        })
        .unwrap_or_default();
    let child_sum: u64 = children.iter().map(|c| c.inclusive_us).sum();

    let mut ops = ops_of.get(&id).cloned().unwrap_or_default();
    if ev.stage == "llm" {
        parse_llm_tokens(&ev.detail, &mut ops);
        for (key, &v) in &ops {
            if key.starts_with("llm.") {
                *profile.ops.entry(key.clone()).or_insert(0) += v;
            }
        }
    }

    let node = SpanNode {
        span_id: id,
        key: ev.metric_key(),
        detail: ev.detail.clone(),
        start_us: ev.at_us,
        inclusive_us: ev.value,
        exclusive_us: ev.value.saturating_sub(child_sum),
        ops,
        children,
    };
    aggregate(&node, profile);
    node
}

fn aggregate(node: &SpanNode, profile: &mut Profile) {
    let agg = profile.stages.entry(node.key.clone()).or_default();
    agg.count += 1;
    agg.inclusive_us += node.inclusive_us;
    agg.exclusive_us += node.exclusive_us;
    agg.max_us = agg.max_us.max(node.inclusive_us);
}

fn critical_path(roots: &[SpanNode]) -> Vec<PathStep> {
    let mut path = Vec::new();
    // Heaviest root; ties broken by smaller span id for determinism.
    let mut cursor = roots
        .iter()
        .max_by(|a, b| {
            a.inclusive_us
                .cmp(&b.inclusive_us)
                .then(b.span_id.cmp(&a.span_id))
        })
        .filter(|r| r.inclusive_us > 0);
    while let Some(node) = cursor {
        path.push(PathStep {
            key: node.key.clone(),
            inclusive_us: node.inclusive_us,
        });
        cursor = node
            .children
            .iter()
            .max_by(|a, b| {
                a.inclusive_us
                    .cmp(&b.inclusive_us)
                    .then(b.span_id.cmp(&a.span_id))
            })
            .filter(|c| c.inclusive_us > 0);
    }
    path
}

impl Profile {
    /// Fold an op snapshot from the run harness (e.g. the `lexicon` /
    /// `opstats` virtual-op counters) into the run-level op totals.
    /// Those counters are sums of commutative atomic adds over an
    /// identical total workload, so they are thread-count invariant
    /// and safe to pin in a zero-tolerance baseline.
    pub fn merge_run_ops(&mut self, ops: impl IntoIterator<Item = (String, u64)>) {
        for (key, v) in ops {
            *self.ops.entry(key).or_insert(0) += v;
        }
    }

    /// Top-`k` stage keys by exclusive virtual time (ties broken by
    /// key, so the ranking is stable).
    pub fn hotspots(&self, k: usize) -> Vec<(&str, &StageAgg)> {
        let mut ranked: Vec<(&str, &StageAgg)> = self
            .stages
            .iter()
            .map(|(key, agg)| (key.as_str(), agg))
            .collect();
        ranked.sort_by(|a, b| b.1.exclusive_us.cmp(&a.1.exclusive_us).then(a.0.cmp(b.0)));
        ranked.truncate(k);
        ranked
    }

    /// Fixed-width text rendering: per-session flame trees, stage
    /// hotspots, and per-session critical paths. Byte-deterministic.
    pub fn render(&self, top_k: usize) -> String {
        let mut out = String::new();
        for sp in &self.sessions {
            out.push_str(&format!(
                "session {:<3} total {:>10} µs  ({} roots)\n",
                sp.session,
                sp.total_us,
                sp.roots.len()
            ));
            for root in &sp.roots {
                render_node(root, 1, &mut out);
            }
            if !sp.critical_path.is_empty() {
                out.push_str("  critical path: ");
                let steps: Vec<String> = sp
                    .critical_path
                    .iter()
                    .map(|s| format!("{} ({} µs)", s.key, s.inclusive_us))
                    .collect();
                out.push_str(&steps.join(" -> "));
                out.push('\n');
            }
        }
        if !self.stages.is_empty() {
            out.push_str(&format!(
                "hotspots (top {top_k} by exclusive virtual time)\n  {:<28} {:>7} {:>12} {:>12} {:>10}\n",
                "stage", "count", "incl_us", "excl_us", "max_us"
            ));
            for (key, agg) in self.hotspots(top_k) {
                out.push_str(&format!(
                    "  {key:<28} {:>7} {:>12} {:>12} {:>10}\n",
                    agg.count, agg.inclusive_us, agg.exclusive_us, agg.max_us
                ));
            }
        }
        if !self.ops.is_empty() {
            out.push_str("ops (run totals)\n");
            for (key, v) in &self.ops {
                out.push_str(&format!("  {key:<40} {v:>12}\n"));
            }
        }
        if out.is_empty() {
            out.push_str("(empty trace)\n");
        }
        out
    }
}

fn render_node(node: &SpanNode, depth: usize, out: &mut String) {
    let indent = "  ".repeat(depth);
    let label = format!("{indent}{}", node.key);
    out.push_str(&format!(
        "{label:<34} {:>10} µs incl {:>10} µs excl",
        node.inclusive_us, node.exclusive_us
    ));
    if !node.ops.is_empty() {
        let ops: Vec<String> = node.ops.iter().map(|(k, v)| format!("{k}={v}")).collect();
        out.push_str(&format!("  [{}]", ops.join(" ")));
    }
    out.push('\n');
    for child in &node.children {
        render_node(child, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::stage;

    fn span(sid: u32, id: u64, parent: u64, st: &str, name: &str, at: u64, dur: u64) -> TraceEvent {
        TraceEvent::span(sid, at, st, name, "", dur).with_ids(id, parent)
    }

    fn point(sid: u32, id: u64, parent: u64, st: &str, name: &str) -> TraceEvent {
        TraceEvent::point(sid, 0, st, name, "").with_ids(id, parent)
    }

    #[test]
    fn folds_nesting_with_inclusive_and_exclusive_time() {
        // cycle.goal (100µs) containing fetch.ok (30µs) and llm.call (50µs).
        // Children appear before the parent, as emitted by ScopedSpan.
        let events = vec![
            span(0, 2, 1, stage::FETCH, "ok", 10, 30),
            span(0, 3, 1, stage::LLM, "call", 40, 50),
            span(0, 1, 0, stage::CYCLE, "goal", 0, 100),
        ];
        let profile = fold_trace(&events);
        assert_eq!(profile.sessions.len(), 1);
        let sp = &profile.sessions[0];
        assert_eq!(sp.total_us, 100);
        assert_eq!(sp.roots.len(), 1);
        let root = &sp.roots[0];
        assert_eq!(root.key, "cycle.goal");
        assert_eq!(root.inclusive_us, 100);
        assert_eq!(root.exclusive_us, 20); // 100 - 30 - 50
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[0].key, "fetch.ok"); // span-id order
        let stages = &profile.stages;
        assert_eq!(stages["cycle.goal"].exclusive_us, 20);
        assert_eq!(stages["fetch.ok"].inclusive_us, 30);
    }

    #[test]
    fn points_attribute_ops_to_their_parent_span() {
        let events = vec![
            point(0, 2, 1, stage::NET, "cache_hit"),
            point(0, 3, 1, stage::NET, "cache_hit"),
            point(0, 4, 1, stage::SEARCH, "issued"),
            span(0, 1, 0, stage::CYCLE, "goal", 0, 10),
            point(0, 5, 0, stage::VERDICT, "committed"), // unparented
        ];
        let profile = fold_trace(&events);
        let root = &profile.sessions[0].roots[0];
        assert_eq!(root.ops["net.cache_hit"], 2);
        assert_eq!(root.ops["search.issued"], 1);
        assert!(!root.ops.contains_key("verdict.committed"));
        // Run-level ops see everything, parented or not.
        assert_eq!(profile.ops["net.cache_hit"], 2);
        assert_eq!(profile.ops["verdict.committed"], 1);
    }

    #[test]
    fn llm_token_counts_are_parsed_into_ops() {
        let ev = TraceEvent::span(
            0,
            5,
            stage::LLM,
            "call",
            "prompt_tokens=120 completion_tokens=34",
            400,
        )
        .with_ids(1, 0);
        let profile = fold_trace(&[ev]);
        let root = &profile.sessions[0].roots[0];
        assert_eq!(root.ops["llm.prompt_tokens"], 120);
        assert_eq!(root.ops["llm.completion_tokens"], 34);
        assert_eq!(profile.ops["llm.prompt_tokens"], 120);
    }

    #[test]
    fn critical_path_follows_heaviest_children() {
        let events = vec![
            span(0, 2, 1, stage::FETCH, "ok", 0, 10),
            span(0, 3, 1, stage::LLM, "call", 10, 60),
            span(0, 4, 3, stage::NET, "retry_wait", 20, 40),
            span(0, 1, 0, stage::CYCLE, "goal", 0, 100),
        ];
        let profile = fold_trace(&events);
        let path: Vec<&str> = profile.sessions[0]
            .critical_path
            .iter()
            .map(|s| s.key.as_str())
            .collect();
        assert_eq!(path, vec!["cycle.goal", "llm.call", "net.retry_wait"]);
    }

    #[test]
    fn legacy_zero_id_traces_become_flat_roots() {
        let events = vec![
            TraceEvent::span(0, 0, stage::FETCH, "ok", "", 30),
            TraceEvent::span(0, 10, stage::LLM, "call", "", 50),
        ];
        let profile = fold_trace(&events);
        let sp = &profile.sessions[0];
        assert_eq!(sp.roots.len(), 2);
        assert!(sp.roots.iter().all(|r| r.children.is_empty()));
        assert_eq!(sp.total_us, 80);
    }

    #[test]
    fn malformed_parent_links_do_not_recurse_forever() {
        // parent id >= own id is impossible in a real trace; such a
        // span is treated as a root.
        let events = vec![
            span(0, 1, 2, stage::FETCH, "ok", 0, 10),
            span(0, 2, 1, stage::LLM, "call", 0, 20),
        ];
        let profile = fold_trace(&events);
        let sp = &profile.sessions[0];
        // span 1's parent (2) has a larger id → span 1 is a root;
        // span 2's parent (1) is valid → nested under 1.
        assert_eq!(sp.roots.len(), 1);
        assert_eq!(sp.roots[0].span_id, 1);
        assert_eq!(sp.roots[0].children[0].span_id, 2);
    }

    #[test]
    fn profile_json_round_trips_and_is_stable() {
        let events = vec![
            point(0, 2, 1, stage::NET, "cache_hit"),
            span(0, 1, 0, stage::CYCLE, "goal", 0, 10),
            span(1, 1, 0, stage::CYCLE, "goal", 0, 25),
        ];
        let profile = fold_trace(&events);
        let json = serde_json::to_string(&profile).unwrap();
        let back: Profile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, profile);
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }

    #[test]
    fn hotspots_rank_by_exclusive_time_with_stable_ties() {
        let events = vec![
            span(0, 1, 0, stage::FETCH, "ok", 0, 30),
            span(0, 2, 0, stage::LLM, "call", 30, 70),
            span(0, 3, 0, stage::SEARCH, "issued", 100, 30),
        ];
        let profile = fold_trace(&events);
        let keys: Vec<&str> = profile.hotspots(10).iter().map(|(k, _)| *k).collect();
        // llm first (70), then the 30µs tie sorted by key.
        assert_eq!(keys, vec!["llm.call", "fetch.ok", "search.issued"]);
        assert_eq!(profile.hotspots(1).len(), 1);
    }

    #[test]
    fn render_is_deterministic() {
        let events = vec![
            span(0, 2, 1, stage::FETCH, "ok", 10, 30),
            span(0, 1, 0, stage::CYCLE, "goal", 0, 100),
        ];
        let profile = fold_trace(&events);
        let a = profile.render(5);
        assert_eq!(a, fold_trace(&events).render(5));
        assert!(a.contains("cycle.goal"));
        assert!(a.contains("critical path"));
        assert_eq!(fold_trace(&[]).render(5), "(empty trace)\n");
    }

    #[test]
    fn merge_run_ops_adds_harness_counters() {
        let mut profile = fold_trace(&[point(0, 1, 0, stage::NET, "cache_hit")]);
        profile.merge_run_ops(vec![
            ("lexicon.tokenize_chars".to_string(), 1_000),
            ("net.cache_hit".to_string(), 5),
        ]);
        assert_eq!(profile.ops["lexicon.tokenize_chars"], 1_000);
        assert_eq!(profile.ops["net.cache_hit"], 6);
    }
}
