//! Deterministic metrics: counters, high-watermark gauges, and
//! virtual-time histograms with fixed bucket boundaries.
//!
//! Everything here is keyed by `String` in `BTreeMap`s so snapshots
//! serialize and render in a stable order, and every aggregation is
//! commutative (sums and maxima) so merging per-session snapshots in
//! any order — or recording from any number of threads — yields the
//! same result.

use std::collections::BTreeMap;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Fixed histogram bucket upper bounds, in virtual microseconds.
/// Chosen to straddle the simnet latency scales: sub-millisecond cache
/// hits up through multi-second retry storms.
pub const LATENCY_BUCKETS_US: [u64; 12] = [
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 1_000_000,
];

/// A fixed-bucket histogram over virtual-time durations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    /// One count per entry in [`LATENCY_BUCKETS_US`], plus a final
    /// overflow bucket.
    pub counts: Vec<u64>,
    pub count: u64,
    pub sum_us: u64,
    pub max_us: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: vec![0; LATENCY_BUCKETS_US.len() + 1],
            count: 0,
            sum_us: 0,
            max_us: 0,
        }
    }
}

impl Histogram {
    /// Record one duration. Bucket bounds are inclusive (`dur_us <=
    /// bound` lands in that bucket); counts and sums saturate instead
    /// of wrapping, so a pathological merge chain can never corrupt a
    /// snapshot with an overflow panic or a wrapped count.
    pub fn observe(&mut self, dur_us: u64) {
        let idx = LATENCY_BUCKETS_US
            .iter()
            .position(|&bound| dur_us <= bound)
            .unwrap_or(LATENCY_BUCKETS_US.len());
        self.counts[idx] = self.counts[idx].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum_us = self.sum_us.saturating_add(dur_us);
        self.max_us = self.max_us.max(dur_us);
    }

    /// Merge another histogram into this one (commutative, saturating).
    pub fn merge(&mut self, other: &Histogram) {
        for (slot, add) in self.counts.iter_mut().zip(&other.counts) {
            *slot = slot.saturating_add(*add);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Mean duration in µs, rounded down; 0 when empty.
    pub fn mean_us(&self) -> u64 {
        self.sum_us.checked_div(self.count).unwrap_or(0)
    }
}

/// Thread-safe registry backing the [`SummaryCollector`].
///
/// [`SummaryCollector`]: crate::collector::SummaryCollector
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, u64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn incr(&self, key: &str, by: u64) {
        let mut counters = self.counters.lock();
        // Look up by &str first so warm keys never allocate; only a
        // first-seen key pays for the String.
        if let Some(slot) = counters.get_mut(key) {
            *slot = slot.saturating_add(by);
        } else {
            counters.insert(key.to_string(), by);
        }
    }

    /// Record a gauge sample. Gauges keep the **high-watermark**, not
    /// the last value: a later, lower sample leaves the stored level
    /// untouched. This is deliberate — a max merges commutatively, so
    /// per-session snapshots folded in any order (or recorded from any
    /// number of threads) agree; "last value" would depend on arrival
    /// order and break trace determinism.
    pub fn gauge_max(&self, key: &str, level: u64) {
        let mut gauges = self.gauges.lock();
        if let Some(slot) = gauges.get_mut(key) {
            *slot = (*slot).max(level);
        } else {
            gauges.insert(key.to_string(), level);
        }
    }

    pub fn observe_us(&self, key: &str, dur_us: u64) {
        let mut histograms = self.histograms.lock();
        if let Some(hist) = histograms.get_mut(key) {
            hist.observe(dur_us);
        } else {
            let mut hist = Histogram::default();
            hist.observe(dur_us);
            histograms.insert(key.to_string(), hist);
        }
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.lock().clone(),
            gauges: self.gauges.lock().clone(),
            histograms: self.histograms.lock().clone(),
        }
    }
}

/// An immutable, serializable view of a registry. Snapshots from
/// different sessions merge commutatively.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Merge another snapshot into this one: counters add, gauges keep
    /// the max, histograms merge bucket-wise.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (key, add) in &other.counters {
            *self.counters.entry(key.clone()).or_insert(0) += add;
        }
        for (key, level) in &other.gauges {
            let slot = self.gauges.entry(key.clone()).or_insert(0);
            *slot = (*slot).max(*level);
        }
        for (key, hist) in &other.histograms {
            self.histograms.entry(key.clone()).or_default().merge(hist);
        }
    }

    /// Render a deterministic fixed-width table: counters, then
    /// gauges, then histogram summaries, each section key-sorted.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters\n");
            out.push_str(&format!("  {:<40} {:>12}\n", "key", "count"));
            for (key, value) in &self.counters {
                out.push_str(&format!("  {key:<40} {value:>12}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges (high-watermark)\n");
            out.push_str(&format!("  {:<40} {:>12}\n", "key", "max"));
            for (key, value) in &self.gauges {
                out.push_str(&format!("  {key:<40} {value:>12}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("latency (virtual µs)\n");
            out.push_str(&format!(
                "  {:<40} {:>8} {:>10} {:>10} {:>12}\n",
                "key", "count", "mean_us", "max_us", "sum_us"
            ));
            for (key, hist) in &self.histograms {
                out.push_str(&format!(
                    "  {key:<40} {:>8} {:>10} {:>10} {:>12}\n",
                    hist.count,
                    hist.mean_us(),
                    hist.max_us,
                    hist.sum_us
                ));
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut hist = Histogram::default();
        hist.observe(50); // bucket 0 (<=100)
        hist.observe(100); // bucket 0 boundary is inclusive
        hist.observe(101); // bucket 1
        hist.observe(2_000_000); // overflow
        assert_eq!(hist.counts[0], 2);
        assert_eq!(hist.counts[1], 1);
        assert_eq!(hist.counts[LATENCY_BUCKETS_US.len()], 1);
        assert_eq!(hist.count, 4);
        assert_eq!(hist.max_us, 2_000_000);
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = MetricsSnapshot::default();
        a.counters.insert("x".into(), 2);
        a.gauges.insert("g".into(), 5);
        let mut ha = Histogram::default();
        ha.observe(300);
        a.histograms.insert("h".into(), ha);

        let mut b = MetricsSnapshot::default();
        b.counters.insert("x".into(), 3);
        b.counters.insert("y".into(), 1);
        b.gauges.insert("g".into(), 4);
        let mut hb = Histogram::default();
        hb.observe(900);
        b.histograms.insert("h".into(), hb);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counters.get("x"), Some(&5));
        assert_eq!(ab.gauges.get("g"), Some(&5));
        assert_eq!(ab.histograms.get("h").unwrap().count, 2);
    }

    #[test]
    fn registry_snapshot_round_trips_through_json() {
        let reg = MetricsRegistry::new();
        reg.incr("llm.call", 3);
        reg.gauge_max("memory.entries", 12);
        reg.observe_us("fetch.ok", 750);
        let snap = reg.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn render_is_deterministic_and_sorted() {
        let reg = MetricsRegistry::new();
        reg.incr("z.last", 1);
        reg.incr("a.first", 2);
        reg.observe_us("fetch.ok", 500);
        let snap = reg.snapshot();
        let r1 = snap.render();
        let r2 = snap.render();
        assert_eq!(r1, r2);
        let a_pos = r1.find("a.first").unwrap();
        let z_pos = r1.find("z.last").unwrap();
        assert!(a_pos < z_pos);
        assert!(r1.contains("latency (virtual µs)"));
    }

    #[test]
    fn empty_snapshot_renders_placeholder() {
        assert_eq!(
            MetricsSnapshot::default().render(),
            "(no metrics recorded)\n"
        );
    }

    #[test]
    fn merging_an_empty_histogram_is_identity() {
        let mut hist = Histogram::default();
        hist.observe(300);
        let before = hist.clone();
        hist.merge(&Histogram::default());
        assert_eq!(hist, before);

        let mut empty = Histogram::default();
        empty.merge(&before);
        assert_eq!(empty, before);
        assert_eq!(Histogram::default().mean_us(), 0, "empty mean is 0");
    }

    #[test]
    fn histogram_counts_saturate_instead_of_wrapping() {
        let mut a = Histogram {
            count: u64::MAX - 1,
            sum_us: u64::MAX - 10,
            ..Histogram::default()
        };
        a.counts[0] = u64::MAX;
        let mut b = Histogram::default();
        b.observe(50);
        b.observe(60);
        a.merge(&b);
        assert_eq!(a.count, u64::MAX);
        assert_eq!(a.sum_us, u64::MAX);
        assert_eq!(a.counts[0], u64::MAX);
        // observe on a saturated histogram is also safe
        a.observe(70);
        assert_eq!(a.count, u64::MAX);
    }

    #[test]
    fn bucket_boundary_durations_land_in_the_lower_bucket() {
        // Bounds are inclusive: exactly `bound` µs belongs to that
        // bucket; `bound + 1` spills into the next.
        for (i, &bound) in LATENCY_BUCKETS_US.iter().enumerate() {
            let mut hist = Histogram::default();
            hist.observe(bound);
            assert_eq!(hist.counts[i], 1, "bound {bound} in bucket {i}");
            let mut next = Histogram::default();
            next.observe(bound + 1);
            assert_eq!(next.counts[i], 0, "bound+1 left bucket {i}");
        }
        let mut hist = Histogram::default();
        hist.observe(0);
        assert_eq!(hist.counts[0], 1, "zero lands in the first bucket");
    }

    #[test]
    fn gauges_keep_the_high_watermark_not_the_last_sample() {
        let reg = MetricsRegistry::new();
        reg.gauge_max("memory.entries", 9);
        reg.gauge_max("memory.entries", 3); // later but lower — ignored
        assert_eq!(reg.snapshot().gauges.get("memory.entries"), Some(&9));
        reg.gauge_max("memory.entries", 12);
        assert_eq!(reg.snapshot().gauges.get("memory.entries"), Some(&12));
    }
}
