//! Regression diffing for profiles and metrics snapshots.
//!
//! Both inputs are flattened to sorted `key -> u64` maps and compared
//! under per-key **relative** tolerances. Any drift beyond tolerance —
//! in either direction — is reported: on a deterministic virtual
//! timeline a speedup you didn't make is just as suspicious as a
//! slowdown, and the CI gate runs with zero tolerance precisely
//! because drift of any kind means the workload changed.

use std::collections::BTreeMap;

use crate::metrics::MetricsSnapshot;
use crate::profile::{Profile, SpanNode};

/// Per-key relative tolerances. A key matches the longest configured
/// prefix in `per_key`; otherwise `default_rel` applies. Tolerances
/// are fractions: `0.10` allows ±10 % drift.
#[derive(Debug, Clone, Default)]
pub struct Tolerances {
    pub default_rel: f64,
    pub per_key: BTreeMap<String, f64>,
}

impl Tolerances {
    /// Zero drift allowed anywhere — the CI-gate setting.
    pub fn zero() -> Self {
        Tolerances::default()
    }

    /// The same relative tolerance for every key.
    pub fn uniform(rel: f64) -> Self {
        Tolerances {
            default_rel: rel,
            per_key: BTreeMap::new(),
        }
    }

    /// Allow `rel` drift for keys starting with `prefix`.
    pub fn with_key(mut self, prefix: &str, rel: f64) -> Self {
        self.per_key.insert(prefix.to_string(), rel);
        self
    }

    fn for_key(&self, key: &str) -> f64 {
        // Longest configured prefix wins.
        self.per_key
            .iter()
            .filter(|(prefix, _)| key.starts_with(prefix.as_str()))
            .max_by_key(|(prefix, _)| prefix.len())
            .map(|(_, &rel)| rel)
            .unwrap_or(self.default_rel)
    }
}

/// One out-of-tolerance key.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    pub key: String,
    pub base: u64,
    pub current: u64,
    /// `(current - base) / base`; infinite when the key appeared or
    /// base was 0.
    pub rel_change: f64,
    /// The tolerance that was applied.
    pub tol: f64,
}

/// A stable, key-sorted regression report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffReport {
    pub regressions: Vec<DiffEntry>,
    /// Number of keys compared (union of both sides).
    pub compared: usize,
}

impl DiffReport {
    pub fn is_clean(&self) -> bool {
        self.regressions.is_empty()
    }

    /// One line per offending key, then a verdict line. Deterministic.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for entry in &self.regressions {
            let change = if entry.rel_change.is_finite() {
                format!("{:+.2}%", entry.rel_change * 100.0)
            } else {
                "new/gone".to_string()
            };
            out.push_str(&format!(
                "REGRESSION {}: {} -> {} ({change}, tol {:.2}%)\n",
                entry.key,
                entry.base,
                entry.current,
                entry.tol * 100.0
            ));
        }
        if self.is_clean() {
            out.push_str(&format!("OK: {} keys within tolerance\n", self.compared));
        } else {
            out.push_str(&format!(
                "FAIL: {} of {} keys out of tolerance\n",
                self.regressions.len(),
                self.compared
            ));
        }
        out
    }
}

/// Compare two flattened maps. Keys present on only one side compare
/// against 0. Equal zeros are skipped.
pub fn diff_flat(
    base: &BTreeMap<String, u64>,
    current: &BTreeMap<String, u64>,
    tol: &Tolerances,
) -> DiffReport {
    let mut keys: Vec<&String> = base.keys().chain(current.keys()).collect();
    keys.sort();
    keys.dedup();

    let mut report = DiffReport {
        compared: keys.len(),
        ..DiffReport::default()
    };
    for key in keys {
        let b = base.get(key).copied().unwrap_or(0);
        let c = current.get(key).copied().unwrap_or(0);
        if b == c {
            continue;
        }
        // A key that appears from or collapses to zero is a
        // categorical change — no finite tolerance forgives it.
        let rel = if b == 0 {
            f64::INFINITY
        } else if c == 0 {
            f64::NEG_INFINITY
        } else {
            (c as f64 - b as f64) / b as f64
        };
        let allowed = tol.for_key(key);
        if rel.abs() > allowed {
            report.regressions.push(DiffEntry {
                key: key.clone(),
                base: b,
                current: c,
                rel_change: rel,
                tol: allowed,
            });
        }
    }
    report
}

/// Flatten a profile into diffable scalars:
/// `stage.<key>.{count,inclusive_us,exclusive_us,max_us}`,
/// `session.<n>.{total_us,roots,spans}`, `ops.<key>`, `events`,
/// `sessions`.
pub fn flatten_profile(profile: &Profile) -> BTreeMap<String, u64> {
    let mut flat = BTreeMap::new();
    flat.insert("events".to_string(), profile.events);
    flat.insert("sessions".to_string(), profile.sessions.len() as u64);
    for (key, agg) in &profile.stages {
        flat.insert(format!("stage.{key}.count"), agg.count);
        flat.insert(format!("stage.{key}.inclusive_us"), agg.inclusive_us);
        flat.insert(format!("stage.{key}.exclusive_us"), agg.exclusive_us);
        flat.insert(format!("stage.{key}.max_us"), agg.max_us);
    }
    for sp in &profile.sessions {
        let n = sp.session;
        flat.insert(format!("session.{n}.total_us"), sp.total_us);
        flat.insert(format!("session.{n}.roots"), sp.roots.len() as u64);
        let mut spans = 0u64;
        for root in &sp.roots {
            spans += count_spans(root);
        }
        flat.insert(format!("session.{n}.spans"), spans);
    }
    for (key, v) in &profile.ops {
        flat.insert(format!("ops.{key}"), *v);
    }
    flat
}

fn count_spans(node: &SpanNode) -> u64 {
    1 + node.children.iter().map(count_spans).sum::<u64>()
}

/// Flatten a metrics snapshot:
/// `counter.<key>`, `gauge.<key>`, `hist.<key>.{count,sum_us,max_us}`.
pub fn flatten_snapshot(snap: &MetricsSnapshot) -> BTreeMap<String, u64> {
    let mut flat = BTreeMap::new();
    for (key, v) in &snap.counters {
        flat.insert(format!("counter.{key}"), *v);
    }
    for (key, v) in &snap.gauges {
        flat.insert(format!("gauge.{key}"), *v);
    }
    for (key, hist) in &snap.histograms {
        flat.insert(format!("hist.{key}.count"), hist.count);
        flat.insert(format!("hist.{key}.sum_us"), hist.sum_us);
        flat.insert(format!("hist.{key}.max_us"), hist.max_us);
    }
    flat
}

/// Flatten an arbitrary JSON document into diffable integral scalars
/// with dotted keys (`levels.0.outcomes.rejected`). Integers (and
/// booleans as 0/1) are kept; floats and strings are skipped — in a
/// bench report those carry host timing (wall ms, throughput), which
/// is exactly what a deterministic diff must ignore. The backend of
/// `ira bench diff`.
pub fn flatten_json(value: &serde::Value) -> BTreeMap<String, u64> {
    let mut flat = BTreeMap::new();
    flatten_json_into(&mut flat, String::new(), value);
    flat
}

fn flatten_json_into(flat: &mut BTreeMap<String, u64>, prefix: String, value: &serde::Value) {
    let join = |suffix: &str| {
        if prefix.is_empty() {
            suffix.to_string()
        } else {
            format!("{prefix}.{suffix}")
        }
    };
    match value {
        serde::Value::Object(map) => {
            for (key, child) in map {
                flatten_json_into(flat, join(key), child);
            }
        }
        serde::Value::Array(items) => {
            for (i, child) in items.iter().enumerate() {
                flatten_json_into(flat, join(&i.to_string()), child);
            }
        }
        serde::Value::U64(v) => {
            flat.insert(prefix, *v);
        }
        serde::Value::I64(v) => {
            if *v >= 0 {
                flat.insert(prefix, *v as u64);
            }
        }
        serde::Value::Bool(v) => {
            flat.insert(prefix, u64::from(*v));
        }
        // Floats are host-dependent timing; strings aren't scalars.
        serde::Value::F64(_) | serde::Value::String(_) | serde::Value::Null => {}
    }
}

/// Diff two profiles under the given tolerances.
pub fn diff_profiles(base: &Profile, current: &Profile, tol: &Tolerances) -> DiffReport {
    diff_flat(&flatten_profile(base), &flatten_profile(current), tol)
}

/// Diff two metrics snapshots under the given tolerances.
pub fn diff_snapshots(
    base: &MetricsSnapshot,
    current: &MetricsSnapshot,
    tol: &Tolerances,
) -> DiffReport {
    diff_flat(&flatten_snapshot(base), &flatten_snapshot(current), tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{stage, TraceEvent};
    use crate::profile::fold_trace;

    fn profile_with_llm_call(dur: u64) -> Profile {
        let events = vec![
            TraceEvent::span(0, 10, stage::LLM, "call", "", dur).with_ids(2, 1),
            TraceEvent::span(0, 0, stage::CYCLE, "goal", "", dur + 40).with_ids(1, 0),
        ];
        fold_trace(&events)
    }

    #[test]
    fn identical_profiles_are_clean_at_zero_tolerance() {
        let a = profile_with_llm_call(100);
        let report = diff_profiles(&a, &profile_with_llm_call(100), &Tolerances::zero());
        assert!(report.is_clean(), "{}", report.render());
        assert!(report.render().starts_with("OK:"));
    }

    #[test]
    fn ten_percent_regression_is_caught_and_named() {
        let base = profile_with_llm_call(100);
        let slow = profile_with_llm_call(110); // +10 % llm virtual time
        let report = diff_profiles(&base, &slow, &Tolerances::zero());
        assert!(!report.is_clean());
        let keys: Vec<&str> = report.regressions.iter().map(|e| e.key.as_str()).collect();
        assert!(
            keys.contains(&"stage.llm.call.inclusive_us"),
            "offending key named: {keys:?}"
        );
        let rendered = report.render();
        assert!(rendered.contains("stage.llm.call.inclusive_us"));
        assert!(rendered.contains("+10.00%"));
        assert!(rendered.contains("FAIL:"));
    }

    #[test]
    fn tolerance_absorbs_small_drift_but_not_large() {
        let base = profile_with_llm_call(100);
        let slow = profile_with_llm_call(110);
        let lenient = diff_profiles(&base, &slow, &Tolerances::uniform(0.15));
        assert!(lenient.is_clean(), "{}", lenient.render());
        let strict = diff_profiles(&base, &slow, &Tolerances::uniform(0.05));
        assert!(!strict.is_clean());
    }

    #[test]
    fn speedups_also_trip_a_zero_tolerance_gate() {
        let base = profile_with_llm_call(100);
        let fast = profile_with_llm_call(90);
        let report = diff_profiles(&base, &fast, &Tolerances::zero());
        assert!(!report.is_clean(), "unexpected speedup must be visible");
        assert!(report.regressions.iter().any(|e| e.rel_change < 0.0));
    }

    #[test]
    fn per_key_tolerances_use_longest_prefix() {
        let tol = Tolerances::uniform(0.0)
            .with_key("stage.llm", 0.5)
            .with_key("stage.llm.call.max_us", 0.0);
        assert_eq!(tol.for_key("stage.llm.call.inclusive_us"), 0.5);
        assert_eq!(tol.for_key("stage.llm.call.max_us"), 0.0);
        assert_eq!(tol.for_key("stage.fetch.ok.count"), 0.0);
    }

    #[test]
    fn appearing_and_vanishing_keys_are_flagged() {
        let mut base = BTreeMap::new();
        base.insert("ops.old".to_string(), 5u64);
        let mut current = BTreeMap::new();
        current.insert("ops.new".to_string(), 3u64);
        let report = diff_flat(&base, &current, &Tolerances::uniform(10.0));
        // Infinite relative change beats any finite tolerance.
        assert_eq!(report.regressions.len(), 2);
        assert!(report.render().contains("new/gone"));
    }

    #[test]
    fn snapshot_diff_flags_counter_drift() {
        let mut base = MetricsSnapshot::default();
        base.counters.insert("net.cache_hit".to_string(), 10);
        let mut cur = base.clone();
        cur.counters.insert("net.cache_hit".to_string(), 12);
        let report = diff_snapshots(&base, &cur, &Tolerances::zero());
        assert_eq!(report.regressions[0].key, "counter.net.cache_hit");
        assert!(diff_snapshots(&base, &base, &Tolerances::zero()).is_clean());
    }

    #[test]
    fn flatten_json_keeps_integers_and_skips_host_timing() {
        let doc = r#"{
            "workload": "serve",
            "wall_ms": 12.75,
            "levels": [
                {"workers": 1, "outcomes": {"ok": 10, "rejected": 2}, "throughput_rps": 99.5},
                {"workers": 4, "outcomes": {"ok": 10, "rejected": 2}}
            ],
            "deterministic": true
        }"#;
        let value: serde::Value = serde_json::from_str(doc).unwrap();
        let flat = flatten_json(&value);
        assert_eq!(flat.get("levels.0.workers"), Some(&1));
        assert_eq!(flat.get("levels.1.outcomes.rejected"), Some(&2));
        assert_eq!(flat.get("deterministic"), Some(&1));
        assert!(!flat.contains_key("wall_ms"), "floats are host timing");
        assert!(!flat.contains_key("levels.0.throughput_rps"));
        assert!(!flat.contains_key("workload"), "strings are not scalars");
        // A drift in an integral key is caught by the normal machinery.
        let mut drifted = flat.clone();
        drifted.insert("levels.0.outcomes.rejected".to_string(), 3);
        let report = diff_flat(&flat, &drifted, &Tolerances::zero());
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].key, "levels.0.outcomes.rejected");
    }

    #[test]
    fn report_is_key_sorted_and_stable() {
        let mut base = BTreeMap::new();
        base.insert("z".to_string(), 1u64);
        base.insert("a".to_string(), 1u64);
        let mut cur = BTreeMap::new();
        cur.insert("z".to_string(), 2u64);
        cur.insert("a".to_string(), 2u64);
        let report = diff_flat(&base, &cur, &Tolerances::zero());
        let keys: Vec<&str> = report.regressions.iter().map(|e| e.key.as_str()).collect();
        assert_eq!(keys, vec!["a", "z"]);
        assert_eq!(
            report.render(),
            diff_flat(&base, &cur, &Tolerances::zero()).render()
        );
    }
}
