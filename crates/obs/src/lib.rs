//! `ira-obs`: deterministic observability for the incident-research
//! workspace.
//!
//! Traces and metrics here are driven entirely by the simnet
//! **virtual clock** — wall time never appears on the hot path — so a
//! trace is a pure function of the run's seeds: same seeds, same
//! trace, byte for byte, regardless of host speed or thread count.
//!
//! The pieces:
//!
//! - [`event::TraceEvent`] — one structured record (point, span, or
//!   gauge) on a session's virtual timeline, carrying a deterministic
//!   `span_id`/`parent_id` causal identity.
//! - [`collector::Collector`] — the pluggable sink.
//!   [`collector::NullCollector`] is the zero-cost default (event
//!   closures never run), [`collector::JsonlCollector`] buffers a
//!   replayable trace file, [`collector::SummaryCollector`] aggregates
//!   into a [`metrics::MetricsRegistry`].
//! - [`context::ObsHandle`] — a sink plus the session's span-id
//!   allocator; [`context::ScopedSpan`] threads the current parent
//!   through nested scopes across crate boundaries.
//! - [`metrics`] — counters, high-watermark gauges, and fixed-bucket
//!   virtual-time histograms whose snapshots merge commutatively.
//! - [`profile`] — fold a trace into causal span trees: inclusive /
//!   exclusive virtual time per stage, hotspots, critical paths.
//! - [`diff`] — compare two profiles or snapshots under per-key
//!   relative tolerances; the backend of the zero-tolerance CI gate.
//! - [`flight`] — the always-on [`flight::FlightRecorder`]: a bounded
//!   per-session ring of recent events, frozen into a JSONL
//!   post-mortem dump when a trigger (panic, shed, deadline) fires.
//! - [`live`] — sliding-window SLO aggregation on the virtual clock:
//!   windowed counters, integer-ppm rates, and a deterministic
//!   mergeable [`live::QuantileSketch`] for latency percentiles,
//!   snapshot as stable text or Prometheus-style exposition.

pub mod collector;
pub mod context;
pub mod diff;
pub mod event;
pub mod flight;
pub mod live;
pub mod metrics;
pub mod profile;

pub use collector::{
    null_collector, Collector, CollectorExt, Fanout, JsonlCollector, NullCollector,
    SharedCollector, SpanGuard, SummaryCollector,
};
pub use context::{ObsContext, ObsHandle, ScopedSpan};
pub use diff::{diff_profiles, diff_snapshots, flatten_json, DiffEntry, DiffReport, Tolerances};
pub use event::{parse_jsonl, render_jsonl, stage, EventClass, TraceEvent, TraceParseError};
pub use flight::{FlightConfig, FlightDump, FlightRecorder, FlightTrigger};
pub use live::{
    fmt_ppm_pct, LiveConfig, LiveSnapshot, LiveStats, QuantileSketch, SloCell, SloSample,
    SKETCH_EXACT_CAP,
};
pub use metrics::{Histogram, MetricsRegistry, MetricsSnapshot, LATENCY_BUCKETS_US};
pub use profile::{fold_trace, PathStep, Profile, SessionProfile, SpanNode, StageAgg};

/// Build a per-stage latency/count summary from a parsed trace — the
/// backend of `ira trace summarize`. Deterministic: replaying the same
/// events in the same order always renders the same table.
pub fn summarize_events(events: &[TraceEvent]) -> MetricsSnapshot {
    let summary = SummaryCollector::new();
    for ev in events {
        summary.record(ev.clone());
    }
    let mut snap = summary.snapshot();
    let sessions: std::collections::BTreeSet<u32> = events.iter().map(|e| e.session).collect();
    snap.gauges
        .insert("trace.sessions".to_string(), sessions.len() as u64);
    snap.counters
        .insert("trace.events".to_string(), events.len() as u64);
    snap
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_counts_sessions_and_events() {
        let events = vec![
            TraceEvent::point(0, 1, stage::CYCLE, "start", "g"),
            TraceEvent::span(1, 2, stage::FETCH, "ok", "u", 400),
            TraceEvent::point(1, 9, stage::CYCLE, "start", "g"),
        ];
        let snap = summarize_events(&events);
        assert_eq!(snap.counters.get("trace.events"), Some(&3));
        assert_eq!(snap.gauges.get("trace.sessions"), Some(&2));
        assert_eq!(snap.counters.get("cycle.start"), Some(&2));
        assert_eq!(snap.histograms.get("fetch.ok").unwrap().sum_us, 400);
    }

    #[test]
    fn summarize_is_replay_stable() {
        let doc = "\
{\"session\":0,\"at_us\":10,\"class\":\"Span\",\"stage\":\"llm\",\"name\":\"call\",\"detail\":\"\",\"value\":120}\n\
{\"session\":0,\"at_us\":300,\"class\":\"Point\",\"stage\":\"net\",\"name\":\"cache_hit\",\"detail\":\"\",\"value\":0}\n";
        let events = parse_jsonl(doc).unwrap();
        let a = summarize_events(&events).render();
        let b = summarize_events(&parse_jsonl(doc).unwrap()).render();
        assert_eq!(a, b);
    }
}
