//! The trace event: one structured record on the virtual timeline.
//!
//! Every event carries the **virtual** timestamp of the session that
//! produced it — never host wall time — so a trace is a pure function
//! of the run's seeds. Events from different sessions are kept apart by
//! the `session` index, which is what makes parallel sweeps replayable:
//! each session's event stream is produced by exactly one thread, so
//! per-session ordering is deterministic regardless of how sessions
//! interleave on the host.
//!
//! Since the causal-tracing overhaul, every event also carries a
//! **span identity**: a session-local `span_id` allocated by the
//! session's [`ObsContext`](crate::context::ObsContext) counter, and
//! the `parent_id` of the enclosing scope (0 = session root). Because
//! the counter is session-local and every session runs on exactly one
//! thread, the ids — like the timestamps — are a pure function of the
//! seeds.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Canonical stage names used across the workspace. Using shared
/// constants keeps trace files and metric keys grep-able and stops the
/// per-crate wiring from inventing divergent spellings.
pub mod stage {
    /// Session lifecycle (the per-session span root).
    pub const SESSION: &str = "session";
    /// One Auto-GPT command cycle / training goal.
    pub const CYCLE: &str = "cycle";
    /// Search-engine queries.
    pub const SEARCH: &str = "search";
    /// Page fetches (client round trips).
    pub const FETCH: &str = "fetch";
    /// Language-model calls.
    pub const LLM: &str = "llm";
    /// Knowledge-memory writes and growth.
    pub const MEMORY: &str = "memory";
    /// Network client internals: cache, retries.
    pub const NET: &str = "net";
    /// Circuit-breaker state machine.
    pub const BREAKER: &str = "breaker";
    /// Knowledge-test verdicts (self-learning rounds).
    pub const VERDICT: &str = "verdict";
    /// Serve-layer request lifecycle: admission, queueing, execution.
    pub const SERVE: &str = "serve";
}

/// How an event's `value` field is interpreted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventClass {
    /// A countable occurrence; `value` is a free payload (often 0).
    Point,
    /// A completed span; `at_us` is the start, `value` the duration in
    /// virtual microseconds.
    Span,
    /// A level sample; `value` is the level. Summaries keep the
    /// high-watermark, which merges commutatively across threads.
    Gauge,
}

/// One structured trace record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Session index within the run (0 for serial runs).
    pub session: u32,
    /// Virtual timestamp, microseconds (span start for spans).
    pub at_us: u64,
    pub class: EventClass,
    /// Pipeline stage (see [`stage`]).
    pub stage: String,
    /// Event name within the stage, e.g. `fetch.ok`.
    pub name: String,
    /// Free-form detail: command text, host, URL, verdict.
    pub detail: String,
    /// Span duration (µs), gauge level, or point payload.
    pub value: u64,
    /// Session-local span identity, allocated in emission order by the
    /// session's [`ObsContext`](crate::context::ObsContext). 0 means
    /// the event predates causal tracing (legacy traces parse fine).
    #[serde(default)]
    pub span_id: u64,
    /// The `span_id` of the enclosing scope; 0 = session root.
    #[serde(default)]
    pub parent_id: u64,
}

impl TraceEvent {
    pub fn point(
        session: u32,
        at_us: u64,
        stage: &str,
        name: &str,
        detail: impl Into<String>,
    ) -> Self {
        TraceEvent {
            session,
            at_us,
            class: EventClass::Point,
            stage: stage.to_string(),
            name: name.to_string(),
            detail: detail.into(),
            value: 0,
            span_id: 0,
            parent_id: 0,
        }
    }

    pub fn span(
        session: u32,
        start_us: u64,
        stage: &str,
        name: &str,
        detail: impl Into<String>,
        dur_us: u64,
    ) -> Self {
        TraceEvent {
            session,
            at_us: start_us,
            class: EventClass::Span,
            stage: stage.to_string(),
            name: name.to_string(),
            detail: detail.into(),
            value: dur_us,
            span_id: 0,
            parent_id: 0,
        }
    }

    pub fn gauge(session: u32, at_us: u64, stage: &str, name: &str, level: u64) -> Self {
        TraceEvent {
            session,
            at_us,
            class: EventClass::Gauge,
            stage: stage.to_string(),
            name: name.to_string(),
            detail: String::new(),
            value: level,
            span_id: 0,
            parent_id: 0,
        }
    }

    /// Assign the causal identity (builder form, used by
    /// [`ObsHandle`](crate::context::ObsHandle) emission).
    pub fn with_ids(mut self, span_id: u64, parent_id: u64) -> Self {
        self.span_id = span_id;
        self.parent_id = parent_id;
        self
    }

    /// The metric key this event aggregates under: `stage.name`.
    pub fn metric_key(&self) -> String {
        format!("{}.{}", self.stage, self.name)
    }

    /// Write the metric key into a reused buffer (cleared first). The
    /// hot folding path of the
    /// [`SummaryCollector`](crate::collector::SummaryCollector) uses
    /// this instead of [`TraceEvent::metric_key`] so steady-state
    /// aggregation allocates nothing.
    pub fn write_metric_key(&self, buf: &mut String) {
        buf.clear();
        // Writing into a String is infallible.
        let _ = write!(buf, "{}.{}", self.stage, self.name);
    }

    /// One JSONL line (no trailing newline). Fields serialize in a
    /// fixed (alphabetical) order, so the rendering is
    /// byte-deterministic.
    pub fn to_jsonl(&self) -> String {
        serde_json::to_string(self).expect("trace event serializes")
    }
}

/// A trace-document parse failure: the 1-based line it occurred on and
/// what was wrong with it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number within the document.
    pub line: usize,
    /// The underlying JSON error, human-readable.
    pub message: String,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: not a trace event: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceParseError {}

/// Parse a JSONL trace document (one event per non-empty line; blank
/// lines — including trailing ones — are tolerated). On failure the
/// error names the offending 1-based line.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, TraceParseError> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let ev: TraceEvent = serde_json::from_str(line).map_err(|e| TraceParseError {
            line: i + 1,
            message: e.to_string(),
        })?;
        events.push(ev);
    }
    Ok(events)
}

/// Render events back into a JSONL document (one line per event, with
/// a trailing newline when non-empty). `render_jsonl(parse_jsonl(doc))`
/// is byte-identical for any document this module produced.
pub fn render_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&ev.to_jsonl());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_round_trips() {
        let ev =
            TraceEvent::span(2, 1_500, stage::FETCH, "ok", "sim://a.test/x", 730).with_ids(4, 2);
        let line = ev.to_jsonl();
        let back = parse_jsonl(&line).unwrap();
        assert_eq!(back, vec![ev]);
    }

    #[test]
    fn jsonl_rendering_is_stable() {
        let ev = TraceEvent::point(0, 42, stage::SEARCH, "issued", "q=solar storms").with_ids(7, 3);
        assert_eq!(
            ev.to_jsonl(),
            r#"{"at_us":42,"class":"Point","detail":"q=solar storms","name":"issued","parent_id":3,"session":0,"span_id":7,"stage":"search","value":0}"#
        );
    }

    #[test]
    fn legacy_events_without_ids_still_parse() {
        // Traces recorded before the causal overhaul have no id fields;
        // they deserialize with span_id = parent_id = 0.
        let line = r#"{"at_us":42,"class":"Point","detail":"","name":"issued","session":0,"stage":"search","value":0}"#;
        let events = parse_jsonl(line).unwrap();
        assert_eq!(events[0].span_id, 0);
        assert_eq!(events[0].parent_id, 0);
    }

    #[test]
    fn parse_reports_the_bad_line() {
        let good = TraceEvent::gauge(0, 1, stage::MEMORY, "entries", 9).to_jsonl();
        let doc = format!("{good}\nnot json\n");
        let err = parse_jsonl(&doc).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn metric_key_joins_stage_and_name() {
        let ev = TraceEvent::point(0, 0, stage::NET, "cache_hit", "");
        assert_eq!(ev.metric_key(), "net.cache_hit");
        let mut buf = String::from("stale contents");
        ev.write_metric_key(&mut buf);
        assert_eq!(buf, "net.cache_hit");
    }

    #[test]
    fn blank_lines_are_skipped() {
        let ev = TraceEvent::point(1, 7, stage::CYCLE, "start", "goal");
        let doc = format!("\n{}\n\n\n", ev.to_jsonl());
        assert_eq!(parse_jsonl(&doc).unwrap().len(), 1);
    }

    #[test]
    fn render_parse_render_is_byte_identical() {
        let events = vec![
            TraceEvent::point(0, 1, stage::CYCLE, "start", "g").with_ids(1, 0),
            TraceEvent::span(0, 2, stage::FETCH, "ok", "sim://a.test/x", 400).with_ids(2, 1),
            TraceEvent::gauge(1, 9, stage::MEMORY, "entries", 12).with_ids(1, 0),
        ];
        let doc = render_jsonl(&events);
        let reparsed = parse_jsonl(&doc).unwrap();
        assert_eq!(render_jsonl(&reparsed), doc);
        assert_eq!(reparsed, events);
    }
}
