//! The trace event: one structured record on the virtual timeline.
//!
//! Every event carries the **virtual** timestamp of the session that
//! produced it — never host wall time — so a trace is a pure function
//! of the run's seeds. Events from different sessions are kept apart by
//! the `session` index, which is what makes parallel sweeps replayable:
//! each session's event stream is produced by exactly one thread, so
//! per-session ordering is deterministic regardless of how sessions
//! interleave on the host.

use serde::{Deserialize, Serialize};

/// Canonical stage names used across the workspace. Using shared
/// constants keeps trace files and metric keys grep-able and stops the
/// per-crate wiring from inventing divergent spellings.
pub mod stage {
    /// Session lifecycle (the per-session span root).
    pub const SESSION: &str = "session";
    /// One Auto-GPT command cycle / training goal.
    pub const CYCLE: &str = "cycle";
    /// Search-engine queries.
    pub const SEARCH: &str = "search";
    /// Page fetches (client round trips).
    pub const FETCH: &str = "fetch";
    /// Language-model calls.
    pub const LLM: &str = "llm";
    /// Knowledge-memory writes and growth.
    pub const MEMORY: &str = "memory";
    /// Network client internals: cache, retries.
    pub const NET: &str = "net";
    /// Circuit-breaker state machine.
    pub const BREAKER: &str = "breaker";
    /// Knowledge-test verdicts (self-learning rounds).
    pub const VERDICT: &str = "verdict";
}

/// How an event's `value` field is interpreted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventClass {
    /// A countable occurrence; `value` is a free payload (often 0).
    Point,
    /// A completed span; `at_us` is the start, `value` the duration in
    /// virtual microseconds.
    Span,
    /// A level sample; `value` is the level. Summaries keep the
    /// high-watermark, which merges commutatively across threads.
    Gauge,
}

/// One structured trace record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Session index within the run (0 for serial runs).
    pub session: u32,
    /// Virtual timestamp, microseconds (span start for spans).
    pub at_us: u64,
    pub class: EventClass,
    /// Pipeline stage (see [`stage`]).
    pub stage: String,
    /// Event name within the stage, e.g. `fetch.ok`.
    pub name: String,
    /// Free-form detail: command text, host, URL, verdict.
    pub detail: String,
    /// Span duration (µs), gauge level, or point payload.
    pub value: u64,
}

impl TraceEvent {
    pub fn point(
        session: u32,
        at_us: u64,
        stage: &str,
        name: &str,
        detail: impl Into<String>,
    ) -> Self {
        TraceEvent {
            session,
            at_us,
            class: EventClass::Point,
            stage: stage.to_string(),
            name: name.to_string(),
            detail: detail.into(),
            value: 0,
        }
    }

    pub fn span(
        session: u32,
        start_us: u64,
        stage: &str,
        name: &str,
        detail: impl Into<String>,
        dur_us: u64,
    ) -> Self {
        TraceEvent {
            session,
            at_us: start_us,
            class: EventClass::Span,
            stage: stage.to_string(),
            name: name.to_string(),
            detail: detail.into(),
            value: dur_us,
        }
    }

    pub fn gauge(session: u32, at_us: u64, stage: &str, name: &str, level: u64) -> Self {
        TraceEvent {
            session,
            at_us,
            class: EventClass::Gauge,
            stage: stage.to_string(),
            name: name.to_string(),
            detail: String::new(),
            value: level,
        }
    }

    /// The metric key this event aggregates under: `stage.name`.
    pub fn metric_key(&self) -> String {
        format!("{}.{}", self.stage, self.name)
    }

    /// One JSONL line (no trailing newline). Fields serialize in a
    /// fixed (alphabetical) order, so the rendering is
    /// byte-deterministic.
    pub fn to_jsonl(&self) -> String {
        serde_json::to_string(self).expect("trace event serializes")
    }
}

/// Parse a JSONL trace document (one event per non-empty line).
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let ev: TraceEvent = serde_json::from_str(line)
            .map_err(|e| format!("line {}: not a trace event: {e}", i + 1))?;
        events.push(ev);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_round_trips() {
        let ev = TraceEvent::span(2, 1_500, stage::FETCH, "ok", "sim://a.test/x", 730);
        let line = ev.to_jsonl();
        let back = parse_jsonl(&line).unwrap();
        assert_eq!(back, vec![ev]);
    }

    #[test]
    fn jsonl_rendering_is_stable() {
        let ev = TraceEvent::point(0, 42, stage::SEARCH, "issued", "q=solar storms");
        assert_eq!(
            ev.to_jsonl(),
            r#"{"at_us":42,"class":"Point","detail":"q=solar storms","name":"issued","session":0,"stage":"search","value":0}"#
        );
    }

    #[test]
    fn parse_reports_the_bad_line() {
        let good = TraceEvent::gauge(0, 1, stage::MEMORY, "entries", 9).to_jsonl();
        let doc = format!("{good}\nnot json\n");
        let err = parse_jsonl(&doc).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn metric_key_joins_stage_and_name() {
        let ev = TraceEvent::point(0, 0, stage::NET, "cache_hit", "");
        assert_eq!(ev.metric_key(), "net.cache_hit");
    }

    #[test]
    fn blank_lines_are_skipped() {
        let ev = TraceEvent::point(1, 7, stage::CYCLE, "start", "goal");
        let doc = format!("\n{}\n\n", ev.to_jsonl());
        assert_eq!(parse_jsonl(&doc).unwrap().len(), 1);
    }
}
