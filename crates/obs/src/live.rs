//! Live sliding-window SLO aggregation on the virtual clock.
//!
//! The serve layer (and anything else that produces per-request
//! [`SloSample`]s) feeds a [`LiveStats`] aggregator: a ring of
//! epoch-tracked sub-window slices over the batch arrival clock plus
//! cumulative totals, each keyed by `scenario/kind`. A snapshot at any
//! virtual instant merges the in-window slices into a
//! [`LiveSnapshot`] — windowed counters, rates, and latency
//! percentiles from a deterministic mergeable [`QuantileSketch`].
//!
//! Everything here is integer arithmetic over virtual time, so a
//! snapshot is a pure function of the sample sequence: byte-identical
//! across worker counts, thread counts, and repeated runs. Rates are
//! reported in parts-per-million and formatted with integer math —
//! no floats anywhere near the rendered output.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Exact-mode capacity: sketches hold a sorted vector of raw values up
/// to this count (nearest-rank percentiles are then *exact*) and
/// collapse to fixed geometric buckets beyond it.
pub const SKETCH_EXACT_CAP: usize = 64;

/// Inclusive geometric bucket upper bounds (virtual µs) for collapsed
/// sketches, spanning sub-millisecond queue waits up to the serve
/// layer's multi-minute deadline horizon. Values above the last bound
/// land in an overflow bucket reported as the observed maximum.
const SKETCH_BOUNDS_US: [u64; 24] = [
    50,
    100,
    250,
    500,
    1_000,
    2_500,
    5_000,
    10_000,
    25_000,
    50_000,
    100_000,
    250_000,
    500_000,
    1_000_000,
    2_500_000,
    5_000_000,
    10_000_000,
    25_000_000,
    50_000_000,
    100_000_000,
    250_000_000,
    500_000_000,
    1_000_000_000,
    2_500_000_000,
];

/// A deterministic mergeable quantile sketch over virtual durations.
///
/// Representation is a pure function of the observed *multiset*: a
/// sorted exact vector while `count <= SKETCH_EXACT_CAP`, a fixed
/// bucket histogram beyond. Bucketing is a homomorphism (the buckets
/// of a union are the sums of the buckets) and the mode decision
/// depends only on the total count, so [`QuantileSketch::merge`] is
/// exactly associative and commutative — shard-and-merge yields the
/// same bytes as a single stream.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuantileSketch {
    /// Sorted raw values (exact mode only).
    #[serde(default)]
    exact: Vec<u64>,
    /// Bucket counts, `SKETCH_BOUNDS_US.len() + 1` long once collapsed
    /// (last slot is the overflow bucket); empty in exact mode.
    #[serde(default)]
    buckets: Vec<u64>,
    pub count: u64,
    pub sum_us: u64,
    pub max_us: u64,
}

fn bucket_index(value_us: u64) -> usize {
    SKETCH_BOUNDS_US
        .iter()
        .position(|&bound| value_us <= bound)
        .unwrap_or(SKETCH_BOUNDS_US.len())
}

impl QuantileSketch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether percentiles are still exact (small-window mode).
    pub fn is_exact(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Record one duration.
    pub fn observe(&mut self, value_us: u64) {
        self.count = self.count.saturating_add(1);
        self.sum_us = self.sum_us.saturating_add(value_us);
        self.max_us = self.max_us.max(value_us);
        if self.is_exact() {
            let at = self.exact.partition_point(|&v| v <= value_us);
            self.exact.insert(at, value_us);
            if self.exact.len() > SKETCH_EXACT_CAP {
                self.collapse();
            }
        } else {
            self.buckets[bucket_index(value_us)] += 1;
        }
    }

    /// Spill the exact values into the fixed bucket histogram.
    fn collapse(&mut self) {
        let mut buckets = vec![0u64; SKETCH_BOUNDS_US.len() + 1];
        for &v in &self.exact {
            buckets[bucket_index(v)] += 1;
        }
        self.exact.clear();
        self.buckets = buckets;
    }

    /// Fold another sketch in. Associative and commutative: the result
    /// depends only on the union of the observed multisets.
    pub fn merge(&mut self, other: &QuantileSketch) {
        if other.count == 0 {
            return;
        }
        let combined = self.count.saturating_add(other.count);
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
        self.max_us = self.max_us.max(other.max_us);
        if self.is_exact() && other.is_exact() && combined <= SKETCH_EXACT_CAP as u64 {
            self.exact.extend_from_slice(&other.exact);
            self.exact.sort_unstable();
        } else {
            if self.is_exact() {
                self.collapse();
            }
            if other.is_exact() {
                for &v in &other.exact {
                    self.buckets[bucket_index(v)] += 1;
                }
            } else {
                for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
                    *mine = mine.saturating_add(*theirs);
                }
            }
        }
        self.count = combined;
    }

    /// Nearest-rank quantile at `ppm` parts-per-million (500_000 =
    /// p50). Exact in exact mode; in bucket mode returns the matched
    /// bucket's upper bound clamped to the observed maximum.
    pub fn quantile_ppm(&self, ppm: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank =
            ((ppm as u128 * self.count as u128).div_ceil(1_000_000) as u64).clamp(1, self.count);
        if self.is_exact() {
            return self.exact[rank as usize - 1];
        }
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative = cumulative.saturating_add(n);
            if cumulative >= rank {
                return if i < SKETCH_BOUNDS_US.len() {
                    SKETCH_BOUNDS_US[i].min(self.max_us)
                } else {
                    self.max_us
                };
            }
        }
        self.max_us
    }

    pub fn p50_us(&self) -> u64 {
        self.quantile_ppm(500_000)
    }

    pub fn p95_us(&self) -> u64 {
        self.quantile_ppm(950_000)
    }

    pub fn p99_us(&self) -> u64 {
        self.quantile_ppm(990_000)
    }

    pub fn mean_us(&self) -> u64 {
        self.sum_us.checked_div(self.count).unwrap_or(0)
    }
}

/// One request's contribution to the SLO ledger. Intake-time samples
/// set only the admission-decision flags; outcome samples set only the
/// completion flags; a replayed `(request, response)` pair sets both
/// at once. Flags that are `false` (and `None` durations) contribute
/// nothing, so intake + outcome sums to the combined sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloSample {
    /// Arrival instant on the batch's synthetic arrival clock.
    pub at_us: u64,
    pub scenario: String,
    /// Request kind's stable wire spelling.
    pub kind: String,
    pub admitted: bool,
    pub shed: bool,
    pub invalid: bool,
    pub ok: bool,
    pub degraded: bool,
    pub deadline_miss: bool,
    pub failed: bool,
    pub retries: u64,
    pub queue_us: Option<u64>,
    pub exec_us: Option<u64>,
}

impl SloSample {
    /// A blank sample (no flags set) at one arrival instant.
    pub fn new(at_us: u64, scenario: impl Into<String>, kind: impl Into<String>) -> Self {
        SloSample {
            at_us,
            scenario: scenario.into(),
            kind: kind.into(),
            admitted: false,
            shed: false,
            invalid: false,
            ok: false,
            degraded: false,
            deadline_miss: false,
            failed: false,
            retries: 0,
            queue_us: None,
            exec_us: None,
        }
    }

    /// The ledger key this sample lands under.
    pub fn key(&self) -> String {
        format!("{}/{}", self.scenario, self.kind)
    }
}

/// Integer parts-per-million ratio (0 when the denominator is 0).
fn ratio_ppm(numerator: u64, denominator: u64) -> u64 {
    if denominator == 0 {
        0
    } else {
        (numerator as u128 * 1_000_000 / denominator as u128) as u64
    }
}

/// Format a ppm ratio as a percentage with two decimals, pure integer
/// math ("250000" → "25.00%").
pub fn fmt_ppm_pct(ppm: u64) -> String {
    format!("{}.{:02}%", ppm / 10_000, (ppm % 10_000) / 100)
}

/// Counters and latency sketches for one `scenario/kind` key.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SloCell {
    /// Requests that arrived (admitted + shed + invalid).
    pub arrivals: u64,
    pub admitted: u64,
    pub shed: u64,
    pub invalid: u64,
    pub ok: u64,
    pub degraded: u64,
    pub deadline_miss: u64,
    pub failed: u64,
    pub retries: u64,
    /// Modeled queue wait of admitted requests.
    pub queue: QuantileSketch,
    /// Virtual execution latency of completed requests.
    pub exec: QuantileSketch,
}

impl SloCell {
    fn apply(&mut self, sample: &SloSample) {
        self.arrivals += u64::from(sample.admitted || sample.shed || sample.invalid);
        self.admitted += u64::from(sample.admitted);
        self.shed += u64::from(sample.shed);
        self.invalid += u64::from(sample.invalid);
        self.ok += u64::from(sample.ok);
        self.degraded += u64::from(sample.degraded);
        self.deadline_miss += u64::from(sample.deadline_miss);
        self.failed += u64::from(sample.failed);
        self.retries += sample.retries;
        if let Some(q) = sample.queue_us {
            self.queue.observe(q);
        }
        if let Some(e) = sample.exec_us {
            self.exec.observe(e);
        }
    }

    pub fn merge(&mut self, other: &SloCell) {
        self.arrivals += other.arrivals;
        self.admitted += other.admitted;
        self.shed += other.shed;
        self.invalid += other.invalid;
        self.ok += other.ok;
        self.degraded += other.degraded;
        self.deadline_miss += other.deadline_miss;
        self.failed += other.failed;
        self.retries += other.retries;
        self.queue.merge(&other.queue);
        self.exec.merge(&other.exec);
    }

    /// Fraction of arrivals admitted, in ppm.
    pub fn admission_ppm(&self) -> u64 {
        ratio_ppm(self.admitted, self.arrivals)
    }

    /// Fraction of arrivals shed, in ppm.
    pub fn shed_ppm(&self) -> u64 {
        ratio_ppm(self.shed, self.arrivals)
    }

    /// Fraction of admitted requests that degraded, in ppm.
    pub fn degraded_ppm(&self) -> u64 {
        ratio_ppm(self.degraded, self.admitted)
    }

    /// Fraction of admitted requests that missed a deadline, in ppm.
    pub fn deadline_miss_ppm(&self) -> u64 {
        ratio_ppm(self.deadline_miss, self.admitted)
    }
}

/// Sliding-window policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveConfig {
    /// Total window span on the virtual arrival clock.
    pub window_us: u64,
    /// Sub-window slices the window is divided into; eviction happens
    /// a slice at a time as the clock advances.
    pub slices: usize,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            window_us: 60_000_000,
            slices: 6,
        }
    }
}

#[derive(Debug, Clone)]
struct Slice {
    /// Which `at_us / slice_us` epoch this slot currently holds;
    /// `u64::MAX` marks an empty slot.
    epoch: u64,
    cells: BTreeMap<String, SloCell>,
}

/// The live SLO aggregator: a slice ring for the sliding window plus
/// cumulative totals. Single-writer by design — the serve layer
/// records at intake and post-merge, both single-threaded in request
/// order, which is what keeps snapshots worker-invariant.
#[derive(Debug, Clone)]
pub struct LiveStats {
    config: LiveConfig,
    slice_us: u64,
    ring: Vec<Slice>,
    total: BTreeMap<String, SloCell>,
    samples: u64,
}

impl Default for LiveStats {
    fn default() -> Self {
        LiveStats::new(LiveConfig::default())
    }
}

impl LiveStats {
    pub fn new(config: LiveConfig) -> Self {
        let slices = config.slices.max(1);
        let slice_us = (config.window_us / slices as u64).max(1);
        LiveStats {
            config: LiveConfig {
                window_us: slice_us * slices as u64,
                slices,
            },
            slice_us,
            ring: vec![
                Slice {
                    epoch: u64::MAX,
                    cells: BTreeMap::new(),
                };
                slices
            ],
            total: BTreeMap::new(),
            samples: 0,
        }
    }

    pub fn config(&self) -> LiveConfig {
        self.config
    }

    /// Samples recorded since construction.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Fold one sample into its window slice and the cumulative ledger.
    pub fn record(&mut self, sample: &SloSample) {
        self.samples += 1;
        let epoch = sample.at_us / self.slice_us;
        let slot = (epoch % self.ring.len() as u64) as usize;
        let slice = &mut self.ring[slot];
        if slice.epoch != epoch {
            slice.epoch = epoch;
            slice.cells.clear();
        }
        let key = sample.key();
        slice.cells.entry(key.clone()).or_default().apply(sample);
        self.total.entry(key).or_default().apply(sample);
    }

    /// The state of the world at virtual instant `at_us`: cells merged
    /// from every slice whose epoch falls inside the window ending at
    /// `at_us`, plus the cumulative totals.
    pub fn snapshot(&self, at_us: u64) -> LiveSnapshot {
        let at_epoch = at_us / self.slice_us;
        let oldest = at_epoch.saturating_sub(self.ring.len() as u64 - 1);
        let mut window: BTreeMap<String, SloCell> = BTreeMap::new();
        for slice in &self.ring {
            if slice.epoch == u64::MAX || slice.epoch < oldest || slice.epoch > at_epoch {
                continue;
            }
            for (key, cell) in &slice.cells {
                window.entry(key.clone()).or_default().merge(cell);
            }
        }
        LiveSnapshot {
            at_us,
            window_us: self.config.window_us,
            samples: self.samples,
            window,
            total: self.total.clone(),
        }
    }
}

/// A rendered view of [`LiveStats`] at one virtual instant. Pure data:
/// serializes through the wire protocol (the serve layer's `stats`
/// payload) and renders as stable text or Prometheus exposition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LiveSnapshot {
    pub at_us: u64,
    pub window_us: u64,
    /// Samples recorded since the aggregator was created.
    pub samples: u64,
    /// Cells within the sliding window ending at `at_us`.
    pub window: BTreeMap<String, SloCell>,
    /// Cumulative cells since the aggregator was created.
    pub total: BTreeMap<String, SloCell>,
}

fn render_cells_text(out: &mut String, title: &str, cells: &BTreeMap<String, SloCell>) {
    out.push_str(&format!("[{title}]\n"));
    if cells.is_empty() {
        out.push_str("  (no samples)\n");
        return;
    }
    for (key, cell) in cells {
        out.push_str(&format!("  {key}\n"));
        out.push_str(&format!(
            "    arrivals={} admitted={} shed={} invalid={} ok={} degraded={} \
             deadline_miss={} failed={} retries={}\n",
            cell.arrivals,
            cell.admitted,
            cell.shed,
            cell.invalid,
            cell.ok,
            cell.degraded,
            cell.deadline_miss,
            cell.failed,
            cell.retries
        ));
        out.push_str(&format!(
            "    rates: admit={} shed={} degraded={} deadline_miss={}\n",
            fmt_ppm_pct(cell.admission_ppm()),
            fmt_ppm_pct(cell.shed_ppm()),
            fmt_ppm_pct(cell.degraded_ppm()),
            fmt_ppm_pct(cell.deadline_miss_ppm())
        ));
        out.push_str(&format!(
            "    queue_us: p50={} p95={} p99={} max={} mean={}\n",
            cell.queue.p50_us(),
            cell.queue.p95_us(),
            cell.queue.p99_us(),
            cell.queue.max_us,
            cell.queue.mean_us()
        ));
        out.push_str(&format!(
            "    exec_us:  p50={} p95={} p99={} max={} mean={}\n",
            cell.exec.p50_us(),
            cell.exec.p95_us(),
            cell.exec.p99_us(),
            cell.exec.max_us,
            cell.exec.mean_us()
        ));
    }
}

impl LiveSnapshot {
    /// Stable, diff-friendly text: BTreeMap key order, integer math
    /// only — byte-identical for identical sample sequences.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "live telemetry @ {}µs (window {}µs, {} samples)\n",
            self.at_us, self.window_us, self.samples
        );
        render_cells_text(&mut out, "window", &self.window);
        render_cells_text(&mut out, "total", &self.total);
        out
    }

    /// Prometheus-style exposition (virtual-clock metrics; `scope`
    /// distinguishes the sliding window from cumulative totals).
    pub fn render_prometheus(&self) -> String {
        type CellField = fn(&SloCell) -> u64;
        const COUNTERS: [(&str, CellField); 9] = [
            ("ira_serve_arrivals_total", |c| c.arrivals),
            ("ira_serve_admitted_total", |c| c.admitted),
            ("ira_serve_shed_total", |c| c.shed),
            ("ira_serve_invalid_total", |c| c.invalid),
            ("ira_serve_ok_total", |c| c.ok),
            ("ira_serve_degraded_total", |c| c.degraded),
            ("ira_serve_deadline_miss_total", |c| c.deadline_miss),
            ("ira_serve_failed_total", |c| c.failed),
            ("ira_serve_retries_total", |c| c.retries),
        ];
        let scopes: [(&str, &BTreeMap<String, SloCell>); 2] =
            [("window", &self.window), ("total", &self.total)];
        let mut out = String::new();
        out.push_str(&format!(
            "# ira live telemetry, virtual clock at {}µs (window {}µs)\n",
            self.at_us, self.window_us
        ));
        for (name, get) in COUNTERS {
            out.push_str(&format!("# TYPE {name} counter\n"));
            for (scope, cells) in scopes {
                for (key, cell) in cells.iter() {
                    let (scenario, kind) = key.rsplit_once('/').unwrap_or((key.as_str(), ""));
                    out.push_str(&format!(
                        "{name}{{scope=\"{scope}\",scenario=\"{scenario}\",kind=\"{kind}\"}} {}\n",
                        get(cell)
                    ));
                }
            }
        }
        for (name, get) in [
            (
                "ira_serve_queue_virtual_us",
                (|c: &SloCell| &c.queue) as fn(&SloCell) -> &QuantileSketch,
            ),
            ("ira_serve_exec_virtual_us", |c: &SloCell| &c.exec),
        ] {
            out.push_str(&format!("# TYPE {name} summary\n"));
            for (scope, cells) in scopes {
                for (key, cell) in cells.iter() {
                    let (scenario, kind) = key.rsplit_once('/').unwrap_or((key.as_str(), ""));
                    let sketch = get(cell);
                    let labels =
                        format!("scope=\"{scope}\",scenario=\"{scenario}\",kind=\"{kind}\"");
                    for (q, v) in [
                        ("0.5", sketch.p50_us()),
                        ("0.95", sketch.p95_us()),
                        ("0.99", sketch.p99_us()),
                    ] {
                        out.push_str(&format!("{name}{{{labels},quantile=\"{q}\"}} {v}\n"));
                    }
                    out.push_str(&format!("{name}_sum{{{labels}}} {}\n", sketch.sum_us));
                    out.push_str(&format!("{name}_count{{{labels}}} {}\n", sketch.count));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sketch_of(values: &[u64]) -> QuantileSketch {
        let mut s = QuantileSketch::new();
        for &v in values {
            s.observe(v);
        }
        s
    }

    /// Nearest-rank percentile over the raw values, the exact-mode
    /// ground truth.
    fn nearest_rank(values: &[u64], ppm: u64) -> u64 {
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        let rank = ((ppm as u128 * sorted.len() as u128).div_ceil(1_000_000) as usize)
            .clamp(1, sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn exact_mode_matches_sorted_percentiles() {
        let values = [400u64, 100, 900, 250, 30, 30, 5_000_000, 777];
        let sketch = sketch_of(&values);
        assert!(sketch.is_exact());
        for ppm in [
            10_000, 250_000, 500_000, 900_000, 950_000, 990_000, 1_000_000,
        ] {
            assert_eq!(
                sketch.quantile_ppm(ppm),
                nearest_rank(&values, ppm),
                "ppm {ppm}"
            );
        }
        assert_eq!(sketch.max_us, 5_000_000);
        assert_eq!(sketch.count, 8);
    }

    #[test]
    fn collapse_happens_exactly_past_the_cap() {
        let mut sketch = QuantileSketch::new();
        for i in 0..SKETCH_EXACT_CAP as u64 {
            sketch.observe(i * 1_000);
        }
        assert!(sketch.is_exact(), "at the cap the sketch is still exact");
        sketch.observe(u64::MAX);
        assert!(!sketch.is_exact(), "one past the cap collapses");
        assert_eq!(sketch.count, SKETCH_EXACT_CAP as u64 + 1);
        assert_eq!(sketch.quantile_ppm(1_000_000), u64::MAX, "overflow → max");
    }

    #[test]
    fn merge_matches_single_stream() {
        let a = [12u64, 90_000, 3, 550, 1_000_000];
        let b = [7u64, 7, 2_000, 123_456_789];
        let mut merged = sketch_of(&a);
        merged.merge(&sketch_of(&b));
        let mut both: Vec<u64> = a.iter().chain(&b).copied().collect();
        both.sort_unstable();
        assert_eq!(merged, sketch_of(&both));
    }

    #[test]
    fn merge_is_associative_and_commutative_across_the_collapse() {
        // Three shards that only collapse once combined.
        let a: Vec<u64> = (0..30).map(|i| i * 17).collect();
        let b: Vec<u64> = (0..30).map(|i| i * 1_003).collect();
        let c: Vec<u64> = (0..30).map(|i| i * 999_999).collect();
        let (sa, sb, sc) = (sketch_of(&a), sketch_of(&b), sketch_of(&c));

        let mut ab_c = sa.clone();
        ab_c.merge(&sb);
        ab_c.merge(&sc);
        let mut a_bc = sb.clone();
        a_bc.merge(&sc);
        let mut left = sa.clone();
        left.merge(&a_bc);
        assert_eq!(ab_c, left, "associativity");

        let mut cba = sc.clone();
        cba.merge(&sb);
        cba.merge(&sa);
        assert_eq!(ab_c, cba, "commutativity");
        assert!(!ab_c.is_exact(), "90 samples must be collapsed");
    }

    #[test]
    fn empty_sketch_is_all_zeros() {
        let sketch = QuantileSketch::new();
        assert_eq!(sketch.quantile_ppm(500_000), 0);
        assert_eq!(sketch.mean_us(), 0);
        let mut merged = QuantileSketch::new();
        merged.merge(&sketch);
        assert_eq!(merged, QuantileSketch::new());
    }

    fn admitted(at_us: u64, kind: &str, queue_us: u64, exec_us: u64) -> SloSample {
        let mut s = SloSample::new(at_us, "solar-superstorm", kind);
        s.admitted = true;
        s.ok = true;
        s.queue_us = Some(queue_us);
        s.exec_us = Some(exec_us);
        s
    }

    fn shed(at_us: u64, kind: &str) -> SloSample {
        let mut s = SloSample::new(at_us, "solar-superstorm", kind);
        s.shed = true;
        s
    }

    #[test]
    fn intake_plus_outcome_equals_combined() {
        let combined = {
            let mut live = LiveStats::default();
            let mut s = admitted(0, "train", 10, 500);
            s.degraded = true;
            s.deadline_miss = true;
            live.record(&s);
            live.snapshot(0)
        };
        let split = {
            let mut live = LiveStats::default();
            let mut intake = SloSample::new(0, "solar-superstorm", "train");
            intake.admitted = true;
            live.record(&intake);
            let mut outcome = SloSample::new(0, "solar-superstorm", "train");
            outcome.ok = true;
            outcome.degraded = true;
            outcome.deadline_miss = true;
            outcome.queue_us = Some(10);
            outcome.exec_us = Some(500);
            live.record(&outcome);
            live.snapshot(0)
        };
        // Same cells; the sample count differs by construction.
        assert_eq!(combined.window, split.window);
        assert_eq!(combined.total, split.total);
    }

    #[test]
    fn window_slides_and_totals_accumulate() {
        let config = LiveConfig {
            window_us: 6_000_000,
            slices: 3,
        };
        let mut live = LiveStats::new(config);
        live.record(&admitted(0, "train", 5, 100));
        live.record(&admitted(1_000_000, "train", 5, 100));
        live.record(&shed(2_500_000, "quiz"));

        let early = live.snapshot(2_500_000);
        assert_eq!(early.window["solar-superstorm/train"].admitted, 2);
        assert_eq!(early.window["solar-superstorm/quiz"].shed, 1);

        // 9s later the first two slices have aged out of the window...
        live.record(&admitted(11_000_000, "train", 9, 900));
        let late = live.snapshot(11_000_000);
        assert_eq!(late.window["solar-superstorm/train"].admitted, 1);
        assert_eq!(late.window["solar-superstorm/train"].queue.max_us, 9);
        assert!(!late.window.contains_key("solar-superstorm/quiz"));
        // ...but the cumulative ledger never forgets.
        assert_eq!(late.total["solar-superstorm/train"].admitted, 3);
        assert_eq!(late.total["solar-superstorm/quiz"].shed, 1);
        assert_eq!(late.samples, 4);
    }

    #[test]
    fn rates_are_integer_ppm() {
        let mut cell = SloCell::default();
        let mut s = SloSample::new(0, "s", "k");
        s.admitted = true;
        s.degraded = true;
        cell.apply(&s);
        cell.apply(&s);
        let mut r = SloSample::new(0, "s", "k");
        r.shed = true;
        cell.apply(&r);
        assert_eq!(cell.admission_ppm(), 666_666);
        assert_eq!(cell.shed_ppm(), 333_333);
        assert_eq!(cell.degraded_ppm(), 1_000_000);
        assert_eq!(fmt_ppm_pct(cell.shed_ppm()), "33.33%");
        assert_eq!(fmt_ppm_pct(1_000_000), "100.00%");
        assert_eq!(fmt_ppm_pct(0), "0.00%");
    }

    #[test]
    fn renders_are_replay_stable_and_round_trip() {
        let mut live = LiveStats::default();
        live.record(&admitted(0, "train", 0, 10_000_000));
        live.record(&shed(250_000, "train"));
        live.record(&admitted(500_000, "ask", 250_000, 20_000_000));
        let snap = live.snapshot(500_000);

        let text = snap.render_text();
        assert!(text.starts_with("live telemetry @ 500000µs"));
        assert!(text.contains("solar-superstorm/train"));
        assert!(text.contains("shed=1"));
        let prom = snap.render_prometheus();
        assert!(prom.contains(
            "ira_serve_shed_total{scope=\"total\",scenario=\"solar-superstorm\",kind=\"train\"} 1"
        ));
        assert!(prom.contains("quantile=\"0.99\""));

        // Wire round-trip through the vendored serde.
        let json = serde_json::to_string(&snap).expect("snapshot serializes");
        let back: LiveSnapshot = serde_json::from_str(&json).expect("snapshot parses");
        assert_eq!(back, snap);
        assert_eq!(back.render_text(), text);

        // Replaying the same samples renders the same bytes.
        let mut replay = LiveStats::default();
        replay.record(&admitted(0, "train", 0, 10_000_000));
        replay.record(&shed(250_000, "train"));
        replay.record(&admitted(500_000, "ask", 250_000, 20_000_000));
        assert_eq!(replay.snapshot(500_000).render_text(), text);
    }

    #[test]
    fn empty_snapshot_renders_placeholder() {
        let snap = LiveStats::default().snapshot(0);
        assert!(snap.render_text().contains("(no samples)"));
    }
}
