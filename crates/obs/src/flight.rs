//! Flight recorder: always-on bounded capture with dump-on-trigger.
//!
//! A [`FlightRecorder`] is a [`Collector`] that keeps a small ring
//! buffer of the most recent [`TraceEvent`]s *per session* — cheap
//! enough to leave on in production — and, when a trigger event lands
//! (a serve-layer panic, shed, or deadline miss by default), freezes
//! the ring into a [`FlightDump`]: a causal post-mortem window ending
//! at the trigger, without paying for full tracing on the happy path.
//!
//! Determinism mirrors [`JsonlCollector`](crate::JsonlCollector): each
//! session's event stream is produced by exactly one thread, rings are
//! keyed by session id in a `BTreeMap`, and dumps render in
//! `(session, seq)` order — so the dump bytes are identical at any
//! worker count. Dump artifacts are themselves valid JSONL traces
//! (a synthetic `flight.dump` header point followed by the window),
//! so `ira trace profile/query` work on them unchanged.

use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::collector::Collector;
use crate::event::{render_jsonl, stage, TraceEvent};

/// Stage name used by synthetic dump-header events.
pub const FLIGHT_STAGE: &str = "flight";

/// A `(stage, name)` pair that freezes the ring when recorded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightTrigger {
    pub stage: String,
    pub name: String,
}

impl FlightTrigger {
    pub fn new(stage: impl Into<String>, name: impl Into<String>) -> Self {
        FlightTrigger {
            stage: stage.into(),
            name: name.into(),
        }
    }

    fn matches(&self, event: &TraceEvent) -> bool {
        event.stage == self.stage && event.name == self.name
    }

    /// The label dumps carry: `stage.name`.
    pub fn label(&self) -> String {
        format!("{}.{}", self.stage, self.name)
    }
}

/// Recorder policy: ring capacity and the trigger set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightConfig {
    /// Events retained per session; older events are evicted FIFO.
    pub capacity: usize,
    /// Events that freeze the ring into a dump. The defaults cover the
    /// serve layer's failure modes: `serve.panic` (session panicked),
    /// `serve.shed` (overload rejection), and `serve.deadline`
    /// (deadline exceeded, the marker every degraded request emits).
    pub triggers: Vec<FlightTrigger>,
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig {
            capacity: 64,
            triggers: vec![
                FlightTrigger::new(stage::SERVE, "panic"),
                FlightTrigger::new(stage::SERVE, "shed"),
                FlightTrigger::new(stage::SERVE, "deadline"),
            ],
        }
    }
}

/// One frozen post-mortem window: the ring contents at the instant a
/// trigger event was recorded (the trigger is the last event).
#[derive(Debug, Clone, PartialEq)]
pub struct FlightDump {
    /// Session whose ring was frozen.
    pub session: u32,
    /// 0-based dump index within the session.
    pub seq: u32,
    /// Trigger label, `stage.name`.
    pub trigger: String,
    /// Virtual timestamp of the trigger event.
    pub at_us: u64,
    /// Events that had already fallen off the ring before the trigger.
    pub evicted: u64,
    /// The retained window, oldest first; ends with the trigger event.
    pub events: Vec<TraceEvent>,
}

impl FlightDump {
    /// Deterministic artifact name: `flight_s0003_01_serve.panic.jsonl`.
    pub fn file_name(&self) -> String {
        format!(
            "flight_s{:04}_{:02}_{}.jsonl",
            self.session, self.seq, self.trigger
        )
    }

    /// Synthetic header event carried as the first line of the
    /// artifact: a `flight.dump` point whose detail names the trigger
    /// and the eviction count, and whose value is the dump seq.
    pub fn header_event(&self) -> TraceEvent {
        let mut header = TraceEvent::point(
            self.session,
            self.at_us,
            FLIGHT_STAGE,
            "dump",
            format!(
                "trigger={} evicted={} events={}",
                self.trigger,
                self.evicted,
                self.events.len()
            ),
        );
        header.value = u64::from(self.seq);
        header
    }

    /// The JSONL artifact: header line + window, parseable by
    /// [`parse_jsonl`](crate::parse_jsonl).
    pub fn render(&self) -> String {
        let mut lines = Vec::with_capacity(self.events.len() + 1);
        lines.push(self.header_event());
        lines.extend(self.events.iter().cloned());
        render_jsonl(&lines)
    }
}

#[derive(Debug, Default)]
struct SessionRing {
    ring: VecDeque<TraceEvent>,
    evicted: u64,
    dumps: Vec<FlightDump>,
}

/// The always-on collector. See the module docs for the determinism
/// contract; see [`FlightConfig`] for the trigger policy.
#[derive(Debug)]
pub struct FlightRecorder {
    config: FlightConfig,
    sessions: Mutex<BTreeMap<u32, SessionRing>>,
    events_seen: AtomicU64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(FlightConfig::default())
    }
}

impl FlightRecorder {
    pub fn new(config: FlightConfig) -> Self {
        FlightRecorder {
            config: FlightConfig {
                capacity: config.capacity.max(1),
                ..config
            },
            sessions: Mutex::new(BTreeMap::new()),
            events_seen: AtomicU64::new(0),
        }
    }

    pub fn config(&self) -> &FlightConfig {
        &self.config
    }

    /// Total events recorded (triggered or not).
    pub fn events_seen(&self) -> u64 {
        self.events_seen.load(Ordering::Relaxed)
    }

    /// All dumps frozen so far, in `(session, seq)` order.
    pub fn dumps(&self) -> Vec<FlightDump> {
        let sessions = self.sessions.lock();
        sessions
            .values()
            .flat_map(|s| s.dumps.iter().cloned())
            .collect()
    }

    pub fn dump_count(&self) -> usize {
        let sessions = self.sessions.lock();
        sessions.values().map(|s| s.dumps.len()).sum()
    }

    /// Every dump artifact concatenated in `(session, seq)` order —
    /// the golden-test surface.
    pub fn render(&self) -> String {
        self.dumps().iter().map(FlightDump::render).collect()
    }

    /// Write one JSONL artifact per dump into `dir` (created if
    /// missing), returning the paths in `(session, seq)` order. A
    /// run with no triggers writes nothing — not even the directory's
    /// contents change.
    pub fn write_dumps(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let dumps = self.dumps();
        let mut paths = Vec::with_capacity(dumps.len());
        if dumps.is_empty() {
            return Ok(paths);
        }
        std::fs::create_dir_all(dir)?;
        for dump in &dumps {
            let path = dir.join(dump.file_name());
            std::fs::write(&path, dump.render())?;
            paths.push(path);
        }
        Ok(paths)
    }
}

impl Collector for FlightRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, event: TraceEvent) {
        self.events_seen.fetch_add(1, Ordering::Relaxed);
        let triggered = self
            .config
            .triggers
            .iter()
            .find(|t| t.matches(&event))
            .map(FlightTrigger::label);
        let mut sessions = self.sessions.lock();
        let entry = sessions.entry(event.session).or_default();
        if entry.ring.len() == self.config.capacity {
            entry.ring.pop_front();
            entry.evicted += 1;
        }
        let session = event.session;
        let at_us = event.at_us;
        entry.ring.push_back(event);
        if let Some(trigger) = triggered {
            let dump = FlightDump {
                session,
                seq: entry.dumps.len() as u32,
                trigger,
                at_us,
                evicted: entry.evicted,
                events: entry.ring.iter().cloned().collect(),
            };
            entry.dumps.push(dump);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::parse_jsonl;

    fn point(session: u32, at_us: u64, name: &str) -> TraceEvent {
        TraceEvent::point(session, at_us, stage::SERVE, name, format!("t={at_us}"))
    }

    fn tiny_recorder(capacity: usize) -> FlightRecorder {
        FlightRecorder::new(FlightConfig {
            capacity,
            ..FlightConfig::default()
        })
    }

    #[test]
    fn ring_evicts_fifo_and_dump_ends_with_trigger() {
        let rec = tiny_recorder(3);
        for i in 0..5 {
            rec.record(point(7, i, "admitted"));
        }
        rec.record(point(7, 5, "panic"));
        let dumps = rec.dumps();
        assert_eq!(dumps.len(), 1);
        let dump = &dumps[0];
        assert_eq!(dump.trigger, "serve.panic");
        assert_eq!(dump.evicted, 3, "events 0..=2 fell off a 3-slot ring");
        let times: Vec<u64> = dump.events.iter().map(|e| e.at_us).collect();
        assert_eq!(times, vec![3, 4, 5], "oldest-first window ends at trigger");
        assert_eq!(dump.events.last().unwrap().name, "panic");
        assert_eq!(dump.file_name(), "flight_s0007_00_serve.panic.jsonl");
    }

    #[test]
    fn no_trigger_means_no_dumps() {
        let rec = FlightRecorder::default();
        for i in 0..100 {
            rec.record(point(0, i, "admitted"));
        }
        assert_eq!(rec.dump_count(), 0);
        assert_eq!(rec.events_seen(), 100);
        assert_eq!(rec.render(), "");
        let dir = std::env::temp_dir().join("ira_flight_none_test");
        let written = rec.write_dumps(&dir).unwrap();
        assert!(written.is_empty(), "zero artifacts on a clean run");
    }

    #[test]
    fn dumps_flatten_in_session_then_seq_order() {
        let rec = FlightRecorder::default();
        // Record sessions out of order to prove the BTreeMap sorts.
        rec.record(point(9, 1, "shed"));
        rec.record(point(2, 1, "deadline"));
        rec.record(point(2, 2, "panic"));
        let dumps = rec.dumps();
        let keys: Vec<(u32, u32, &str)> = dumps
            .iter()
            .map(|d| (d.session, d.seq, d.trigger.as_str()))
            .collect();
        assert_eq!(
            keys,
            vec![
                (2, 0, "serve.deadline"),
                (2, 1, "serve.panic"),
                (9, 0, "serve.shed"),
            ]
        );
    }

    #[test]
    fn rendered_dump_is_a_valid_trace() {
        let rec = tiny_recorder(8);
        rec.record(point(1, 10, "admitted"));
        rec.record(point(1, 20, "deadline"));
        let rendered = rec.render();
        let events = parse_jsonl(&rendered).expect("dump parses as a trace");
        assert_eq!(events.len(), 3, "header + two window events");
        assert_eq!(events[0].stage, FLIGHT_STAGE);
        assert_eq!(events[0].name, "dump");
        assert_eq!(
            events[0].detail,
            "trigger=serve.deadline evicted=0 events=2"
        );
        assert_eq!(events[0].at_us, 20, "header carries the trigger instant");
    }

    #[test]
    fn identical_streams_render_identical_bytes() {
        let run = || {
            let rec = tiny_recorder(4);
            for i in 0..6 {
                rec.record(point(3, i, "admitted"));
            }
            rec.record(point(3, 6, "shed"));
            rec.record(point(5, 0, "panic"));
            rec.render()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn write_dumps_produces_named_artifacts() {
        let rec = FlightRecorder::default();
        rec.record(point(4, 100, "panic"));
        let dir = std::env::temp_dir().join("ira_flight_write_test");
        let _ = std::fs::remove_dir_all(&dir);
        let written = rec.write_dumps(&dir).unwrap();
        assert_eq!(written.len(), 1);
        assert!(written[0].ends_with("flight_s0004_00_serve.panic.jsonl"));
        let body = std::fs::read_to_string(&written[0]).unwrap();
        assert_eq!(body, rec.dumps()[0].render());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
