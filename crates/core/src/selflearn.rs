//! Self-learning trajectory records (§3 step 4 / §4.2).
//!
//! Each question the agent is tested on produces a trajectory: the
//! confidence before any extra learning (round 0), then one record per
//! self-learning round showing the searches issued, what was memorised,
//! and the re-assessed confidence. Experiments E2/E3 print these.

use ira_simllm::reason::Answer;
use serde::{Deserialize, Serialize};

/// One round of the self-learning loop.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Round index; 0 is the pre-learning assessment.
    pub round: u32,
    /// Confidence after this round's knowledge state.
    pub confidence: u8,
    /// Evidence coverage backing that confidence.
    pub coverage: f64,
    /// The committed verdict, if any.
    pub verdict: Option<String>,
    /// The answer text at this round.
    pub answer_text: String,
    /// Searches issued *during* this round (empty for round 0).
    pub searches: Vec<String>,
    /// Entries memorised during this round.
    pub memorized: u32,
}

/// A full per-question trajectory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LearningTrajectory {
    pub question: String,
    pub threshold: u8,
    pub rounds: Vec<RoundRecord>,
    /// Whether the final confidence met the threshold.
    pub reached_threshold: bool,
}

impl LearningTrajectory {
    pub fn new(question: &str, threshold: u8) -> Self {
        LearningTrajectory {
            question: question.to_string(),
            threshold,
            rounds: Vec::new(),
            reached_threshold: false,
        }
    }

    /// Record a round from an answer.
    pub fn record(&mut self, round: u32, answer: &Answer, searches: Vec<String>, memorized: u32) {
        self.rounds.push(RoundRecord {
            round,
            confidence: answer.confidence,
            coverage: answer.coverage,
            verdict: answer.verdict.clone(),
            answer_text: answer.text.clone(),
            searches,
            memorized,
        });
        self.reached_threshold = answer.confidence >= self.threshold;
    }

    /// Confidence before any self-learning.
    pub fn initial_confidence(&self) -> Option<u8> {
        self.rounds.first().map(|r| r.confidence)
    }

    /// Confidence after the last round.
    pub fn final_confidence(&self) -> Option<u8> {
        self.rounds.last().map(|r| r.confidence)
    }

    /// Total searches issued across rounds.
    pub fn total_searches(&self) -> usize {
        self.rounds.iter().map(|r| r.searches.len()).sum()
    }

    /// Number of learning rounds actually executed (excludes round 0).
    pub fn learning_rounds(&self) -> u32 {
        self.rounds.len().saturating_sub(1) as u32
    }

    /// The confidence series, round by round.
    pub fn confidence_series(&self) -> Vec<u8> {
        self.rounds.iter().map(|r| r.confidence).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn answer(confidence: u8) -> Answer {
        Answer {
            text: format!("answer at {confidence}"),
            verdict: (confidence >= 7).then(|| "committed".into()),
            confidence,
            coverage: confidence as f64 / 10.0,
            missing: Vec::new(),
            principles_used: Vec::new(),
            facts_used: 0,
            reasoning: Vec::new(),
        }
    }

    #[test]
    fn trajectory_tracks_rounds() {
        let mut t = LearningTrajectory::new("q", 7);
        t.record(0, &answer(3), Vec::new(), 0);
        assert!(!t.reached_threshold);
        t.record(
            1,
            &answer(9),
            vec!["query one".into(), "query two".into()],
            5,
        );
        assert!(t.reached_threshold);
        assert_eq!(t.initial_confidence(), Some(3));
        assert_eq!(t.final_confidence(), Some(9));
        assert_eq!(t.total_searches(), 2);
        assert_eq!(t.learning_rounds(), 1);
        assert_eq!(t.confidence_series(), vec![3, 9]);
    }

    #[test]
    fn empty_trajectory_is_safe() {
        let t = LearningTrajectory::new("q", 7);
        assert_eq!(t.initial_confidence(), None);
        assert_eq!(t.final_confidence(), None);
        assert_eq!(t.learning_rounds(), 0);
    }

    #[test]
    fn threshold_can_regress_and_recover() {
        let mut t = LearningTrajectory::new("q", 5);
        t.record(0, &answer(6), Vec::new(), 0);
        assert!(t.reached_threshold);
        t.record(1, &answer(4), vec!["x".into()], 1);
        assert!(!t.reached_threshold, "reflects the latest round");
    }
}
