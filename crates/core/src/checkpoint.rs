//! Training checkpoint/resume.
//!
//! `train` can take a long (virtual and host) time; an interrupted run
//! used to lose everything. A [`TrainingCheckpoint`] is written
//! atomically (via [`ira_agentmem::persist`]) after every *completed*
//! goal, so a restarted `train --resume` skips finished goals, restores
//! the memory they produced, and replays the virtual clock to the
//! checkpointed instant — making the resumed run's remaining goals see
//! exactly the state an uninterrupted run would have.

use ira_agentmem::persist;
use ira_autogpt::GoalReport;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

/// Durable snapshot of a training run after its last completed goal.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainingCheckpoint {
    /// Role (agent) name the checkpoint belongs to; a resume under a
    /// different role ignores the checkpoint instead of corrupting it.
    pub role_name: String,
    /// Goals completed so far, in execution order.
    pub completed: Vec<String>,
    /// Per-goal reports for the completed goals.
    pub per_goal: Vec<GoalReport>,
    /// Serialized knowledge store (`KnowledgeStore::to_json`).
    pub memory: String,
    /// Virtual clock reading when the checkpoint was taken,
    /// microseconds. Replayed on resume so remaining goals observe the
    /// same timestamps an uninterrupted run would.
    pub clock_us: u64,
}

impl TrainingCheckpoint {
    /// Atomically persist the checkpoint (checksum envelope + `.bak`
    /// rotation, see [`ira_agentmem::persist::save_atomic`]).
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        persist::save_atomic(path, &json)
    }

    /// Load a checkpoint, tolerating absence and corruption: any
    /// failure (missing file, bad checksum with no usable backup,
    /// schema drift) yields `None` — training then starts from scratch
    /// rather than crashing.
    pub fn load(path: &Path) -> Option<TrainingCheckpoint> {
        let json = persist::load_with_backup(path).ok()?;
        serde_json::from_str(&json).ok()
    }

    /// Delete the checkpoint and its backup (after a successful run).
    pub fn remove(path: &Path) {
        std::fs::remove_file(path).ok();
        std::fs::remove_file(persist::backup_path(path)).ok();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("ira-checkpoint-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        TrainingCheckpoint::remove(&path);
        path
    }

    fn sample() -> TrainingCheckpoint {
        TrainingCheckpoint {
            role_name: "Bob".into(),
            completed: vec!["goal one".into()],
            per_goal: vec![GoalReport {
                goal: "goal one".into(),
                ..GoalReport::default()
            }],
            memory: r#"{"entries": []}"#.into(),
            clock_us: 123_456,
        }
    }

    #[test]
    fn round_trip() {
        let path = temp_path("ckpt.json");
        sample().save(&path).unwrap();
        let back = TrainingCheckpoint::load(&path).expect("checkpoint loads");
        assert_eq!(back.role_name, "Bob");
        assert_eq!(back.completed, vec!["goal one".to_string()]);
        assert_eq!(back.clock_us, 123_456);
        TrainingCheckpoint::remove(&path);
    }

    #[test]
    fn missing_checkpoint_is_none_not_an_error() {
        let path = temp_path("absent.json");
        assert!(TrainingCheckpoint::load(&path).is_none());
    }

    #[test]
    fn corrupt_checkpoint_without_backup_is_none() {
        let path = temp_path("corrupt.json");
        std::fs::write(&path, "{definitely not json").unwrap();
        assert!(TrainingCheckpoint::load(&path).is_none());
        TrainingCheckpoint::remove(&path);
    }

    #[test]
    fn truncated_checkpoint_recovers_from_bak() {
        let path = temp_path("trunc.json");
        sample().save(&path).unwrap();
        let mut second = sample();
        second.completed.push("goal two".into());
        second.save(&path).unwrap();
        let raw = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() / 2]).unwrap();
        let back = TrainingCheckpoint::load(&path).expect("must fall back to .bak");
        assert_eq!(back.completed.len(), 1, "backup holds the first generation");
        TrainingCheckpoint::remove(&path);
    }

    #[test]
    fn remove_clears_checkpoint_and_backup() {
        let path = temp_path("rm.json");
        sample().save(&path).unwrap();
        sample().save(&path).unwrap();
        TrainingCheckpoint::remove(&path);
        assert!(!path.exists());
        assert!(!persist::backup_path(&path).exists());
    }
}
