//! The simulated environment: world → corpus → network → client.
//!
//! [`Environment::from_parts`] is the single construction path; the
//! engine layer (`ira-engine`) calls it with a cached corpus, and the
//! deprecated legacy builders are thin wrappers that generate the
//! corpus themselves first.

use ira_simnet::{Client, ClientConfig, Duration, FaultPlan, Network, NetworkConfig};
use ira_webcorpus::{register_sites, Corpus, CorpusConfig};
use ira_worldmodel::scenario::ScenarioSpec;
use ira_worldmodel::World;
use std::sync::Arc;

/// Random fault injection for a chaos environment: a seeded random
/// fault plan (blackouts, flaky periods, rate-limit storms, corrupted
/// bodies) plus a circuit-breaker-enabled client.
#[derive(Debug, Clone, Copy)]
pub struct FaultSpec {
    /// Share of hosts faulted, 0.0–1.0.
    pub intensity: f64,
    /// Virtual-time horizon the fault plan covers.
    pub horizon: Duration,
    /// Fault-plan seed.
    pub seed: u64,
}

/// Everything outside the agent: ground truth, the web built from it,
/// and the network serving that web.
pub struct Environment {
    pub world: World,
    pub corpus: Arc<Corpus>,
    pub client: Client,
}

impl Environment {
    /// The single construction path: build a fresh network on
    /// `net_seed`, register the corpus sites, and wire a plain client —
    /// or, with `faults`, install the seeded fault plan and a resilient
    /// (circuit-breaker) client so the agent degrades around dead hosts
    /// instead of hammering them.
    ///
    /// The corpus arrives pre-generated (and usually shared) so sweeps
    /// pay corpus generation once; see `ira-engine`'s corpus cache.
    pub fn from_parts(
        world: World,
        corpus: Arc<Corpus>,
        net_seed: u64,
        faults: Option<FaultSpec>,
    ) -> Self {
        let mut net = Network::new(NetworkConfig::default(), net_seed);
        register_sites(&mut net, Arc::clone(&corpus));
        let client = match faults {
            None => Client::new(Arc::new(net)),
            Some(spec) => {
                let hosts = net.host_names();
                let net = Arc::new(net);
                net.set_fault_plan(FaultPlan::random(
                    &hosts,
                    spec.intensity,
                    spec.horizon,
                    spec.seed,
                ));
                Client::with_config(net, ClientConfig::resilient())
            }
        };
        Environment {
            world,
            corpus,
            client,
        }
    }

    /// Build the standard environment with explicit seeds.
    #[deprecated(
        since = "0.2.0",
        note = "spawn sessions through `ira_engine::Engine::spawn_session` (or use `Environment::from_parts`)"
    )]
    pub fn build(corpus_config: CorpusConfig, net_seed: u64) -> Self {
        let world = World::standard();
        let corpus = Arc::new(Corpus::generate(&world, corpus_config));
        Self::from_parts(world, corpus, net_seed, None)
    }

    /// Build around a caller-supplied world (for ablations).
    #[deprecated(
        since = "0.2.0",
        note = "spawn sessions through `ira_engine::Engine::with_world` + `spawn_session` (or use `Environment::from_parts`)"
    )]
    pub fn build_with_world(world: World, corpus_config: CorpusConfig, net_seed: u64) -> Self {
        let corpus = Arc::new(Corpus::generate(&world, corpus_config));
        Self::from_parts(world, corpus, net_seed, None)
    }

    /// The default experiment environment.
    pub fn standard() -> Self {
        let world = World::standard();
        let corpus = Arc::new(Corpus::generate(&world, CorpusConfig::default()));
        Self::from_parts(world, corpus, 0xBEEF, None)
    }

    /// Build an environment for a scenario spec: standard world, the
    /// scenario's corpus (base web + event pages), and a network on
    /// `net_seed`. The canonical spec reproduces
    /// [`Environment::standard`] byte for byte. Errors if the spec
    /// names no registered scenario.
    ///
    /// Sweeps should prefer `ira_engine::Engine` session spawning,
    /// which shares one corpus per spec across sessions.
    pub fn for_scenario(
        spec: &ScenarioSpec,
        net_seed: u64,
        faults: Option<FaultSpec>,
    ) -> Result<Self, String> {
        let world = World::standard();
        let corpus = Arc::new(Corpus::for_scenario(&world, spec)?);
        Ok(Self::from_parts(world, corpus, net_seed, faults))
    }

    /// Build a chaos environment: the standard stack plus a seeded
    /// random fault plan over `intensity` of the hosts for `horizon` of
    /// virtual time.
    #[deprecated(
        since = "0.2.0",
        note = "spawn sessions through `ira_engine::Engine::spawn_session` with `SessionConfig::faults` (or use `Environment::from_parts`)"
    )]
    pub fn build_chaotic(
        corpus_config: CorpusConfig,
        net_seed: u64,
        intensity: f64,
        horizon: Duration,
        fault_seed: u64,
    ) -> Self {
        let world = World::standard();
        let corpus = Arc::new(Corpus::generate(&world, corpus_config));
        Self::from_parts(
            world,
            corpus,
            net_seed,
            Some(FaultSpec {
                intensity,
                horizon,
                seed: fault_seed,
            }),
        )
    }

    /// Virtual time elapsed so far, microseconds.
    pub fn now_us(&self) -> u64 {
        self.client.network().clock().now().as_micros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_environment_serves_search() {
        let env = Environment::standard();
        let body = env
            .client
            .get_text("sim://search.test/q?query=solar+superstorm")
            .unwrap();
        assert!(body.contains("results"));
        assert!(env.corpus.len() > 200);
    }

    #[test]
    fn distractor_count_is_tunable() {
        let build = |distractor_count| {
            let world = World::standard();
            let corpus = Arc::new(Corpus::generate(
                &world,
                CorpusConfig {
                    seed: 1,
                    distractor_count,
                    ..CorpusConfig::default()
                },
            ));
            Environment::from_parts(world, corpus, 1, None)
        };
        let small = build(0);
        let big = build(300);
        assert_eq!(big.corpus.len() - small.corpus.len(), 300);
    }

    #[test]
    fn scenario_spec_path_matches_standard_for_the_canonical_spec() {
        let canonical = Environment::standard();
        let spec = Environment::for_scenario(&ScenarioSpec::default(), 0xBEEF, None).unwrap();
        assert_eq!(canonical.corpus.len(), spec.corpus.len());
        let a = canonical
            .client
            .get_text("sim://search.test/q?query=solar+superstorm")
            .unwrap();
        let b = spec
            .client
            .get_text("sim://search.test/q?query=solar+superstorm")
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(canonical.now_us(), spec.now_us());
        assert!(Environment::for_scenario(&ScenarioSpec::named("nope"), 0xBEEF, None).is_err());
    }

    #[test]
    fn scenario_environments_serve_their_event_pages() {
        let env =
            Environment::for_scenario(&ScenarioSpec::named("route-leak"), 0xBEEF, None).unwrap();
        let page = env
            .client
            .get_text("sim://search.test/q?query=bgp+withdrawal+dns+prefixes")
            .unwrap();
        assert!(page.contains("results"));
        let doc = env
            .corpus
            .iter()
            .find(|d| d.topic == ira_webcorpus::Topic::ScenarioEvent)
            .expect("route-leak emits event pages");
        let body = env.client.get_text(&doc.url().to_string()).unwrap();
        assert!(body.contains(&doc.title));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_builders_still_match_from_parts() {
        // The wrappers must stay byte-identical to the canonical path
        // until they are removed.
        let legacy = Environment::build(CorpusConfig::default(), 0xBEEF);
        let canonical = Environment::standard();
        assert_eq!(legacy.corpus.len(), canonical.corpus.len());
        assert_eq!(legacy.now_us(), canonical.now_us());
        let a = legacy
            .client
            .get_text("sim://search.test/q?query=solar+superstorm")
            .unwrap();
        let b = canonical
            .client
            .get_text("sim://search.test/q?query=solar+superstorm")
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(legacy.now_us(), canonical.now_us());
    }
}
