//! The simulated environment: world → corpus → network → client.

use ira_simnet::{Client, ClientConfig, Duration, FaultPlan, Network, NetworkConfig};
use ira_webcorpus::{register_sites, Corpus, CorpusConfig};
use ira_worldmodel::World;
use std::sync::Arc;

/// Everything outside the agent: ground truth, the web built from it,
/// and the network serving that web.
pub struct Environment {
    pub world: World,
    pub corpus: Arc<Corpus>,
    pub client: Client,
}

impl Environment {
    /// Build the standard environment with explicit seeds.
    pub fn build(corpus_config: CorpusConfig, net_seed: u64) -> Self {
        let world = World::standard();
        Self::build_with_world(world, corpus_config, net_seed)
    }

    /// Build around a caller-supplied world (for ablations).
    pub fn build_with_world(world: World, corpus_config: CorpusConfig, net_seed: u64) -> Self {
        let corpus = Arc::new(Corpus::generate(&world, corpus_config));
        let mut net = Network::new(NetworkConfig::default(), net_seed);
        register_sites(&mut net, Arc::clone(&corpus));
        let client = Client::new(Arc::new(net));
        Environment {
            world,
            corpus,
            client,
        }
    }

    /// The default experiment environment.
    pub fn standard() -> Self {
        Self::build(CorpusConfig::default(), 0xBEEF)
    }

    /// Build a chaos environment: the standard stack plus a seeded
    /// random fault plan (blackouts, flaky periods, rate-limit storms,
    /// corrupted bodies) over `intensity` of the hosts for `horizon` of
    /// virtual time, and a circuit-breaker-enabled client so the agent
    /// degrades around dead hosts instead of hammering them.
    pub fn build_chaotic(
        corpus_config: CorpusConfig,
        net_seed: u64,
        intensity: f64,
        horizon: Duration,
        fault_seed: u64,
    ) -> Self {
        let world = World::standard();
        let corpus = Arc::new(Corpus::generate(&world, corpus_config));
        let mut net = Network::new(NetworkConfig::default(), net_seed);
        register_sites(&mut net, Arc::clone(&corpus));
        let hosts = net.host_names();
        let net = Arc::new(net);
        net.set_fault_plan(FaultPlan::random(&hosts, intensity, horizon, fault_seed));
        let client = Client::with_config(net, ClientConfig::resilient());
        Environment {
            world,
            corpus,
            client,
        }
    }

    /// Virtual time elapsed so far, microseconds.
    pub fn now_us(&self) -> u64 {
        self.client.network().clock().now().as_micros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_environment_serves_search() {
        let env = Environment::standard();
        let body = env
            .client
            .get_text("sim://search.test/q?query=solar+superstorm")
            .unwrap();
        assert!(body.contains("results"));
        assert!(env.corpus.len() > 200);
    }

    #[test]
    fn distractor_count_is_tunable() {
        let small = Environment::build(
            CorpusConfig {
                seed: 1,
                distractor_count: 0,
            },
            1,
        );
        let big = Environment::build(
            CorpusConfig {
                seed: 1,
                distractor_count: 300,
            },
            1,
        );
        assert_eq!(big.corpus.len() - small.corpus.len(), 300);
    }
}
