//! The research agent: role + model + memory + autonomous retrieval,
//! with the knowledge-testing / self-learning loop of §3.
//!
//! The agent owns shared handles to its service backends — a
//! [`WebServices`] (search + fetch + session clock) and a
//! [`LanguageModel`] — rather than borrowing an environment, so agents
//! are `Send` and sessions can run on worker threads (see
//! `ira-engine`). [`ResearchAgent::new`] keeps the legacy convenience
//! wiring: clone the environment's client and build a seeded GPT-4
//! model.

use crate::config::AgentConfig;
use crate::env::Environment;
use crate::role::RoleDefinition;
use crate::selflearn::LearningTrajectory;
use crate::stages::{HostTimer, StageStats};
use ira_agentmem::KnowledgeStore;
use ira_autogpt::{AutoGpt, Budget, GoalReport};
use ira_obs::{stage, ObsHandle, SharedCollector, TraceEvent};
use ira_services::{Answer, LanguageModel, LlmStats, WebServices};
use ira_simllm::Llm;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Summary of the initial goal-driven training phase.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainingReport {
    pub per_goal: Vec<GoalReport>,
    pub memory_entries: usize,
    pub llm: LlmStats,
    /// Virtual time the training consumed, microseconds.
    pub virtual_elapsed_us: u64,
    /// Host wall time, microseconds.
    pub host_elapsed_us: u64,
}

impl TrainingReport {
    pub fn total_searches(&self) -> u32 {
        self.per_goal.iter().map(|g| g.searches).sum()
    }
    pub fn total_fetches(&self) -> u32 {
        self.per_goal.iter().map(|g| g.fetches).sum()
    }
    pub fn total_memorized(&self) -> u32 {
        self.per_goal.iter().map(|g| g.memorized).sum()
    }
}

/// The interactive research agent.
pub struct ResearchAgent {
    pub role: RoleDefinition,
    config: AgentConfig,
    web: Arc<dyn WebServices>,
    llm: Arc<dyn LanguageModel>,
    memory: KnowledgeStore,
    stages: StageStats,
    obs: ObsHandle,
}

impl ResearchAgent {
    /// Create an untrained agent in an environment: the canonical
    /// simulation wiring — the environment's client as web services, a
    /// seeded GPT-4-class model.
    pub fn new(role: RoleDefinition, env: &Environment, config: AgentConfig, seed: u64) -> Self {
        let web: Arc<dyn WebServices> = Arc::new(env.client.clone());
        let llm: Arc<dyn LanguageModel> = Arc::new(Llm::gpt4(seed));
        Self::from_services(role, web, llm, config)
    }

    /// Create an agent over explicit service backends. The configured
    /// [`InferenceLatency`](crate::config::InferenceLatency) is
    /// installed as the model's inference hook, charging every call to
    /// the web services' clock.
    pub fn from_services(
        role: RoleDefinition,
        web: Arc<dyn WebServices>,
        llm: Arc<dyn LanguageModel>,
        config: AgentConfig,
    ) -> Self {
        let latency = config.inference;
        let clock = Arc::clone(&web);
        llm.set_inference_hook(Arc::new(move |prompt, completion| {
            clock.advance_us(latency.charge_us(prompt, completion));
        }));
        let memory = KnowledgeStore::new(config.memory);
        memory.set_graph_retrieval(config.graph_retrieval);
        // Graph-mode retrieval feeds different knowledge into the
        // prompt, so grounded answers must be cached under a distinct
        // mode (0 = legacy, byte-identical to the pre-graph cache).
        llm.set_grounding_mode(config.graph_retrieval as u64);
        ResearchAgent {
            role,
            config,
            web,
            llm,
            memory,
            stages: StageStats::default(),
            obs: ObsHandle::disabled(),
        }
    }

    /// Attach a trace collector under `session`: the retrieval loops
    /// mirror their event logs into it, knowledge-test verdicts and
    /// memory growth are recorded, and the model's inference hook is
    /// reinstalled to emit an LLM-call span (still charging the same
    /// virtual latency) for every call. Creates a fresh causal
    /// context; use [`ResearchAgent::set_observer_handle`] to share a
    /// session-wide one (so client fetch spans and agent cycle scopes
    /// form one tree).
    pub fn set_observer(&mut self, sink: SharedCollector, session: u32) {
        self.set_observer_handle(ObsHandle::new(sink, session));
    }

    /// Attach a shared causal observation handle. LLM-call spans and
    /// all agent events are parented under whatever scope the session
    /// currently has open.
    pub fn set_observer_handle(&mut self, handle: ObsHandle) {
        self.obs = handle.clone();
        // Provenance records of future memorisations carry the
        // observing session's id.
        self.memory.set_session(handle.session());
        let latency = self.config.inference;
        let clock = Arc::clone(&self.web);
        self.llm
            .set_inference_hook(Arc::new(move |prompt, completion| {
                let start = clock.now_us();
                let charged = latency.charge_us(prompt, completion);
                clock.advance_us(charged);
                handle.emit(|| {
                    TraceEvent::span(
                        handle.session(),
                        start,
                        stage::LLM,
                        "call",
                        format!("prompt_tokens={prompt} completion_tokens={completion}"),
                        charged,
                    )
                });
            }));
    }

    /// Record the current memory size as a high-watermark gauge —
    /// plus, in graph-retrieval mode, the claim graph's shape (node /
    /// edge counts, corroboration histogram, decay evictions). The
    /// graph gauges are gated on the flag so legacy traces stay
    /// byte-identical.
    fn emit_memory_gauge(&self) {
        self.obs.emit(|| {
            TraceEvent::gauge(
                self.obs.session(),
                self.now_us(),
                stage::MEMORY,
                "entries",
                self.memory.len() as u64,
            )
        });
        if !self.config.graph_retrieval {
            return;
        }
        let gauge = |name: &'static str, value: u64| {
            self.obs.emit(|| {
                TraceEvent::gauge(
                    self.obs.session(),
                    self.now_us(),
                    stage::MEMORY,
                    name,
                    value,
                )
            });
        };
        let stats = self.memory.graph_stats();
        gauge("graph_nodes", stats.live_nodes);
        gauge("graph_edges", stats.edges);
        gauge("graph_corroborated", stats.corroborated_nodes);
        gauge("graph_support1", stats.corroboration_histogram[0]);
        gauge("graph_support2", stats.corroboration_histogram[1]);
        gauge("graph_support3", stats.corroboration_histogram[2]);
        gauge("graph_support4plus", stats.corroboration_histogram[3]);
        gauge("graph_decay_evictions", stats.decay_evictions);
    }

    /// Create an agent around an existing knowledge store — the
    /// restart path of a long-lived deployment (load `knowledge.json`,
    /// keep investigating).
    pub fn with_memory(
        role: RoleDefinition,
        env: &Environment,
        config: AgentConfig,
        seed: u64,
        memory: KnowledgeStore,
    ) -> Self {
        let mut agent = ResearchAgent::new(role, env, config, seed);
        agent.memory = memory;
        // The adopted store carries its own runtime flags; align them
        // with this agent's config.
        agent.memory.set_graph_retrieval(config.graph_retrieval);
        agent.llm.invalidate_grounding();
        agent
    }

    /// Agent Bob in the given environment with default config.
    pub fn bob(env: &Environment) -> Self {
        ResearchAgent::new(RoleDefinition::bob(), env, AgentConfig::default(), 0xB0B)
    }

    pub fn config(&self) -> &AgentConfig {
        &self.config
    }

    pub fn memory(&self) -> &KnowledgeStore {
        &self.memory
    }

    pub fn llm_stats(&self) -> LlmStats {
        self.llm.stats()
    }

    pub fn stage_stats(&self) -> StageStats {
        self.stages
    }

    fn now_us(&self) -> u64 {
        self.web.now_us()
    }

    /// Phase 1: pursue every role goal through the autonomous loop.
    pub fn train(&mut self) -> TrainingReport {
        self.train_until(u64::MAX)
    }

    /// Deadline-aware [`ResearchAgent::train`]: cooperative cancellation
    /// at goal granularity. The agent checks its virtual clock before
    /// each goal and stops once `deadline_us` (absolute virtual time)
    /// has passed, returning the partial report — compare
    /// `per_goal.len()` against `role.goals.len()` to detect
    /// truncation. A goal already in flight runs to completion (each is
    /// individually bounded by the Auto-GPT loop budget), so the
    /// overshoot past the deadline is bounded too.
    pub fn train_until(&mut self, deadline_us: u64) -> TrainingReport {
        let host = HostTimer::start();
        let virtual_start = self.now_us();
        let mut per_goal = Vec::new();
        for goal in self.role.goals.clone() {
            if self.now_us() >= deadline_us {
                break;
            }
            per_goal.push(self.retrieve_goal(&goal));
        }
        TrainingReport {
            per_goal,
            memory_entries: self.memory.len(),
            llm: self.llm.stats(),
            virtual_elapsed_us: self.now_us() - virtual_start,
            host_elapsed_us: host.elapsed_us(),
        }
    }

    /// Crash-safe [`ResearchAgent::train`]: a [`TrainingCheckpoint`] is
    /// written atomically after every completed goal, and a prior
    /// checkpoint at `ckpt_path` resumes the run — completed goals are
    /// skipped, their memory restored, and the virtual clock replayed
    /// to the checkpointed instant so the remaining goals observe
    /// exactly the state an uninterrupted run would have. The
    /// checkpoint is deleted once every goal has completed.
    ///
    /// [`TrainingCheckpoint`]: crate::checkpoint::TrainingCheckpoint
    pub fn train_with_checkpoint(
        &mut self,
        ckpt_path: &std::path::Path,
    ) -> Result<TrainingReport, ira_agentmem::store::StoreError> {
        use crate::checkpoint::TrainingCheckpoint;

        let host = HostTimer::start();
        let virtual_start = self.now_us();
        let mut per_goal: Vec<GoalReport> = Vec::new();
        let mut completed: Vec<String> = Vec::new();

        if let Some(ckpt) = TrainingCheckpoint::load(ckpt_path) {
            if ckpt.role_name == self.role.name {
                if let Ok(memory) = KnowledgeStore::from_json(&ckpt.memory) {
                    self.memory = memory;
                    self.memory.set_graph_retrieval(self.config.graph_retrieval);
                    self.memory.set_session(self.obs.session());
                    self.llm.invalidate_grounding();
                    per_goal = ckpt.per_goal;
                    completed = ckpt.completed;
                    let now = self.now_us();
                    if ckpt.clock_us > now {
                        self.web.advance_us(ckpt.clock_us - now);
                    }
                }
            }
        }

        for goal in self.role.goals.clone() {
            if completed.iter().any(|done| done == &goal) {
                continue;
            }
            per_goal.push(self.retrieve_goal(&goal));
            completed.push(goal.clone());
            TrainingCheckpoint {
                role_name: self.role.name.clone(),
                completed: completed.clone(),
                per_goal: per_goal.clone(),
                memory: self.memory.to_json(),
                clock_us: self.now_us(),
            }
            .save(ckpt_path)?;
        }
        TrainingCheckpoint::remove(ckpt_path);

        Ok(TrainingReport {
            per_goal,
            memory_entries: self.memory.len(),
            llm: self.llm.stats(),
            virtual_elapsed_us: self.now_us() - virtual_start,
            host_elapsed_us: host.elapsed_us(),
        })
    }

    fn retrieve_goal(&mut self, goal: &str) -> GoalReport {
        let host = HostTimer::start();
        let virtual_start = self.now_us();
        // The whole goal is one causal scope: the loop's cycle/search/
        // fetch/memory points, the client's fetch spans, and the LLM
        // call spans all nest under it. (The handle is cloned to a
        // local so the open scope doesn't hold a borrow of `self`.)
        let obs = self.obs.clone();
        let scope = obs.scope(virtual_start, stage::CYCLE, "goal");
        let mut loop_ = AutoGpt::new(
            &*self.web,
            &*self.llm,
            &self.memory,
            self.config.autogpt,
            self.config.budget,
        );
        if self.obs.enabled() {
            loop_.attach_observer_handle(self.obs.clone());
        }
        let report = loop_.run_goal(goal);
        // The goal loop memorized new pages: retrieval for a repeated
        // question may now surface different chunks.
        self.llm.invalidate_grounding();
        self.stages.retrieval_virtual_us += self.now_us() - virtual_start;
        self.stages.retrieval_host_us += host.elapsed_us();
        self.stages.retrieval_ops += 1;
        scope.finish(self.now_us(), || goal.to_string());
        self.emit_memory_gauge();
        report
    }

    /// The knowledge snippets the agent would load for a question.
    ///
    /// With `query_expansion` enabled, retrieval runs twice: the model
    /// first reads the question-retrieved context, names its knowledge
    /// gaps, and the gap queries' vocabulary joins the retrieval query.
    /// This bridges question/knowledge vocabulary mismatches (an
    /// answer about "susceptibility" may live in a page about "grid
    /// geomagnetic latitude").
    pub fn knowledge_for(&self, question: &str) -> Vec<String> {
        let first = self
            .memory
            .retrieve_texts(question, self.config.retrieval_k, self.now_us());
        if !self.config.query_expansion {
            return first;
        }
        let gap_queries = self.llm.propose_searches(question, &first, 4);
        if gap_queries.is_empty() {
            return first;
        }
        let expanded = format!("{question} {}", gap_queries.join(" "));
        self.memory
            .retrieve_texts(&expanded, self.config.retrieval_k, self.now_us())
    }

    /// Answer a question from current memory (no self-learning).
    pub fn ask(&mut self, question: &str) -> Answer {
        let knowledge = self.knowledge_for(question);
        let host = HostTimer::start();
        let virtual_start = self.now_us();
        let ans = self.llm.answer(question, &knowledge);
        self.stages.reasoning_virtual_us += self.now_us() - virtual_start;
        self.stages.reasoning_host_us += host.elapsed_us();
        self.stages.reasoning_ops += 1;
        ans
    }

    /// The paper's confidence probe.
    pub fn confidence(&mut self, question: &str) -> u8 {
        self.ask(question).confidence
    }

    /// Answer with citations: the knowledge entries (URL + source
    /// kind) that were loaded into the prompt for this answer — the
    /// per-answer form of §4.2's "verify the sources of the knowledge".
    pub fn ask_cited(&mut self, question: &str) -> (Answer, Vec<(String, String)>) {
        let entries = self
            .memory
            .retrieve(question, self.config.retrieval_k, self.now_us());
        let citations = entries
            .iter()
            .map(|e| (e.source_url.clone(), e.source_kind.clone()))
            .collect();
        let answer = self.ask(question);
        (answer, citations)
    }

    /// Phase 2: knowledge testing + iterative self-learning on one
    /// question (§3 step 4). Searches proposed by the model are pursued
    /// (optionally in parallel), memory grows, and the question is
    /// re-assessed, until the confidence threshold or round budget.
    pub fn self_learn(&mut self, question: &str) -> LearningTrajectory {
        // One causal scope for the whole test-and-learn loop, with a
        // child scope per learning round, so each verdict's LLM calls
        // and retrievals are attributable to the round that spent them.
        let obs = self.obs.clone();
        let learn_scope = obs.scope(self.now_us(), stage::CYCLE, "self_learn");
        let mut trajectory = LearningTrajectory::new(question, self.config.confidence_threshold);
        let mut answer = self.ask(question);
        trajectory.record(0, &answer, Vec::new(), 0);
        self.emit_verdict(0, &answer);

        let mut round = 1u32;
        while answer.confidence < self.config.confidence_threshold
            && round <= self.config.max_rounds
        {
            let round_scope = obs.scope(self.now_us(), stage::CYCLE, "round");
            let knowledge = self.knowledge_for(question);
            let host = HostTimer::start();
            let virtual_start = self.now_us();
            let queries: Vec<String> =
                self.llm
                    .propose_searches(question, &knowledge, self.config.searches_per_round);
            self.stages.reasoning_virtual_us += self.now_us() - virtual_start;
            self.stages.reasoning_host_us += host.elapsed_us();
            self.stages.reasoning_ops += 1;
            if queries.is_empty() {
                break; // the model sees no gap it knows how to search for
            }
            // Repeated queries are fine: the retrieval loop skips pages
            // it already memorised, so a re-issued search pages deeper
            // into the ranking. Zero new knowledge means the corpus is
            // exhausted for these queries — stop.
            let memorized = self.pursue_all(question, &queries);
            answer = self.ask(question);
            trajectory.record(round, &answer, queries, memorized);
            self.emit_verdict(round, &answer);
            round_scope.finish(self.now_us(), || format!("round={round}"));
            round += 1;
            if memorized == 0 {
                break;
            }
        }
        learn_scope.finish(self.now_us(), || question.to_string());
        trajectory
    }

    /// Record one knowledge-test verdict on the trace: the round's
    /// confidence rides in `value`, the committed verdict (if any) in
    /// the detail.
    fn emit_verdict(&self, round: u32, answer: &Answer) {
        self.obs.emit(|| {
            let name = if answer.confidence >= self.config.confidence_threshold {
                "committed"
            } else {
                "unresolved"
            };
            let mut ev = TraceEvent::point(
                self.obs.session(),
                self.now_us(),
                stage::VERDICT,
                name,
                format!(
                    "round={round} confidence={} verdict={}",
                    answer.confidence,
                    answer.verdict.as_deref().unwrap_or("-")
                ),
            );
            ev.value = answer.confidence as u64;
            ev
        });
    }

    /// Pursue a batch of queries, sequentially or in parallel threads.
    fn pursue_all(&mut self, topic: &str, queries: &[String]) -> u32 {
        let host = HostTimer::start();
        let virtual_start = self.now_us();
        let memorized: u32 = if self.config.parallel_retrieval && queries.len() > 1 {
            let web = &*self.web;
            let llm = &*self.llm;
            let memory = &self.memory;
            let autogpt = self.config.autogpt;
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = queries
                    .iter()
                    .map(|q| {
                        scope.spawn(move |_| {
                            let mut loop_ =
                                AutoGpt::new(web, llm, memory, autogpt, Budget::new(8, 24, 16));
                            loop_.pursue_query(topic, q).memorized
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("retrieval thread"))
                    .sum()
            })
            .expect("retrieval scope")
        } else {
            let mut loop_ = AutoGpt::new(
                &*self.web,
                &*self.llm,
                &self.memory,
                self.config.autogpt,
                self.config.budget,
            );
            // Only the single-threaded path feeds the trace: with
            // `parallel_retrieval` the intra-session interleaving (and
            // the shared virtual clock) is scheduler-dependent, so the
            // determinism guarantee only covers the default serial mode.
            if self.obs.enabled() {
                loop_.attach_observer_handle(self.obs.clone());
            }
            queries
                .iter()
                .map(|q| loop_.pursue_query(topic, q).memorized)
                .sum()
        };
        self.llm.invalidate_grounding();
        self.stages.retrieval_virtual_us += self.now_us() - virtual_start;
        self.stages.retrieval_host_us += host.elapsed_us();
        self.stages.retrieval_ops += queries.len() as u64;
        self.emit_memory_gauge();
        memorized
    }

    /// Reflection (the consolidation step of the generative-agents
    /// architecture the paper builds on): read everything in memory,
    /// synthesise higher-level insight entries, and memorise them in
    /// the same canonical sentence shapes the model can re-extract.
    /// Insights survive eviction better than the pages they summarise
    /// (high importance, small size). Returns the number of insights
    /// stored.
    pub fn reflect(&mut self) -> usize {
        use ira_simllm::extract::{Extraction, Fact};
        use std::collections::BTreeMap;

        let mut ex = Extraction::default();
        for entry in self.memory.entries() {
            ex.absorb(&entry.content, None);
        }

        let mut insights: Vec<String> = Vec::new();

        // Regional grid latitudes: average per region.
        let mut grid_lats: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        for f in &ex.facts {
            if let Fact::RegionGridLatitude {
                region, degrees, ..
            } = f
            {
                grid_lats.entry(region.clone()).or_default().push(*degrees);
            }
        }
        for (region, lats) in grid_lats {
            if lats.len() >= 2 {
                let mean = lats.iter().sum::<f64>() / lats.len() as f64;
                insights.push(format!(
                    "Insight from {} grid reports: the typical {region} grid serves {region} \
                     and sits at about {mean:.0} degrees geomagnetic latitude.",
                    lats.len()
                ));
            }
        }

        // Highest-latitude cable per region pair.
        let mut best: BTreeMap<(String, String), (String, f64)> = BTreeMap::new();
        for f in ex.routes() {
            if let Fact::CableRoute {
                name,
                from_region,
                to_region,
                ..
            } = f
            {
                if let Some(apex) = ex.apex_of(name) {
                    let key = if from_region <= to_region {
                        (from_region.clone(), to_region.clone())
                    } else {
                        (to_region.clone(), from_region.clone())
                    };
                    let entry = best.entry(key).or_insert((name.clone(), apex));
                    if apex > entry.1 {
                        *entry = (name.clone(), apex);
                    }
                }
            }
        }
        for ((ra, rb), (name, apex)) in best {
            insights.push(format!(
                "Insight: among cables linking {ra} and {rb}, the {name} cable reaches a \
                 maximum geomagnetic latitude of {apex:.1} degrees, the highest of its route."
            ));
        }

        // Principles seen across sources, restated verbatim-extractably.
        if !ex.principles.is_empty() {
            let count = ex.principles.len();
            insights.push(format!(
                "Insight: {count} general principles recur across sources. Geomagnetically \
                 induced currents grow stronger at higher geomagnetic latitudes."
            ));
        }

        let now = self.now_us();
        let mut stored = 0;
        for (i, insight) in insights.iter().enumerate() {
            if self
                .memory
                .memorize(
                    "reflection",
                    insight,
                    &format!("reflection://self/{i}"),
                    "reflection",
                    now,
                    0.9,
                )
                .is_some()
            {
                stored += 1;
            }
        }
        if stored > 0 {
            self.llm.invalidate_grounding();
        }
        stored
    }

    /// Produce a storm response plan (§4.3), self-learning planning
    /// guidance first if the memory lacks it.
    pub fn respond_plan(&mut self) -> Answer {
        let question = "Plan a shutdown strategy for network operators facing an incoming CME.";
        let _ = self.self_learn(question);
        let knowledge = self.knowledge_for(question);
        self.llm.shutdown_strategy(&knowledge)
    }

    /// Save the agent's knowledge to `knowledge.json`.
    pub fn save_knowledge(
        &self,
        path: &std::path::Path,
    ) -> Result<(), ira_agentmem::store::StoreError> {
        self.memory.save(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CABLE_Q: &str = "Which is more vulnerable to solar activity? The fiber optic cable \
                           that connects Brazil to Europe or the one that connects the US to \
                           Europe?";

    fn trained_bob(env: &Environment) -> ResearchAgent {
        let mut bob = ResearchAgent::bob(env);
        bob.train();
        bob
    }

    #[test]
    fn training_fills_memory_from_all_goals() {
        let env = Environment::standard();
        let mut bob = ResearchAgent::bob(&env);
        let report = bob.train();
        assert_eq!(report.per_goal.len(), 3);
        assert!(
            report.total_memorized() >= 5,
            "memorized {}",
            report.total_memorized()
        );
        assert!(report.memory_entries >= 5);
        assert!(report.virtual_elapsed_us > 0);
        assert!(report.llm.calls > 0);
    }

    #[test]
    fn agents_are_send() {
        // The whole point of the service-handle design: one session
        // (agent + its backends) can move to a worker thread.
        fn assert_send<T: Send>() {}
        assert_send::<ResearchAgent>();
    }

    #[test]
    fn untrained_agent_is_unconfident() {
        let env = Environment::standard();
        let mut bob = ResearchAgent::bob(&env);
        assert!(bob.confidence(CABLE_Q) <= 3);
    }

    #[test]
    fn inference_latency_config_governs_virtual_time() {
        // A free model spends no virtual time on reasoning; the
        // default GPT-4 profile dominates the run with it.
        let env = Environment::standard();
        let config = AgentConfig {
            inference: crate::config::InferenceLatency::zero(),
            ..AgentConfig::default()
        };
        let mut free = ResearchAgent::new(RoleDefinition::bob(), &env, config, 0xB0B);
        free.train();
        let _ = free.self_learn(CABLE_Q);
        let free_stages = free.stage_stats();
        assert_eq!(
            free_stages.reasoning_virtual_us, 0,
            "a zero-latency model must charge no reasoning time"
        );

        let env2 = Environment::standard();
        let mut paid = trained_bob(&env2);
        let _ = paid.self_learn(CABLE_Q);
        assert!(paid.stage_stats().reasoning_virtual_us > 0);
    }

    #[test]
    fn paper_e2_shape_cable_question() {
        // Trained Bob: low initial confidence, one self-learning round
        // lifts it to 8-9 with the US-Europe verdict (§4.2 result 1).
        let env = Environment::standard();
        let mut bob = trained_bob(&env);
        let trajectory = bob.self_learn(CABLE_Q);
        let initial = trajectory.initial_confidence().unwrap();
        let final_ = trajectory.final_confidence().unwrap();
        assert!(
            initial < 7,
            "initial confidence {initial} should be below threshold"
        );
        assert!(final_ >= 8, "final confidence {final_} should reach 8-9");
        assert!(trajectory.reached_threshold);
        let last = trajectory.rounds.last().unwrap();
        let verdict = last.verdict.as_deref().expect("should commit");
        assert!(
            verdict.to_lowercase().contains("united states"),
            "verdict: {verdict}"
        );
    }

    #[test]
    fn paper_e3_shape_datacenter_question() {
        let env = Environment::standard();
        let mut bob = trained_bob(&env);
        let q = "Whose datacenter is more vulnerable to a solar superstorm, Google's or \
                 Facebook's?";
        let trajectory = bob.self_learn(q);
        let initial = trajectory.initial_confidence().unwrap();
        let final_ = trajectory.final_confidence().unwrap();
        assert!(initial < 6, "initial {initial}");
        assert!(final_ > initial, "self-learning must improve confidence");
        let last = trajectory.rounds.last().unwrap();
        let verdict = last.verdict.as_deref().expect("should commit");
        assert!(verdict.contains("Facebook"), "verdict: {verdict}");
    }

    #[test]
    fn retrieval_improvements_fix_the_vocabulary_mismatch_miss() {
        // The US-vs-Asia question's vocabulary barely overlaps the
        // knowledge that answers it (grid geomagnetic latitudes).
        // Question-only top-k retrieval without a diversity penalty
        // never surfaces the grid page — the paper-shaped miss. The
        // default retrieval (gap-query expansion + MMR diversity)
        // resolves it.
        let q = "Is the United States or Asia more susceptible to Internet disruption from a \
                 solar superstorm?";
        let env = Environment::standard();
        let mut naive_cfg = AgentConfig {
            query_expansion: false,
            ..AgentConfig::default()
        };
        naive_cfg.memory.weights.diversity = 0.0;
        let mut plain = ResearchAgent::new(RoleDefinition::bob(), &env, naive_cfg, 0xB0B);
        plain.train();
        let baseline = plain.self_learn(q);
        assert!(
            baseline.final_confidence().unwrap() < 7,
            "naive retrieval should leave the mismatch unresolved: {:?}",
            baseline.confidence_series()
        );

        let env2 = Environment::standard();
        let mut fixed_agent = trained_bob(&env2);
        let fixed = fixed_agent.self_learn(q);
        assert!(
            fixed.final_confidence().unwrap() >= 8,
            "default retrieval should resolve it: {:?}",
            fixed.confidence_series()
        );
        let last = fixed.rounds.last().unwrap();
        let verdict = last.verdict.as_deref().unwrap_or("");
        assert!(verdict.contains("united states"), "verdict: {verdict}");
    }

    #[test]
    fn graph_retrieval_agent_still_resolves_the_cable_question() {
        // Graph-mode retrieval changes ranking, not correctness: the
        // trained agent must still reach the paper's verdict, and its
        // claim graph must be populated with provenance.
        let env = Environment::standard();
        let config = AgentConfig::builder()
            .graph_retrieval(true)
            .build()
            .unwrap();
        let mut bob = ResearchAgent::new(RoleDefinition::bob(), &env, config, 0xB0B);
        bob.train();
        assert!(bob.memory().graph_retrieval(), "flag must reach the store");
        let stats = bob.memory().graph_stats();
        assert!(stats.nodes > 0 && stats.edges > 0, "graph must be built");
        assert!(
            stats.corroborated_nodes > 0,
            "training reads multiple hosts; some claims must corroborate"
        );
        let trajectory = bob.self_learn(CABLE_Q);
        assert!(
            trajectory.final_confidence().unwrap() >= 8,
            "series: {:?}",
            trajectory.confidence_series()
        );
        let verdict = trajectory
            .rounds
            .last()
            .unwrap()
            .verdict
            .as_deref()
            .unwrap();
        assert!(
            verdict.to_lowercase().contains("united states"),
            "verdict: {verdict}"
        );
    }

    #[test]
    fn reflection_synthesises_extractable_insights() {
        use ira_simllm::extract::Extraction;
        let env = Environment::standard();
        let mut bob = trained_bob(&env);
        let _ = bob.self_learn(CABLE_Q);
        let before = bob.memory().len();
        let stored = bob.reflect();
        assert!(
            stored >= 1,
            "training plus one investigation should yield insights"
        );
        assert_eq!(bob.memory().len(), before + stored);
        // The insights themselves must be machine-readable.
        let mut ex = Extraction::default();
        for e in bob.memory().entries() {
            if e.source_kind == "reflection" {
                ex.absorb(&e.content, None);
            }
        }
        assert!(
            !ex.is_empty(),
            "insights must re-extract as facts or principles"
        );
        // Reflecting twice does not duplicate insights (dedup).
        let again = bob.reflect();
        assert_eq!(again, 0, "identical insights must deduplicate, got {again}");
    }

    #[test]
    fn ask_cited_reports_the_grounding_sources() {
        let env = Environment::standard();
        let mut bob = trained_bob(&env);
        let _ = bob.self_learn(CABLE_Q);
        let (answer, citations) = bob.ask_cited(CABLE_Q);
        assert!(answer.verdict.is_some());
        assert!(!citations.is_empty());
        assert!(citations.iter().all(|(url, _)| url.starts_with("sim://")));
        assert!(citations.len() <= bob.config().retrieval_k);
    }

    #[test]
    fn respond_plan_contains_the_papers_two_components() {
        let env = Environment::standard();
        let mut bob = trained_bob(&env);
        let plan = bob.respond_plan();
        assert!(
            plan.text.contains("Predictive Shutdown"),
            "plan: {}",
            plan.text
        );
        assert!(plan.text.contains("Redundancy Utilization"));
    }

    #[test]
    fn parallel_retrieval_matches_sequential_learning() {
        let env = Environment::standard();
        let mut seq = ResearchAgent::new(
            RoleDefinition::bob(),
            &env,
            AgentConfig {
                parallel_retrieval: false,
                ..AgentConfig::default()
            },
            1,
        );
        seq.train();
        let t_seq = seq.self_learn(CABLE_Q);

        let env2 = Environment::standard();
        let mut par = ResearchAgent::new(
            RoleDefinition::bob(),
            &env2,
            AgentConfig {
                parallel_retrieval: true,
                ..AgentConfig::default()
            },
            1,
        );
        par.train();
        let t_par = par.self_learn(CABLE_Q);

        assert_eq!(
            t_seq.final_confidence(),
            t_par.final_confidence(),
            "parallel retrieval must not change the learning outcome"
        );
    }

    #[test]
    fn interrupted_training_resumes_to_identical_knowledge() {
        use crate::checkpoint::TrainingCheckpoint;

        let ckpt = std::env::temp_dir().join("ira-core-resume-test.ckpt.json");
        TrainingCheckpoint::remove(&ckpt);

        // Uninterrupted reference run.
        let env1 = Environment::standard();
        let mut full = ResearchAgent::bob(&env1);
        let report_full = full.train_with_checkpoint(&ckpt).unwrap();
        assert!(!ckpt.exists(), "checkpoint must be deleted after success");

        // Interrupted run: goal 1 completes, then the process "dies".
        // Reconstruct the on-disk state train_with_checkpoint leaves
        // behind after its first goal.
        let env2 = Environment::standard();
        let mut partial_role = RoleDefinition::bob();
        let first_goal = partial_role.goals[0].clone();
        partial_role.goals.truncate(1);
        let mut partial = ResearchAgent::new(partial_role, &env2, AgentConfig::default(), 0xB0B);
        let partial_report = partial.train();
        TrainingCheckpoint {
            role_name: "Bob".into(),
            completed: vec![first_goal],
            per_goal: partial_report.per_goal.clone(),
            memory: partial.memory().to_json(),
            clock_us: env2.now_us(),
        }
        .save(&ckpt)
        .unwrap();

        // Restart: fresh process, fresh environment from the same
        // seeds, resume from the checkpoint.
        let env3 = Environment::standard();
        let mut resumed = ResearchAgent::bob(&env3);
        let report_resumed = resumed.train_with_checkpoint(&ckpt).unwrap();
        assert!(!ckpt.exists(), "checkpoint must be deleted after success");

        // Knowledge must match the uninterrupted run exactly, modulo
        // the learned_at timestamps (the network's latency stream is
        // positioned differently after a restart).
        let key = |s: &ResearchAgent| -> Vec<(String, String, String, String)> {
            s.memory()
                .entries()
                .into_iter()
                .map(|e| (e.topic, e.content, e.source_url, e.source_kind))
                .collect()
        };
        assert_eq!(key(&full), key(&resumed), "resumed knowledge must match");
        assert_eq!(report_full.per_goal.len(), report_resumed.per_goal.len());
        assert_eq!(
            report_full.total_memorized(),
            report_resumed.total_memorized(),
            "per-goal reports must carry over the completed goal's counts"
        );
    }

    #[test]
    fn chaotic_environment_still_trains_with_partial_knowledge() {
        // Training spans ~10 virtual seconds; a 12-second horizon makes
        // the fault windows actually overlap the run.
        let world = ira_worldmodel::World::standard();
        let corpus = Arc::new(ira_webcorpus::Corpus::generate(
            &world,
            ira_webcorpus::CorpusConfig::default(),
        ));
        let env = Environment::from_parts(
            world,
            corpus,
            0xBEEF,
            Some(crate::env::FaultSpec {
                intensity: 0.25,
                horizon: ira_simnet::Duration::from_secs(12),
                seed: 7,
            }),
        );
        let mut bob = ResearchAgent::bob(&env);
        let report = bob.train();
        // Chaos must not abort training: the agent finishes all goals,
        // degrading around faulted hosts.
        assert_eq!(report.per_goal.len(), 3);
        assert!(
            report.total_memorized() >= 1,
            "some knowledge must survive 25% fault intensity: {report:?}"
        );
    }

    #[test]
    fn stage_stats_show_retrieval_dominating() {
        let env = Environment::standard();
        let mut bob = trained_bob(&env);
        bob.self_learn(CABLE_Q);
        let stages = bob.stage_stats();
        assert!(stages.retrieval_ops > 0);
        assert!(stages.reasoning_ops > 0);
        assert!(
            stages.retrieval_virtual_us > 0,
            "web latency must be charged"
        );
        assert!(
            stages.reasoning_virtual_us > 0,
            "inference latency must be charged"
        );
        let share = stages.retrieval_share();
        assert!((0.0..1.0).contains(&share), "share {share}");
    }
}
