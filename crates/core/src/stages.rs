//! Stage timing for the Figure 1 pipeline split: the *knowledge
//! retrieval stage* (searching, fetching, memorising over the network)
//! versus the *reasoning stage* (prompt assembly and model inference).

use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Accumulated stage timings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StageStats {
    /// Virtual network time spent retrieving, microseconds.
    pub retrieval_virtual_us: u64,
    /// Host wall time spent retrieving, microseconds.
    pub retrieval_host_us: u64,
    /// Host wall time spent reasoning (LLM calls), microseconds.
    pub reasoning_host_us: u64,
    /// Virtual model-inference time charged by the LLM latency hook,
    /// microseconds.
    pub reasoning_virtual_us: u64,
    /// Number of retrieval operations.
    pub retrieval_ops: u64,
    /// Number of reasoning (LLM) operations.
    pub reasoning_ops: u64,
}

impl StageStats {
    /// Fraction of total (virtual + host) agent time attributable to
    /// the knowledge-retrieval stage. Both stages are external-I/O
    /// bound — web latency on one side, model inference on the other —
    /// which is the Figure 1 story: the agent's wall clock is spent
    /// waiting on the outside world, so knowledge must be memorised
    /// rather than re-retrieved.
    pub fn retrieval_share(&self) -> f64 {
        let retrieval = (self.retrieval_virtual_us + self.retrieval_host_us) as f64;
        let reasoning = (self.reasoning_virtual_us + self.reasoning_host_us) as f64;
        let total = retrieval + reasoning;
        if total == 0.0 {
            0.0
        } else {
            retrieval / total
        }
    }

    pub fn merge(&mut self, other: &StageStats) {
        self.retrieval_virtual_us += other.retrieval_virtual_us;
        self.retrieval_host_us += other.retrieval_host_us;
        self.reasoning_host_us += other.reasoning_host_us;
        self.reasoning_virtual_us += other.reasoning_virtual_us;
        self.retrieval_ops += other.retrieval_ops;
        self.reasoning_ops += other.reasoning_ops;
    }
}

/// Scope timer helper: measures host time for one operation.
pub struct HostTimer {
    start: Instant,
}

impl HostTimer {
    pub fn start() -> Self {
        HostTimer {
            start: Instant::now(),
        }
    }

    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retrieval_share_is_bounded_and_sensible() {
        let s = StageStats {
            retrieval_virtual_us: 900,
            retrieval_host_us: 50,
            reasoning_host_us: 25,
            reasoning_virtual_us: 25,
            retrieval_ops: 3,
            reasoning_ops: 2,
        };
        assert!((s.retrieval_share() - 0.95).abs() < 1e-9);
        assert_eq!(StageStats::default().retrieval_share(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = StageStats {
            retrieval_virtual_us: 10,
            retrieval_host_us: 1,
            reasoning_host_us: 2,
            reasoning_virtual_us: 3,
            retrieval_ops: 1,
            reasoning_ops: 1,
        };
        a.merge(&a.clone());
        assert_eq!(a.retrieval_virtual_us, 20);
        assert_eq!(a.reasoning_ops, 2);
    }

    #[test]
    fn host_timer_measures_something() {
        let t = HostTimer::start();
        let mut x = 0u64;
        for i in 0..10_000 {
            x = x.wrapping_add(i);
        }
        std::hint::black_box(x);
        // Elapsed is non-negative by construction; just ensure the call
        // path works.
        let _ = t.elapsed_us();
    }
}
