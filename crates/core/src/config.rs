//! Agent configuration.

use ira_agentmem::StoreConfig;
use ira_autogpt::{AutoGptConfig, Budget};
use serde::{Deserialize, Serialize};

/// Configuration of the research agent and its self-learning loop.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AgentConfig {
    /// Knowledge entries loaded into the prompt per question.
    pub retrieval_k: usize,
    /// Confidence threshold (0–10) at which a query counts as
    /// answerable — the paper's example uses 7.
    pub confidence_threshold: u8,
    /// Maximum self-learning rounds per query.
    pub max_rounds: u32,
    /// Maximum searches proposed per self-learning round.
    pub searches_per_round: usize,
    /// Run the searches of one round in parallel threads.
    pub parallel_retrieval: bool,
    /// Two-pass retrieval: the model reads the question-retrieved
    /// context, names its knowledge gaps, and the gap queries'
    /// vocabulary joins the retrieval query. On by default — the paper
    /// only says knowledge is "automatically loaded" into the prompt;
    /// question-only top-k retrieval dilutes as the memory grows (see
    /// the A1 ablation, which measures both).
    pub query_expansion: bool,
    /// Knowledge-memory behaviour (dedup threshold, retrieval weights).
    pub memory: StoreConfig,
    #[serde(skip, default = "default_autogpt")]
    pub autogpt: AutoGptConfig,
    #[serde(skip, default = "default_budget")]
    pub budget: Budget,
}

fn default_autogpt() -> AutoGptConfig {
    AutoGptConfig::default()
}

fn default_budget() -> Budget {
    Budget::standard()
}

impl Default for AgentConfig {
    fn default() -> Self {
        AgentConfig {
            retrieval_k: 10,
            confidence_threshold: 7,
            max_rounds: 4,
            searches_per_round: 4,
            parallel_retrieval: false,
            query_expansion: true,
            memory: StoreConfig::default(),
            autogpt: AutoGptConfig::default(),
            budget: Budget::standard(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = AgentConfig::default();
        assert_eq!(c.confidence_threshold, 7, "paper's example threshold");
        assert!(c.retrieval_k >= 4);
        assert!(c.max_rounds >= 1);
    }

    #[test]
    fn serde_round_trips_the_serializable_part() {
        let c = AgentConfig { confidence_threshold: 9, ..AgentConfig::default() };
        let json = serde_json::to_string(&c).unwrap();
        let back: AgentConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.confidence_threshold, 9);
        assert_eq!(back.retrieval_k, c.retrieval_k);
    }
}
