//! Agent configuration.

use ira_agentmem::StoreConfig;
use ira_autogpt::{AutoGptConfig, Budget};
use ira_services::{IraError, IraResult};
use serde::{Deserialize, Serialize};

/// The simulated cost of one model call, charged to the session's
/// virtual clock after every inference. A real agent's wall time is
/// dominated by API calls; these constants model a GPT-4-class
/// endpoint (~1.2 s request overhead, ~0.1 ms per prompt token
/// ingested, ~35 ms per completion token generated). Ablations and
/// alternative backends swap in their own numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InferenceLatency {
    /// Fixed per-request overhead, microseconds.
    pub request_us: u64,
    /// Cost per prompt token ingested, microseconds.
    pub per_prompt_token_us: u64,
    /// Cost per completion token generated, microseconds.
    pub per_completion_token_us: u64,
}

impl InferenceLatency {
    /// The GPT-4-class profile every experiment has used so far.
    pub const fn gpt4() -> Self {
        InferenceLatency {
            request_us: 1_200_000,
            per_prompt_token_us: 100,
            per_completion_token_us: 35_000,
        }
    }

    /// A free instantaneous model — useful for ablations that want to
    /// isolate network time.
    pub const fn zero() -> Self {
        InferenceLatency {
            request_us: 0,
            per_prompt_token_us: 0,
            per_completion_token_us: 0,
        }
    }

    /// Virtual microseconds one call with these token counts costs.
    pub fn charge_us(&self, prompt_tokens: usize, completion_tokens: usize) -> u64 {
        self.request_us
            + self.per_prompt_token_us * prompt_tokens as u64
            + self.per_completion_token_us * completion_tokens as u64
    }
}

impl Default for InferenceLatency {
    fn default() -> Self {
        InferenceLatency::gpt4()
    }
}

/// Configuration of the research agent and its self-learning loop.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AgentConfig {
    /// Knowledge entries loaded into the prompt per question.
    pub retrieval_k: usize,
    /// Confidence threshold (0–10) at which a query counts as
    /// answerable — the paper's example uses 7.
    pub confidence_threshold: u8,
    /// Maximum self-learning rounds per query.
    pub max_rounds: u32,
    /// Maximum searches proposed per self-learning round.
    pub searches_per_round: usize,
    /// Run the searches of one round in parallel threads.
    pub parallel_retrieval: bool,
    /// Two-pass retrieval: the model reads the question-retrieved
    /// context, names its knowledge gaps, and the gap queries'
    /// vocabulary joins the retrieval query. On by default — the paper
    /// only says knowledge is "automatically loaded" into the prompt;
    /// question-only top-k retrieval dilutes as the memory grows (see
    /// the A1 ablation, which measures both).
    pub query_expansion: bool,
    /// Simulated model-call latency charged to the virtual clock.
    #[serde(default)]
    pub inference: InferenceLatency,
    /// Knowledge-memory behaviour (dedup threshold, retrieval weights).
    pub memory: StoreConfig,
    /// Graph-mode retrieval: add the claim-graph corroboration term to
    /// retrieval scoring and salt the grounding cache accordingly. Off
    /// by default, and `#[serde(skip)]` so `knowledge.json` (which
    /// embeds this config) stays byte-identical either way — the same
    /// legacy-parity contract as the corpus `set_scan_lookups` flag.
    #[serde(skip)]
    pub graph_retrieval: bool,
    #[serde(skip, default = "default_autogpt")]
    pub autogpt: AutoGptConfig,
    #[serde(skip, default = "default_budget")]
    pub budget: Budget,
}

fn default_autogpt() -> AutoGptConfig {
    AutoGptConfig::default()
}

fn default_budget() -> Budget {
    Budget::standard()
}

impl AgentConfig {
    /// Start building a config from the defaults, validating every
    /// supplied value at [`AgentConfigBuilder::build`].
    pub fn builder() -> AgentConfigBuilder {
        AgentConfigBuilder::default()
    }
}

impl Default for AgentConfig {
    fn default() -> Self {
        AgentConfig {
            retrieval_k: 10,
            confidence_threshold: 7,
            max_rounds: 4,
            searches_per_round: 4,
            parallel_retrieval: false,
            query_expansion: true,
            inference: InferenceLatency::default(),
            memory: StoreConfig::default(),
            graph_retrieval: false,
            autogpt: AutoGptConfig::default(),
            budget: Budget::standard(),
        }
    }
}

/// Builder for [`AgentConfig`]: tweak the knobs you care about, keep
/// the paper defaults for the rest, and get range validation in one
/// place instead of a panic (or silent nonsense) deep in a run.
#[derive(Debug, Clone, Copy, Default)]
pub struct AgentConfigBuilder {
    config: AgentConfig,
}

impl AgentConfigBuilder {
    /// Confidence threshold (1–10) at which a query counts as
    /// answerable.
    pub fn confidence_threshold(mut self, threshold: u8) -> Self {
        self.config.confidence_threshold = threshold;
        self
    }

    /// Knowledge entries loaded into the prompt per question.
    pub fn retrieval_k(mut self, k: usize) -> Self {
        self.config.retrieval_k = k;
        self
    }

    /// Maximum self-learning rounds per query.
    pub fn max_rounds(mut self, rounds: u32) -> Self {
        self.config.max_rounds = rounds;
        self
    }

    /// Maximum searches proposed per self-learning round.
    pub fn searches_per_round(mut self, searches: usize) -> Self {
        self.config.searches_per_round = searches;
        self
    }

    /// Run the searches of one round in parallel threads.
    pub fn parallel_retrieval(mut self, on: bool) -> Self {
        self.config.parallel_retrieval = on;
        self
    }

    /// Two-pass gap-query retrieval (on by default).
    pub fn query_expansion(mut self, on: bool) -> Self {
        self.config.query_expansion = on;
        self
    }

    /// Simulated model-call latency charged to the virtual clock.
    pub fn inference(mut self, latency: InferenceLatency) -> Self {
        self.config.inference = latency;
        self
    }

    /// Knowledge-memory behaviour (dedup threshold, retrieval weights).
    pub fn memory(mut self, memory: StoreConfig) -> Self {
        self.config.memory = memory;
        self
    }

    /// Claim-graph corroboration in retrieval scoring (off by default).
    pub fn graph_retrieval(mut self, on: bool) -> Self {
        self.config.graph_retrieval = on;
        self
    }

    /// Auto-GPT loop shape (results per search, fetches, crawl depth).
    pub fn autogpt(mut self, autogpt: AutoGptConfig) -> Self {
        self.config.autogpt = autogpt;
        self
    }

    /// Per-goal search/fetch/cycle budget.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.config.budget = budget;
        self
    }

    /// Validate and produce the config. Errors carry the
    /// `IraError::Config` kind and name the offending field.
    pub fn build(self) -> IraResult<AgentConfig> {
        let c = &self.config;
        if c.confidence_threshold == 0 || c.confidence_threshold > 10 {
            return Err(IraError::config(format!(
                "confidence_threshold must be in 1..=10, got {}",
                c.confidence_threshold
            )));
        }
        if c.retrieval_k == 0 {
            return Err(IraError::config("retrieval_k must be at least 1"));
        }
        if c.max_rounds == 0 {
            return Err(IraError::config("max_rounds must be at least 1"));
        }
        if c.searches_per_round == 0 {
            return Err(IraError::config("searches_per_round must be at least 1"));
        }
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = AgentConfig::default();
        assert_eq!(c.confidence_threshold, 7, "paper's example threshold");
        assert!(c.retrieval_k >= 4);
        assert!(c.max_rounds >= 1);
    }

    #[test]
    fn serde_round_trips_the_serializable_part() {
        let c = AgentConfig {
            confidence_threshold: 9,
            ..AgentConfig::default()
        };
        let json = serde_json::to_string(&c).unwrap();
        let back: AgentConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.confidence_threshold, 9);
        assert_eq!(back.retrieval_k, c.retrieval_k);
        assert_eq!(back.inference, c.inference);
    }

    #[test]
    fn gpt4_latency_matches_the_historical_constants() {
        // These numbers used to be hard-coded in ResearchAgent::new;
        // the formula must not drift or every virtual-time result
        // changes.
        let l = InferenceLatency::gpt4();
        assert_eq!(l.charge_us(0, 0), 1_200_000);
        assert_eq!(l.charge_us(1000, 10), 1_200_000 + 100 * 1000 + 35_000 * 10);
        assert_eq!(InferenceLatency::default(), InferenceLatency::gpt4());
    }

    #[test]
    fn builder_applies_overrides_and_keeps_defaults() {
        let c = AgentConfig::builder()
            .confidence_threshold(9)
            .retrieval_k(5)
            .inference(InferenceLatency::zero())
            .build()
            .unwrap();
        assert_eq!(c.confidence_threshold, 9);
        assert_eq!(c.retrieval_k, 5);
        assert_eq!(c.inference, InferenceLatency::zero());
        assert_eq!(c.max_rounds, AgentConfig::default().max_rounds);
        assert!(c.query_expansion);
    }

    #[test]
    fn builder_rejects_out_of_range_values() {
        for (builder, field) in [
            (AgentConfig::builder().confidence_threshold(0), "threshold"),
            (AgentConfig::builder().confidence_threshold(11), "threshold"),
            (AgentConfig::builder().retrieval_k(0), "retrieval_k"),
            (AgentConfig::builder().max_rounds(0), "max_rounds"),
            (
                AgentConfig::builder().searches_per_round(0),
                "searches_per_round",
            ),
        ] {
            let err = builder.build().expect_err(field);
            assert_eq!(err.kind(), "config", "{field}");
        }
    }

    #[test]
    fn graph_retrieval_is_runtime_only() {
        // The flag must never leak into serialized configs (it would
        // change knowledge.json bytes), and must survive the builder.
        let c = AgentConfig {
            graph_retrieval: true,
            ..AgentConfig::default()
        };
        let json = serde_json::to_string(&c).unwrap();
        assert!(!json.contains("graph_retrieval"));
        let back: AgentConfig = serde_json::from_str(&json).unwrap();
        assert!(!back.graph_retrieval, "serde must not round-trip the flag");
        let built = AgentConfig::builder()
            .graph_retrieval(true)
            .build()
            .unwrap();
        assert!(built.graph_retrieval);
    }

    #[test]
    fn old_configs_without_inference_still_deserialize() {
        // Knowledge/config files written before the field existed must
        // load with the GPT-4 default.
        let mut v: serde_json::Value = serde_json::to_value(&AgentConfig::default()).unwrap();
        v.as_object_mut().unwrap().remove("inference");
        let back: AgentConfig = serde_json::from_value(v).unwrap();
        assert_eq!(back.inference, InferenceLatency::gpt4());
    }
}
