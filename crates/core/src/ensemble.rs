//! Multi-model committees (§5 "Learning and interacting with multiple
//! LLMs": "varying and contrasting the LLMs will gain insights into
//! further parameter tuning and performance improvements").
//!
//! A [`Committee`] trains several independent agents — each with its
//! own seed *and its own view of the web* (different corpus prose
//! seeds), so their training trajectories genuinely diverge — then
//! aggregates their answers: majority verdict, mean confidence, and an
//! agreement score that quantifies cross-model consensus.

use crate::agent::ResearchAgent;
use crate::config::AgentConfig;
use crate::env::Environment;
use crate::role::RoleDefinition;
use ira_webcorpus::CorpusConfig;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Committee parameters.
#[derive(Debug, Clone, Copy)]
pub struct CommitteeConfig {
    /// Number of member agents.
    pub members: usize,
    /// Base seed; member *i* uses `base_seed + i` for its model and its
    /// corpus view.
    pub base_seed: u64,
    /// Per-member agent configuration.
    pub agent: AgentConfig,
}

impl Default for CommitteeConfig {
    fn default() -> Self {
        CommitteeConfig {
            members: 3,
            base_seed: 0x77,
            agent: AgentConfig::default(),
        }
    }
}

/// One member's take on a question.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemberAnswer {
    pub member: usize,
    pub verdict: Option<String>,
    pub confidence: u8,
}

/// The committee's aggregated answer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CommitteeAnswer {
    pub question: String,
    pub members: Vec<MemberAnswer>,
    /// Majority verdict (plurality over committed members), if any
    /// member committed at all.
    pub verdict: Option<String>,
    /// Mean member confidence.
    pub mean_confidence: f64,
    /// Share of members agreeing with the majority verdict (0 when no
    /// member committed).
    pub agreement: f64,
}

/// A committee of independently trained agents.
pub struct Committee {
    config: CommitteeConfig,
    role: RoleDefinition,
}

impl Committee {
    pub fn new(role: RoleDefinition, config: CommitteeConfig) -> Self {
        assert!(config.members >= 1, "a committee needs at least one member");
        Committee { config, role }
    }

    pub fn config(&self) -> &CommitteeConfig {
        &self.config
    }

    /// Train member `m` in its own environment and self-learn every
    /// question. Members are independent — callers may run them on
    /// separate threads (the committee itself is `Sync`) and aggregate
    /// with [`aggregate`].
    pub fn evaluate_member(&self, m: usize, questions: &[&str]) -> Vec<MemberAnswer> {
        let seed = self.config.base_seed + m as u64;
        let world = ira_worldmodel::World::standard();
        let corpus = std::sync::Arc::new(ira_webcorpus::Corpus::generate(
            &world,
            CorpusConfig {
                seed,
                distractor_count: 150,
                ..CorpusConfig::default()
            },
        ));
        let env = Environment::from_parts(world, corpus, seed ^ 0xBEEF, None);
        let mut agent = ResearchAgent::new(self.role.clone(), &env, self.config.agent, seed);
        agent.train();
        let mut answers = Vec::with_capacity(questions.len());
        for q in questions {
            let _ = agent.self_learn(q);
            let ans = agent.ask(q);
            answers.push(MemberAnswer {
                member: m,
                verdict: ans.verdict,
                confidence: ans.confidence,
            });
        }
        answers
    }

    /// Investigate a set of questions: every member trains in its own
    /// environment and self-learns each question; answers are
    /// aggregated per question.
    pub fn investigate(&self, questions: &[&str]) -> Vec<CommitteeAnswer> {
        // Collect every member's answers first (member-major order so
        // each trains exactly once).
        let per_member: Vec<Vec<MemberAnswer>> = (0..self.config.members)
            .map(|m| self.evaluate_member(m, questions))
            .collect();

        questions
            .iter()
            .enumerate()
            .map(|(qi, q)| {
                let members: Vec<MemberAnswer> =
                    per_member.iter().map(|ms| ms[qi].clone()).collect();
                aggregate(q, members)
            })
            .collect()
    }
}

/// Aggregate one question's member answers: plurality verdict over
/// case-normalised committed verdicts, mean confidence, agreement
/// share.
pub fn aggregate(question: &str, members: Vec<MemberAnswer>) -> CommitteeAnswer {
    let mean_confidence =
        members.iter().map(|m| m.confidence as f64).sum::<f64>() / members.len() as f64;

    // Plurality vote over normalized verdicts of committed members.
    let mut votes: BTreeMap<String, (usize, String)> = BTreeMap::new();
    for m in &members {
        if let Some(v) = &m.verdict {
            let key = v.to_lowercase();
            let entry = votes.entry(key).or_insert((0, v.clone()));
            entry.0 += 1;
        }
    }
    let winner = votes.values().max_by_key(|(count, _)| *count).cloned();
    let (verdict, agreement) = match winner {
        Some((count, text)) => (Some(text), count as f64 / members.len() as f64),
        None => (None, 0.0),
    };

    CommitteeAnswer {
        question: question.to_string(),
        members,
        verdict,
        mean_confidence,
        agreement,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn member(m: usize, verdict: Option<&str>, confidence: u8) -> MemberAnswer {
        MemberAnswer {
            member: m,
            verdict: verdict.map(str::to_owned),
            confidence,
        }
    }

    #[test]
    fn aggregate_takes_the_plurality() {
        let ans = aggregate(
            "q",
            vec![
                member(0, Some("the US cable"), 9),
                member(1, Some("the US cable"), 8),
                member(2, Some("the Brazil cable"), 7),
            ],
        );
        assert_eq!(ans.verdict.as_deref(), Some("the US cable"));
        assert!((ans.agreement - 2.0 / 3.0).abs() < 1e-9);
        assert!((ans.mean_confidence - 8.0).abs() < 1e-9);
    }

    #[test]
    fn aggregate_with_no_commitments_hedges() {
        let ans = aggregate("q", vec![member(0, None, 2), member(1, None, 3)]);
        assert!(ans.verdict.is_none());
        assert_eq!(ans.agreement, 0.0);
    }

    #[test]
    fn verdict_vote_is_case_insensitive() {
        let ans = aggregate(
            "q",
            vec![
                member(0, Some("The US Cable"), 9),
                member(1, Some("the us cable"), 9),
                member(2, Some("something else"), 9),
            ],
        );
        assert!(ans.verdict.unwrap().to_lowercase().contains("us cable"));
        assert!((ans.agreement - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn committee_of_three_agrees_on_the_flagship_question() {
        let committee = Committee::new(RoleDefinition::bob(), CommitteeConfig::default());
        let answers = committee.investigate(&[
            "Which is more vulnerable to solar activity? The fiber optic cable that connects \
             Brazil to Europe or the one that connects the US to Europe?",
        ]);
        assert_eq!(answers.len(), 1);
        let a = &answers[0];
        assert!(
            a.verdict.as_deref().unwrap_or("").contains("United States"),
            "committee verdict: {:?}",
            a.verdict
        );
        assert!(a.agreement >= 2.0 / 3.0, "agreement {}", a.agreement);
        assert!(a.mean_confidence >= 7.0);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_committee_is_rejected() {
        Committee::new(
            RoleDefinition::bob(),
            CommitteeConfig {
                members: 0,
                ..CommitteeConfig::default()
            },
        );
    }
}
