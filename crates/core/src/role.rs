//! Role definition — the only human input the architecture needs
//! (§3.2 step 1: "the only human knowledge we need to create Bob is to
//! define the role of the agent with several initial goals").

use serde::{Deserialize, Serialize};
use std::fmt;

/// An agent's role definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoleDefinition {
    /// Agent name, e.g. "Bob".
    pub name: String,
    /// One-sentence role statement.
    pub role: String,
    /// Initial goals driving the first training phase.
    pub goals: Vec<String>,
}

impl RoleDefinition {
    pub fn new(name: &str, role: &str, goals: &[&str]) -> Self {
        assert!(!goals.is_empty(), "a role needs at least one goal");
        RoleDefinition {
            name: name.to_string(),
            role: role.to_string(),
            goals: goals.iter().map(|g| g.to_string()).collect(),
        }
    }

    /// Agent Bob, verbatim from the paper's §3.2 snippet: an Internet
    /// researcher investigating solar superstorms.
    pub fn bob() -> Self {
        RoleDefinition::new(
            "Bob",
            "An Internet researcher searches for knowledge of solar superstorms and network \
             infrastructure.",
            &[
                "Understand solar superstorms and Coronal Mass Ejection, and principles of \
                 their formation and effects.",
                "Knowledge of past solar superstorm events and their damage and impact.",
                "Understand the current global large-scale network infrastructure equipment \
                 such as fiber optic cables, power supply systems, etc.",
            ],
        )
    }

    /// An agent investigating a configuration-error outage (the
    /// Facebook DNS/BGP incident class from §2) — used by the
    /// `outage_facebook_dns` example to show the architecture is not
    /// storm-specific.
    pub fn outage_analyst() -> Self {
        RoleDefinition::new(
            "Alice",
            "An Internet researcher investigates large-scale outages caused by configuration \
             errors in essential Internet infrastructure.",
            &[
                "Understand the current global large-scale network infrastructure equipment \
                 such as fiber optic cables, power supply systems, etc.",
                "Understand how the Internet interconnects continents and where it is \
                 concentrated.",
                "Study past large-scale Internet outages, their root causes and impact.",
            ],
        )
    }
}

impl fmt::Display for RoleDefinition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Name: Agent {}", self.name)?;
        writeln!(f, "Role: {}", self.role)?;
        writeln!(f, "Goals:")?;
        for g in &self.goals {
            writeln!(f, "- {g}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bob_matches_the_paper() {
        let bob = RoleDefinition::bob();
        assert_eq!(bob.name, "Bob");
        assert_eq!(bob.goals.len(), 3);
        assert!(bob.goals[0].contains("Coronal Mass Ejection"));
        assert!(bob.goals[2].contains("fiber optic cables"));
    }

    #[test]
    fn display_renders_the_snippet_shape() {
        let text = RoleDefinition::bob().to_string();
        assert!(text.starts_with("Name: Agent Bob"));
        assert!(text.contains("Role: An Internet researcher"));
        assert!(text.contains("Goals:\n- Understand solar superstorms"));
    }

    #[test]
    #[should_panic(expected = "at least one goal")]
    fn goalless_role_is_rejected() {
        RoleDefinition::new("X", "role", &[]);
    }
}
