//! # ira-core
//!
//! The interactive research agent of *Towards Interactive Research
//! Agents for Internet Incident Investigation* (HotNets '23) — the
//! paper's primary contribution, assembled from the substrate crates:
//!
//! 1. **Role definition** ([`role`]) — agent name, role statement, and
//!    initial goals (the paper's agent Bob snippet is a preset).
//! 2. **Information retrieval** ([`agent`] + `ira-autogpt`) — the
//!    autonomous loop searches the (simulated) web per goal and
//!    memorises what it reads.
//! 3. **Knowledge memory** (`ira-agentmem`) — the `knowledge.json`
//!    store, loaded into the model's prompt at question time.
//! 4. **Knowledge testing and self-learning** ([`selflearn`]) — each
//!    query is answered with a self-assessed confidence; below the
//!    threshold, the agent proposes searches, retrieves more knowledge,
//!    and retries until confident or out of budget.
//!
//! [`mod@env`] builds the simulated world + web the agent lives in, and
//! [`stages`] times the two pipeline stages of Figure 1.

pub mod agent;
pub mod checkpoint;
pub mod config;
pub mod ensemble;
pub mod env;
pub mod questions;
pub mod role;
pub mod selflearn;
pub mod stages;

pub use ira_services as services;

pub use agent::{ResearchAgent, TrainingReport};
pub use checkpoint::TrainingCheckpoint;
pub use config::{AgentConfig, AgentConfigBuilder, InferenceLatency};
pub use ensemble::{Committee, CommitteeAnswer, CommitteeConfig};
pub use env::{Environment, FaultSpec};
pub use questions::{generate as generate_questions, ResearchQuestion};
pub use role::RoleDefinition;
pub use selflearn::{LearningTrajectory, RoundRecord};
pub use stages::StageStats;
