//! Research-question generation (§5 "Generating high-quality research
//! questions": "train an agent explicitly to generate research
//! questions … Once the agent begins to pose questions without
//! retrieving ready-made answers from existing studies, the viability
//! and novelty of these questions can be reassessed").
//!
//! The generator mines the agent's own knowledge memory for entities
//! and proposes the comparison/causal questions its intents can
//! express. Each candidate is then *appraised against the agent
//! itself*: questions the agent can already answer at high confidence
//! are "settled" (low novelty — the literature it read answers them);
//! questions it answers at low confidence despite having studied the
//! area are research opportunities (high novelty).

use crate::agent::ResearchAgent;
use ira_simllm::extract::{Extraction, Fact};
use serde::{Deserialize, Serialize};

/// A generated research question with its appraisal.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResearchQuestion {
    pub question: String,
    /// The agent's confidence answering it from current knowledge.
    pub confidence: u8,
    /// Novelty score in 0–10: `10 - confidence` — high when the agent's
    /// corpus reading does not settle the question.
    pub novelty: u8,
}

/// Mine the agent's memory and propose ranked research questions
/// (most novel first). `max` caps the output.
pub fn generate(agent: &mut ResearchAgent, max: usize) -> Vec<ResearchQuestion> {
    // Read everything the agent knows.
    let mut ex = Extraction::default();
    for entry in agent.memory().entries() {
        ex.absorb(&entry.content, None);
    }

    let mut candidates = candidate_questions(&ex);
    candidates.sort();
    candidates.dedup();

    let mut out: Vec<ResearchQuestion> = candidates
        .into_iter()
        .map(|question| {
            let confidence = agent.confidence(&question);
            ResearchQuestion {
                question,
                confidence,
                novelty: 10u8.saturating_sub(confidence),
            }
        })
        .collect();
    out.sort_by(|a, b| b.novelty.cmp(&a.novelty).then(a.question.cmp(&b.question)));
    out.truncate(max);
    out
}

/// Enumerate the questions expressible over the extracted knowledge.
fn candidate_questions(ex: &Extraction) -> Vec<String> {
    let mut questions = Vec::new();

    // Cable-route comparisons: every pair of known routes with
    // different country pairs.
    let routes: Vec<(String, String)> = ex
        .routes()
        .filter_map(|f| match f {
            Fact::CableRoute {
                from_country,
                to_country,
                ..
            } => Some((from_country.clone(), to_country.clone())),
            _ => None,
        })
        .collect();
    for (i, a) in routes.iter().enumerate() {
        for b in routes.iter().skip(i + 1) {
            if a == b {
                continue;
            }
            questions.push(format!(
                "Which is more vulnerable to solar activity? The fiber optic cable that \
                 connects {} to {} or the one that connects {} to {}?",
                a.0, a.1, b.0, b.1
            ));
        }
    }

    // Operator comparisons: every pair of operators with any fleet fact.
    let mut operators: Vec<String> = ex
        .facts
        .iter()
        .filter_map(|f| match f {
            Fact::RegionCoverage { operator, .. }
            | Fact::LowLatShare { operator, .. }
            | Fact::DcPresence { operator, .. } => Some(operator.clone()),
            _ => None,
        })
        .collect();
    operators.sort();
    operators.dedup();
    for (i, a) in operators.iter().enumerate() {
        for b in operators.iter().skip(i + 1) {
            questions.push(format!(
                "Whose datacenter is more vulnerable to a solar superstorm, {a}'s or {b}'s?"
            ));
        }
    }

    // Region comparisons from grid latitudes.
    let mut regions: Vec<String> = ex
        .facts
        .iter()
        .filter_map(|f| match f {
            Fact::RegionGridLatitude { region, .. } => Some(region.clone()),
            _ => None,
        })
        .collect();
    regions.sort();
    regions.dedup();
    for (i, a) in regions.iter().enumerate() {
        for b in regions.iter().skip(i + 1) {
            questions.push(format!(
                "Is {a} or {b} more susceptible to Internet disruption from a solar \
                 superstorm?"
            ));
        }
    }

    // Incident follow-ups.
    for f in &ex.facts {
        if let Fact::IncidentCause { incident, .. } = f {
            questions.push(format!(
                "What was the impact of the {incident} on the Internet?"
            ));
        }
    }

    questions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::Environment;

    #[test]
    fn candidates_cover_the_knowledge_shapes() {
        let ex = Extraction::from_text(
            "The EllaLink submarine cable connects Fortaleza, Brazil to Sines, Portugal, \
             linking South America and Europe. The Grace Hopper submarine cable connects New \
             York, United States to Bude, United Kingdom, linking North America and Europe. \
             Google operates data centers in 6 of the world's 7 major regions. Facebook \
             operates data centers in 3 of the world's 7 major regions. The 2021 Facebook \
             outage was caused by a faulty BGP configuration change that withdrew the routes \
             to its own DNS servers.",
            None,
        );
        let qs = candidate_questions(&ex);
        assert!(qs
            .iter()
            .any(|q| q.contains("Brazil") && q.contains("United States")));
        assert!(qs
            .iter()
            .any(|q| q.contains("Facebook's") || q.contains("Google's")));
        assert!(qs
            .iter()
            .any(|q| q.contains("impact of the 2021 Facebook outage")));
    }

    #[test]
    fn generated_questions_are_ranked_by_novelty() {
        let env = Environment::standard();
        let mut bob = ResearchAgent::bob(&env);
        bob.train();
        // Settle one question so the appraisal has contrast.
        let _ = bob.self_learn(
            "Which is more vulnerable to solar activity? The fiber optic cable that connects \
             Brazil to Europe or the one that connects the US to Europe?",
        );
        let questions = generate(&mut bob, 12);
        assert!(
            !questions.is_empty(),
            "a trained agent should pose questions"
        );
        for w in questions.windows(2) {
            assert!(
                w[0].novelty >= w[1].novelty,
                "ranking must be novelty-descending"
            );
        }
        for q in &questions {
            assert_eq!(q.novelty, 10u8.saturating_sub(q.confidence));
        }
    }

    #[test]
    fn empty_memory_generates_nothing() {
        let env = Environment::standard();
        let mut bob = ResearchAgent::bob(&env);
        assert!(generate(&mut bob, 10).is_empty());
    }
}
