//! # ira-engine
//!
//! The engine/session layer. An [`Engine`] owns the expensive shared
//! state of an experiment — the ground-truth [`World`] and a cache of
//! generated corpora — and spawns owned, `Send` [`Session`]s: one
//! simulated web + one research agent each, ready to move to a worker
//! thread.
//!
//! The legacy pattern (`Environment::standard()` + borrowing agents)
//! rebuilds the world and regenerates the corpus for every iteration
//! of a sweep. Corpus generation is deterministic — `Corpus::generate`
//! over the same world and config always yields the same pages — so
//! the engine builds each distinct corpus exactly once and shares it
//! (`Arc`) across sessions. Every per-session component that carries
//! state (network, client, model, memory) is still constructed fresh,
//! in exactly the order `Environment::build`/`build_chaotic` uses, so
//! a session's observable behaviour is byte-identical to the legacy
//! path.

use ira_core::{AgentConfig, Environment, ResearchAgent, RoleDefinition};
use ira_obs::{ObsHandle, SharedCollector};
use ira_webcorpus::{Corpus, CorpusConfig};
use ira_worldmodel::World;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

pub use ira_core::FaultSpec;

/// Everything that makes one session distinct: the agent's identity
/// and config, the view of the web, and the seeds.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    pub role: RoleDefinition,
    pub agent: AgentConfig,
    pub corpus: CorpusConfig,
    /// Network latency/jitter stream seed.
    pub net_seed: u64,
    /// Language-model seed.
    pub llm_seed: u64,
    /// `Some` turns the session chaotic: a seeded random fault plan
    /// plus a resilient (circuit-breaker) client.
    pub faults: Option<FaultSpec>,
}

impl SessionConfig {
    /// The canonical experiment session: agent Bob over the default
    /// corpus with the standard seeds (`Environment::standard()` +
    /// `ResearchAgent::bob`).
    pub fn bob() -> Self {
        SessionConfig {
            role: RoleDefinition::bob(),
            agent: AgentConfig::default(),
            corpus: CorpusConfig::default(),
            net_seed: 0xBEEF,
            llm_seed: 0xB0B,
            faults: None,
        }
    }
}

/// One spawned session: a private simulated web and the agent living
/// in it. Owns everything (no borrows of the engine beyond `Arc`s), so
/// it is `Send` and can run on a worker thread.
pub struct Session {
    pub env: Environment,
    pub agent: ResearchAgent,
}

impl Session {
    pub fn world(&self) -> &World {
        &self.env.world
    }

    /// Virtual time elapsed in this session, microseconds.
    pub fn now_us(&self) -> u64 {
        self.env.now_us()
    }
}

type CorpusKey = (u64, usize);

/// Shared experiment state: one world, each distinct corpus generated
/// once.
pub struct Engine {
    world: World,
    /// Per-key `OnceLock` cells so two threads asking for *different*
    /// corpora build in parallel — the map lock is held only to hand
    /// out the cell, never during generation.
    corpora: Mutex<HashMap<CorpusKey, Arc<OnceLock<Arc<Corpus>>>>>,
    builds: AtomicUsize,
}

impl Engine {
    /// Engine over the standard ground-truth world.
    pub fn new() -> Self {
        Self::with_world(World::standard())
    }

    /// Engine over a caller-supplied world (ablations).
    pub fn with_world(world: World) -> Self {
        Engine {
            world,
            corpora: Mutex::new(HashMap::new()),
            builds: AtomicUsize::new(0),
        }
    }

    pub fn world(&self) -> &World {
        &self.world
    }

    /// The corpus for `config`, generated on first request and shared
    /// afterwards. Generation is deterministic, so the cached corpus is
    /// indistinguishable from a rebuild.
    pub fn corpus(&self, config: CorpusConfig) -> Arc<Corpus> {
        let cell = {
            let mut map = self.corpora.lock().expect("corpus map poisoned");
            Arc::clone(
                map.entry((config.seed, config.distractor_count))
                    .or_default(),
            )
        };
        Arc::clone(cell.get_or_init(|| {
            self.builds.fetch_add(1, Ordering::Relaxed);
            Arc::new(Corpus::generate(&self.world, config))
        }))
    }

    /// How many corpora have actually been generated (cache misses).
    pub fn corpus_builds(&self) -> usize {
        self.builds.load(Ordering::Relaxed)
    }

    /// Spawn one session. Construction replicates
    /// `Environment::build`/`build_chaotic` exactly — fresh network on
    /// `net_seed`, sites registered, then a plain or resilient client —
    /// followed by `ResearchAgent::new` on `llm_seed`, so a session
    /// behaves byte-for-byte like the legacy wiring.
    pub fn spawn_session(&self, config: SessionConfig) -> Session {
        let corpus = self.corpus(config.corpus);
        let env =
            Environment::from_parts(self.world.clone(), corpus, config.net_seed, config.faults);
        let agent = ResearchAgent::new(config.role, &env, config.agent, config.llm_seed);
        Session { env, agent }
    }

    /// [`Engine::spawn_session`] with a trace collector attached: the
    /// session's client (cache/retry/breaker/fetch events) and agent
    /// (cycle boundaries, LLM-call spans, knowledge-test verdicts,
    /// memory growth) both emit into `sink`, tagged with `session_id`.
    ///
    /// Because every session runs on exactly one thread and all
    /// timestamps come from the session's virtual clock, the events a
    /// session emits are identical whether the sweep runs on one
    /// thread or many — `session_id` is the per-session span root that
    /// keeps the streams apart.
    ///
    /// Client and agent share one [`ObsHandle`], i.e. one span-id
    /// allocator and one current-parent slot, so fetch spans, retry
    /// waits, LLM calls, and loop events all land in a single causal
    /// tree under the agent's cycle scopes.
    pub fn spawn_session_observed(
        &self,
        config: SessionConfig,
        sink: SharedCollector,
        session_id: u32,
    ) -> Session {
        self.spawn_session_with_handle(config, ObsHandle::new(sink, session_id))
    }

    /// [`Engine::spawn_session_observed`] with a caller-supplied
    /// [`ObsHandle`]. This lets a supervisor (the serve layer) emit its
    /// own spans — admission, queue wait, retries — on the *same*
    /// handle the session uses, so they nest in one causal tree with
    /// the session's cycle/fetch/LLM spans.
    pub fn spawn_session_with_handle(&self, config: SessionConfig, handle: ObsHandle) -> Session {
        let corpus = self.corpus(config.corpus);
        let mut env =
            Environment::from_parts(self.world.clone(), corpus, config.net_seed, config.faults);
        // The agent clones the client at construction, so the observer
        // must be installed before `ResearchAgent::new`.
        env.client.set_observer_handle(handle.clone());
        let mut agent = ResearchAgent::new(config.role, &env, config.agent, config.llm_seed);
        agent.set_observer_handle(handle);
        Session { env, agent }
    }
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sessions_are_send_and_engine_is_sync() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<Session>();
        assert_sync::<Engine>();
    }

    #[test]
    fn corpus_is_generated_once_and_shared() {
        let engine = Engine::new();
        let a = engine.corpus(CorpusConfig::default());
        let b = engine.corpus(CorpusConfig::default());
        assert!(Arc::ptr_eq(&a, &b), "same config must share one corpus");
        assert_eq!(engine.corpus_builds(), 1);
        let c = engine.corpus(CorpusConfig {
            seed: 1,
            distractor_count: 0,
        });
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(engine.corpus_builds(), 2);
    }

    #[test]
    fn spawned_sessions_are_independent() {
        let engine = Engine::new();
        let mut one = engine.spawn_session(SessionConfig::bob());
        let two = engine.spawn_session(SessionConfig::bob());
        assert_eq!(one.now_us(), two.now_us());
        one.agent.train();
        assert!(one.now_us() > 0, "training spends virtual time");
        assert_eq!(two.now_us(), 0, "sibling session's clock must not move");
        assert_eq!(engine.corpus_builds(), 1, "both sessions share the corpus");
    }

    #[test]
    fn session_matches_legacy_environment_byte_for_byte() {
        // The determinism contract: an engine session with the bob
        // preset must produce the very same training report as the
        // legacy Environment::standard() + ResearchAgent::bob wiring,
        // modulo host wall time.
        let env = Environment::standard();
        let mut legacy = ResearchAgent::bob(&env);
        let mut legacy_report = legacy.train();

        let engine = Engine::new();
        let mut session = engine.spawn_session(SessionConfig::bob());
        let mut engine_report = session.agent.train();

        legacy_report.host_elapsed_us = 0;
        engine_report.host_elapsed_us = 0;
        assert_eq!(
            serde_json::to_string(&legacy_report).unwrap(),
            serde_json::to_string(&engine_report).unwrap(),
        );
        assert_eq!(env.now_us(), session.now_us(), "virtual clocks must agree");
    }

    #[test]
    #[allow(deprecated)] // proves the deprecated wrapper stays byte-identical
    fn chaotic_session_matches_legacy_chaotic_environment() {
        use ira_simnet::Duration;
        let horizon = Duration::from_secs(12);
        let env = Environment::build_chaotic(CorpusConfig::default(), 0xBEEF, 0.25, horizon, 7);
        let mut legacy = ResearchAgent::bob(&env);
        let mut legacy_report = legacy.train();

        let engine = Engine::new();
        let mut session = engine.spawn_session(SessionConfig {
            faults: Some(FaultSpec {
                intensity: 0.25,
                horizon,
                seed: 7,
            }),
            ..SessionConfig::bob()
        });
        let mut engine_report = session.agent.train();

        legacy_report.host_elapsed_us = 0;
        engine_report.host_elapsed_us = 0;
        assert_eq!(
            serde_json::to_string(&legacy_report).unwrap(),
            serde_json::to_string(&engine_report).unwrap(),
        );
    }

    #[test]
    fn parallel_spawns_share_one_corpus_build() {
        let engine = Engine::new();
        crossbeam::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    let session = engine.spawn_session(SessionConfig::bob());
                    assert_eq!(session.now_us(), 0);
                });
            }
        })
        .expect("spawn scope");
        assert_eq!(engine.corpus_builds(), 1);
    }
}
