//! # ira-services
//!
//! The service boundary between the agent architecture and its
//! backends. The paper wires one agent directly to one LLM and one
//! web; the production-scale system the ROADMAP targets serves many
//! concurrent investigations over shared infrastructure, which demands
//! an explicit seam:
//!
//! * [`LanguageModel`] — the typed model calls the agent loop makes
//!   (answer, propose searches, plan, decompose).
//! * [`SearchProvider`] / [`Fetcher`] — the retrieval side of the web:
//!   issue a search query, fetch a page, probe source availability.
//! * [`TimeSource`] — the session's clock; simulated inference and
//!   network latency are charged here.
//! * [`WebServices`] — the supertrait bundling search + fetch + time,
//!   which is what one *session's* view of the web amounts to.
//! * [`Memory`] — the knowledge-store surface the retrieval loop
//!   writes into.
//!
//! `ira-autogpt` and the self-learning pipeline in `ira-core` speak
//! only these traits; the canonical implementations ([`sim`]) bind
//! them to the simulation substrate (`ira-simllm`'s [`Llm`],
//! `ira-simnet`'s [`Client`] serving the `ira-webcorpus` search host,
//! `ira-agentmem`'s [`KnowledgeStore`]). A real deployment would bind
//! the same traits to an LLM API, a search API, and a database without
//! touching the agent loop.
//!
//! [`Llm`]: ira_simllm::Llm
//! [`Client`]: ira_simnet::Client
//! [`KnowledgeStore`]: ira_agentmem::KnowledgeStore

pub mod error;
pub mod sim;
pub mod traits;

pub use error::{IraError, IraResult, ServiceError, WireError};
pub use traits::{
    Fetcher, InferenceHook, LanguageModel, Memory, SearchHit, SearchProvider, TimeSource,
    WebServices,
};

// Data types that cross the trait boundary. Re-exported so trait
// consumers (ira-autogpt) need no direct dependency on the simulation
// crates that define them.
pub use ira_simllm::plangen::StepAction;
pub use ira_simllm::{ActionPlan, Answer, LlmStats, MissingKnowledge, PlanStep};
