//! The service traits the agent architecture is written against.

use crate::error::ServiceError;
use ira_simllm::{ActionPlan, Answer, LlmStats};
use std::sync::Arc;

/// Callback invoked after every model call with `(prompt_tokens,
/// completion_tokens)`. The agent layer installs one to charge
/// simulated inference latency to the session clock.
pub type InferenceHook = Arc<dyn Fn(usize, usize) + Send + Sync>;

/// The typed model calls the agent loop makes. Implementations must be
/// shareable across the threads of one session (`Send + Sync`); all
/// methods take `&self` and any internal accounting is interior.
pub trait LanguageModel: Send + Sync {
    /// Answer a question grounded in the supplied knowledge snippets.
    fn answer(&self, question: &str, knowledge: &[String]) -> Answer;

    /// The paper's self-learning probe: up to `max` deduplicated
    /// search queries targeting the knowledge gaps behind a question.
    fn propose_searches(&self, question: &str, knowledge: &[String], max: usize) -> Vec<String>;

    /// Plan how to achieve a goal (the Auto-GPT planning phase).
    fn plan_goal(&self, goal: &str) -> ActionPlan;

    /// Chain-of-thought decomposition of a compound task.
    fn decompose(&self, task: &str) -> Vec<String>;

    /// Generate a storm response / shutdown strategy from knowledge.
    fn shutdown_strategy(&self, knowledge: &[String]) -> Answer;

    /// Cumulative usage counters.
    fn stats(&self) -> LlmStats;

    /// Install the inference-latency hook (see [`InferenceHook`]).
    fn set_inference_hook(&self, hook: InferenceHook);

    /// Signal that the caller's knowledge store changed, so any
    /// memoized grounded state the model holds may be stale. Models
    /// without such state ignore this (the default).
    fn invalidate_grounding(&self) {}

    /// Declare the retrieval mode producing the knowledge this model
    /// is grounded on (0 = legacy flat retrieval, the default). Models
    /// with a grounding cache must salt their answer keys with it so
    /// answers cached under one retrieval mode are never replayed
    /// under another. Stateless models ignore this.
    fn set_grounding_mode(&self, _mode: u64) {}
}

/// One search result, as the agent loop consumes it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchHit {
    pub url: String,
    pub title: String,
}

/// A search backend: query in, ranked hits out.
pub trait SearchProvider: Send + Sync {
    /// Run `query`, returning up to `k` ranked hits.
    fn search(&self, query: &str, k: usize) -> Result<Vec<SearchHit>, ServiceError>;
}

/// A page-fetch backend.
pub trait Fetcher: Send + Sync {
    /// Fetch the text body of `url`.
    fn fetch(&self, url: &str) -> Result<String, ServiceError>;

    /// Whether this URL's source is currently worth trying — `false`
    /// when the host is known-dead (e.g. its circuit breaker is open),
    /// so the agent can reroute *before* spending fetch budget.
    fn source_available(&self, url: &str) -> bool {
        let _ = url;
        true
    }
}

/// The session's clock. In simulation this is the virtual clock all
/// latency is charged to; a real deployment would read wall time and
/// ignore `advance_us`.
pub trait TimeSource: Send + Sync {
    /// Time elapsed so far, microseconds.
    fn now_us(&self) -> u64;

    /// Charge `us` microseconds of latency to the clock.
    fn advance_us(&self, us: u64);
}

/// One session's view of the web: search + fetch + the clock those
/// operations are timed against. Blanket-implemented, so any type
/// providing the three parts is a `WebServices` — including trait
/// objects assembled from parts.
pub trait WebServices: SearchProvider + Fetcher + TimeSource {}

impl<T: SearchProvider + Fetcher + TimeSource + ?Sized> WebServices for T {}

/// The knowledge-store surface the retrieval loop writes into and the
/// reasoning path reads from.
pub trait Memory: Send + Sync {
    /// Store one piece of content; `false` means it was dropped as a
    /// near-duplicate.
    fn memorize(
        &self,
        topic: &str,
        content: &str,
        source_url: &str,
        source_kind: &str,
        learned_at: u64,
        importance: f64,
    ) -> bool;

    /// Whether a page from this URL is already memorised.
    fn has_url(&self, url: &str) -> bool;

    /// The top-`k` knowledge texts for a query at time `now`.
    fn retrieve_texts(&self, query: &str, k: usize, now: u64) -> Vec<String>;

    /// Number of entries held.
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
