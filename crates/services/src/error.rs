//! Error type shared by the web-facing service traits.

use thiserror::Error;

/// Failure of a search or fetch call, classified the way the agent
/// loop reacts to it: an unavailable source is *rerouted around*
/// (degradation), anything else is a hard error charged to the run.
#[derive(Debug, Clone, PartialEq, Eq, Error)]
pub enum ServiceError {
    /// The source's host is currently unavailable (e.g. its circuit
    /// breaker is open and the call failed fast). The agent should
    /// skip this source and continue down the ranking.
    #[error("source unavailable: {host}")]
    SourceUnavailable { host: String },

    /// Any other transport/decoding failure, carrying the backend's
    /// own message.
    #[error("{0}")]
    Transport(String),
}

impl ServiceError {
    /// Whether the agent should treat this as a reroutable outage
    /// rather than a hard error.
    pub fn is_source_unavailable(&self) -> bool {
        matches!(self, ServiceError::SourceUnavailable { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_helper() {
        assert!(ServiceError::SourceUnavailable {
            host: "a.test".into()
        }
        .is_source_unavailable());
        assert!(!ServiceError::Transport("boom".into()).is_source_unavailable());
    }

    #[test]
    fn display_carries_the_message() {
        let e = ServiceError::Transport("connection to x.test reset".into());
        assert_eq!(e.to_string(), "connection to x.test reset");
        let u = ServiceError::SourceUnavailable {
            host: "news.test".into(),
        };
        assert!(u.to_string().contains("news.test"));
    }
}
