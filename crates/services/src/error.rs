//! Error types: the [`ServiceError`] the web-facing traits surface,
//! and the workspace-wide [`IraError`] every per-crate error converts
//! into.

use serde::{Deserialize, Serialize};
use thiserror::Error;

/// Result alias over the workspace error.
pub type IraResult<T> = Result<T, IraError>;

/// The workspace-level error: every per-crate error (`NetError`,
/// `StoreError`, `ServiceError`, io/json failures) converts into it via
/// `?`, and [`IraError::kind`] gives a stable machine-readable code for
/// programmatic handling (exit codes, metrics labels) that does not
/// depend on `Display` text.
#[derive(Debug, Error)]
pub enum IraError {
    /// A search/fetch service call failed.
    #[error("{0}")]
    Service(#[from] ServiceError),

    /// The simulated network reported a failure.
    #[error("{0}")]
    Net(#[from] ira_simnet::NetError),

    /// The knowledge store could not be loaded or persisted.
    #[error("{0}")]
    Store(#[from] ira_agentmem::store::StoreError),

    /// Host filesystem failure outside the knowledge store.
    #[error("io error: {0}")]
    Io(#[from] std::io::Error),

    /// JSON (de)serialization failure outside the knowledge store.
    #[error("json error: {0}")]
    Json(#[from] serde_json::Error),

    /// A configuration value failed validation (builder `build()`).
    #[error("invalid configuration: {0}")]
    Config(String),

    /// User-supplied input (CLI arguments, trace files) failed to parse.
    #[error("parse error: {0}")]
    Parse(String),

    /// The serve layer shed this request under admission control.
    /// `retry_after_us` is the virtual-time hint after which a resubmit
    /// would be admitted.
    #[error("overloaded: {reason} (retry after {retry_after_us}us)")]
    Overloaded { reason: String, retry_after_us: u64 },

    /// A request's virtual-time deadline expired before the session
    /// finished; any partial result travels alongside this marker.
    #[error("deadline exceeded: {elapsed_us}us elapsed of {deadline_us}us budget")]
    DeadlineExceeded { deadline_us: u64, elapsed_us: u64 },

    /// A session panicked and was isolated by the serve supervisor;
    /// the panic payload's message is preserved.
    #[error("session panicked: {message}")]
    SessionPanicked { message: String },
}

impl IraError {
    /// Build a configuration-validation error.
    pub fn config(message: impl Into<String>) -> Self {
        IraError::Config(message.into())
    }

    /// Build a user-input parse error.
    pub fn parse(message: impl Into<String>) -> Self {
        IraError::Parse(message.into())
    }

    /// Build an admission-control rejection.
    pub fn overloaded(reason: impl Into<String>, retry_after_us: u64) -> Self {
        IraError::Overloaded {
            reason: reason.into(),
            retry_after_us,
        }
    }

    /// Build a deadline-expiry error.
    pub fn deadline_exceeded(deadline_us: u64, elapsed_us: u64) -> Self {
        IraError::DeadlineExceeded {
            deadline_us,
            elapsed_us,
        }
    }

    /// Build a supervisor-caught session panic.
    pub fn session_panicked(message: impl Into<String>) -> Self {
        IraError::SessionPanicked {
            message: message.into(),
        }
    }

    /// Stable machine-readable code for this error. Codes are part of
    /// the public API: match on these, not on `Display` output.
    pub fn kind(&self) -> &'static str {
        use ira_simnet::NetError;
        match self {
            IraError::Service(e) if e.is_source_unavailable() => "service.unavailable",
            IraError::Service(_) => "service.transport",
            IraError::Net(e) => match e {
                NetError::InvalidUrl(_) => "net.invalid_url",
                NetError::HostNotFound(_) => "net.host_not_found",
                NetError::Timeout { .. } => "net.timeout",
                NetError::ConnectionReset { .. } => "net.connection_reset",
                NetError::RateLimited { .. } => "net.rate_limited",
                NetError::RetriesExhausted { .. } => "net.retries_exhausted",
                NetError::HttpStatus { .. } => "net.http_status",
                NetError::BodyNotText { .. } => "net.body_not_text",
                NetError::CircuitOpen { .. } => "net.circuit_open",
            },
            IraError::Store(_) => "store",
            IraError::Io(_) => "io",
            IraError::Json(_) => "json",
            IraError::Config(_) => "config",
            IraError::Parse(_) => "parse",
            IraError::Overloaded { .. } => "serve.overloaded",
            IraError::DeadlineExceeded { .. } => "serve.deadline_exceeded",
            IraError::SessionPanicked { .. } => "serve.session_panicked",
        }
    }
}

/// The serializable wire form of an [`IraError`]: the stable `kind()`
/// code plus the human-readable message. This is what typed error
/// responses (e.g. the serve layer's JSONL protocol) carry — it
/// round-trips through serde where `IraError` itself (which wraps
/// non-serializable io errors) cannot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireError {
    /// Stable machine-readable code, identical to [`IraError::kind`].
    pub kind: String,
    /// Display text of the originating error.
    pub message: String,
}

impl From<&IraError> for WireError {
    fn from(err: &IraError) -> Self {
        WireError {
            kind: err.kind().to_string(),
            message: err.to_string(),
        }
    }
}

/// Failure of a search or fetch call, classified the way the agent
/// loop reacts to it: an unavailable source is *rerouted around*
/// (degradation), anything else is a hard error charged to the run.
#[derive(Debug, Clone, PartialEq, Eq, Error)]
pub enum ServiceError {
    /// The source's host is currently unavailable (e.g. its circuit
    /// breaker is open and the call failed fast). The agent should
    /// skip this source and continue down the ranking.
    #[error("source unavailable: {host}")]
    SourceUnavailable { host: String },

    /// Any other transport/decoding failure, carrying the backend's
    /// own message.
    #[error("{0}")]
    Transport(String),
}

impl ServiceError {
    /// Whether the agent should treat this as a reroutable outage
    /// rather than a hard error.
    pub fn is_source_unavailable(&self) -> bool {
        matches!(self, ServiceError::SourceUnavailable { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_helper() {
        assert!(ServiceError::SourceUnavailable {
            host: "a.test".into()
        }
        .is_source_unavailable());
        assert!(!ServiceError::Transport("boom".into()).is_source_unavailable());
    }

    #[test]
    fn ira_error_converts_from_every_layer() {
        let from_net: IraError = ira_simnet::NetError::HostNotFound("x.test".into()).into();
        assert_eq!(from_net.kind(), "net.host_not_found");

        let from_service: IraError = ServiceError::SourceUnavailable {
            host: "a.test".into(),
        }
        .into();
        assert_eq!(from_service.kind(), "service.unavailable");

        let from_io: IraError = std::io::Error::new(std::io::ErrorKind::NotFound, "missing").into();
        assert_eq!(from_io.kind(), "io");

        let from_json: IraError = serde_json::from_str::<u32>("not json").unwrap_err().into();
        assert_eq!(from_json.kind(), "json");

        assert_eq!(IraError::config("threshold out of range").kind(), "config");
        assert_eq!(IraError::parse("bad flag").kind(), "parse");
    }

    #[test]
    fn question_mark_conversion_compiles() {
        fn load(path: &std::path::Path) -> IraResult<String> {
            Ok(std::fs::read_to_string(path)?)
        }
        assert_eq!(
            load(std::path::Path::new("/definitely/not/here"))
                .unwrap_err()
                .kind(),
            "io"
        );
    }

    #[test]
    fn net_kinds_are_stable_codes() {
        use ira_simnet::{Duration, NetError};
        let cases: Vec<(IraError, &str)> = vec![
            (
                NetError::Timeout {
                    host: "a".into(),
                    elapsed: Duration::from_millis(5),
                }
                .into(),
                "net.timeout",
            ),
            (
                NetError::CircuitOpen {
                    host: "a".into(),
                    retry_in: Duration::from_secs(1),
                }
                .into(),
                "net.circuit_open",
            ),
            (
                NetError::RetriesExhausted {
                    attempts: 3,
                    last: Box::new(NetError::ConnectionReset { host: "a".into() }),
                }
                .into(),
                "net.retries_exhausted",
            ),
        ];
        for (err, kind) in cases {
            assert_eq!(err.kind(), kind);
        }
    }

    /// One sample of *every* `IraError` variant. The match below has no
    /// wildcard arm, so adding a variant without updating this list (and
    /// therefore without deciding its `kind()` code and expected entry in
    /// `every_variant_has_a_stable_unique_code`) fails to compile.
    fn one_of_each() -> Vec<IraError> {
        let samples = vec![
            IraError::Service(ServiceError::Transport("boom".into())),
            IraError::Net(ira_simnet::NetError::HostNotFound("x.test".into())),
            IraError::Store(ira_agentmem::store::StoreError::Corrupt(
                serde_json::from_str::<u32>("{").unwrap_err(),
            )),
            IraError::Io(std::io::Error::new(std::io::ErrorKind::NotFound, "gone")),
            IraError::Json(serde_json::from_str::<u32>("x").unwrap_err()),
            IraError::Config("bad threshold".into()),
            IraError::Parse("bad flag".into()),
            IraError::Overloaded {
                reason: "queue full".into(),
                retry_after_us: 250_000,
            },
            IraError::DeadlineExceeded {
                deadline_us: 30_000_000,
                elapsed_us: 31_500_000,
            },
            IraError::SessionPanicked {
                message: "index out of bounds".into(),
            },
        ];
        // Exhaustiveness guard: every variant above, no wildcard.
        for s in &samples {
            match s {
                IraError::Service(_)
                | IraError::Net(_)
                | IraError::Store(_)
                | IraError::Io(_)
                | IraError::Json(_)
                | IraError::Config(_)
                | IraError::Parse(_)
                | IraError::Overloaded { .. }
                | IraError::DeadlineExceeded { .. }
                | IraError::SessionPanicked { .. } => {}
            }
        }
        samples
    }

    #[test]
    fn every_variant_has_a_stable_unique_code() {
        let codes: Vec<&str> = one_of_each().iter().map(|e| e.kind()).collect();
        assert_eq!(
            codes,
            vec![
                "service.transport",
                "net.host_not_found",
                "store",
                "io",
                "json",
                "config",
                "parse",
                "serve.overloaded",
                "serve.deadline_exceeded",
                "serve.session_panicked",
            ]
        );
        let unique: std::collections::BTreeSet<&str> = codes.iter().copied().collect();
        assert_eq!(unique.len(), codes.len(), "kind codes must be unique");
    }

    #[test]
    fn serve_kind_constructors_and_messages() {
        let o = IraError::overloaded("rate limited", 125_000);
        assert_eq!(o.kind(), "serve.overloaded");
        assert!(o.to_string().contains("125000us"));

        let d = IraError::deadline_exceeded(1_000_000, 1_200_000);
        assert_eq!(d.kind(), "serve.deadline_exceeded");
        assert!(d.to_string().contains("1200000us elapsed"));

        let p = IraError::session_panicked("attempt to divide by zero");
        assert_eq!(p.kind(), "serve.session_panicked");
        assert!(p.to_string().contains("divide by zero"));
    }

    #[test]
    fn wire_error_round_trips_every_kind_through_serde() {
        for err in one_of_each() {
            let wire = WireError::from(&err);
            assert_eq!(wire.kind, err.kind());
            assert_eq!(wire.message, err.to_string());
            let json = serde_json::to_string(&wire).unwrap();
            let back: WireError = serde_json::from_str(&json).unwrap();
            assert_eq!(back, wire, "WireError must round-trip losslessly");
        }
    }

    #[test]
    fn display_carries_the_message() {
        let e = ServiceError::Transport("connection to x.test reset".into());
        assert_eq!(e.to_string(), "connection to x.test reset");
        let u = ServiceError::SourceUnavailable {
            host: "news.test".into(),
        };
        assert!(u.to_string().contains("news.test"));
    }
}
