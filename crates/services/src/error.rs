//! Error types: the [`ServiceError`] the web-facing traits surface,
//! and the workspace-wide [`IraError`] every per-crate error converts
//! into.

use thiserror::Error;

/// Result alias over the workspace error.
pub type IraResult<T> = Result<T, IraError>;

/// The workspace-level error: every per-crate error (`NetError`,
/// `StoreError`, `ServiceError`, io/json failures) converts into it via
/// `?`, and [`IraError::kind`] gives a stable machine-readable code for
/// programmatic handling (exit codes, metrics labels) that does not
/// depend on `Display` text.
#[derive(Debug, Error)]
pub enum IraError {
    /// A search/fetch service call failed.
    #[error("{0}")]
    Service(#[from] ServiceError),

    /// The simulated network reported a failure.
    #[error("{0}")]
    Net(#[from] ira_simnet::NetError),

    /// The knowledge store could not be loaded or persisted.
    #[error("{0}")]
    Store(#[from] ira_agentmem::store::StoreError),

    /// Host filesystem failure outside the knowledge store.
    #[error("io error: {0}")]
    Io(#[from] std::io::Error),

    /// JSON (de)serialization failure outside the knowledge store.
    #[error("json error: {0}")]
    Json(#[from] serde_json::Error),

    /// A configuration value failed validation (builder `build()`).
    #[error("invalid configuration: {0}")]
    Config(String),

    /// User-supplied input (CLI arguments, trace files) failed to parse.
    #[error("parse error: {0}")]
    Parse(String),
}

impl IraError {
    /// Build a configuration-validation error.
    pub fn config(message: impl Into<String>) -> Self {
        IraError::Config(message.into())
    }

    /// Build a user-input parse error.
    pub fn parse(message: impl Into<String>) -> Self {
        IraError::Parse(message.into())
    }

    /// Stable machine-readable code for this error. Codes are part of
    /// the public API: match on these, not on `Display` output.
    pub fn kind(&self) -> &'static str {
        use ira_simnet::NetError;
        match self {
            IraError::Service(e) if e.is_source_unavailable() => "service.unavailable",
            IraError::Service(_) => "service.transport",
            IraError::Net(e) => match e {
                NetError::InvalidUrl(_) => "net.invalid_url",
                NetError::HostNotFound(_) => "net.host_not_found",
                NetError::Timeout { .. } => "net.timeout",
                NetError::ConnectionReset { .. } => "net.connection_reset",
                NetError::RateLimited { .. } => "net.rate_limited",
                NetError::RetriesExhausted { .. } => "net.retries_exhausted",
                NetError::HttpStatus { .. } => "net.http_status",
                NetError::BodyNotText { .. } => "net.body_not_text",
                NetError::CircuitOpen { .. } => "net.circuit_open",
            },
            IraError::Store(_) => "store",
            IraError::Io(_) => "io",
            IraError::Json(_) => "json",
            IraError::Config(_) => "config",
            IraError::Parse(_) => "parse",
        }
    }
}

/// Failure of a search or fetch call, classified the way the agent
/// loop reacts to it: an unavailable source is *rerouted around*
/// (degradation), anything else is a hard error charged to the run.
#[derive(Debug, Clone, PartialEq, Eq, Error)]
pub enum ServiceError {
    /// The source's host is currently unavailable (e.g. its circuit
    /// breaker is open and the call failed fast). The agent should
    /// skip this source and continue down the ranking.
    #[error("source unavailable: {host}")]
    SourceUnavailable { host: String },

    /// Any other transport/decoding failure, carrying the backend's
    /// own message.
    #[error("{0}")]
    Transport(String),
}

impl ServiceError {
    /// Whether the agent should treat this as a reroutable outage
    /// rather than a hard error.
    pub fn is_source_unavailable(&self) -> bool {
        matches!(self, ServiceError::SourceUnavailable { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_helper() {
        assert!(ServiceError::SourceUnavailable {
            host: "a.test".into()
        }
        .is_source_unavailable());
        assert!(!ServiceError::Transport("boom".into()).is_source_unavailable());
    }

    #[test]
    fn ira_error_converts_from_every_layer() {
        let from_net: IraError = ira_simnet::NetError::HostNotFound("x.test".into()).into();
        assert_eq!(from_net.kind(), "net.host_not_found");

        let from_service: IraError = ServiceError::SourceUnavailable {
            host: "a.test".into(),
        }
        .into();
        assert_eq!(from_service.kind(), "service.unavailable");

        let from_io: IraError = std::io::Error::new(std::io::ErrorKind::NotFound, "missing").into();
        assert_eq!(from_io.kind(), "io");

        let from_json: IraError = serde_json::from_str::<u32>("not json").unwrap_err().into();
        assert_eq!(from_json.kind(), "json");

        assert_eq!(IraError::config("threshold out of range").kind(), "config");
        assert_eq!(IraError::parse("bad flag").kind(), "parse");
    }

    #[test]
    fn question_mark_conversion_compiles() {
        fn load(path: &std::path::Path) -> IraResult<String> {
            Ok(std::fs::read_to_string(path)?)
        }
        assert_eq!(
            load(std::path::Path::new("/definitely/not/here"))
                .unwrap_err()
                .kind(),
            "io"
        );
    }

    #[test]
    fn net_kinds_are_stable_codes() {
        use ira_simnet::{Duration, NetError};
        let cases: Vec<(IraError, &str)> = vec![
            (
                NetError::Timeout {
                    host: "a".into(),
                    elapsed: Duration::from_millis(5),
                }
                .into(),
                "net.timeout",
            ),
            (
                NetError::CircuitOpen {
                    host: "a".into(),
                    retry_in: Duration::from_secs(1),
                }
                .into(),
                "net.circuit_open",
            ),
            (
                NetError::RetriesExhausted {
                    attempts: 3,
                    last: Box::new(NetError::ConnectionReset { host: "a".into() }),
                }
                .into(),
                "net.retries_exhausted",
            ),
        ];
        for (err, kind) in cases {
            assert_eq!(err.kind(), kind);
        }
    }

    #[test]
    fn display_carries_the_message() {
        let e = ServiceError::Transport("connection to x.test reset".into());
        assert_eq!(e.to_string(), "connection to x.test reset");
        let u = ServiceError::SourceUnavailable {
            host: "news.test".into(),
        };
        assert!(u.to_string().contains("news.test"));
    }
}
