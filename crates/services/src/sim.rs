//! Canonical implementations: the service traits bound to the
//! simulation substrate. One [`Llm`] is a [`LanguageModel`]; one
//! [`Client`] (over a network serving the `ira-webcorpus` sites) is a
//! [`SearchProvider`] + [`Fetcher`] + [`TimeSource`] — i.e. a full
//! [`WebServices`](crate::WebServices) — and one [`KnowledgeStore`] is
//! a [`Memory`].

use crate::error::ServiceError;
use crate::traits::{
    Fetcher, InferenceHook, LanguageModel, Memory, SearchHit, SearchProvider, TimeSource,
};
use ira_agentmem::KnowledgeStore;
use ira_simllm::{ActionPlan, Answer, Llm, LlmStats};
use ira_simnet::{Client, Duration, NetError, Url};
use ira_webcorpus::sites::{SearchResultPage, SEARCH_HOST};

impl LanguageModel for Llm {
    fn answer(&self, question: &str, knowledge: &[String]) -> Answer {
        Llm::answer(self, question, knowledge)
    }

    fn propose_searches(&self, question: &str, knowledge: &[String], max: usize) -> Vec<String> {
        Llm::propose_searches(self, question, knowledge, max)
    }

    fn plan_goal(&self, goal: &str) -> ActionPlan {
        Llm::plan_goal(self, goal)
    }

    fn decompose(&self, task: &str) -> Vec<String> {
        Llm::decompose(self, task)
    }

    fn shutdown_strategy(&self, knowledge: &[String]) -> Answer {
        Llm::shutdown_strategy(self, knowledge)
    }

    fn stats(&self) -> LlmStats {
        Llm::stats(self)
    }

    fn set_inference_hook(&self, hook: InferenceHook) {
        Llm::set_inference_hook(self, hook)
    }

    fn invalidate_grounding(&self) {
        Llm::invalidate_grounding(self)
    }

    fn set_grounding_mode(&self, mode: u64) {
        Llm::set_grounding_mode(self, mode)
    }
}

/// Classify a network failure at the service boundary: a fast-failed
/// circuit-open call means the *source* is unavailable (the agent
/// reroutes); everything else is transport, carrying the network
/// stack's own message.
fn map_net_err(err: NetError) -> ServiceError {
    match err {
        NetError::CircuitOpen { host, .. } => ServiceError::SourceUnavailable { host },
        other => ServiceError::Transport(other.to_string()),
    }
}

impl SearchProvider for Client {
    fn search(&self, query: &str, k: usize) -> Result<Vec<SearchHit>, ServiceError> {
        let url = Url::build(
            SEARCH_HOST,
            "/q",
            &[("query", query), ("k", &k.to_string())],
        );
        let body = self.get_text(&url.to_string()).map_err(map_net_err)?;
        let page: SearchResultPage =
            serde_json::from_str(&body).map_err(|e| ServiceError::Transport(e.to_string()))?;
        Ok(page
            .results
            .into_iter()
            .map(|r| SearchHit {
                url: r.url,
                title: r.title,
            })
            .collect())
    }
}

impl Fetcher for Client {
    fn fetch(&self, url: &str) -> Result<String, ServiceError> {
        self.get_text(url).map_err(map_net_err)
    }

    fn source_available(&self, url: &str) -> bool {
        match Url::parse(url) {
            Ok(parsed) => !self.breaker_would_fail_fast(parsed.host()),
            Err(_) => true,
        }
    }
}

impl TimeSource for Client {
    fn now_us(&self) -> u64 {
        self.network().clock().now().as_micros()
    }

    fn advance_us(&self, us: u64) {
        self.network().clock().advance(Duration::from_micros(us));
    }
}

impl Memory for KnowledgeStore {
    fn memorize(
        &self,
        topic: &str,
        content: &str,
        source_url: &str,
        source_kind: &str,
        learned_at: u64,
        importance: f64,
    ) -> bool {
        KnowledgeStore::memorize(
            self,
            topic,
            content,
            source_url,
            source_kind,
            learned_at,
            importance,
        )
        .is_some()
    }

    fn has_url(&self, url: &str) -> bool {
        KnowledgeStore::has_url(self, url)
    }

    fn retrieve_texts(&self, query: &str, k: usize, now: u64) -> Vec<String> {
        KnowledgeStore::retrieve_texts(self, query, k, now)
    }

    fn len(&self) -> usize {
        KnowledgeStore::len(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::WebServices;
    use ira_simnet::{Network, NetworkConfig};
    use ira_webcorpus::{register_sites, Corpus, CorpusConfig};
    use ira_worldmodel::World;
    use std::sync::Arc;

    fn client() -> Client {
        let corpus = Arc::new(Corpus::generate(
            &World::standard(),
            CorpusConfig::default(),
        ));
        let mut net = Network::new(NetworkConfig::default(), 42);
        register_sites(&mut net, corpus);
        Client::new(Arc::new(net))
    }

    #[test]
    fn client_searches_through_the_trait() {
        let c = client();
        let web: &dyn WebServices = &c;
        let hits = web
            .search("solar superstorm coronal mass ejection", 5)
            .unwrap();
        assert!(!hits.is_empty());
        assert!(hits.len() <= 5);
        assert!(hits[0].url.starts_with("sim://"));
    }

    #[test]
    fn client_fetches_and_advances_time() {
        let c = client();
        let web: &dyn WebServices = &c;
        let hits = web.search("submarine cable", 3).unwrap();
        let before = web.now_us();
        let body = web.fetch(&hits[0].url).unwrap();
        assert!(!body.is_empty());
        assert!(web.now_us() > before, "network latency must be charged");
        web.advance_us(1_000);
        assert!(web.now_us() >= before + 1_000);
    }

    #[test]
    fn search_hits_match_the_direct_page() {
        // The trait path must be a lossless view of the search host's
        // JSON page: same URLs in the same order.
        let c = client();
        let query = "power grid geomagnetic latitude";
        let url = Url::build(SEARCH_HOST, "/q", &[("query", query), ("k", "8")]);
        let page: SearchResultPage =
            serde_json::from_str(&c.get_text(&url.to_string()).unwrap()).unwrap();
        let hits = SearchProvider::search(&c, query, 8).unwrap();
        let direct: Vec<&str> = page.results.iter().map(|r| r.url.as_str()).collect();
        let via_trait: Vec<&str> = hits.iter().map(|h| h.url.as_str()).collect();
        assert_eq!(direct, via_trait);
    }

    #[test]
    fn llm_is_a_language_model() {
        let llm = Llm::gpt4(7);
        let model: &dyn LanguageModel = &llm;
        let plan = model.plan_goal("Understand solar superstorms and Coronal Mass Ejection");
        assert!(plan.search_count() >= 1);
        assert!(model.stats().calls >= 1);
    }

    #[test]
    fn knowledge_store_is_a_memory() {
        let store = KnowledgeStore::with_defaults();
        let mem: &dyn Memory = &store;
        assert!(mem.is_empty());
        assert!(mem.memorize(
            "t",
            "some fact about cables",
            "sim://a.test/1",
            "web",
            0,
            0.5
        ));
        assert!(!mem.memorize(
            "t",
            "some fact about cables",
            "sim://a.test/1",
            "web",
            1,
            0.5
        ));
        assert!(mem.has_url("sim://a.test/1"));
        assert_eq!(mem.len(), 1);
        assert!(!mem.retrieve_texts("cables", 3, 10).is_empty());
    }

    #[test]
    fn unknown_host_is_transport_not_unavailable() {
        let c = client();
        let err = Fetcher::fetch(&c, "sim://nosuch.test/x").unwrap_err();
        assert!(!err.is_source_unavailable(), "got: {err:?}");
    }
}
