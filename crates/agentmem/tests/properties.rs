//! Property-based tests for embeddings and the knowledge store.

use ira_agentmem::{cosine, embed, KnowledgeStore, StoreConfig, EMBED_DIM};
use proptest::prelude::*;

proptest! {
    #[test]
    fn embeddings_are_unit_or_zero(s in "\\PC{0,300}") {
        let v = embed(&s);
        prop_assert_eq!(v.len(), EMBED_DIM);
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        prop_assert!(norm.abs() < 1e-4 || (norm - 1.0).abs() < 1e-4, "norm {norm}");
    }

    #[test]
    fn cosine_is_bounded_and_symmetric(a in "\\PC{0,200}", b in "\\PC{0,200}") {
        let va = embed(&a);
        let vb = embed(&b);
        let c = cosine(&va, &vb);
        prop_assert!((-1.0001..=1.0001).contains(&c));
        prop_assert!((c - cosine(&vb, &va)).abs() < 1e-6);
    }

    #[test]
    fn self_similarity_is_maximal(a in "[a-z ]{5,100}", b in "[a-z ]{5,100}") {
        let va = embed(&a);
        prop_assume!(va.iter().any(|&x| x != 0.0));
        let vb = embed(&b);
        prop_assert!(cosine(&va, &va) >= cosine(&va, &vb) - 1e-5);
    }

    #[test]
    fn store_never_exceeds_capacity(
        capacity in 1usize..20,
        n_inserts in 0usize..50,
    ) {
        let store = KnowledgeStore::new(StoreConfig { capacity, ..StoreConfig::default() });
        for i in 0..n_inserts {
            store.memorize(
                "topic",
                &format!("wholly distinct content item{i:03} about subject{i:03}"),
                &format!("sim://s.test/{i}"),
                "news",
                i as u64,
                0.5,
            );
        }
        prop_assert!(store.len() <= capacity);
    }

    #[test]
    fn memorizing_identical_content_is_idempotent(
        content in "[a-z ]{20,120}",
        repeats in 1usize..6,
    ) {
        let store = KnowledgeStore::with_defaults();
        prop_assume!(embed(&content).iter().any(|&x| x != 0.0));
        for i in 0..repeats {
            store.memorize("t", &content, &format!("u{i}"), "news", i as u64, 0.5);
        }
        prop_assert_eq!(store.len(), 1);
    }

    #[test]
    fn retrieve_respects_k_and_is_deterministic(
        k in 0usize..15,
        n in 0usize..12,
        query in "[a-z ]{3,40}",
    ) {
        let store = KnowledgeStore::with_defaults();
        for i in 0..n {
            store.memorize(
                "t",
                &format!("entry number{i:02} about theme{i:02} and cables"),
                &format!("u{i}"),
                "news",
                i as u64,
                0.5,
            );
        }
        let a = store.retrieve(&query, k, 1_000);
        let b = store.retrieve(&query, k, 1_000);
        prop_assert!(a.len() <= k.min(store.len()));
        prop_assert_eq!(
            a.iter().map(|e| e.id).collect::<Vec<_>>(),
            b.iter().map(|e| e.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn json_round_trip_preserves_everything(n in 0usize..10) {
        let store = KnowledgeStore::with_defaults();
        for i in 0..n {
            store.memorize(
                "topic",
                &format!("fact number{i:02} about region{i:02}"),
                &format!("sim://src.test/{i}"),
                "blog",
                i as u64 * 7,
                (i as f64 / 10.0).min(1.0),
            );
        }
        let restored = KnowledgeStore::from_json(&store.to_json()).unwrap();
        prop_assert_eq!(restored.len(), store.len());
        let a = store.entries();
        let b = restored.entries();
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(&x.content, &y.content);
            prop_assert_eq!(&x.source_url, &y.source_url);
            prop_assert_eq!(x.learned_at, y.learned_at);
        }
    }
}
