//! Property-based tests for embeddings and the knowledge store.

use ira_agentmem::{cosine, embed, KnowledgeStore, StoreConfig, EMBED_DIM};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique scratch directory per test case (proptest shrinks rerun the
/// closure many times, so the path must never collide across cases).
fn scratch_dir() -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ira-agentmem-props-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn seeded_store(n: usize) -> KnowledgeStore {
    let store = KnowledgeStore::with_defaults();
    for i in 0..n {
        store.memorize(
            "cables",
            &format!("bulletin number{i:02} reports outage near landing{i:02} station"),
            &format!("sim://host{:02}.test/report/{i}", i % 3),
            "news",
            i as u64 * 11,
            0.5,
        );
    }
    store
}

proptest! {
    #[test]
    fn embeddings_are_unit_or_zero(s in "\\PC{0,300}") {
        let v = embed(&s);
        prop_assert_eq!(v.len(), EMBED_DIM);
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        prop_assert!(norm.abs() < 1e-4 || (norm - 1.0).abs() < 1e-4, "norm {norm}");
    }

    #[test]
    fn cosine_is_bounded_and_symmetric(a in "\\PC{0,200}", b in "\\PC{0,200}") {
        let va = embed(&a);
        let vb = embed(&b);
        let c = cosine(&va, &vb);
        prop_assert!((-1.0001..=1.0001).contains(&c));
        prop_assert!((c - cosine(&vb, &va)).abs() < 1e-6);
    }

    #[test]
    fn self_similarity_is_maximal(a in "[a-z ]{5,100}", b in "[a-z ]{5,100}") {
        let va = embed(&a);
        prop_assume!(va.iter().any(|&x| x != 0.0));
        let vb = embed(&b);
        prop_assert!(cosine(&va, &va) >= cosine(&va, &vb) - 1e-5);
    }

    #[test]
    fn store_never_exceeds_capacity(
        capacity in 1usize..20,
        n_inserts in 0usize..50,
    ) {
        let store = KnowledgeStore::new(StoreConfig { capacity, ..StoreConfig::default() });
        for i in 0..n_inserts {
            store.memorize(
                "topic",
                &format!("wholly distinct content item{i:03} about subject{i:03}"),
                &format!("sim://s.test/{i}"),
                "news",
                i as u64,
                0.5,
            );
        }
        prop_assert!(store.len() <= capacity);
    }

    #[test]
    fn memorizing_identical_content_is_idempotent(
        content in "[a-z ]{20,120}",
        repeats in 1usize..6,
    ) {
        let store = KnowledgeStore::with_defaults();
        prop_assume!(embed(&content).iter().any(|&x| x != 0.0));
        for i in 0..repeats {
            store.memorize("t", &content, &format!("u{i}"), "news", i as u64, 0.5);
        }
        prop_assert_eq!(store.len(), 1);
    }

    #[test]
    fn retrieve_respects_k_and_is_deterministic(
        k in 0usize..15,
        n in 0usize..12,
        query in "[a-z ]{3,40}",
    ) {
        let store = KnowledgeStore::with_defaults();
        for i in 0..n {
            store.memorize(
                "t",
                &format!("entry number{i:02} about theme{i:02} and cables"),
                &format!("u{i}"),
                "news",
                i as u64,
                0.5,
            );
        }
        let a = store.retrieve(&query, k, 1_000);
        let b = store.retrieve(&query, k, 1_000);
        prop_assert!(a.len() <= k.min(store.len()));
        prop_assert_eq!(
            a.iter().map(|e| e.id).collect::<Vec<_>>(),
            b.iter().map(|e| e.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn json_round_trip_preserves_everything(n in 0usize..10) {
        let store = KnowledgeStore::with_defaults();
        for i in 0..n {
            store.memorize(
                "topic",
                &format!("fact number{i:02} about region{i:02}"),
                &format!("sim://src.test/{i}"),
                "blog",
                i as u64 * 7,
                (i as f64 / 10.0).min(1.0),
            );
        }
        let restored = KnowledgeStore::from_json(&store.to_json()).unwrap();
        prop_assert_eq!(restored.len(), store.len());
        let a = store.entries();
        let b = restored.entries();
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(&x.content, &y.content);
            prop_assert_eq!(&x.source_url, &y.source_url);
            prop_assert_eq!(x.learned_at, y.learned_at);
        }
    }

    #[test]
    fn graph_snapshot_round_trips_through_disk(n in 0usize..8) {
        let dir = scratch_dir();
        let path = dir.join("knowledge.json");
        let store = seeded_store(n);
        store.save(&path).unwrap();
        let restored = KnowledgeStore::load(&path).unwrap();
        prop_assert_eq!(restored.len(), store.len());
        prop_assert_eq!(restored.graph_to_bytes(), store.graph_to_bytes());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshot_with_no_bak_falls_back_to_json_rebuild(
        n in 1usize..8,
        pos in 0usize..1_000_000,
        truncate in 0usize..2,
    ) {
        let truncate = truncate == 1;
        let dir = scratch_dir();
        let path = dir.join("knowledge.json");
        let store = seeded_store(n);
        store.save(&path).unwrap();

        // First save: no .bak exists yet, so a damaged sidecar can only
        // recover via the deterministic rebuild from the JSON entries.
        let sidecar = KnowledgeStore::graph_snapshot_path(&path);
        let mut bytes = std::fs::read(&sidecar).unwrap();
        if truncate {
            bytes.truncate(pos % bytes.len());
        } else {
            let i = pos % bytes.len();
            bytes[i] ^= 0xFF;
        }
        std::fs::write(&sidecar, &bytes).unwrap();

        let restored = KnowledgeStore::load(&path).unwrap();
        prop_assert_eq!(restored.len(), store.len());
        let rebuilt = KnowledgeStore::from_json(&store.to_json()).unwrap();
        prop_assert_eq!(restored.graph_to_bytes(), rebuilt.graph_to_bytes());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshot_recovers_from_bak_or_rebuild(
        n in 1usize..6,
        pos in 0usize..1_000_000,
        also_corrupt_bak in 0usize..2,
    ) {
        let also_corrupt_bak = also_corrupt_bak == 1;
        let dir = scratch_dir();
        let path = dir.join("knowledge.json");
        let store = seeded_store(n);
        store.save(&path).unwrap();
        let v1_graph = store.graph_to_bytes();

        // A rewrite rotates the v1 snapshot to `.bak`.
        store.memorize(
            "cables",
            "a late bulletin reports splicing finished overnight",
            "sim://host99.test/report/late",
            "news",
            9_000,
            0.5,
        );
        store.save(&path).unwrap();

        let sidecar = KnowledgeStore::graph_snapshot_path(&path);
        let mut bytes = std::fs::read(&sidecar).unwrap();
        let i = pos % bytes.len();
        bytes[i] ^= 0xFF;
        std::fs::write(&sidecar, &bytes).unwrap();
        if also_corrupt_bak {
            let bak = PathBuf::from(format!("{}.bak", sidecar.display()));
            let mut bak_bytes = std::fs::read(&bak).unwrap();
            let j = pos % bak_bytes.len();
            bak_bytes[j] ^= 0xFF;
            std::fs::write(&bak, &bak_bytes).unwrap();
        }

        let restored = KnowledgeStore::load(&path).unwrap();
        // Entries always come from the (intact) JSON: the full v2 set.
        prop_assert_eq!(restored.len(), store.len());
        if also_corrupt_bak {
            // Both snapshot generations damaged: deterministic rebuild
            // from the v2 JSON entries.
            let rebuilt = KnowledgeStore::from_json(&store.to_json()).unwrap();
            prop_assert_eq!(restored.graph_to_bytes(), rebuilt.graph_to_bytes());
        } else {
            // The rotated v1 snapshot is the freshest intact graph —
            // degraded (missing the last absorb) but never fatal.
            prop_assert_eq!(restored.graph_to_bytes(), v1_graph);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
