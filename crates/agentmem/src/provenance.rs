//! Provenance records: where a claim came from.
//!
//! The plexus rule — *all knowledge carries provenance* — applied to
//! the claim graph: every node keeps one [`SourceRef`] per document
//! that mentioned it, so corroboration can be weighed per **source
//! host** (ten pages from one adversary host count once) and audits
//! can walk from any claim back to the fetches that produced it.

use serde::{Deserialize, Serialize};

/// One document's contribution to a claim node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SourceRef {
    /// Source host (`encyclopedia.test`, `adversary.test`, …).
    pub host: String,
    /// Document path on that host.
    pub path: String,
    /// Virtual time (µs) the document was fetched/memorised.
    pub fetched_at_us: u64,
    /// The session that absorbed it (0 outside multi-session runs).
    pub session: u32,
    /// The knowledge-store entry the claim was read from.
    pub entry_id: u64,
}

/// Split a knowledge-entry URL into `(host, path)`.
///
/// Understands the `scheme://host/path` shape every simulated source
/// uses (`sim://`, `reflection://`); anything else becomes a host-only
/// reference so provenance is never silently dropped.
pub fn split_url(url: &str) -> (String, String) {
    let rest = match url.find("://") {
        Some(i) => &url[i + 3..],
        None => url,
    };
    match rest.find('/') {
        Some(i) => (rest[..i].to_string(), rest[i..].to_string()),
        None => (rest.to_string(), "/".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_simulated_urls() {
        assert_eq!(
            split_url("sim://cables.test/wiki/ellalink"),
            ("cables.test".to_string(), "/wiki/ellalink".to_string())
        );
        assert_eq!(
            split_url("reflection://self/2"),
            ("self".to_string(), "/2".to_string())
        );
    }

    #[test]
    fn schemeless_and_pathless_urls_degrade_gracefully() {
        assert_eq!(
            split_url("host.test/p/q"),
            ("host.test".to_string(), "/p/q".to_string())
        );
        assert_eq!(
            split_url("sim://bare.test"),
            ("bare.test".to_string(), "/".to_string())
        );
        assert_eq!(split_url(""), ("".to_string(), "/".to_string()));
    }
}
