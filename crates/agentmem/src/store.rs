//! The knowledge store: dedup, scored retrieval, eviction, and
//! `knowledge.json` persistence.

use crate::embed::{cosine, embed};
use crate::entry::KnowledgeEntry;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::path::Path;
use thiserror::Error;

/// Weights of the three retrieval components, following the
/// generative-agents formulation the paper builds on: relevance to the
/// query, recency of acquisition, and intrinsic importance.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RetrievalWeights {
    pub relevance: f64,
    pub recency: f64,
    pub importance: f64,
    /// Recency half-life in virtual seconds.
    pub half_life_secs: f64,
    /// Redundancy penalty (MMR-style): each candidate's score is
    /// reduced by `diversity × max cosine similarity to the entries
    /// already selected`, so a prompt full of near-identical cable
    /// pages makes room for the general-principle page that actually
    /// completes the answer.
    #[serde(default = "default_diversity")]
    pub diversity: f64,
}

fn default_diversity() -> f64 {
    0.25
}

impl Default for RetrievalWeights {
    fn default() -> Self {
        RetrievalWeights {
            relevance: 1.0,
            recency: 0.1,
            importance: 0.1,
            half_life_secs: 3600.0,
            diversity: default_diversity(),
        }
    }
}

impl RetrievalWeights {
    /// Relevance-only scoring (the ablation baseline).
    pub fn relevance_only() -> Self {
        RetrievalWeights {
            relevance: 1.0,
            recency: 0.0,
            importance: 0.0,
            half_life_secs: 3600.0,
            diversity: 0.0,
        }
    }
}

/// Store configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StoreConfig {
    /// Maximum number of entries before eviction.
    pub capacity: usize,
    /// Cosine similarity above which a new entry is considered a
    /// duplicate and dropped.
    pub dedup_threshold: f32,
    pub weights: RetrievalWeights,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            capacity: 2_000,
            dedup_threshold: 0.98,
            weights: RetrievalWeights::default(),
        }
    }
}

/// Persistence / IO failures.
#[derive(Debug, Error)]
pub enum StoreError {
    #[error("io error: {0}")]
    Io(#[from] std::io::Error),
    #[error("corrupt knowledge file: {0}")]
    Corrupt(#[from] serde_json::Error),
}

/// Serialized form of the store (the `knowledge.json` contents).
#[derive(Debug, Serialize, Deserialize)]
struct StoreFile {
    config: StoreConfig,
    next_id: u64,
    entries: Vec<KnowledgeEntry>,
}

/// The agent's knowledge memory. Thread-safe: retrieval fan-out reads
/// concurrently while the memoriser writes.
pub struct KnowledgeStore {
    inner: RwLock<Inner>,
    config: StoreConfig,
}

struct Inner {
    entries: Vec<KnowledgeEntry>,
    next_id: u64,
}

impl KnowledgeStore {
    pub fn new(config: StoreConfig) -> Self {
        KnowledgeStore {
            inner: RwLock::new(Inner {
                entries: Vec::new(),
                next_id: 0,
            }),
            config,
        }
    }

    pub fn with_defaults() -> Self {
        KnowledgeStore::new(StoreConfig::default())
    }

    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    pub fn len(&self) -> usize {
        self.inner.read().entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Memorise a piece of content. Returns the new entry id, or `None`
    /// if it was dropped as a near-duplicate.
    pub fn memorize(
        &self,
        topic: &str,
        content: &str,
        source_url: &str,
        source_kind: &str,
        learned_at: u64,
        importance: f64,
    ) -> Option<u64> {
        let embedding = embed(content);
        let mut inner = self.inner.write();

        let duplicate = inner
            .entries
            .iter()
            .any(|e| cosine(&e.embedding, &embedding) >= self.config.dedup_threshold);
        if duplicate {
            return None;
        }

        let id = inner.next_id;
        inner.next_id += 1;
        inner.entries.push(KnowledgeEntry {
            id,
            topic: topic.to_string(),
            content: content.to_string(),
            source_url: source_url.to_string(),
            source_kind: source_kind.to_string(),
            learned_at,
            importance: importance.clamp(0.0, 1.0),
            embedding,
        });

        if inner.entries.len() > self.config.capacity {
            // Evict the entry with the lowest standing value
            // (importance + recency), never the one just added.
            let newest = inner.entries.len() - 1;
            let now = learned_at;
            let weights = self.config.weights;
            let victim = inner
                .entries
                .iter()
                .enumerate()
                .take(newest)
                .min_by(|(_, a), (_, b)| {
                    standing(a, now, &weights).total_cmp(&standing(b, now, &weights))
                })
                .map(|(i, _)| i);
            if let Some(i) = victim {
                inner.entries.remove(i);
            }
        }

        Some(id)
    }

    /// Retrieve the top-`k` entries for a query at virtual time `now`,
    /// greedily maximising marginal relevance: at each step the
    /// highest-scoring remaining entry is chosen after subtracting the
    /// diversity penalty against what is already selected.
    pub fn retrieve(&self, query: &str, k: usize, now: u64) -> Vec<KnowledgeEntry> {
        let q = embed(query);
        let inner = self.inner.read();
        let mut candidates: Vec<(f64, &KnowledgeEntry)> = inner
            .entries
            .iter()
            .map(|e| (self.score(e, &q, now), e))
            .collect();
        // Deterministic base order: score desc, id asc.
        candidates.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.id.cmp(&b.1.id)));

        let diversity = self.config.weights.diversity;
        if diversity <= 0.0 {
            return candidates
                .into_iter()
                .take(k)
                .map(|(_, e)| e.clone())
                .collect();
        }

        let mut selected: Vec<KnowledgeEntry> = Vec::with_capacity(k.min(candidates.len()));
        while selected.len() < k && !candidates.is_empty() {
            let best = candidates
                .iter()
                .enumerate()
                .map(|(i, (score, e))| {
                    let max_sim = selected
                        .iter()
                        .map(|s| cosine(&s.embedding, &e.embedding) as f64)
                        .fold(0.0f64, f64::max);
                    (i, score - diversity * max_sim)
                })
                .max_by(|a, b| a.1.total_cmp(&b.1));
            match best {
                Some((i, _)) => {
                    let (_, e) = candidates.remove(i);
                    selected.push(e.clone());
                }
                None => break,
            }
        }
        selected
    }

    /// The retrieval score of an entry for a query embedding.
    fn score(&self, e: &KnowledgeEntry, query: &[f32], now: u64) -> f64 {
        let w = &self.config.weights;
        let relevance = cosine(&e.embedding, query) as f64;
        let age_secs = now.saturating_sub(e.learned_at) as f64 / 1e6;
        let recency = 0.5f64.powf(age_secs / w.half_life_secs);
        w.relevance * relevance + w.recency * recency + w.importance * e.importance
    }

    /// Retrieve just the content strings (prompt-ready), top-`k`,
    /// ordered least-relevant-first so the most relevant text sits
    /// closest to the question in the prompt (and survives context
    /// truncation longest).
    pub fn retrieve_texts(&self, query: &str, k: usize, now: u64) -> Vec<String> {
        let mut entries = self.retrieve(query, k, now);
        entries.reverse();
        entries.into_iter().map(|e| e.content).collect()
    }

    /// Whether any entry was memorised from this exact URL.
    pub fn has_url(&self, url: &str) -> bool {
        self.inner
            .read()
            .entries
            .iter()
            .any(|e| e.source_url == url)
    }

    /// Every entry, in insertion order (for audits and persistence).
    pub fn entries(&self) -> Vec<KnowledgeEntry> {
        self.inner.read().entries.clone()
    }

    /// Distinct (topic, count) pairs — what the agent has studied.
    pub fn topic_histogram(&self) -> Vec<(String, usize)> {
        use std::collections::BTreeMap;
        let inner = self.inner.read();
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        for e in &inner.entries {
            *counts.entry(e.topic.clone()).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }

    /// Distinct (source_kind, count) pairs — the provenance audit.
    pub fn source_histogram(&self) -> Vec<(String, usize)> {
        use std::collections::BTreeMap;
        let inner = self.inner.read();
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        for e in &inner.entries {
            *counts.entry(e.source_kind.clone()).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }

    /// Serialize to the `knowledge.json` format.
    pub fn to_json(&self) -> String {
        let inner = self.inner.read();
        let file = StoreFile {
            config: self.config,
            next_id: inner.next_id,
            entries: inner.entries.clone(),
        };
        serde_json::to_string_pretty(&file).expect("store serializes")
    }

    /// Load from the `knowledge.json` format. Entries missing an
    /// embedding are re-embedded.
    pub fn from_json(json: &str) -> Result<Self, StoreError> {
        let mut file: StoreFile = serde_json::from_str(json)?;
        for e in &mut file.entries {
            if e.embedding.is_empty() {
                e.embedding = embed(&e.content);
            }
        }
        Ok(KnowledgeStore {
            inner: RwLock::new(Inner {
                entries: file.entries,
                next_id: file.next_id,
            }),
            config: file.config,
        })
    }

    /// Write `knowledge.json` to disk atomically (temp file + fsync +
    /// rename), wrapped in a checksum envelope, rotating the previous
    /// file to `<path>.bak`. See [`crate::persist`].
    pub fn save(&self, path: &Path) -> Result<(), StoreError> {
        crate::persist::save_atomic(path, &self.to_json())?;
        Ok(())
    }

    /// Read `knowledge.json` from disk, verifying its checksum and
    /// falling back to `<path>.bak` when the primary file is missing,
    /// truncated, or corrupted.
    pub fn load(path: &Path) -> Result<Self, StoreError> {
        let json = crate::persist::load_with_backup(path)?;
        KnowledgeStore::from_json(&json)
    }
}

fn standing(e: &KnowledgeEntry, now: u64, w: &RetrievalWeights) -> f64 {
    let age_secs = now.saturating_sub(e.learned_at) as f64 / 1e6;
    let recency = 0.5f64.powf(age_secs / w.half_life_secs);
    e.importance + recency
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> KnowledgeStore {
        KnowledgeStore::with_defaults()
    }

    fn mem(s: &KnowledgeStore, topic: &str, content: &str, t: u64) -> Option<u64> {
        s.memorize(topic, content, "sim://x.test/p", "news", t, 0.5)
    }

    #[test]
    fn memorize_and_retrieve_by_relevance() {
        let s = store();
        mem(
            &s,
            "cables",
            "The EllaLink submarine cable connects Brazil to Portugal.",
            1,
        );
        mem(
            &s,
            "cooking",
            "Salt the pasta water until it tastes like the sea.",
            2,
        );
        mem(
            &s,
            "storms",
            "Geomagnetically induced currents grow stronger at high latitude.",
            3,
        );
        let hits = s.retrieve("submarine cable Brazil", 1, 10);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].content.contains("EllaLink"));
    }

    #[test]
    fn near_duplicates_are_dropped() {
        let s = store();
        assert!(mem(
            &s,
            "a",
            "The EllaLink submarine cable connects Brazil to Portugal.",
            1
        )
        .is_some());
        assert!(mem(
            &s,
            "b",
            "The EllaLink submarine cable connects Brazil to Portugal.",
            2
        )
        .is_none());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn distinct_content_is_kept() {
        let s = store();
        assert!(mem(
            &s,
            "a",
            "The EllaLink cable connects Brazil to Portugal.",
            1
        )
        .is_some());
        assert!(mem(
            &s,
            "b",
            "The Grace Hopper cable connects New York to Bude.",
            2
        )
        .is_some());
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn recency_breaks_relevance_ties() {
        let config = StoreConfig {
            weights: RetrievalWeights {
                relevance: 1.0,
                recency: 0.5,
                importance: 0.0,
                half_life_secs: 1.0,
                diversity: 0.0,
            },
            ..StoreConfig::default()
        };
        let s = KnowledgeStore::new(config);
        // Two entries with disjoint-but-equal relevance to the query.
        s.memorize("t", "alpha fact about cables", "u1", "news", 0, 0.5);
        s.memorize(
            "t",
            "alpha fact about cables too",
            "u2",
            "news",
            10_000_000,
            0.5,
        );
        let hits = s.retrieve("alpha fact cables", 2, 10_000_000);
        assert_eq!(hits[0].source_url, "u2", "newer entry should rank first");
    }

    #[test]
    fn importance_lifts_ranking() {
        let config = StoreConfig {
            weights: RetrievalWeights {
                relevance: 1.0,
                recency: 0.0,
                importance: 1.0,
                half_life_secs: 3600.0,
                diversity: 0.0,
            },
            ..StoreConfig::default()
        };
        let s = KnowledgeStore::new(config);
        s.memorize("t", "beta fact about storms", "low", "news", 0, 0.0);
        s.memorize("t", "beta fact about storms also", "high", "news", 0, 1.0);
        let hits = s.retrieve("beta fact storms", 2, 0);
        assert_eq!(hits[0].source_url, "high");
    }

    #[test]
    fn capacity_eviction_keeps_newest() {
        let config = StoreConfig {
            capacity: 5,
            ..StoreConfig::default()
        };
        let s = KnowledgeStore::new(config);
        for i in 0..10u64 {
            s.memorize(
                "t",
                &format!("unique fact number{i:02} about topic{i:02} entry{i:02}"),
                &format!("u{i}"),
                "news",
                i * 1_000_000,
                0.1,
            );
        }
        assert_eq!(s.len(), 5);
        let entries = s.entries();
        assert!(
            entries.iter().any(|e| e.source_url == "u9"),
            "newest entry must survive eviction"
        );
    }

    #[test]
    fn has_url_tracks_sources() {
        let s = store();
        assert!(!s.has_url("sim://x.test/p"));
        mem(
            &s,
            "a",
            "The EllaLink cable connects Brazil to Portugal.",
            1,
        );
        assert!(s.has_url("sim://x.test/p"));
        assert!(!s.has_url("sim://x.test/other"));
    }

    #[test]
    fn json_round_trip_preserves_entries() {
        let s = store();
        mem(
            &s,
            "a",
            "The EllaLink cable connects Brazil to Portugal.",
            1,
        );
        mem(&s, "b", "Geomagnetic storms threaten power grids.", 2);
        let json = s.to_json();
        let back = KnowledgeStore::from_json(&json).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.entries()[0].content, s.entries()[0].content);
    }

    #[test]
    fn save_and_load_file() {
        let dir = std::env::temp_dir().join("ira-agentmem-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("knowledge.json");
        let s = store();
        mem(
            &s,
            "a",
            "The EllaLink cable connects Brazil to Portugal.",
            1,
        );
        s.save(&path).unwrap();
        let back = KnowledgeStore::load(&path).unwrap();
        assert_eq!(back.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_knowledge_file_recovers_from_bak() {
        let dir = std::env::temp_dir().join("ira-agentmem-trunc-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("knowledge.json");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(crate::persist::backup_path(&path)).ok();

        let s = store();
        mem(
            &s,
            "a",
            "The EllaLink cable connects Brazil to Portugal.",
            1,
        );
        s.save(&path).unwrap();
        // Second save rotates the first generation to .bak.
        mem(&s, "b", "Geomagnetic storms threaten power grids.", 2);
        s.save(&path).unwrap();

        // Truncate the primary, as a crash mid-write would.
        let raw = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() / 3]).unwrap();

        let back = KnowledgeStore::load(&path).unwrap();
        assert_eq!(
            back.len(),
            1,
            "must recover the previous generation from .bak"
        );
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(crate::persist::backup_path(&path)).ok();
    }

    #[test]
    fn corrupt_json_is_an_error_not_a_panic() {
        assert!(matches!(
            KnowledgeStore::from_json("{not json"),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn retrieve_texts_orders_most_relevant_last() {
        let s = store();
        mem(
            &s,
            "a",
            "The EllaLink submarine cable connects Brazil to Portugal.",
            1,
        );
        mem(
            &s,
            "b",
            "Completely unrelated gardening trivia about roses.",
            2,
        );
        let texts = s.retrieve_texts("submarine cable Brazil", 2, 10);
        assert_eq!(texts.len(), 2);
        assert!(
            texts[1].contains("EllaLink"),
            "most relevant should be last"
        );
    }

    #[test]
    fn topic_histogram_counts_study_areas() {
        let s = store();
        s.memorize("cables", "fact one about cables", "u1", "news", 0, 0.5);
        s.memorize("cables", "fact two about routes", "u2", "news", 0, 0.5);
        s.memorize("storms", "fact three about storms", "u3", "news", 0, 0.5);
        let hist = s.topic_histogram();
        assert!(hist.contains(&("cables".to_string(), 2)));
        assert!(hist.contains(&("storms".to_string(), 1)));
    }

    #[test]
    fn source_histogram_counts_kinds() {
        let s = store();
        s.memorize("t", "fact one about cables", "u1", "news", 0, 0.5);
        s.memorize("t", "fact two about storms", "u2", "encyclopedia", 0, 0.5);
        s.memorize("t", "fact three about grids", "u3", "news", 0, 0.5);
        let hist = s.source_histogram();
        assert!(hist.contains(&("news".to_string(), 2)));
        assert!(hist.contains(&("encyclopedia".to_string(), 1)));
    }
}
