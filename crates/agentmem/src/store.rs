//! The knowledge store: dedup, scored retrieval, eviction, and
//! `knowledge.json` persistence — plus the weighted claim graph
//! maintained alongside the entries (see [`crate::graph`]).
//!
//! The graph is always *built* (every memorise absorbs its content,
//! every eviction drops its provenance), but only *consulted* when
//! graph retrieval is switched on via
//! [`KnowledgeStore::set_graph_retrieval`] — the same legacy-parity
//! pattern as `set_scan_lookups` in the corpus index. With the flag
//! off, retrieval scoring, `knowledge.json` bytes, and therefore quiz
//! answers are byte-identical to the flat-store path.

use crate::embed::{cosine, embed};
use crate::entry::KnowledgeEntry;
use crate::graph::{ClaimGraph, GraphConfig, GraphStats, HostStats};
use crate::provenance::{split_url, SourceRef};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use thiserror::Error;

/// Weights of the three retrieval components, following the
/// generative-agents formulation the paper builds on: relevance to the
/// query, recency of acquisition, and intrinsic importance.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RetrievalWeights {
    pub relevance: f64,
    pub recency: f64,
    pub importance: f64,
    /// Recency half-life in virtual seconds.
    pub half_life_secs: f64,
    /// Redundancy penalty (MMR-style): each candidate's score is
    /// reduced by `diversity × max cosine similarity to the entries
    /// already selected`, so a prompt full of near-identical cable
    /// pages makes room for the general-principle page that actually
    /// completes the answer.
    #[serde(default = "default_diversity")]
    pub diversity: f64,
}

fn default_diversity() -> f64 {
    0.25
}

impl Default for RetrievalWeights {
    fn default() -> Self {
        RetrievalWeights {
            relevance: 1.0,
            recency: 0.1,
            importance: 0.1,
            half_life_secs: 3600.0,
            diversity: default_diversity(),
        }
    }
}

impl RetrievalWeights {
    /// Relevance-only scoring (the ablation baseline).
    pub fn relevance_only() -> Self {
        RetrievalWeights {
            relevance: 1.0,
            recency: 0.0,
            importance: 0.0,
            half_life_secs: 3600.0,
            diversity: 0.0,
        }
    }
}

/// Store configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StoreConfig {
    /// Maximum number of entries before eviction.
    pub capacity: usize,
    /// Cosine similarity above which a new entry is considered a
    /// duplicate and dropped.
    pub dedup_threshold: f32,
    pub weights: RetrievalWeights,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            capacity: 2_000,
            dedup_threshold: 0.98,
            weights: RetrievalWeights::default(),
        }
    }
}

/// Persistence / IO failures.
#[derive(Debug, Error)]
pub enum StoreError {
    #[error("io error: {0}")]
    Io(#[from] std::io::Error),
    #[error("corrupt knowledge file: {0}")]
    Corrupt(#[from] serde_json::Error),
}

/// Serialized form of the store (the `knowledge.json` contents).
#[derive(Debug, Serialize, Deserialize)]
struct StoreFile {
    config: StoreConfig,
    next_id: u64,
    entries: Vec<KnowledgeEntry>,
}

/// The agent's knowledge memory. Thread-safe: retrieval fan-out reads
/// concurrently while the memoriser writes.
pub struct KnowledgeStore {
    inner: RwLock<Inner>,
    config: StoreConfig,
    /// When set, retrieval scoring adds the graph corroboration term.
    /// Runtime-only (never serialized) so `knowledge.json` stays
    /// byte-identical either way.
    graph_retrieval: AtomicBool,
    /// Session id stamped into provenance records (0 outside
    /// multi-session runs).
    session: AtomicU32,
}

struct Inner {
    entries: Vec<KnowledgeEntry>,
    next_id: u64,
    graph: ClaimGraph,
}

impl KnowledgeStore {
    pub fn new(config: StoreConfig) -> Self {
        KnowledgeStore {
            inner: RwLock::new(Inner {
                entries: Vec::new(),
                next_id: 0,
                graph: ClaimGraph::new(GraphConfig::default()),
            }),
            config,
            graph_retrieval: AtomicBool::new(false),
            session: AtomicU32::new(0),
        }
    }

    pub fn with_defaults() -> Self {
        KnowledgeStore::new(StoreConfig::default())
    }

    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// Switch the graph corroboration term in retrieval scoring on or
    /// off (default off). Off ⇒ scoring is byte-identical to the flat
    /// store; the graph is still built either way.
    pub fn set_graph_retrieval(&self, enabled: bool) {
        self.graph_retrieval.store(enabled, Ordering::Relaxed);
    }

    /// Whether graph-mode retrieval is active.
    pub fn graph_retrieval(&self) -> bool {
        self.graph_retrieval.load(Ordering::Relaxed)
    }

    /// Set the session id stamped into provenance records of future
    /// memorisations.
    pub fn set_session(&self, session: u32) {
        self.session.store(session, Ordering::Relaxed);
    }

    /// Replace the claim-graph tuning (expansion width, corroboration
    /// weight, decay horizon). Runtime-only; not serialized.
    pub fn set_graph_config(&self, config: GraphConfig) {
        self.inner.write().graph.set_config(config);
    }

    /// Aggregate claim-graph statistics (the observability surface).
    pub fn graph_stats(&self) -> GraphStats {
        self.inner.read().graph.stats()
    }

    /// Per-host contribution summary from the claim graph.
    pub fn graph_host_stats(&self) -> BTreeMap<String, HostStats> {
        self.inner.read().graph.host_stats()
    }

    /// Run a closure against the claim graph under the read lock (for
    /// audits, CLI queries, and tests).
    pub fn with_graph<R>(&self, f: impl FnOnce(&ClaimGraph) -> R) -> R {
        f(&self.inner.read().graph)
    }

    /// Serialize the claim graph to its compact binary snapshot.
    pub fn graph_to_bytes(&self) -> Vec<u8> {
        self.inner.read().graph.to_bytes()
    }

    pub fn len(&self) -> usize {
        self.inner.read().entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Memorise a piece of content. Returns the new entry id, or `None`
    /// if it was dropped as a near-duplicate.
    pub fn memorize(
        &self,
        topic: &str,
        content: &str,
        source_url: &str,
        source_kind: &str,
        learned_at: u64,
        importance: f64,
    ) -> Option<u64> {
        let embedding = embed(content);
        let inner = &mut *self.inner.write();

        let duplicate = inner
            .entries
            .iter()
            .any(|e| cosine(&e.embedding, &embedding) >= self.config.dedup_threshold);
        if duplicate {
            return None;
        }

        let id = inner.next_id;
        inner.next_id += 1;
        inner.entries.push(KnowledgeEntry {
            id,
            topic: topic.to_string(),
            content: content.to_string(),
            source_url: source_url.to_string(),
            source_kind: source_kind.to_string(),
            learned_at,
            importance: importance.clamp(0.0, 1.0),
            embedding,
        });

        // Absorb into the claim graph with full provenance.
        let (host, path) = split_url(source_url);
        inner.graph.absorb(
            id,
            content,
            SourceRef {
                host,
                path,
                fetched_at_us: learned_at,
                session: self.session.load(Ordering::Relaxed),
                entry_id: id,
            },
        );

        if inner.entries.len() > self.config.capacity {
            // Evict the entry with the lowest standing value
            // (importance + recency), never the one just added.
            let newest = inner.entries.len() - 1;
            let now = learned_at;
            let weights = self.config.weights;
            let victim = inner
                .entries
                .iter()
                .enumerate()
                .take(newest)
                .min_by(|(_, a), (_, b)| {
                    standing(a, now, &weights).total_cmp(&standing(b, now, &weights))
                })
                .map(|(i, _)| i);
            if let Some(i) = victim {
                let evicted = inner.entries.remove(i);
                // The page is gone; its provenance records go with it.
                // The claims it asserted persist in the graph.
                inner.graph.remove_entry(evicted.id);
            }
        }

        Some(id)
    }

    /// Retrieve the top-`k` entries for a query at virtual time `now`,
    /// greedily maximising marginal relevance: at each step the
    /// highest-scoring remaining entry is chosen after subtracting the
    /// diversity penalty against what is already selected.
    ///
    /// With graph retrieval on, each entry's score additionally earns
    /// `corroboration_weight × entry_support` — the graph activation of
    /// its claims (query matches plus strong co-occurrence neighbors)
    /// weighted by how many *distinct hosts* corroborate each claim.
    pub fn retrieve(&self, query: &str, k: usize, now: u64) -> Vec<KnowledgeEntry> {
        let q = embed(query);
        let inner = self.inner.read();
        let activation = self.graph_retrieval().then(|| inner.graph.activate(query));
        let corroboration_weight = inner.graph.config().corroboration_weight;
        let mut candidates: Vec<(f64, &KnowledgeEntry)> = inner
            .entries
            .iter()
            .map(|e| {
                let mut score = self.score(e, &q, now);
                if let Some(activation) = &activation {
                    score += corroboration_weight * inner.graph.entry_support(e.id, activation);
                }
                (score, e)
            })
            .collect();
        // Deterministic base order: score desc, id asc.
        candidates.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.id.cmp(&b.1.id)));

        let diversity = self.config.weights.diversity;
        if diversity <= 0.0 {
            return candidates
                .into_iter()
                .take(k)
                .map(|(_, e)| e.clone())
                .collect();
        }

        let mut selected: Vec<KnowledgeEntry> = Vec::with_capacity(k.min(candidates.len()));
        while selected.len() < k && !candidates.is_empty() {
            let best = candidates
                .iter()
                .enumerate()
                .map(|(i, (score, e))| {
                    let max_sim = selected
                        .iter()
                        .map(|s| cosine(&s.embedding, &e.embedding) as f64)
                        .fold(0.0f64, f64::max);
                    (i, score - diversity * max_sim)
                })
                .max_by(|a, b| a.1.total_cmp(&b.1));
            match best {
                Some((i, _)) => {
                    let (_, e) = candidates.remove(i);
                    selected.push(e.clone());
                }
                None => break,
            }
        }
        selected
    }

    /// The retrieval score of an entry for a query embedding.
    fn score(&self, e: &KnowledgeEntry, query: &[f32], now: u64) -> f64 {
        let w = &self.config.weights;
        let relevance = cosine(&e.embedding, query) as f64;
        let age_secs = now.saturating_sub(e.learned_at) as f64 / 1e6;
        let recency = 0.5f64.powf(age_secs / w.half_life_secs);
        w.relevance * relevance + w.recency * recency + w.importance * e.importance
    }

    /// Retrieve just the content strings (prompt-ready), top-`k`,
    /// ordered least-relevant-first so the most relevant text sits
    /// closest to the question in the prompt (and survives context
    /// truncation longest).
    pub fn retrieve_texts(&self, query: &str, k: usize, now: u64) -> Vec<String> {
        let mut entries = self.retrieve(query, k, now);
        entries.reverse();
        entries.into_iter().map(|e| e.content).collect()
    }

    /// Whether any entry was memorised from this exact URL.
    pub fn has_url(&self, url: &str) -> bool {
        self.inner
            .read()
            .entries
            .iter()
            .any(|e| e.source_url == url)
    }

    /// Every entry, in insertion order (for audits and persistence).
    pub fn entries(&self) -> Vec<KnowledgeEntry> {
        self.inner.read().entries.clone()
    }

    /// Distinct (topic, count) pairs — what the agent has studied.
    pub fn topic_histogram(&self) -> Vec<(String, usize)> {
        use std::collections::BTreeMap;
        let inner = self.inner.read();
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        for e in &inner.entries {
            *counts.entry(e.topic.clone()).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }

    /// Distinct (source_kind, count) pairs — the provenance audit.
    pub fn source_histogram(&self) -> Vec<(String, usize)> {
        use std::collections::BTreeMap;
        let inner = self.inner.read();
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        for e in &inner.entries {
            *counts.entry(e.source_kind.clone()).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }

    /// Serialize to the `knowledge.json` format.
    pub fn to_json(&self) -> String {
        let inner = self.inner.read();
        let file = StoreFile {
            config: self.config,
            next_id: inner.next_id,
            entries: inner.entries.clone(),
        };
        serde_json::to_string_pretty(&file).expect("store serializes")
    }

    /// Load from the `knowledge.json` format. Entries missing an
    /// embedding are re-embedded; the claim graph is rebuilt
    /// deterministically from the surviving entries (historical claims
    /// of evicted entries are only recoverable from a graph snapshot —
    /// see [`KnowledgeStore::load`]).
    pub fn from_json(json: &str) -> Result<Self, StoreError> {
        let mut file: StoreFile = serde_json::from_str(json)?;
        for e in &mut file.entries {
            if e.embedding.is_empty() {
                e.embedding = embed(&e.content);
            }
        }
        let graph = rebuild_graph(&file.entries);
        Ok(KnowledgeStore {
            inner: RwLock::new(Inner {
                entries: file.entries,
                next_id: file.next_id,
                graph,
            }),
            config: file.config,
            graph_retrieval: AtomicBool::new(false),
            session: AtomicU32::new(0),
        })
    }

    /// The sidecar path of the binary graph snapshot saved next to a
    /// `knowledge.json` (`<path>.graph`).
    pub fn graph_snapshot_path(path: &Path) -> PathBuf {
        let mut name = path
            .file_name()
            .map(|n| n.to_os_string())
            .unwrap_or_default();
        name.push(".graph");
        path.with_file_name(name)
    }

    /// Write `knowledge.json` to disk atomically (temp file + fsync +
    /// rename), wrapped in a checksum envelope, rotating the previous
    /// file to `<path>.bak` — plus the claim-graph binary snapshot as a
    /// `<path>.graph` sidecar under the same discipline. The JSON bytes
    /// are unchanged from the flat-store format. See [`crate::persist`].
    pub fn save(&self, path: &Path) -> Result<(), StoreError> {
        crate::persist::save_atomic(path, &self.to_json())?;
        crate::persist::save_atomic_bytes(
            &KnowledgeStore::graph_snapshot_path(path),
            &self.graph_to_bytes(),
        )?;
        Ok(())
    }

    /// Read `knowledge.json` from disk, verifying its checksum and
    /// falling back to `<path>.bak` when the primary file is missing,
    /// truncated, or corrupted.
    ///
    /// The claim graph loads from the `<path>.graph` binary snapshot
    /// (with its own `.bak` fallback); when the snapshot is missing or
    /// fails verification, the graph is rebuilt deterministically from
    /// the JSON entries instead — degraded (evicted entries' historical
    /// claims are lost) but never fatal.
    pub fn load(path: &Path) -> Result<Self, StoreError> {
        let json = crate::persist::load_with_backup(path)?;
        let store = KnowledgeStore::from_json(&json)?;
        let snapshot = KnowledgeStore::graph_snapshot_path(path);
        if let Ok(bytes) = crate::persist::load_bytes_with_backup(&snapshot) {
            if let Ok(graph) = ClaimGraph::from_bytes(&bytes, GraphConfig::default()) {
                store.inner.write().graph = graph;
            }
        }
        Ok(store)
    }
}

/// Rebuild the claim graph from surviving entries, in insertion order.
/// The deterministic fallback when no graph snapshot is available.
fn rebuild_graph(entries: &[KnowledgeEntry]) -> ClaimGraph {
    let mut graph = ClaimGraph::new(GraphConfig::default());
    for e in entries {
        let (host, path) = split_url(&e.source_url);
        graph.absorb(
            e.id,
            &e.content,
            SourceRef {
                host,
                path,
                fetched_at_us: e.learned_at,
                session: 0,
                entry_id: e.id,
            },
        );
    }
    graph
}

fn standing(e: &KnowledgeEntry, now: u64, w: &RetrievalWeights) -> f64 {
    let age_secs = now.saturating_sub(e.learned_at) as f64 / 1e6;
    let recency = 0.5f64.powf(age_secs / w.half_life_secs);
    e.importance + recency
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> KnowledgeStore {
        KnowledgeStore::with_defaults()
    }

    fn mem(s: &KnowledgeStore, topic: &str, content: &str, t: u64) -> Option<u64> {
        s.memorize(topic, content, "sim://x.test/p", "news", t, 0.5)
    }

    #[test]
    fn memorize_and_retrieve_by_relevance() {
        let s = store();
        mem(
            &s,
            "cables",
            "The EllaLink submarine cable connects Brazil to Portugal.",
            1,
        );
        mem(
            &s,
            "cooking",
            "Salt the pasta water until it tastes like the sea.",
            2,
        );
        mem(
            &s,
            "storms",
            "Geomagnetically induced currents grow stronger at high latitude.",
            3,
        );
        let hits = s.retrieve("submarine cable Brazil", 1, 10);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].content.contains("EllaLink"));
    }

    #[test]
    fn near_duplicates_are_dropped() {
        let s = store();
        assert!(mem(
            &s,
            "a",
            "The EllaLink submarine cable connects Brazil to Portugal.",
            1
        )
        .is_some());
        assert!(mem(
            &s,
            "b",
            "The EllaLink submarine cable connects Brazil to Portugal.",
            2
        )
        .is_none());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn distinct_content_is_kept() {
        let s = store();
        assert!(mem(
            &s,
            "a",
            "The EllaLink cable connects Brazil to Portugal.",
            1
        )
        .is_some());
        assert!(mem(
            &s,
            "b",
            "The Grace Hopper cable connects New York to Bude.",
            2
        )
        .is_some());
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn recency_breaks_relevance_ties() {
        let config = StoreConfig {
            weights: RetrievalWeights {
                relevance: 1.0,
                recency: 0.5,
                importance: 0.0,
                half_life_secs: 1.0,
                diversity: 0.0,
            },
            ..StoreConfig::default()
        };
        let s = KnowledgeStore::new(config);
        // Two entries with disjoint-but-equal relevance to the query.
        s.memorize("t", "alpha fact about cables", "u1", "news", 0, 0.5);
        s.memorize(
            "t",
            "alpha fact about cables too",
            "u2",
            "news",
            10_000_000,
            0.5,
        );
        let hits = s.retrieve("alpha fact cables", 2, 10_000_000);
        assert_eq!(hits[0].source_url, "u2", "newer entry should rank first");
    }

    #[test]
    fn importance_lifts_ranking() {
        let config = StoreConfig {
            weights: RetrievalWeights {
                relevance: 1.0,
                recency: 0.0,
                importance: 1.0,
                half_life_secs: 3600.0,
                diversity: 0.0,
            },
            ..StoreConfig::default()
        };
        let s = KnowledgeStore::new(config);
        s.memorize("t", "beta fact about storms", "low", "news", 0, 0.0);
        s.memorize("t", "beta fact about storms also", "high", "news", 0, 1.0);
        let hits = s.retrieve("beta fact storms", 2, 0);
        assert_eq!(hits[0].source_url, "high");
    }

    #[test]
    fn capacity_eviction_keeps_newest() {
        let config = StoreConfig {
            capacity: 5,
            ..StoreConfig::default()
        };
        let s = KnowledgeStore::new(config);
        for i in 0..10u64 {
            s.memorize(
                "t",
                &format!("unique fact number{i:02} about topic{i:02} entry{i:02}"),
                &format!("u{i}"),
                "news",
                i * 1_000_000,
                0.1,
            );
        }
        assert_eq!(s.len(), 5);
        let entries = s.entries();
        assert!(
            entries.iter().any(|e| e.source_url == "u9"),
            "newest entry must survive eviction"
        );
    }

    #[test]
    fn has_url_tracks_sources() {
        let s = store();
        assert!(!s.has_url("sim://x.test/p"));
        mem(
            &s,
            "a",
            "The EllaLink cable connects Brazil to Portugal.",
            1,
        );
        assert!(s.has_url("sim://x.test/p"));
        assert!(!s.has_url("sim://x.test/other"));
    }

    #[test]
    fn json_round_trip_preserves_entries() {
        let s = store();
        mem(
            &s,
            "a",
            "The EllaLink cable connects Brazil to Portugal.",
            1,
        );
        mem(&s, "b", "Geomagnetic storms threaten power grids.", 2);
        let json = s.to_json();
        let back = KnowledgeStore::from_json(&json).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.entries()[0].content, s.entries()[0].content);
    }

    #[test]
    fn save_and_load_file() {
        let dir = std::env::temp_dir().join("ira-agentmem-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("knowledge.json");
        let s = store();
        mem(
            &s,
            "a",
            "The EllaLink cable connects Brazil to Portugal.",
            1,
        );
        s.save(&path).unwrap();
        let back = KnowledgeStore::load(&path).unwrap();
        assert_eq!(back.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_knowledge_file_recovers_from_bak() {
        let dir = std::env::temp_dir().join("ira-agentmem-trunc-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("knowledge.json");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(crate::persist::backup_path(&path)).ok();

        let s = store();
        mem(
            &s,
            "a",
            "The EllaLink cable connects Brazil to Portugal.",
            1,
        );
        s.save(&path).unwrap();
        // Second save rotates the first generation to .bak.
        mem(&s, "b", "Geomagnetic storms threaten power grids.", 2);
        s.save(&path).unwrap();

        // Truncate the primary, as a crash mid-write would.
        let raw = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() / 3]).unwrap();

        let back = KnowledgeStore::load(&path).unwrap();
        assert_eq!(
            back.len(),
            1,
            "must recover the previous generation from .bak"
        );
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(crate::persist::backup_path(&path)).ok();
    }

    #[test]
    fn corrupt_json_is_an_error_not_a_panic() {
        assert!(matches!(
            KnowledgeStore::from_json("{not json"),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn retrieve_texts_orders_most_relevant_last() {
        let s = store();
        mem(
            &s,
            "a",
            "The EllaLink submarine cable connects Brazil to Portugal.",
            1,
        );
        mem(
            &s,
            "b",
            "Completely unrelated gardening trivia about roses.",
            2,
        );
        let texts = s.retrieve_texts("submarine cable Brazil", 2, 10);
        assert_eq!(texts.len(), 2);
        assert!(
            texts[1].contains("EllaLink"),
            "most relevant should be last"
        );
    }

    #[test]
    fn topic_histogram_counts_study_areas() {
        let s = store();
        s.memorize("cables", "fact one about cables", "u1", "news", 0, 0.5);
        s.memorize("cables", "fact two about routes", "u2", "news", 0, 0.5);
        s.memorize("storms", "fact three about storms", "u3", "news", 0, 0.5);
        let hist = s.topic_histogram();
        assert!(hist.contains(&("cables".to_string(), 2)));
        assert!(hist.contains(&("storms".to_string(), 1)));
    }

    #[test]
    fn source_histogram_counts_kinds() {
        let s = store();
        s.memorize("t", "fact one about cables", "u1", "news", 0, 0.5);
        s.memorize("t", "fact two about storms", "u2", "encyclopedia", 0, 0.5);
        s.memorize("t", "fact three about grids", "u3", "news", 0, 0.5);
        let hist = s.source_histogram();
        assert!(hist.contains(&("news".to_string(), 2)));
        assert!(hist.contains(&("encyclopedia".to_string(), 1)));
    }

    #[test]
    fn memorize_builds_the_claim_graph_with_provenance() {
        let s = store();
        s.set_session(7);
        s.memorize(
            "cables",
            "EllaLink cable connects Brazil",
            "sim://a.test/wiki/ellalink",
            "encyclopedia",
            11,
            0.5,
        );
        s.memorize(
            "cables",
            "Grace Hopper cable connects America",
            "sim://b.test/wiki/hopper",
            "encyclopedia",
            22,
            0.5,
        );
        let stats = s.graph_stats();
        assert!(stats.nodes >= 6);
        assert!(stats.edges > 0);
        s.with_graph(|g| {
            let cable = g.node_by_text("cable").unwrap();
            assert_eq!(cable.corroboration(), 2);
            assert_eq!(cable.sources[0].host, "a.test");
            assert_eq!(cable.sources[0].path, "/wiki/ellalink");
            assert_eq!(cable.sources[0].fetched_at_us, 11);
            assert_eq!(cable.sources[0].session, 7);
        });
        let hosts = s.graph_host_stats();
        assert!(hosts.contains_key("a.test") && hosts.contains_key("b.test"));
    }

    #[test]
    fn graph_flag_off_means_flat_scoring() {
        // Two stores fed identically, one with graph retrieval toggled
        // on and back off — retrieval must be byte-identical.
        let feed = |s: &KnowledgeStore| {
            s.memorize(
                "t",
                "alpha cable latitude fact",
                "sim://a.test/1",
                "news",
                1,
                0.5,
            );
            s.memorize(
                "t",
                "beta storm latitude fact",
                "sim://b.test/2",
                "news",
                2,
                0.5,
            );
            s.memorize(
                "t",
                "gardening trivia roses",
                "sim://c.test/3",
                "forum",
                3,
                0.5,
            );
        };
        let plain = store();
        feed(&plain);
        let toggled = store();
        toggled.set_graph_retrieval(true);
        feed(&toggled);
        toggled.set_graph_retrieval(false);
        assert_eq!(
            plain.retrieve_texts("latitude fact", 2, 10),
            toggled.retrieve_texts("latitude fact", 2, 10)
        );
        assert_eq!(plain.to_json(), toggled.to_json());
    }

    #[test]
    fn graph_mode_lifts_corroborated_entries() {
        // Entries tie on flat scoring (disjoint vocab, same recency /
        // importance weights zeroed), but one claim set is asserted by
        // two hosts. Graph mode must prefer the corroborated entry.
        let config = StoreConfig {
            weights: RetrievalWeights {
                relevance: 1.0,
                recency: 0.0,
                importance: 0.0,
                half_life_secs: 3600.0,
                diversity: 0.0,
            },
            ..StoreConfig::default()
        };
        let s = KnowledgeStore::new(config);
        s.memorize(
            "t",
            "apex latitude figure corroborated",
            "sim://a.test/1",
            "news",
            1,
            0.5,
        );
        s.memorize(
            "t",
            "apex latitude figure confirmed independently",
            "sim://b.test/2",
            "news",
            2,
            0.5,
        );
        s.memorize(
            "t",
            "apex latitude bulletin exclusive fabricated",
            "sim://evil.test/3",
            "news",
            3,
            0.5,
        );
        s.set_graph_retrieval(true);
        let hits = s.retrieve("apex latitude", 1, 10);
        assert!(
            !hits[0].source_url.contains("evil"),
            "corroborated claims must outrank the single-host exclusive"
        );
    }

    #[test]
    fn eviction_removes_provenance_from_graph() {
        let config = StoreConfig {
            capacity: 2,
            ..StoreConfig::default()
        };
        let s = KnowledgeStore::new(config);
        s.memorize(
            "t",
            "oldest stale claim nonsense",
            "sim://a.test/1",
            "news",
            0,
            0.0,
        );
        s.memorize(
            "t",
            "newer useful cable latitude",
            "sim://b.test/2",
            "news",
            1_000_000,
            0.9,
        );
        s.memorize(
            "t",
            "newest storm grid impact",
            "sim://c.test/3",
            "news",
            2_000_000,
            0.9,
        );
        assert_eq!(s.len(), 2);
        s.with_graph(|g| {
            let node = g.node_by_text("nonsense").unwrap();
            assert!(
                node.sources.is_empty(),
                "evicted entry's provenance must go"
            );
            assert_eq!(node.occurrences, 1, "the claim itself persists");
        });
    }

    #[test]
    fn save_writes_graph_sidecar_and_load_restores_it() {
        let dir = std::env::temp_dir().join("ira-agentmem-graph-sidecar");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("knowledge.json");
        let sidecar = KnowledgeStore::graph_snapshot_path(&path);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&sidecar).ok();
        std::fs::remove_file(crate::persist::backup_path(&path)).ok();
        std::fs::remove_file(crate::persist::backup_path(&sidecar)).ok();

        let s = store();
        mem(
            &s,
            "a",
            "The EllaLink cable connects Brazil to Portugal.",
            1,
        );
        mem(&s, "b", "Geomagnetic storms threaten power grids.", 2);
        s.save(&path).unwrap();
        assert!(sidecar.exists(), "sidecar snapshot must be written");

        let back = KnowledgeStore::load(&path).unwrap();
        assert_eq!(back.graph_to_bytes(), s.graph_to_bytes());

        // Corrupt the sidecar: load must fall back to a JSON rebuild.
        std::fs::write(&sidecar, b"garbage").unwrap();
        std::fs::remove_file(crate::persist::backup_path(&sidecar)).ok();
        let rebuilt = KnowledgeStore::load(&path).unwrap();
        assert_eq!(
            rebuilt.graph_to_bytes(),
            s.graph_to_bytes(),
            "no evictions happened, so the rebuild matches the snapshot"
        );

        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&sidecar).ok();
        std::fs::remove_file(crate::persist::backup_path(&path)).ok();
        std::fs::remove_file(crate::persist::backup_path(&sidecar)).ok();
    }

    #[test]
    fn from_json_rebuilds_graph_deterministically() {
        let s = store();
        mem(
            &s,
            "a",
            "The EllaLink cable connects Brazil to Portugal.",
            1,
        );
        mem(&s, "b", "Geomagnetic storms threaten power grids.", 2);
        let back = KnowledgeStore::from_json(&s.to_json()).unwrap();
        assert_eq!(back.graph_to_bytes(), s.graph_to_bytes());
    }
}
