//! The knowledge entry record.

use serde::{Deserialize, Serialize};

/// One memorised piece of knowledge, with full provenance.
///
/// Provenance matters: §4.2 of the paper "carefully monitor\[s\] how Bob
/// draws conclusions … to verify the sources of the knowledge"; the
/// evaluation harness replays that audit over these fields.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnowledgeEntry {
    /// Stable id within the store.
    pub id: u64,
    /// The query or goal that led to this knowledge.
    pub topic: String,
    /// The memorised text (usually a fetched page).
    pub content: String,
    /// Where it came from.
    pub source_url: String,
    /// Source category ("encyclopedia", "news", "forum", …).
    pub source_kind: String,
    /// Virtual time (µs) at memorisation.
    pub learned_at: u64,
    /// Importance in [0, 1], set by the memoriser (e.g. rank in search
    /// results).
    pub importance: f64,
    /// Cached embedding of `content`.
    #[serde(default)]
    pub embedding: Vec<f32>,
}

impl KnowledgeEntry {
    /// Approximate size in bytes for capacity accounting.
    pub fn byte_size(&self) -> usize {
        self.content.len() + self.topic.len() + self.source_url.len() + 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> KnowledgeEntry {
        KnowledgeEntry {
            id: 1,
            topic: "solar superstorms".into(),
            content: "CMEs drive geomagnetic storms.".into(),
            source_url: "sim://encyclopedia.test/wiki/coronal-mass-ejection".into(),
            source_kind: "encyclopedia".into(),
            learned_at: 123,
            importance: 0.8,
            embedding: vec![0.0; 4],
        }
    }

    #[test]
    fn serde_round_trip() {
        let e = entry();
        let json = serde_json::to_string(&e).unwrap();
        let back: KnowledgeEntry = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }

    #[test]
    fn embedding_defaults_when_absent() {
        let json = r#"{"id":2,"topic":"t","content":"c","source_url":"u","source_kind":"news",
                       "learned_at":5,"importance":0.5}"#;
        let e: KnowledgeEntry = serde_json::from_str(json).unwrap();
        assert!(e.embedding.is_empty());
    }

    #[test]
    fn byte_size_scales_with_content() {
        let mut e = entry();
        let small = e.byte_size();
        e.content.push_str(&"x".repeat(1000));
        assert!(e.byte_size() >= small + 1000);
    }
}
