//! The knowledge entry record.

use serde::{Deserialize, Serialize};

/// One memorised piece of knowledge, with full provenance.
///
/// Provenance matters: §4.2 of the paper "carefully monitor\[s\] how Bob
/// draws conclusions … to verify the sources of the knowledge"; the
/// evaluation harness replays that audit over these fields.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnowledgeEntry {
    /// Stable id within the store.
    pub id: u64,
    /// The query or goal that led to this knowledge.
    pub topic: String,
    /// The memorised text (usually a fetched page).
    pub content: String,
    /// Where it came from.
    pub source_url: String,
    /// Source category ("encyclopedia", "news", "forum", …).
    pub source_kind: String,
    /// Virtual time (µs) at memorisation.
    pub learned_at: u64,
    /// Importance in [0, 1], set by the memoriser (e.g. rank in search
    /// results).
    pub importance: f64,
    /// Cached embedding of `content`.
    #[serde(default)]
    pub embedding: Vec<f32>,
}

impl KnowledgeEntry {
    /// Approximate in-memory size in bytes for capacity accounting:
    /// every owned heap buffer (all four strings plus the embedding at
    /// 4 bytes per dimension) on top of the struct itself.
    pub fn byte_size(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.topic.len()
            + self.content.len()
            + self.source_url.len()
            + self.source_kind.len()
            + self.embedding.len() * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> KnowledgeEntry {
        KnowledgeEntry {
            id: 1,
            topic: "solar superstorms".into(),
            content: "CMEs drive geomagnetic storms.".into(),
            source_url: "sim://encyclopedia.test/wiki/coronal-mass-ejection".into(),
            source_kind: "encyclopedia".into(),
            learned_at: 123,
            importance: 0.8,
            embedding: vec![0.0; 4],
        }
    }

    #[test]
    fn serde_round_trip() {
        let e = entry();
        let json = serde_json::to_string(&e).unwrap();
        let back: KnowledgeEntry = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }

    #[test]
    fn embedding_defaults_when_absent() {
        let json = r#"{"id":2,"topic":"t","content":"c","source_url":"u","source_kind":"news",
                       "learned_at":5,"importance":0.5}"#;
        let e: KnowledgeEntry = serde_json::from_str(json).unwrap();
        assert!(e.embedding.is_empty());
    }

    #[test]
    fn byte_size_scales_with_content() {
        let mut e = entry();
        let small = e.byte_size();
        e.content.push_str(&"x".repeat(1000));
        assert!(e.byte_size() >= small + 1000);
    }

    #[test]
    fn byte_size_accounts_for_every_owned_field() {
        // Pin the formula: struct + all four strings + embedding bytes.
        let e = entry();
        let expected = std::mem::size_of::<KnowledgeEntry>()
            + e.topic.len()
            + e.content.len()
            + e.source_url.len()
            + e.source_kind.len()
            + e.embedding.len() * 4;
        assert_eq!(e.byte_size(), expected);

        // Growing any single owned field must grow the accounted size.
        let mut grown = e.clone();
        grown.source_kind.push_str("-with-suffix");
        assert_eq!(grown.byte_size(), e.byte_size() + "-with-suffix".len());
        let mut embedded = e.clone();
        embedded.embedding.extend_from_slice(&[0.0; 8]);
        assert_eq!(embedded.byte_size(), e.byte_size() + 8 * 4);
    }
}
