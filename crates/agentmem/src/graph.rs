//! The weighted claim graph: interned-term claim nodes, co-occurrence
//! edges that strengthen across distinct documents, and per-node
//! provenance.
//!
//! This is the plexus design transplanted onto the agent's memory:
//! knowledge is not a flat list of pages but a graph of *claims*
//! (salient terms), each carrying the provenance of every document
//! that asserted it. Structure buys three things the flat store cannot
//! offer:
//!
//! * **Corroboration** — a claim supported by many *distinct hosts* is
//!   worth more than one a single source repeats loudly. Support is
//!   counted per host, so an adversary cannot manufacture agreement by
//!   publishing the same fake ten times.
//! * **Neighborhood retrieval** — a query activates its matched claim
//!   nodes plus their strongest co-occurrence neighbors, bridging
//!   vocabulary gaps term-coverage retrieval misses.
//! * **Decay** — claims no document has reinforced within a horizon
//!   (and that no second source ever corroborated) can be forgotten,
//!   bounding graph growth over long virtual horizons.
//!
//! Everything is deterministic: node ids are assigned in first-seen
//! order, edges live in an ordered map, and [`ClaimGraph::to_bytes`]
//! produces byte-identical snapshots for identical absorb sequences —
//! at any thread or worker count.

use crate::provenance::SourceRef;
use ira_simllm::lexicon::{Interner, Term};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// Graph construction and retrieval knobs. Deliberately *not* part of
/// the serialized [`crate::StoreConfig`], so enabling the graph never
/// perturbs `knowledge.json` bytes.
#[derive(Debug, Clone, Copy)]
pub struct GraphConfig {
    /// Distinct significant terms absorbed per document (first-seen
    /// order). Bounds per-document edge fan-out quadratically.
    pub max_terms_per_doc: usize,
    /// Strongest edges followed per matched node during neighborhood
    /// expansion.
    pub expansion_per_node: usize,
    /// Weight of the corroboration term in graph-mode retrieval
    /// scoring (added to the legacy relevance/recency/importance
    /// score).
    pub corroboration_weight: f64,
    /// Forget un-corroborated claims not reinforced for this many
    /// virtual µs (0 disables decay, the default).
    pub decay_after_us: u64,
}

impl Default for GraphConfig {
    fn default() -> Self {
        GraphConfig {
            max_terms_per_doc: 24,
            expansion_per_node: 3,
            corroboration_weight: 0.35,
            decay_after_us: 0,
        }
    }
}

/// One claim node: an interned salient term plus full provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct ClaimNode {
    /// Dense id, assigned in first-seen order.
    pub id: u32,
    /// Symbol in the graph's interner (== `id` by construction, kept
    /// separate so readers don't rely on the coincidence).
    pub term: Term,
    /// Total documents that mentioned the claim (historical count;
    /// unaffected by store eviction).
    pub occurrences: u32,
    /// Virtual time of first and latest mention.
    pub first_seen_us: u64,
    pub last_seen_us: u64,
    /// Decayed nodes keep their id (so edges/entry refs stay valid)
    /// but drop provenance and stop contributing to retrieval.
    pub decayed: bool,
    /// One record per live document that asserted the claim.
    pub sources: Vec<SourceRef>,
}

impl ClaimNode {
    /// Source-weighted support: the number of *distinct hosts* that
    /// asserted this claim. Repetition from one host counts once.
    pub fn corroboration(&self) -> usize {
        self.sources
            .iter()
            .map(|s| s.host.as_str())
            .collect::<BTreeSet<_>>()
            .len()
    }
}

/// Aggregate graph statistics (the observability surface).
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct GraphStats {
    pub nodes: u64,
    pub live_nodes: u64,
    pub edges: u64,
    /// Live nodes supported by ≥ 2 distinct hosts.
    pub corroborated_nodes: u64,
    /// Histogram of live-node corroboration: counts for support
    /// 1, 2, 3, and ≥ 4 (always four buckets).
    pub corroboration_histogram: Vec<u64>,
    pub decay_evictions: u64,
}

/// Per-host contribution summary, the basis of source-trust weighting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HostStats {
    /// Live claim nodes this host supports.
    pub claims: usize,
    /// Of those, claims at least one *other* host also supports.
    pub corroborated: usize,
    /// Claims only this host ever asserted.
    pub exclusive: usize,
}

/// Snapshot decode failure (truncation, bad magic, garbage counts).
#[derive(Debug, Clone)]
pub struct GraphDecodeError(pub String);

impl fmt::Display for GraphDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "graph snapshot decode error: {}", self.0)
    }
}

impl std::error::Error for GraphDecodeError {}

/// The claim graph. Owned by the knowledge store and mutated under its
/// write lock, so it needs no interior synchronization of its own.
#[derive(Debug, Default, Clone)]
pub struct ClaimGraph {
    config: GraphConfig,
    interner: Interner,
    nodes: Vec<ClaimNode>,
    by_term: HashMap<Term, u32>,
    /// `(a, b) -> distinct documents where both terms co-occurred`,
    /// with `a < b`.
    edges: BTreeMap<(u32, u32), u32>,
    /// Entry id → the claim nodes its content contributed.
    entry_nodes: BTreeMap<u64, Vec<u32>>,
    decay_evictions: u64,
}

impl ClaimGraph {
    pub fn new(config: GraphConfig) -> Self {
        ClaimGraph {
            config,
            ..ClaimGraph::default()
        }
    }

    pub fn config(&self) -> &GraphConfig {
        &self.config
    }

    /// Replace the (non-serialized) config, e.g. to enable decay.
    pub fn set_config(&mut self, config: GraphConfig) {
        self.config = config;
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    pub fn nodes(&self) -> &[ClaimNode] {
        &self.nodes
    }

    pub fn decay_evictions(&self) -> u64 {
        self.decay_evictions
    }

    /// The text behind a node's term.
    pub fn term_text(&self, node_id: u32) -> Option<&str> {
        self.nodes
            .get(node_id as usize)
            .and_then(|n| self.interner.resolve(n.term))
    }

    /// Look a claim node up by its (normalized) term text.
    pub fn node_by_text(&self, term: &str) -> Option<&ClaimNode> {
        let t = self.interner.get(&term.to_lowercase())?;
        let id = *self.by_term.get(&t)?;
        self.nodes.get(id as usize)
    }

    /// The claim nodes an entry contributed.
    pub fn nodes_of_entry(&self, entry_id: u64) -> &[u32] {
        self.entry_nodes
            .get(&entry_id)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Absorb one memorised document: upsert claim nodes for its
    /// significant terms, append provenance, and strengthen every
    /// pairwise co-occurrence edge by one (this document).
    pub fn absorb(&mut self, entry_id: u64, content: &str, source: SourceRef) {
        let now = source.fetched_at_us;
        let terms = significant_terms(content, self.config.max_terms_per_doc);
        let mut ids: Vec<u32> = Vec::with_capacity(terms.len());
        for term in &terms {
            let t = self.interner.intern(term);
            let id = match self.by_term.get(&t) {
                Some(&id) => {
                    let node = &mut self.nodes[id as usize];
                    node.occurrences += 1;
                    node.first_seen_us = node.first_seen_us.min(now);
                    node.last_seen_us = node.last_seen_us.max(now);
                    // A reinforced claim is no longer forgotten.
                    node.decayed = false;
                    id
                }
                None => {
                    let id = self.nodes.len() as u32;
                    self.nodes.push(ClaimNode {
                        id,
                        term: t,
                        occurrences: 1,
                        first_seen_us: now,
                        last_seen_us: now,
                        decayed: false,
                        sources: Vec::new(),
                    });
                    self.by_term.insert(t, id);
                    id
                }
            };
            self.nodes[id as usize].sources.push(SourceRef {
                entry_id,
                ..source.clone()
            });
            ids.push(id);
        }
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                let key = (ids[i].min(ids[j]), ids[i].max(ids[j]));
                *self.edges.entry(key).or_insert(0) += 1;
            }
        }
        self.entry_nodes.insert(entry_id, ids);
        if self.config.decay_after_us > 0 {
            self.decay(now);
        }
    }

    /// The store evicted an entry: its provenance records disappear,
    /// but the claims themselves (and the co-occurrence evidence)
    /// persist — the plexus rule that knowledge outlives the page it
    /// was read from.
    pub fn remove_entry(&mut self, entry_id: u64) {
        if let Some(ids) = self.entry_nodes.remove(&entry_id) {
            let mut seen = BTreeSet::new();
            for id in ids {
                if seen.insert(id) {
                    self.nodes[id as usize]
                        .sources
                        .retain(|s| s.entry_id != entry_id);
                }
            }
        }
    }

    /// Forget un-corroborated claims not reinforced within the decay
    /// horizon: provenance is dropped, edges are cut, the id survives
    /// as a tombstone. Returns how many nodes were evicted.
    pub fn decay(&mut self, now_us: u64) -> u64 {
        let horizon = self.config.decay_after_us;
        if horizon == 0 {
            return 0;
        }
        let mut evicted: Vec<u32> = Vec::new();
        for node in &mut self.nodes {
            if !node.decayed
                && node.last_seen_us.saturating_add(horizon) < now_us
                && node
                    .sources
                    .iter()
                    .map(|s| s.host.as_str())
                    .collect::<BTreeSet<_>>()
                    .len()
                    < 2
            {
                node.decayed = true;
                node.sources.clear();
                evicted.push(node.id);
            }
        }
        if !evicted.is_empty() {
            let gone: BTreeSet<u32> = evicted.iter().copied().collect();
            self.edges
                .retain(|(a, b), _| !gone.contains(a) && !gone.contains(b));
        }
        self.decay_evictions += evicted.len() as u64;
        evicted.len() as u64
    }

    /// A node's co-occurrence neighbors as `(weight, neighbor id)`,
    /// sorted weight-descending with ties broken on neighbor id —
    /// the same deterministic order [`activate`](Self::activate)
    /// expands in.
    pub fn neighbors(&self, id: u32) -> Vec<(u32, u32)> {
        let mut neighbors: Vec<(u32, u32)> = self
            .edges
            .iter()
            .filter_map(|(&(a, b), &w)| {
                if a == id {
                    Some((w, b))
                } else if b == id {
                    Some((w, a))
                } else {
                    None
                }
            })
            .collect();
        neighbors.sort_by(|x, y| y.0.cmp(&x.0).then(x.1.cmp(&y.1)));
        neighbors
    }

    /// Activate the graph for a query: matched nodes at 1.0, plus each
    /// matched node's strongest co-occurrence neighbors at an
    /// edge-weight-scaled fraction. Deterministic: ties break on node
    /// id.
    pub fn activate(&self, query: &str) -> BTreeMap<u32, f64> {
        let mut activation: BTreeMap<u32, f64> = BTreeMap::new();
        let matched: Vec<u32> = significant_terms(query, self.config.max_terms_per_doc)
            .iter()
            .filter_map(|t| self.interner.get(t))
            .filter_map(|t| self.by_term.get(&t).copied())
            .filter(|&id| !self.nodes[id as usize].decayed)
            .collect();
        for &id in &matched {
            activation.insert(id, 1.0);
        }
        for &id in &matched {
            let neighbors = self.neighbors(id);
            for &(w, n) in neighbors.iter().take(self.config.expansion_per_node) {
                if self.nodes[n as usize].decayed {
                    continue;
                }
                let strength = 0.5 * (w as f64 / (w as f64 + 1.0));
                let slot = activation.entry(n).or_insert(0.0);
                if strength > *slot {
                    *slot = strength;
                }
            }
        }
        activation
    }

    /// Graph support of one entry under an activation map: mean over
    /// the entry's claim nodes of `activation × ln(1 + corroboration)`.
    /// Uncorroborated claims (support 1) contribute `ln 2 ≈ 0.69`; a
    /// claim four hosts agree on contributes `ln 5 ≈ 1.6`.
    pub fn entry_support(&self, entry_id: u64, activation: &BTreeMap<u32, f64>) -> f64 {
        let Some(ids) = self.entry_nodes.get(&entry_id) else {
            return 0.0;
        };
        if ids.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for &id in ids {
            let node = &self.nodes[id as usize];
            if node.decayed {
                continue;
            }
            if let Some(act) = activation.get(&id) {
                total += act * (1.0 + node.corroboration() as f64).ln();
            }
        }
        total / ids.len() as f64
    }

    /// Aggregate statistics over live nodes.
    pub fn stats(&self) -> GraphStats {
        let mut stats = GraphStats {
            nodes: self.nodes.len() as u64,
            edges: self.edges.len() as u64,
            decay_evictions: self.decay_evictions,
            corroboration_histogram: vec![0; 4],
            ..GraphStats::default()
        };
        for node in &self.nodes {
            if node.decayed {
                continue;
            }
            stats.live_nodes += 1;
            let support = node.corroboration();
            if support >= 2 {
                stats.corroborated_nodes += 1;
            }
            let bucket = support.clamp(1, 4) - 1;
            stats.corroboration_histogram[bucket] += 1;
        }
        stats
    }

    /// Per-host contribution summary over live nodes.
    pub fn host_stats(&self) -> BTreeMap<String, HostStats> {
        let mut hosts: BTreeMap<String, HostStats> = BTreeMap::new();
        for node in &self.nodes {
            if node.decayed || node.sources.is_empty() {
                continue;
            }
            let node_hosts: BTreeSet<&str> = node.sources.iter().map(|s| s.host.as_str()).collect();
            let corroborated = node_hosts.len() >= 2;
            for host in node_hosts {
                let slot = hosts.entry(host.to_string()).or_default();
                slot.claims += 1;
                if corroborated {
                    slot.corroborated += 1;
                } else {
                    slot.exclusive += 1;
                }
            }
        }
        hosts
    }

    /// Serialize to the compact binary snapshot format (see module
    /// docs of [`crate::persist`] for the checksum envelope it travels
    /// in). Identical graphs produce identical bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4096);
        out.extend_from_slice(MAGIC);
        put_u32(&mut out, self.nodes.len() as u32);
        for node in &self.nodes {
            put_str(&mut out, self.interner.resolve(node.term).unwrap_or(""));
            put_u32(&mut out, node.occurrences);
            put_u64(&mut out, node.first_seen_us);
            put_u64(&mut out, node.last_seen_us);
            out.push(node.decayed as u8);
            put_u32(&mut out, node.sources.len() as u32);
            for s in &node.sources {
                put_str(&mut out, &s.host);
                put_str(&mut out, &s.path);
                put_u64(&mut out, s.fetched_at_us);
                put_u32(&mut out, s.session);
                put_u64(&mut out, s.entry_id);
            }
        }
        put_u32(&mut out, self.edges.len() as u32);
        for (&(a, b), &w) in &self.edges {
            put_u32(&mut out, a);
            put_u32(&mut out, b);
            put_u32(&mut out, w);
        }
        put_u32(&mut out, self.entry_nodes.len() as u32);
        for (&entry_id, ids) in &self.entry_nodes {
            put_u64(&mut out, entry_id);
            put_u32(&mut out, ids.len() as u32);
            for &id in ids {
                put_u32(&mut out, id);
            }
        }
        put_u64(&mut out, self.decay_evictions);
        out
    }

    /// Decode a snapshot produced by [`ClaimGraph::to_bytes`]. The
    /// config is *not* serialized (it is runtime tuning, not state);
    /// the caller re-applies its own.
    pub fn from_bytes(bytes: &[u8], config: GraphConfig) -> Result<Self, GraphDecodeError> {
        let mut r = Reader { bytes, pos: 0 };
        let magic = r.take(MAGIC.len())?;
        if magic != MAGIC {
            return Err(GraphDecodeError("bad magic".into()));
        }
        let mut graph = ClaimGraph::new(config);
        let node_count = r.u32()? as usize;
        for id in 0..node_count {
            let term_text = r.str()?;
            let term = graph.interner.intern(&term_text);
            let occurrences = r.u32()?;
            let first_seen_us = r.u64()?;
            let last_seen_us = r.u64()?;
            let decayed = r.u8()? != 0;
            let source_count = r.u32()? as usize;
            let mut sources = Vec::with_capacity(source_count.min(1024));
            for _ in 0..source_count {
                sources.push(SourceRef {
                    host: r.str()?,
                    path: r.str()?,
                    fetched_at_us: r.u64()?,
                    session: r.u32()?,
                    entry_id: r.u64()?,
                });
            }
            let id = id as u32;
            graph.by_term.insert(term, id);
            graph.nodes.push(ClaimNode {
                id,
                term,
                occurrences,
                first_seen_us,
                last_seen_us,
                decayed,
                sources,
            });
        }
        let edge_count = r.u32()? as usize;
        for _ in 0..edge_count {
            let a = r.u32()?;
            let b = r.u32()?;
            let w = r.u32()?;
            if a as usize >= node_count || b as usize >= node_count {
                return Err(GraphDecodeError(format!("edge ({a},{b}) out of range")));
            }
            graph.edges.insert((a, b), w);
        }
        let entry_count = r.u32()? as usize;
        for _ in 0..entry_count {
            let entry_id = r.u64()?;
            let n = r.u32()? as usize;
            let mut ids = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let id = r.u32()?;
                if id as usize >= node_count {
                    return Err(GraphDecodeError(format!("entry node {id} out of range")));
                }
                ids.push(id);
            }
            graph.entry_nodes.insert(entry_id, ids);
        }
        graph.decay_evictions = r.u64()?;
        if r.pos != bytes.len() {
            return Err(GraphDecodeError(format!(
                "{} trailing bytes",
                bytes.len() - r.pos
            )));
        }
        Ok(graph)
    }
}

const MAGIC: &[u8] = b"IRAGRPH1";

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], GraphDecodeError> {
        if self.pos + n > self.bytes.len() {
            return Err(GraphDecodeError(format!(
                "truncated at byte {} (wanted {n} more)",
                self.pos
            )));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, GraphDecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, GraphDecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, GraphDecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, GraphDecodeError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| GraphDecodeError(format!("invalid utf-8 at byte {}", self.pos)))
    }
}

/// Words that carry no claim content; kept tiny and fixed so term
/// extraction is stable forever.
const STOPWORDS: &[&str] = &[
    "about", "above", "after", "again", "along", "also", "among", "been", "being", "between",
    "both", "could", "does", "down", "each", "ever", "every", "from", "gets", "have", "having",
    "into", "itself", "just", "like", "made", "make", "many", "more", "most", "much", "must",
    "near", "nearly", "only", "onto", "other", "over", "same", "should", "show", "shows", "side",
    "some", "such", "than", "that", "their", "them", "then", "there", "these", "they", "this",
    "those", "through", "under", "upon", "very", "well", "were", "what", "when", "where", "which",
    "while", "whose", "will", "with", "within", "would", "your",
];

/// Extract the distinct significant terms of a text: lowercased
/// alphanumeric words of length ≥ 4 that are not stopwords, in
/// first-seen order, capped at `max`. Pure and deterministic — the
/// vocabulary layer of every graph operation.
pub fn significant_terms(text: &str, max: usize) -> Vec<String> {
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut terms = Vec::new();
    for raw in text.split(|c: char| !c.is_ascii_alphanumeric()) {
        if terms.len() >= max {
            break;
        }
        if raw.len() < 4 {
            continue;
        }
        let word = raw.to_lowercase();
        if !word.chars().any(|c| c.is_ascii_alphabetic()) {
            continue;
        }
        if STOPWORDS.contains(&word.as_str()) {
            continue;
        }
        if seen.insert(word.clone()) {
            terms.push(word);
        }
    }
    terms
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(host: &str, path: &str, t: u64) -> SourceRef {
        SourceRef {
            host: host.to_string(),
            path: path.to_string(),
            fetched_at_us: t,
            session: 0,
            entry_id: 0,
        }
    }

    fn graph() -> ClaimGraph {
        ClaimGraph::new(GraphConfig::default())
    }

    #[test]
    fn significant_terms_are_stable_and_filtered() {
        let terms = significant_terms(
            "The EllaLink submarine cable connects Brazil to Portugal. EllaLink again!",
            8,
        );
        assert_eq!(
            terms,
            vec![
                "ellalink",
                "submarine",
                "cable",
                "connects",
                "brazil",
                "portugal"
            ]
        );
        assert_eq!(
            significant_terms("a of to in 123 45.6", 8),
            Vec::<String>::new()
        );
        assert_eq!(significant_terms("alpha beta gamma delta", 2).len(), 2);
    }

    #[test]
    fn absorb_builds_nodes_edges_and_provenance() {
        let mut g = graph();
        g.absorb(0, "EllaLink cable connects Brazil", src("a.test", "/1", 10));
        g.absorb(
            1,
            "Grace Hopper cable connects America",
            src("b.test", "/2", 20),
        );
        assert!(g.node_count() >= 6);
        let cable = g.node_by_text("cable").unwrap();
        assert_eq!(cable.occurrences, 2);
        assert_eq!(cable.corroboration(), 2, "two distinct hosts");
        assert_eq!(cable.first_seen_us, 10);
        assert_eq!(cable.last_seen_us, 20);
        let ellalink = g.node_by_text("ellalink").unwrap();
        assert_eq!(ellalink.corroboration(), 1);
        // cable—connects co-occurred in both documents.
        let (a, b) = (cable.id.min(g.node_by_text("connects").unwrap().id), {
            cable.id.max(g.node_by_text("connects").unwrap().id)
        });
        assert_eq!(g.edges.get(&(a, b)), Some(&2));
    }

    #[test]
    fn same_host_repetition_does_not_corroborate() {
        let mut g = graph();
        for i in 0..5 {
            g.absorb(
                i,
                "shady bulletin inflates apex figures",
                src("adversary.test", &format!("/p{i}"), i),
            );
        }
        let node = g.node_by_text("bulletin").unwrap();
        assert_eq!(node.occurrences, 5);
        assert_eq!(node.corroboration(), 1, "one host, however loud");
    }

    #[test]
    fn activation_expands_to_strong_neighbors() {
        let mut g = graph();
        g.absorb(
            0,
            "geomagnetic latitude threatens cable",
            src("a.test", "/1", 1),
        );
        g.absorb(
            1,
            "geomagnetic latitude threatens cable",
            src("b.test", "/2", 2),
        );
        g.absorb(
            2,
            "unrelated gardening trivia roses",
            src("c.test", "/3", 3),
        );
        let activation = g.activate("geomagnetic");
        let matched = g.node_by_text("geomagnetic").unwrap().id;
        assert_eq!(activation.get(&matched), Some(&1.0));
        let neighbor = g.node_by_text("latitude").unwrap().id;
        let strength = activation.get(&neighbor).copied().unwrap();
        assert!(strength > 0.0 && strength < 1.0, "neighbor at {strength}");
        let roses = g.node_by_text("roses").unwrap().id;
        assert!(!activation.contains_key(&roses));
    }

    #[test]
    fn entry_support_prefers_corroborated_content() {
        let mut g = graph();
        // The honest claim appears on two hosts; the fake on one.
        g.absorb(
            0,
            "cable apex latitude degrees",
            src("honest-a.test", "/1", 1),
        );
        g.absorb(
            1,
            "cable apex latitude degrees",
            src("honest-b.test", "/2", 2),
        );
        g.absorb(
            2,
            "cable apex latitude degrees bulletin exclusive",
            src("adversary.test", "/3", 3),
        );
        let activation = g.activate("cable apex latitude");
        let honest = g.entry_support(0, &activation);
        let poison = g.entry_support(2, &activation);
        assert!(
            honest > poison,
            "corroborated entry must outscore the stuffed one ({honest} vs {poison})"
        );
    }

    #[test]
    fn remove_entry_drops_provenance_but_keeps_claims() {
        let mut g = graph();
        g.absorb(7, "ellalink cable brazil", src("a.test", "/1", 1));
        g.remove_entry(7);
        let node = g.node_by_text("ellalink").unwrap();
        assert!(node.sources.is_empty());
        assert_eq!(node.occurrences, 1, "historical count survives");
        assert!(g.nodes_of_entry(7).is_empty());
    }

    #[test]
    fn decay_forgets_stale_uncorroborated_claims() {
        let mut g = ClaimGraph::new(GraphConfig {
            decay_after_us: 100,
            ..GraphConfig::default()
        });
        g.absorb(0, "transient rumor claims nonsense", src("a.test", "/1", 0));
        g.absorb(1, "durable fact cable latitude", src("a.test", "/2", 0));
        g.absorb(2, "durable fact cable latitude", src("b.test", "/3", 50));
        let evicted = g.decay(500);
        assert!(evicted >= 1);
        assert!(g.node_by_text("rumor").unwrap().decayed);
        assert!(
            !g.node_by_text("durable").unwrap().decayed,
            "corroborated claims survive"
        );
        assert_eq!(g.decay_evictions(), evicted);
        let stats = g.stats();
        assert_eq!(stats.decay_evictions, evicted);
        assert!(stats.live_nodes < stats.nodes);
        // Re-mention resurrects the claim.
        g.absorb(3, "transient rumor resurfaces", src("c.test", "/4", 600));
        assert!(!g.node_by_text("rumor").unwrap().decayed);
    }

    #[test]
    fn stats_histogram_counts_support_levels() {
        let mut g = graph();
        g.absorb(0, "alpha shared claim", src("a.test", "/1", 1));
        g.absorb(1, "alpha shared claim", src("b.test", "/2", 2));
        g.absorb(2, "lonely solitary statement", src("a.test", "/3", 3));
        let stats = g.stats();
        assert_eq!(stats.nodes, stats.live_nodes);
        assert!(stats.corroborated_nodes >= 2);
        assert!(stats.corroboration_histogram[0] >= 2, "support-1 bucket");
        assert!(stats.corroboration_histogram[1] >= 2, "support-2 bucket");
    }

    #[test]
    fn host_stats_separate_corroborated_from_exclusive() {
        let mut g = graph();
        g.absorb(
            0,
            "shared vocabulary cable latitude",
            src("a.test", "/1", 1),
        );
        g.absorb(
            1,
            "shared vocabulary cable latitude",
            src("b.test", "/2", 2),
        );
        g.absorb(
            2,
            "exclusive bulletin nonsense spree",
            src("evil.test", "/3", 3),
        );
        let hosts = g.host_stats();
        assert_eq!(hosts["a.test"].corroborated, hosts["a.test"].claims);
        assert_eq!(hosts["evil.test"].corroborated, 0);
        assert_eq!(hosts["evil.test"].exclusive, hosts["evil.test"].claims);
    }

    #[test]
    fn snapshot_round_trips_byte_identically() {
        let mut g = graph();
        g.absorb(
            0,
            "EllaLink cable connects Brazil to Portugal",
            src("a.test", "/1", 10),
        );
        g.absorb(
            1,
            "Grace Hopper cable connects New York to Bude",
            src("b.test", "/2", 20),
        );
        g.remove_entry(0);
        let bytes = g.to_bytes();
        let back = ClaimGraph::from_bytes(&bytes, GraphConfig::default()).unwrap();
        assert_eq!(
            back.to_bytes(),
            bytes,
            "decode/encode must be a fixed point"
        );
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.edge_count(), g.edge_count());
        assert_eq!(
            back.node_by_text("cable").unwrap().sources,
            g.node_by_text("cable").unwrap().sources
        );
    }

    #[test]
    fn identical_absorb_sequences_serialize_identically() {
        let build = || {
            let mut g = graph();
            g.absorb(0, "alpha beta gamma", src("a.test", "/1", 1));
            g.absorb(1, "beta gamma delta", src("b.test", "/2", 2));
            g.to_bytes()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn truncated_and_corrupt_snapshots_are_errors() {
        let mut g = graph();
        g.absorb(0, "alpha beta gamma", src("a.test", "/1", 1));
        let bytes = g.to_bytes();
        assert!(ClaimGraph::from_bytes(&bytes[..bytes.len() / 2], GraphConfig::default()).is_err());
        assert!(ClaimGraph::from_bytes(b"NOTAGRPH", GraphConfig::default()).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(ClaimGraph::from_bytes(&trailing, GraphConfig::default()).is_err());
    }
}
