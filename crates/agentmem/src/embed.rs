//! Feature-hashed text embeddings.
//!
//! Each text maps to a fixed-dimension vector: tokens are hashed into
//! buckets (FNV-1a), counted, and the vector L2-normalised. Cosine
//! similarity between such vectors approximates lexical overlap — a
//! deterministic, dependency-free stand-in for the sentence-embedding
//! model a production agent would call. Light suffix stripping keeps
//! "cables"/"cable" in the same bucket.

/// Embedding dimensionality. 256 buckets keeps collisions rare for
/// document-sized texts while staying cache-friendly.
pub const EMBED_DIM: usize = 256;

/// FNV-1a 64-bit hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Tokenize + lightly stem, mirroring the index-side treatment enough
/// for retrieval purposes.
fn tokens(text: &str) -> impl Iterator<Item = String> + '_ {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|w| w.len() >= 2)
        .flat_map(|w| {
            let w = w.to_lowercase();
            // Compound normalisation: "datacenter(s)" and "data center"
            // must land in the same buckets.
            if w == "datacenter" || w == "datacenters" {
                return vec!["data".to_string(), "center".to_string()];
            }
            for suffix in ["ing", "ed", "ly", "s"] {
                if let Some(stripped) = w.strip_suffix(suffix) {
                    if stripped.len() >= 3 {
                        return vec![stripped.to_string()];
                    }
                }
            }
            vec![w]
        })
}

/// Embed `text` into a unit-norm vector.
pub fn embed(text: &str) -> Vec<f32> {
    let mut v = vec![0.0f32; EMBED_DIM];
    for tok in tokens(text) {
        let bucket = (fnv1a(tok.as_bytes()) % EMBED_DIM as u64) as usize;
        v[bucket] += 1.0;
    }
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in &mut v {
            *x /= norm;
        }
    }
    v
}

/// Cosine similarity between two embeddings (assumed same dim).
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embeddings_are_unit_norm() {
        let v = embed("submarine cable repeaters and latitude");
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_text_is_zero_vector() {
        let v = embed("");
        assert!(v.iter().all(|&x| x == 0.0));
        assert_eq!(cosine(&v, &v), 0.0);
    }

    #[test]
    fn identical_texts_have_cosine_one() {
        let a = embed("The EllaLink submarine cable connects Fortaleza to Sines.");
        assert!((cosine(&a, &a) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn related_texts_beat_unrelated_texts() {
        let cable = embed("The EllaLink submarine cable connects Brazil to Portugal.");
        let cable2 = embed("EllaLink is a submarine cable linking Brazil and Europe.");
        let pasta = embed("Salt the pasta water until it tastes like the sea.");
        assert!(cosine(&cable, &cable2) > cosine(&cable, &pasta) + 0.2);
    }

    #[test]
    fn stemming_aligns_variants() {
        let a = embed("cable repeater");
        let b = embed("cables repeaters");
        assert!(cosine(&a, &b) > 0.99);
    }

    #[test]
    fn embedding_is_deterministic() {
        assert_eq!(embed("solar superstorm"), embed("solar superstorm"));
    }
}
