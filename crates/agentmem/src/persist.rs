//! Crash-safe JSON persistence.
//!
//! `knowledge.json` is the agent's only durable state, so losing it to
//! a crash mid-write (or to a corrupted disk block) silently destroys
//! everything the agent learned. This module makes every save atomic
//! and every load corruption-tolerant:
//!
//! * **Atomic write** — the payload is written to a sibling temp file,
//!   fsynced, and renamed over the target, so readers only ever see a
//!   complete old file or a complete new file.
//! * **Checksum envelope** — the payload is wrapped in
//!   `{"checksum": "<fnv64 hex>", "body": <payload>}` so truncation and
//!   bit-rot are *detected* at load, not discovered as subtly wrong
//!   behaviour later.
//! * **`.bak` rotation** — the previous good file is kept as `<path>.bak`
//!   and loads fall back to it when the primary fails verification.
//!
//! Files written before this module existed (plain payloads with no
//! envelope) still load: a top-level object without the envelope keys is
//! treated as the payload itself.

use std::fs::File;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// FNV-1a 64-bit hash — small, dependency-free, and plenty for
/// detecting truncation and corruption (this is an integrity check,
/// not a cryptographic one).
pub fn fnv64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(suffix);
    path.with_file_name(name)
}

/// The `<path>.bak` sibling used for rotation and recovery.
pub fn backup_path(path: &Path) -> PathBuf {
    sibling(path, ".bak")
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Wrap `payload` (which must be valid JSON) in a checksum envelope.
fn envelope(payload: &str) -> io::Result<String> {
    let body = serde_json::parse(payload)
        .map_err(|e| invalid(format!("payload is not valid json: {e}")))?;
    let canonical = serde_json::to_string(&body)
        .map_err(|e| invalid(format!("payload does not re-serialize: {e}")))?;
    let checksum = format!("{:016x}", fnv64(canonical.as_bytes()));
    let mut obj = std::collections::BTreeMap::new();
    obj.insert("checksum".to_string(), serde_json::Value::String(checksum));
    obj.insert("body".to_string(), body);
    serde_json::to_string_pretty(&serde_json::Value::Object(obj))
        .map_err(|e| invalid(format!("envelope does not serialize: {e}")))
}

/// Atomically persist `payload` (a JSON document) to `path`.
///
/// Write order: temp file + fsync, rotate the current file to
/// `<path>.bak`, rename the temp file into place. A crash at any point
/// leaves either the old file or the new file intact on disk.
pub fn save_atomic(path: &Path, payload: &str) -> io::Result<()> {
    let wrapped = envelope(payload)?;
    let tmp = sibling(path, ".tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(wrapped.as_bytes())?;
        f.sync_all()?;
    }
    if path.exists() {
        std::fs::rename(path, backup_path(path))?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Read and verify one file, returning the payload JSON.
fn read_verified(path: &Path) -> io::Result<String> {
    let mut raw = String::new();
    File::open(path)?.read_to_string(&mut raw)?;
    let value = serde_json::parse(&raw)
        .map_err(|e| invalid(format!("{}: not valid json: {e}", path.display())))?;
    let serde_json::Value::Object(mut obj) = value else {
        // Non-object JSON can't be an envelope; treat as a legacy payload.
        return Ok(raw);
    };
    let (Some(serde_json::Value::String(expected)), Some(_)) =
        (obj.get("checksum"), obj.get("body"))
    else {
        // Legacy plain file written before checksum envelopes existed.
        return Ok(raw);
    };
    let expected = expected.clone();
    let body = obj.remove("body").expect("body key checked above");
    let canonical = serde_json::to_string(&body).map_err(|e| {
        invalid(format!(
            "{}: body does not re-serialize: {e}",
            path.display()
        ))
    })?;
    let actual = format!("{:016x}", fnv64(canonical.as_bytes()));
    if actual != expected {
        return Err(invalid(format!(
            "{}: checksum mismatch (stored {expected}, computed {actual})",
            path.display()
        )));
    }
    Ok(canonical)
}

/// Load the payload from `path`, falling back to `<path>.bak` when the
/// primary is missing, truncated, or fails its checksum.
///
/// Returns the payload JSON as a string. The error from the *primary*
/// file is preserved when the backup also fails, since that is the more
/// useful diagnosis.
pub fn load_with_backup(path: &Path) -> io::Result<String> {
    match read_verified(path) {
        Ok(payload) => Ok(payload),
        Err(primary_err) => match read_verified(&backup_path(path)) {
            Ok(payload) => Ok(payload),
            Err(_) => Err(primary_err),
        },
    }
}

/// Magic prefix of the binary checksum envelope (see
/// [`save_atomic_bytes`]). Versioned: bump the trailing digit on any
/// layout change.
const BIN_MAGIC: &[u8; 8] = b"IRABINE1";

/// Atomically persist a binary `payload` to `path` in a checksummed
/// envelope — the binary twin of [`save_atomic`].
///
/// Layout: `[magic 8B][payload_len u64 LE][fnv64(payload) u64 LE][payload]`.
/// Same write discipline as the JSON path: temp file + fsync, rotate
/// the current file to `<path>.bak`, rename into place.
pub fn save_atomic_bytes(path: &Path, payload: &[u8]) -> io::Result<()> {
    let mut wrapped = Vec::with_capacity(payload.len() + 24);
    wrapped.extend_from_slice(BIN_MAGIC);
    wrapped.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    wrapped.extend_from_slice(&fnv64(payload).to_le_bytes());
    wrapped.extend_from_slice(payload);
    let tmp = sibling(path, ".tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&wrapped)?;
        f.sync_all()?;
    }
    if path.exists() {
        std::fs::rename(path, backup_path(path))?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Read and verify one binary envelope, returning the payload bytes.
fn read_verified_bytes(path: &Path) -> io::Result<Vec<u8>> {
    let mut raw = Vec::new();
    File::open(path)?.read_to_end(&mut raw)?;
    if raw.len() < 24 || &raw[..8] != BIN_MAGIC {
        return Err(invalid(format!(
            "{}: not a binary envelope (bad or truncated header)",
            path.display()
        )));
    }
    let len = u64::from_le_bytes(raw[8..16].try_into().unwrap()) as usize;
    let expected = u64::from_le_bytes(raw[16..24].try_into().unwrap());
    let payload = &raw[24..];
    if payload.len() != len {
        return Err(invalid(format!(
            "{}: payload length mismatch (header says {len}, file has {})",
            path.display(),
            payload.len()
        )));
    }
    let actual = fnv64(payload);
    if actual != expected {
        return Err(invalid(format!(
            "{}: checksum mismatch (stored {expected:016x}, computed {actual:016x})",
            path.display()
        )));
    }
    Ok(payload.to_vec())
}

/// Load binary payload from `path`, falling back to `<path>.bak` when
/// the primary is missing, truncated, or fails its checksum — the
/// binary twin of [`load_with_backup`]. The primary's error is
/// preserved when both fail.
pub fn load_bytes_with_backup(path: &Path) -> io::Result<Vec<u8>> {
    match read_verified_bytes(path) {
        Ok(payload) => Ok(payload),
        Err(primary_err) => match read_verified_bytes(&backup_path(path)) {
            Ok(payload) => Ok(payload),
            Err(_) => Err(primary_err),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("ira-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(backup_path(&path)).ok();
        path
    }

    #[test]
    fn fnv64_matches_known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn round_trip_preserves_the_payload() {
        let path = temp_path("round.json");
        save_atomic(&path, r#"{"answer": 42, "who": "agent"}"#).unwrap();
        let back = load_with_backup(&path).unwrap();
        let value = serde_json::parse(&back).unwrap();
        assert_eq!(serde_json::to_string(&value).unwrap(), back);
        assert!(back.contains("42"));
    }

    #[test]
    fn saved_files_carry_a_verifiable_checksum() {
        let path = temp_path("sum.json");
        save_atomic(&path, r#"{"k": "v"}"#).unwrap();
        let raw = std::fs::read_to_string(&path).unwrap();
        assert!(raw.contains("\"checksum\""));
        assert!(raw.contains("\"body\""));
    }

    #[test]
    fn rewrite_rotates_the_previous_file_to_bak() {
        let path = temp_path("rot.json");
        save_atomic(&path, r#"{"version": 1}"#).unwrap();
        save_atomic(&path, r#"{"version": 2}"#).unwrap();
        assert!(load_with_backup(&path).unwrap().contains('2'));
        let bak = read_verified(&backup_path(&path)).unwrap();
        assert!(
            bak.contains('1'),
            "previous generation must survive as .bak"
        );
    }

    #[test]
    fn truncated_primary_falls_back_to_bak() {
        let path = temp_path("trunc.json");
        save_atomic(&path, r#"{"generation": 1}"#).unwrap();
        save_atomic(&path, r#"{"generation": 2}"#).unwrap();
        // Simulate a crash mid-write / disk corruption: cut the file.
        let raw = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() / 2]).unwrap();
        let recovered = load_with_backup(&path).unwrap();
        assert!(
            recovered.contains('1'),
            "must recover generation 1 from .bak"
        );
    }

    #[test]
    fn bitflip_fails_the_checksum_and_falls_back() {
        let path = temp_path("flip.json");
        save_atomic(&path, r#"{"value": "aaaa"}"#).unwrap();
        save_atomic(&path, r#"{"value": "bbbb"}"#).unwrap();
        // Corrupt the body while keeping the file syntactically valid.
        let raw = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, raw.replace("bbbb", "cccc")).unwrap();
        let recovered = load_with_backup(&path).unwrap();
        assert!(
            recovered.contains("aaaa"),
            "checksum mismatch must trigger fallback"
        );
    }

    #[test]
    fn missing_file_and_backup_is_an_error() {
        let path = temp_path("absent.json");
        assert!(load_with_backup(&path).is_err());
    }

    #[test]
    fn legacy_plain_files_still_load() {
        let path = temp_path("legacy.json");
        std::fs::write(&path, r#"{"old": "format"}"#).unwrap();
        let payload = load_with_backup(&path).unwrap();
        assert!(payload.contains("old"));
    }

    #[test]
    fn binary_round_trip_preserves_bytes() {
        let path = temp_path("bin.graph");
        let payload: Vec<u8> = (0..=255u8).collect();
        save_atomic_bytes(&path, &payload).unwrap();
        assert_eq!(load_bytes_with_backup(&path).unwrap(), payload);
    }

    #[test]
    fn binary_rewrite_rotates_to_bak_and_truncation_falls_back() {
        let path = temp_path("binrot.graph");
        save_atomic_bytes(&path, b"generation-one").unwrap();
        save_atomic_bytes(&path, b"generation-two").unwrap();
        assert_eq!(load_bytes_with_backup(&path).unwrap(), b"generation-two");
        // Truncate the primary, as a crash mid-write would.
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() / 2]).unwrap();
        assert_eq!(
            load_bytes_with_backup(&path).unwrap(),
            b"generation-one",
            "must recover the previous generation from .bak"
        );
    }

    #[test]
    fn binary_bitflip_fails_checksum_and_falls_back() {
        let path = temp_path("binflip.graph");
        save_atomic_bytes(&path, b"aaaa-payload").unwrap();
        save_atomic_bytes(&path, b"bbbb-payload").unwrap();
        let mut raw = std::fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0xff;
        std::fs::write(&path, &raw).unwrap();
        assert_eq!(load_bytes_with_backup(&path).unwrap(), b"aaaa-payload");
    }

    #[test]
    fn binary_bad_magic_and_missing_file_are_errors() {
        let path = temp_path("binmagic.graph");
        std::fs::write(&path, b"NOTMAGIC-and-some-payload-bytes!").unwrap();
        assert!(load_bytes_with_backup(&path).is_err());
        let absent = temp_path("binabsent.graph");
        assert!(load_bytes_with_backup(&absent).is_err());
    }
}
