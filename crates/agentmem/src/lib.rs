//! # ira-agentmem
//!
//! The agent's long-term knowledge memory — the `knowledge.json` file of
//! the HotNets '23 architecture (§3, component 3). Retrieved web content
//! is stored as scored, embedded entries; when the agent reasons, the
//! most relevant entries are loaded into the model's prompt.
//!
//! * [`mod@embed`] — feature-hashed bag-of-words embeddings with cosine
//!   similarity (a deterministic, dependency-free stand-in for a
//!   sentence-embedding model).
//! * [`entry`] — the knowledge entry record, with provenance (source
//!   URL and kind) so the evaluation can audit where conclusions came
//!   from, as §4.2 of the paper does.
//! * [`store`] — the store: deduplication, generative-agents-style
//!   retrieval scoring (relevance + recency + importance), capacity
//!   eviction, and `knowledge.json` (de)serialization.
//! * [`persist`] — crash-safe persistence shared by everything that
//!   writes JSON state: atomic temp-file + fsync + rename writes,
//!   checksum envelopes, and `.bak` rotation with fallback on load.

pub mod embed;
pub mod entry;
pub mod persist;
pub mod store;

pub use embed::{cosine, embed, EMBED_DIM};
pub use entry::KnowledgeEntry;
pub use persist::{load_with_backup, save_atomic};
pub use store::{KnowledgeStore, RetrievalWeights, StoreConfig};
