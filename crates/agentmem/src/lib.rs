//! # ira-agentmem
//!
//! The agent's long-term knowledge memory — the `knowledge.json` file of
//! the HotNets '23 architecture (§3, component 3). Retrieved web content
//! is stored as scored, embedded entries; when the agent reasons, the
//! most relevant entries are loaded into the model's prompt.
//!
//! * [`mod@embed`] — feature-hashed bag-of-words embeddings with cosine
//!   similarity (a deterministic, dependency-free stand-in for a
//!   sentence-embedding model).
//! * [`entry`] — the knowledge entry record, with provenance (source
//!   URL and kind) so the evaluation can audit where conclusions came
//!   from, as §4.2 of the paper does.
//! * [`store`] — the store: deduplication, generative-agents-style
//!   retrieval scoring (relevance + recency + importance), capacity
//!   eviction, and `knowledge.json` (de)serialization.
//! * [`persist`] — crash-safe persistence shared by everything that
//!   writes JSON state: atomic temp-file + fsync + rename writes,
//!   checksum envelopes (JSON and binary), and `.bak` rotation with
//!   fallback on load.
//! * [`graph`] — the weighted claim graph: interned-term claim nodes
//!   with per-source provenance, co-occurrence edges that strengthen
//!   across distinct documents, corroboration-weighted retrieval
//!   support, and a compact checksummed binary snapshot.
//! * [`provenance`] — [`provenance::SourceRef`] records (host, path,
//!   fetch virtual-time, absorbing session) attached to every claim.

pub mod embed;
pub mod entry;
pub mod graph;
pub mod persist;
pub mod provenance;
pub mod store;

pub use embed::{cosine, embed, EMBED_DIM};
pub use entry::KnowledgeEntry;
pub use graph::{ClaimGraph, ClaimNode, GraphConfig, GraphStats, HostStats};
pub use persist::{load_bytes_with_backup, load_with_backup, save_atomic, save_atomic_bytes};
pub use provenance::{split_url, SourceRef};
pub use store::{KnowledgeStore, RetrievalWeights, StoreConfig};
