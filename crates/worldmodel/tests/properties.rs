//! Property-based tests for the world model's geometry and physics.

use ira_worldmodel::cables::SubmarineCable;
use ira_worldmodel::geo::{GeoPoint, Place, Region, EARTH_RADIUS_KM};
use ira_worldmodel::geomag::{geomagnetic_latitude, LatitudeBand};
use ira_worldmodel::power::latitude_weight;
use ira_worldmodel::storm::{StormModel, StormScenario};
use proptest::prelude::*;

fn point_strategy() -> impl Strategy<Value = GeoPoint> {
    (-85.0f64..85.0, -179.0f64..179.0).prop_map(|(lat, lon)| GeoPoint::new(lat, lon))
}

proptest! {
    #[test]
    fn distance_is_symmetric_and_bounded(a in point_strategy(), b in point_strategy()) {
        let d_ab = a.distance_km(&b);
        let d_ba = b.distance_km(&a);
        prop_assert!((d_ab - d_ba).abs() < 1e-6);
        prop_assert!(d_ab >= 0.0);
        // No two points are farther apart than half the circumference.
        prop_assert!(d_ab <= std::f64::consts::PI * EARTH_RADIUS_KM + 1.0);
    }

    #[test]
    fn triangle_inequality_holds(
        a in point_strategy(),
        b in point_strategy(),
        c in point_strategy(),
    ) {
        let direct = a.distance_km(&c);
        let via_b = a.distance_km(&b) + b.distance_km(&c);
        prop_assert!(direct <= via_b + 1e-6);
    }

    #[test]
    fn intermediate_points_lie_on_the_path(
        a in point_strategy(),
        b in point_strategy(),
        t in 0.0f64..=1.0,
    ) {
        prop_assume!(a.distance_km(&b) > 1.0);
        let m = a.intermediate(&b, t);
        let total = a.distance_km(&b);
        let via_m = a.distance_km(&m) + m.distance_km(&b);
        // A point on the great circle splits the distance exactly.
        prop_assert!((via_m - total).abs() / total < 1e-3,
            "via {via_m} vs total {total}");
        // And the split matches t.
        prop_assert!((a.distance_km(&m) - t * total).abs() / total < 1e-3);
    }

    #[test]
    fn geomagnetic_latitude_is_bounded(p in point_strategy()) {
        let gm = geomagnetic_latitude(&p);
        prop_assert!((-90.0..=90.0).contains(&gm));
    }

    #[test]
    fn latitude_weight_is_monotone_nondecreasing(a in 0.0f64..90.0, b in 0.0f64..90.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(latitude_weight(lo) <= latitude_weight(hi) + 1e-12);
        prop_assert!((0.0..=1.0).contains(&latitude_weight(a)));
    }

    #[test]
    fn latitude_bands_partition(a in 0.0f64..90.0) {
        // Exactly one band per value, stable at boundaries.
        let band = LatitudeBand::of(a);
        match band {
            LatitudeBand::Low => prop_assert!(a < 30.0),
            LatitudeBand::Mid => prop_assert!((30.0..50.0).contains(&a)),
            LatitudeBand::High => prop_assert!(a >= 50.0),
        }
    }

    #[test]
    fn cable_failure_probability_is_valid_and_monotone_in_storm(
        lat_a in -60.0f64..60.0,
        lon_a in -179.0f64..179.0,
        lat_b in -60.0f64..60.0,
        lon_b in -179.0f64..179.0,
        dst1 in -2000.0f64..-50.0,
        dst2 in -2000.0f64..-50.0,
        slack in 1.0f64..1.6,
    ) {
        let from = Place::new("A", "Xland", Region::Europe, lat_a, lon_a);
        let to = Place::new("B", "Yland", Region::Asia, lat_b, lon_b);
        prop_assume!(from.point.distance_km(&to.point) > 200.0);
        let cable = SubmarineCable::new("test", from, to, 2020, slack);
        let model = StormModel::default();

        let (weak, strong) = if dst1 >= dst2 { (dst1, dst2) } else { (dst2, dst1) };
        let p_weak = model.cable_failure_prob(&cable, &StormScenario::new("w", weak, None));
        let p_strong = model.cable_failure_prob(&cable, &StormScenario::new("s", strong, None));
        prop_assert!((0.0..=1.0).contains(&p_weak));
        prop_assert!((0.0..=1.0).contains(&p_strong));
        prop_assert!(p_strong >= p_weak - 1e-12, "stronger storm must not reduce risk");
    }

    #[test]
    fn longer_route_never_reduces_failure_probability(
        lat_a in -60.0f64..60.0,
        lon_a in -179.0f64..179.0,
        lat_b in -60.0f64..60.0,
        lon_b in -179.0f64..179.0,
        slack in 1.0f64..1.4,
        stretch in 1.05f64..2.0,
    ) {
        let from = Place::new("A", "Xland", Region::Europe, lat_a, lon_a);
        let to = Place::new("B", "Yland", Region::Asia, lat_b, lon_b);
        prop_assume!(from.point.distance_km(&to.point) > 500.0);
        let cable = SubmarineCable::new("test", from.clone(), to.clone(), 2020, slack);
        let longer = SubmarineCable::new("test2", from, to, 2020, slack * stretch);
        let model = StormModel::default();
        let storm = StormScenario::carrington_1859();
        prop_assert!(
            model.cable_failure_prob(&longer, &storm)
                >= model.cable_failure_prob(&cable, &storm) - 1e-12
        );
    }

    #[test]
    fn storm_intensity_is_monotone_in_dst(dst1 in -2000.0f64..-1.0, dst2 in -2000.0f64..-1.0) {
        let s1 = StormScenario::new("a", dst1, None);
        let s2 = StormScenario::new("b", dst2, None);
        if dst1 <= dst2 {
            prop_assert!(s1.intensity() >= s2.intensity());
        } else {
            prop_assert!(s2.intensity() >= s1.intensity());
        }
        prop_assert!((0.0..=1.0).contains(&s1.intensity()));
    }
}

mod bgp_properties {
    use ira_worldmodel::bgp::{AsGraph, AsKind};
    use proptest::prelude::*;

    /// Build a random layered AS graph: `tier1` backbones in a full
    /// peering mesh, each other AS choosing 1-2 providers among the
    /// ASes created before it (guaranteeing a DAG of provider edges).
    fn random_graph(tier1: usize, others: usize, seed: u64) -> AsGraph {
        let mut g = AsGraph::new();
        for i in 0..tier1 {
            g.add_as(i as u32 + 1, &format!("t1-{i}"), AsKind::Tier1);
        }
        for i in 0..tier1 {
            for j in (i + 1)..tier1 {
                g.add_peering(i as u32 + 1, j as u32 + 1);
            }
        }
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move |bound: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % bound
        };
        for i in 0..others {
            let asn = (tier1 + i) as u32 + 1;
            g.add_as(asn, &format!("as-{asn}"), AsKind::Edge);
            let p1 = next((tier1 + i) as u64) as u32 + 1;
            g.add_provider(asn, p1);
            if next(2) == 1 {
                let p2 = next((tier1 + i) as u64) as u32 + 1;
                if p2 != asn && p2 != p1 {
                    g.add_provider(asn, p2);
                }
            }
        }
        g
    }

    proptest! {
        #[test]
        fn reachability_is_symmetric(tier1 in 2usize..4, others in 1usize..20, seed in 0u64..500) {
            // Valley-free reachability as implemented (up*, ≤1 peer,
            // down*) is symmetric: reverse a valid path and it is
            // still valley-free.
            let g = random_graph(tier1, others, seed);
            let n = (tier1 + others) as u32;
            for a in 1..=n {
                for b in 1..=n {
                    prop_assert_eq!(
                        g.can_reach(a, b),
                        g.can_reach(b, a),
                        "asymmetric reachability {} vs {}", a, b
                    );
                }
            }
        }

        #[test]
        fn everyone_reaches_their_own_up_cone_and_tier1s(
            tier1 in 2usize..4,
            others in 1usize..20,
            seed in 0u64..500,
        ) {
            // With a fully peered tier-1 mesh and provider chains that
            // terminate in the mesh, the graph is universally reachable.
            let g = random_graph(tier1, others, seed);
            let n = (tier1 + others) as u32;
            for a in 1..=n {
                prop_assert!(g.can_reach(a, a));
                for t in 1..=tier1 as u32 {
                    prop_assert!(g.can_reach(a, t), "AS{} cannot reach tier1 {}", a, t);
                }
            }
        }

        #[test]
        fn self_reachability_always_holds(tier1 in 2usize..4, others in 0usize..20, seed in 0u64..200) {
            let g = random_graph(tier1, others, seed);
            let n = (tier1 + others) as u32;
            for a in 1..=n {
                prop_assert!(g.can_reach(a, a));
            }
        }
    }
}
