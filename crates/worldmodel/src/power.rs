//! Regional power grids and their storm exposure.
//!
//! Terrestrial Internet infrastructure fails during a superstorm mainly
//! through the power grid: geomagnetically induced currents saturate
//! high-voltage transformer cores (the 1989 Québec collapse took 9 hours
//! to restore; a Carrington-class event could destroy transformers with
//! month-scale replacement lead times). Grid vulnerability scales with
//! geomagnetic latitude, ground resistivity, and line length.

use crate::geo::{GeoPoint, Region};
use crate::geomag::{geomagnetic_latitude, LatitudeBand};
use serde::{Deserialize, Serialize};

/// A regional high-voltage grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PowerGrid {
    pub name: String,
    pub region: Region,
    /// Representative centroid used for geomagnetic latitude.
    pub centroid: GeoPoint,
    /// Relative ground resistivity factor in [0.5, 2.0]; igneous-rock
    /// shields (e.g. the Canadian and Fennoscandian shields) conduct GIC
    /// into lines more strongly.
    pub ground_factor: f64,
    /// Mean extra-high-voltage line length factor in [0.5, 2.0]; long
    /// lines integrate more induced voltage.
    pub line_factor: f64,
}

impl PowerGrid {
    pub fn geomag_lat_abs(&self) -> f64 {
        geomagnetic_latitude(&self.centroid).abs()
    }

    pub fn band(&self) -> LatitudeBand {
        LatitudeBand::of(self.geomag_lat_abs())
    }

    /// Dimensionless structural exposure (before storm intensity is
    /// applied): latitude weight × ground × line factors.
    pub fn exposure(&self) -> f64 {
        let lat_weight = latitude_weight(self.geomag_lat_abs());
        lat_weight * self.ground_factor * self.line_factor
    }
}

/// The latitude weighting shared by the grid and cable models: a smooth
/// logistic ramp centred near 50° geomagnetic latitude, matching the
/// observation that GIC incidents concentrate above the 50° contour
/// while equatorial grids are essentially untouched.
pub fn latitude_weight(geomag_lat_abs: f64) -> f64 {
    let x = (geomag_lat_abs - 50.0) / 6.0;
    1.0 / (1.0 + (-x).exp())
}

/// Database of major grids.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PowerGridDatabase {
    grids: Vec<PowerGrid>,
}

impl PowerGridDatabase {
    pub fn standard() -> Self {
        use Region::*;
        let g = |name: &str, region, lat: f64, lon: f64, ground: f64, line: f64| PowerGrid {
            name: name.to_string(),
            region,
            centroid: GeoPoint::new(lat, lon),
            ground_factor: ground,
            line_factor: line,
        };
        PowerGridDatabase {
            grids: vec![
                g("Hydro-Québec", NorthAmerica, 49.0, -72.0, 1.8, 1.6),
                g(
                    "US Eastern Interconnection",
                    NorthAmerica,
                    40.0,
                    -80.0,
                    1.2,
                    1.5,
                ),
                g(
                    "US Western Interconnection",
                    NorthAmerica,
                    41.0,
                    -112.0,
                    1.0,
                    1.6,
                ),
                g("ERCOT (Texas)", NorthAmerica, 31.0, -99.0, 0.8, 1.0),
                g("Nordic Grid", Europe, 62.0, 16.0, 1.7, 1.3),
                g("UK National Grid", Europe, 53.0, -1.5, 1.1, 0.9),
                g("Continental Europe (ENTSO-E)", Europe, 48.0, 10.0, 1.0, 1.2),
                g("Iberian Grid", Europe, 40.0, -4.0, 0.9, 1.0),
                g("Japan (TEPCO/Kansai)", Asia, 35.5, 138.0, 0.9, 0.8),
                g("China State Grid", Asia, 33.0, 110.0, 1.0, 1.4),
                g("India Grid", Asia, 22.0, 79.0, 0.9, 1.2),
                g("Singapore Grid", Asia, 1.35, 103.8, 0.7, 0.5),
                g(
                    "Brazil Interconnected System",
                    SouthAmerica,
                    -15.0,
                    -50.0,
                    0.9,
                    1.4,
                ),
                g("South Africa (Eskom)", Africa, -29.0, 25.0, 1.1, 1.3),
                g("Australia NEM", Oceania, -33.0, 146.0, 0.9, 1.2),
            ],
        }
    }

    pub fn len(&self) -> usize {
        self.grids.len()
    }

    pub fn is_empty(&self) -> bool {
        self.grids.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &PowerGrid> {
        self.grids.iter()
    }

    pub fn find(&self, name: &str) -> Option<&PowerGrid> {
        let needle = name.to_ascii_lowercase();
        self.grids
            .iter()
            .find(|g| g.name.to_ascii_lowercase().contains(&needle))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latitude_weight_is_monotone_and_bounded() {
        let mut prev = -1.0;
        for lat in 0..90 {
            let w = latitude_weight(lat as f64);
            assert!((0.0..=1.0).contains(&w));
            assert!(w >= prev, "weight must be non-decreasing");
            prev = w;
        }
        assert!(latitude_weight(10.0) < 0.01);
        assert!(latitude_weight(65.0) > 0.9);
    }

    #[test]
    fn quebec_is_the_most_exposed_grid() {
        let db = PowerGridDatabase::standard();
        let max = db
            .iter()
            .max_by(|a, b| a.exposure().total_cmp(&b.exposure()))
            .unwrap();
        assert!(
            max.name.contains("Québec") || max.name.contains("Nordic"),
            "most exposed grid was {}",
            max.name
        );
    }

    #[test]
    fn singapore_is_essentially_immune() {
        let db = PowerGridDatabase::standard();
        let sg = db.find("singapore").unwrap();
        assert!(sg.exposure() < 0.01, "Singapore exposure {}", sg.exposure());
    }

    #[test]
    fn northern_grids_exceed_equatorial_grids() {
        let db = PowerGridDatabase::standard();
        let nordic = db.find("nordic").unwrap().exposure();
        let brazil = db.find("brazil").unwrap().exposure();
        let india = db.find("india").unwrap().exposure();
        assert!(nordic > 10.0 * brazil);
        assert!(nordic > 10.0 * india);
    }

    #[test]
    fn database_covers_all_major_regions() {
        let db = PowerGridDatabase::standard();
        use std::collections::BTreeSet;
        let regions: BTreeSet<_> = db.iter().map(|g| g.region).collect();
        assert!(regions.len() >= 6);
    }
}
