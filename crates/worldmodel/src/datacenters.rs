//! Hyperscaler data-center fleets.
//!
//! The SIGCOMM '21 analysis compares the geographic dispersion of Google
//! and Facebook data centers: Google operates on every inhabited
//! continent with substantial presence at low geomagnetic latitudes
//! (Asia, South America, Oceania), while Facebook's fleet concentrates
//! in the continental US and the Nordics — both high geomagnetic
//! latitude zones. The fleet lists below reflect the owned/major sites
//! of roughly the 2021 era, which is the snapshot the paper reasons
//! about.

use crate::geo::{Place, Region};
use crate::geomag::{geomagnetic_latitude, LatitudeBand};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Data-center operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operator {
    Google,
    Facebook,
}

impl Operator {
    pub fn name(&self) -> &'static str {
        match self {
            Operator::Google => "Google",
            Operator::Facebook => "Facebook",
        }
    }
}

impl std::fmt::Display for Operator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One data-center site.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DataCenter {
    pub operator: Operator,
    pub site: Place,
}

impl DataCenter {
    /// |geomagnetic latitude| of the site.
    pub fn geomag_lat_abs(&self) -> f64 {
        geomagnetic_latitude(&self.site.point).abs()
    }

    pub fn band(&self) -> LatitudeBand {
        LatitudeBand::of(self.geomag_lat_abs())
    }
}

/// An operator's full fleet plus derived dispersion metrics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DataCenterFleet {
    pub operator: Operator,
    pub sites: Vec<DataCenter>,
}

impl DataCenterFleet {
    fn build(operator: Operator, entries: &[(&str, &str, Region, f64, f64)]) -> Self {
        let sites = entries
            .iter()
            .map(|(name, country, region, lat, lon)| DataCenter {
                operator,
                site: Place::new(name, country, *region, *lat, *lon),
            })
            .collect();
        DataCenterFleet { operator, sites }
    }

    /// Google's owned/major sites (~2021 snapshot).
    pub fn google() -> Self {
        use Region::*;
        Self::build(
            Operator::Google,
            &[
                // United States
                (
                    "Council Bluffs, IA",
                    "United States",
                    NorthAmerica,
                    41.26,
                    -95.86,
                ),
                (
                    "The Dalles, OR",
                    "United States",
                    NorthAmerica,
                    45.59,
                    -121.18,
                ),
                (
                    "Berkeley County, SC",
                    "United States",
                    NorthAmerica,
                    33.19,
                    -80.01,
                ),
                (
                    "Douglas County, GA",
                    "United States",
                    NorthAmerica,
                    33.75,
                    -84.75,
                ),
                (
                    "Jackson County, AL",
                    "United States",
                    NorthAmerica,
                    34.78,
                    -86.00,
                ),
                ("Lenoir, NC", "United States", NorthAmerica, 35.91, -81.54),
                (
                    "Mayes County, OK",
                    "United States",
                    NorthAmerica,
                    36.30,
                    -95.32,
                ),
                (
                    "Midlothian, TX",
                    "United States",
                    NorthAmerica,
                    32.48,
                    -96.99,
                ),
                (
                    "Montgomery County, TN",
                    "United States",
                    NorthAmerica,
                    36.49,
                    -87.36,
                ),
                (
                    "New Albany, OH",
                    "United States",
                    NorthAmerica,
                    40.08,
                    -82.81,
                ),
                (
                    "Papillion, NE",
                    "United States",
                    NorthAmerica,
                    41.15,
                    -96.04,
                ),
                (
                    "Henderson, NV",
                    "United States",
                    NorthAmerica,
                    36.04,
                    -114.98,
                ),
                (
                    "Loudoun County, VA",
                    "United States",
                    NorthAmerica,
                    39.09,
                    -77.64,
                ),
                (
                    "Storey County, NV",
                    "United States",
                    NorthAmerica,
                    39.55,
                    -119.44,
                ),
                // Canada & Latin America
                ("Montréal", "Canada", NorthAmerica, 45.50, -73.57),
                ("Quilicura", "Chile", SouthAmerica, -33.36, -70.73),
                ("Osasco (São Paulo)", "Brazil", SouthAmerica, -23.53, -46.79),
                // Europe
                ("Dublin", "Ireland", Europe, 53.35, -6.26),
                ("Eemshaven", "Netherlands", Europe, 53.44, 6.83),
                ("St. Ghislain", "Belgium", Europe, 50.45, 3.82),
                ("Hamina", "Finland", Europe, 60.57, 27.20),
                ("Fredericia", "Denmark", Europe, 55.57, 9.75),
                ("Middenmeer", "Netherlands", Europe, 52.81, 4.99),
                // Asia
                ("Changhua County", "Taiwan", Asia, 24.08, 120.54),
                ("Jurong West", "Singapore", Asia, 1.34, 103.71),
                ("Tokyo (Inzai)", "Japan", Asia, 35.83, 140.14),
                ("Osaka", "Japan", Asia, 34.69, 135.50),
                ("Seoul", "South Korea", Asia, 37.57, 126.98),
                ("Mumbai", "India", Asia, 19.08, 72.88),
                ("Delhi NCR", "India", Asia, 28.61, 77.21),
                ("Jakarta", "Indonesia", Asia, -6.21, 106.85),
                // Middle East
                ("Tel Aviv", "Israel", MiddleEast, 32.09, 34.78),
                // Oceania
                ("Sydney", "Australia", Oceania, -33.87, 151.21),
                ("Melbourne", "Australia", Oceania, -37.81, 144.96),
            ],
        )
    }

    /// Facebook's owned/major sites (~2021 snapshot).
    pub fn facebook() -> Self {
        use Region::*;
        Self::build(
            Operator::Facebook,
            &[
                // United States
                (
                    "Prineville, OR",
                    "United States",
                    NorthAmerica,
                    44.30,
                    -120.83,
                ),
                (
                    "Forest City, NC",
                    "United States",
                    NorthAmerica,
                    35.33,
                    -81.87,
                ),
                ("Altoona, IA", "United States", NorthAmerica, 41.65, -93.47),
                (
                    "Fort Worth, TX",
                    "United States",
                    NorthAmerica,
                    32.76,
                    -97.33,
                ),
                (
                    "Los Lunas, NM",
                    "United States",
                    NorthAmerica,
                    34.81,
                    -106.73,
                ),
                (
                    "Papillion, NE",
                    "United States",
                    NorthAmerica,
                    41.15,
                    -96.04,
                ),
                (
                    "New Albany, OH",
                    "United States",
                    NorthAmerica,
                    40.08,
                    -82.81,
                ),
                ("Henrico, VA", "United States", NorthAmerica, 37.55, -77.46),
                (
                    "Eagle Mountain, UT",
                    "United States",
                    NorthAmerica,
                    40.31,
                    -112.01,
                ),
                (
                    "Huntsville, AL",
                    "United States",
                    NorthAmerica,
                    34.73,
                    -86.59,
                ),
                ("Gallatin, TN", "United States", NorthAmerica, 36.39, -86.45),
                ("DeKalb, IL", "United States", NorthAmerica, 41.93, -88.77),
                ("Mesa, AZ", "United States", NorthAmerica, 33.42, -111.83),
                (
                    "Newton County, GA",
                    "United States",
                    NorthAmerica,
                    33.55,
                    -83.85,
                ),
                (
                    "Sarpy County, NE",
                    "United States",
                    NorthAmerica,
                    41.11,
                    -96.11,
                ),
                // Europe (Nordics + Ireland)
                ("Luleå", "Sweden", Europe, 65.58, 22.15),
                ("Odense", "Denmark", Europe, 55.40, 10.40),
                ("Clonee", "Ireland", Europe, 53.41, -6.44),
                // Asia (single announced site of the era)
                ("Singapore", "Singapore", Asia, 1.32, 103.70),
            ],
        )
    }

    pub fn len(&self) -> usize {
        self.sites.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &DataCenter> {
        self.sites.iter()
    }

    /// Number of distinct coarse regions with at least one site.
    pub fn region_coverage(&self) -> usize {
        self.sites
            .iter()
            .map(|dc| dc.site.region)
            .collect::<BTreeSet<_>>()
            .len()
    }

    /// Fraction of sites in the low geomagnetic-latitude band.
    pub fn low_band_fraction(&self) -> f64 {
        if self.sites.is_empty() {
            return 0.0;
        }
        let low = self
            .sites
            .iter()
            .filter(|dc| dc.band() == LatitudeBand::Low)
            .count();
        low as f64 / self.sites.len() as f64
    }

    /// Mean pairwise great-circle distance between sites, km. A larger
    /// value means the fleet is more geographically dispersed.
    pub fn mean_pairwise_distance_km(&self) -> f64 {
        let n = self.sites.len();
        if n < 2 {
            return 0.0;
        }
        let mut sum = 0.0;
        let mut pairs = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                sum += self.sites[i]
                    .site
                    .point
                    .distance_km(&self.sites[j].site.point);
                pairs += 1;
            }
        }
        sum / pairs as f64
    }

    /// Storm-vulnerability score in \[0,1\]: the capacity-weighted share
    /// of the fleet at elevated geomagnetic latitude (Mid counts half,
    /// High counts fully). Lower is more resilient.
    pub fn vulnerability_score(&self) -> f64 {
        if self.sites.is_empty() {
            return 0.0;
        }
        let weighted: f64 = self
            .sites
            .iter()
            .map(|dc| match dc.band() {
                LatitudeBand::Low => 0.0,
                LatitudeBand::Mid => 0.5,
                LatitudeBand::High => 1.0,
            })
            .sum();
        weighted / self.sites.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_sizes_match_the_era() {
        assert!(DataCenterFleet::google().len() >= 30);
        assert!(DataCenterFleet::facebook().len() >= 15);
    }

    #[test]
    fn google_covers_more_regions_than_facebook() {
        let g = DataCenterFleet::google();
        let f = DataCenterFleet::facebook();
        assert!(
            g.region_coverage() > f.region_coverage(),
            "google {} vs facebook {}",
            g.region_coverage(),
            f.region_coverage()
        );
        assert!(g.region_coverage() >= 6);
    }

    #[test]
    fn google_has_more_low_latitude_presence() {
        let g = DataCenterFleet::google();
        let f = DataCenterFleet::facebook();
        assert!(
            g.low_band_fraction() > f.low_band_fraction(),
            "google {:.2} vs facebook {:.2}",
            g.low_band_fraction(),
            f.low_band_fraction()
        );
    }

    #[test]
    fn google_is_more_dispersed() {
        let g = DataCenterFleet::google();
        let f = DataCenterFleet::facebook();
        assert!(g.mean_pairwise_distance_km() > f.mean_pairwise_distance_km());
    }

    #[test]
    fn facebook_is_more_vulnerable_overall() {
        let g = DataCenterFleet::google();
        let f = DataCenterFleet::facebook();
        assert!(
            f.vulnerability_score() > g.vulnerability_score(),
            "facebook {:.3} should exceed google {:.3}",
            f.vulnerability_score(),
            g.vulnerability_score()
        );
    }

    #[test]
    fn lulea_is_high_band() {
        let f = DataCenterFleet::facebook();
        let lulea = f.iter().find(|dc| dc.site.name.contains("Luleå")).unwrap();
        assert_eq!(lulea.band(), LatitudeBand::High);
    }

    #[test]
    fn singapore_sites_are_low_band() {
        for fleet in [DataCenterFleet::google(), DataCenterFleet::facebook()] {
            let sg = fleet
                .iter()
                .find(|dc| dc.site.country == "Singapore")
                .unwrap();
            assert_eq!(sg.band(), LatitudeBand::Low);
        }
    }

    #[test]
    fn vulnerability_score_is_bounded() {
        for fleet in [DataCenterFleet::google(), DataCenterFleet::facebook()] {
            let v = fleet.vulnerability_score();
            assert!((0.0..=1.0).contains(&v));
        }
    }
}
