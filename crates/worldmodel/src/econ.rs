//! Economic impact of Internet disruption.
//!
//! §1 of the paper motivates the whole agenda with cost: "The economic
//! impact of widespread Internet disruption can lead to a loss of
//! revenue of 7 billion", citing the NetBlocks Cost-of-Shutdown tool.
//! This module implements a COST-style model — per-region daily digital
//! economy, scaled by outage scope and duration — and composes it with
//! the storm model: grid collapses cause regional downtime, mass cable
//! failures sever the cross-border share of the digital economy until
//! cable ships catch up.

use crate::geo::Region;
use crate::storm::StormScenario;
use crate::world::World;
use serde::{Deserialize, Serialize};

/// Daily digital-economy value at risk per region, billions of USD.
///
/// Calibrated so a full one-day United States shutdown costs ≈ $7B —
/// the figure the paper quotes from NetBlocks — with other regions
/// scaled by their Internet economies.
pub fn daily_digital_economy_busd(region: Region) -> f64 {
    match region {
        Region::NorthAmerica => 7.6, // US ≈ 7.0 of this
        Region::Europe => 5.8,
        Region::Asia => 9.4,
        Region::SouthAmerica => 1.1,
        Region::Africa => 0.5,
        Region::MiddleEast => 0.8,
        Region::Oceania => 0.5,
    }
}

/// Share of the digital economy that depends on intercontinental
/// connectivity (cloud regions abroad, cross-border commerce, CDNs).
const CROSS_BORDER_SHARE: f64 = 0.25;

/// Days a region-wide grid-driven outage lasts, by storm intensity:
/// protective collapses restore in a day; transformer damage from an
/// extreme event takes weeks.
fn grid_outage_days(storm: &StormScenario) -> f64 {
    1.0 + 29.0 * storm.intensity()
}

/// Days of degraded intercontinental connectivity after mass cable
/// loss: a small cable-ship fleet repairs a handful of faults per week.
fn cable_repair_days(cables_down: f64) -> f64 {
    // ~2 repairs per ship-week across ~10 available ships.
    cables_down * 7.0 / 20.0
}

/// The per-scenario economic impact estimate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EconomicImpact {
    pub scenario: String,
    /// Grid-driven regional losses, billions USD.
    pub grid_losses_busd: f64,
    /// Connectivity-driven cross-border losses, billions USD.
    pub connectivity_losses_busd: f64,
    /// Expected cables down (driver of the connectivity term).
    pub cables_down: f64,
    pub total_busd: f64,
}

/// Estimate the economic impact of a storm scenario on the world.
pub fn storm_impact(
    world: &World,
    storm: &StormScenario,
    trials: u32,
    seed: u64,
) -> EconomicImpact {
    // Grid-driven downtime per region: probability-weighted outage of
    // the region's most exposed grid.
    let outage_days = grid_outage_days(storm);
    let mut grid_losses = 0.0;
    for region in Region::ALL {
        let worst = world
            .grids
            .iter()
            .filter(|g| g.region == region)
            .map(|g| world.storm_model.grid_collapse_prob(g, storm))
            .fold(0.0f64, f64::max);
        grid_losses += worst * outage_days * daily_digital_economy_busd(region);
    }

    // Connectivity losses: Monte Carlo cable outages → degraded
    // cross-border economy during the repair window.
    let report = world
        .graph
        .storm_report(&world.cables, &world.storm_model, storm, trials, seed);
    let repair_days = cable_repair_days(report.mean_cables_down);
    let total_cables = world.cables.len() as f64;
    let degradation = (report.mean_cables_down / total_cables).min(1.0);
    let connectivity_losses: f64 = Region::ALL
        .iter()
        .map(|&r| daily_digital_economy_busd(r) * CROSS_BORDER_SHARE * degradation * repair_days)
        .sum();

    EconomicImpact {
        scenario: storm.name.clone(),
        grid_losses_busd: grid_losses,
        connectivity_losses_busd: connectivity_losses,
        cables_down: report.mean_cables_down,
        total_busd: grid_losses + connectivity_losses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn us_daily_shutdown_matches_the_papers_figure() {
        // §1: "a loss of revenue of 7 billion" — North America's daily
        // digital economy carries that figure.
        let v = daily_digital_economy_busd(Region::NorthAmerica);
        assert!((7.0..8.5).contains(&v));
    }

    #[test]
    fn impact_ordering_follows_storm_strength() {
        let world = World::standard();
        let carrington = storm_impact(&world, &StormScenario::carrington_1859(), 100, 1);
        let quebec = storm_impact(&world, &StormScenario::quebec_1989(), 100, 1);
        let moderate = storm_impact(&world, &StormScenario::moderate(), 100, 1);
        assert!(carrington.total_busd > quebec.total_busd);
        assert!(quebec.total_busd > moderate.total_busd);
        assert!(
            moderate.total_busd < 0.5,
            "moderate storms are economically negligible"
        );
    }

    #[test]
    fn carrington_is_a_multi_billion_dollar_event() {
        let world = World::standard();
        let impact = storm_impact(&world, &StormScenario::carrington_1859(), 200, 2);
        assert!(
            impact.total_busd > 10.0,
            "Carrington impact should be tens of billions, got {:.1}",
            impact.total_busd
        );
        assert!(
            impact.total_busd < 2_000.0,
            "sanity ceiling, got {:.1}",
            impact.total_busd
        );
        assert!(impact.grid_losses_busd > 0.0);
        assert!(impact.connectivity_losses_busd > 0.0);
    }

    #[test]
    fn impact_is_deterministic_per_seed() {
        let world = World::standard();
        let a = storm_impact(&world, &StormScenario::railroad_1921(), 50, 9);
        let b = storm_impact(&world, &StormScenario::railroad_1921(), 50, 9);
        assert_eq!(a.total_busd, b.total_busd);
    }
}
