//! Internet connectivity graph and storm partition analysis.
//!
//! Nodes are cable landing cities; submarine cables contribute the
//! intercontinental edges and a synthetic terrestrial backbone joins
//! cities within a region (terrestrial fiber is short-span and
//! unrepeated, so we treat it as storm-immune except through grid
//! collapse, which the higher-level analysis accounts for separately).
//!
//! The headline question the SIGCOMM '21 paper asks of this graph is:
//! *which regions lose connectivity to which, under which storm?*

use crate::cables::CableDatabase;
use crate::geo::Region;
use crate::storm::{StormModel, StormScenario};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

/// Index of a node in the topology.
pub type NodeId = usize;

/// A node: one landing city.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    pub name: String,
    pub country: String,
    pub region: Region,
}

/// An edge in the topology.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Edge {
    pub a: NodeId,
    pub b: NodeId,
    pub kind: EdgeKind,
}

/// Edge provenance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EdgeKind {
    /// A submarine cable, identified by system name.
    Submarine { cable: String },
    /// Synthetic terrestrial backbone within a region.
    Terrestrial,
}

/// The connectivity graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopologyGraph {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    by_name: HashMap<String, NodeId>,
}

impl TopologyGraph {
    /// Build the graph from a cable database: landing cities become
    /// nodes, cables become submarine edges, and cities sharing a
    /// region are chained with terrestrial backbone edges.
    pub fn from_cables(db: &CableDatabase) -> Self {
        let mut graph = TopologyGraph {
            nodes: Vec::new(),
            edges: Vec::new(),
            by_name: HashMap::new(),
        };

        for cable in db.iter() {
            let a = graph.intern(&cable.from.name, &cable.from.country, cable.from.region);
            let b = graph.intern(&cable.to.name, &cable.to.country, cable.to.region);
            graph.edges.push(Edge {
                a,
                b,
                kind: EdgeKind::Submarine {
                    cable: cable.name.clone(),
                },
            });
        }

        // Terrestrial backbone: chain each region's cities in sorted
        // order and close the loop, giving every region an internally
        // redundant, storm-immune mesh.
        let mut per_region: BTreeMap<Region, Vec<NodeId>> = BTreeMap::new();
        for (id, node) in graph.nodes.iter().enumerate() {
            per_region.entry(node.region).or_default().push(id);
        }
        for ids in per_region.values() {
            if ids.len() < 2 {
                continue;
            }
            for w in ids.windows(2) {
                graph.edges.push(Edge {
                    a: w[0],
                    b: w[1],
                    kind: EdgeKind::Terrestrial,
                });
            }
            if ids.len() > 2 {
                graph.edges.push(Edge {
                    a: ids[ids.len() - 1],
                    b: ids[0],
                    kind: EdgeKind::Terrestrial,
                });
            }
        }

        graph
    }

    fn intern(&mut self, name: &str, country: &str, region: Region) -> NodeId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = self.nodes.len();
        self.nodes.push(Node {
            name: name.to_string(),
            country: country.to_string(),
            region,
        });
        self.by_name.insert(name.to_string(), id);
        id
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// Connected components given a predicate deciding which edges are
    /// still up. Returns a component id per node.
    pub fn components<F>(&self, edge_up: F) -> Vec<usize>
    where
        F: Fn(&Edge) -> bool,
    {
        let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); self.nodes.len()];
        for e in &self.edges {
            if edge_up(e) {
                adj[e.a].push(e.b);
                adj[e.b].push(e.a);
            }
        }
        let mut comp = vec![usize::MAX; self.nodes.len()];
        let mut next = 0;
        for start in 0..self.nodes.len() {
            if comp[start] != usize::MAX {
                continue;
            }
            let mut queue = VecDeque::from([start]);
            comp[start] = next;
            while let Some(u) = queue.pop_front() {
                for &v in &adj[u] {
                    if comp[v] == usize::MAX {
                        comp[v] = next;
                        queue.push_back(v);
                    }
                }
            }
            next += 1;
        }
        comp
    }

    /// Analyse connectivity under a storm, Monte Carlo over cable
    /// outages. `trials` independent samples are drawn with the given
    /// seed; terrestrial edges never fail here.
    pub fn storm_report(
        &self,
        db: &CableDatabase,
        model: &StormModel,
        storm: &StormScenario,
        trials: u32,
        seed: u64,
    ) -> ConnectivityReport {
        assert!(trials >= 1);
        // Keep the sampling order fixed (database order) so the run is
        // reproducible: iterating a HashMap here would permute the RNG
        // stream between runs.
        let fail_prob: Vec<(&str, f64)> = db
            .iter()
            .map(|c| (c.name.as_str(), model.cable_failure_prob(c, storm)))
            .collect();
        // Which cables connect each region pair directly.
        let mut direct: BTreeMap<(Region, Region), Vec<&str>> = BTreeMap::new();
        for c in db.iter() {
            if c.is_intercontinental() {
                let (a, b) = (
                    c.from.region.min(c.to.region),
                    c.from.region.max(c.to.region),
                );
                direct.entry((a, b)).or_default().push(c.name.as_str());
            }
        }

        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut pair_connected_sum = 0.0;
        let mut region_pair_hits: BTreeMap<(Region, Region), u32> = BTreeMap::new();
        let mut direct_loss_hits: BTreeMap<(Region, Region), u32> = BTreeMap::new();
        let mut cables_down_sum = 0u64;

        let regions: BTreeSet<Region> = self.nodes.iter().map(|n| n.region).collect();
        let region_list: Vec<Region> = regions.into_iter().collect();

        for _ in 0..trials {
            // Sample which cables are down this trial.
            let down: BTreeSet<&str> = fail_prob
                .iter()
                .filter(|(_, p)| rand::Rng::gen::<f64>(&mut rng) < *p)
                .map(|(name, _)| *name)
                .collect();
            cables_down_sum += down.len() as u64;

            for (pair, cables) in &direct {
                if cables.iter().all(|c| down.contains(c)) {
                    *direct_loss_hits.entry(*pair).or_insert(0) += 1;
                }
            }

            let comp = self.components(|e| match &e.kind {
                EdgeKind::Terrestrial => true,
                EdgeKind::Submarine { cable } => !down.contains(cable.as_str()),
            });

            // Fraction of node pairs still connected.
            let mut sizes: HashMap<usize, u64> = HashMap::new();
            for &c in &comp {
                *sizes.entry(c).or_insert(0) += 1;
            }
            let n = self.nodes.len() as u64;
            let total_pairs = n * (n - 1) / 2;
            let connected_pairs: u64 = sizes.values().map(|s| s * (s - 1) / 2).sum();
            pair_connected_sum += connected_pairs as f64 / total_pairs as f64;

            // Region-pair reachability: regions are connected if any
            // node of one shares a component with any node of the other.
            for (i, &ra) in region_list.iter().enumerate() {
                for &rb in &region_list[i + 1..] {
                    let reachable = self.nodes.iter().enumerate().any(|(u, nu)| {
                        nu.region == ra
                            && self
                                .nodes
                                .iter()
                                .enumerate()
                                .any(|(v, nv)| nv.region == rb && comp[u] == comp[v])
                    });
                    if reachable {
                        *region_pair_hits.entry((ra, rb)).or_insert(0) += 1;
                    }
                }
            }
        }

        let region_pair_connectivity = region_pair_hits
            .into_iter()
            .map(|(k, hits)| (k, hits as f64 / trials as f64))
            .collect();
        let direct_loss = direct_loss_hits
            .into_iter()
            .map(|(k, hits)| (k, hits as f64 / trials as f64))
            .collect();

        ConnectivityReport {
            storm: storm.clone(),
            trials,
            mean_pair_connectivity: pair_connected_sum / trials as f64,
            mean_cables_down: cables_down_sum as f64 / trials as f64,
            region_pair_connectivity,
            direct_loss,
        }
    }
}

/// Result of [`TopologyGraph::storm_report`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConnectivityReport {
    pub storm: StormScenario,
    pub trials: u32,
    /// Mean fraction of node pairs still mutually reachable.
    pub mean_pair_connectivity: f64,
    /// Mean number of cables down per trial.
    pub mean_cables_down: f64,
    /// Per region pair: probability the pair remains connected
    /// (possibly through other regions).
    pub region_pair_connectivity: BTreeMap<(Region, Region), f64>,
    /// Per region pair: probability that *every direct* cable between
    /// the pair is down simultaneously.
    pub direct_loss: BTreeMap<(Region, Region), f64>,
}

impl ConnectivityReport {
    /// Probability that the two regions remain connected (order-free);
    /// 1.0 if the pair never appears (same region).
    pub fn region_connectivity(&self, a: Region, b: Region) -> f64 {
        if a == b {
            return 1.0;
        }
        let key = if a < b { (a, b) } else { (b, a) };
        self.region_pair_connectivity
            .get(&key)
            .copied()
            .unwrap_or(0.0)
    }

    /// Probability that all direct cables between the two regions are
    /// down at once; 0.0 if the pair has no direct cables.
    pub fn direct_loss(&self, a: Region, b: Region) -> f64 {
        let key = if a < b { (a, b) } else { (b, a) };
        self.direct_loss.get(&key).copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_and_db() -> (TopologyGraph, CableDatabase) {
        let db = CableDatabase::standard();
        (TopologyGraph::from_cables(&db), db)
    }

    #[test]
    fn graph_has_expected_shape() {
        let (g, db) = graph_and_db();
        assert!(g.node_count() >= 40, "nodes {}", g.node_count());
        assert!(g.edge_count() > db.len(), "edges should include backbone");
    }

    #[test]
    fn fully_up_graph_is_one_component() {
        let (g, _) = graph_and_db();
        let comp = g.components(|_| true);
        assert!(
            comp.iter().all(|&c| c == comp[0]),
            "baseline graph must be connected"
        );
    }

    #[test]
    fn severing_all_submarine_edges_partitions_by_continent_cluster() {
        let (g, _) = graph_and_db();
        let comp = g.components(|e| e.kind == EdgeKind::Terrestrial);
        let distinct: BTreeSet<usize> = comp.iter().copied().collect();
        assert!(
            distinct.len() >= 5,
            "expected several components, got {}",
            distinct.len()
        );
        // Within one region all nodes share a component (backbone ring).
        let ny = g.node_by_name("New York").unwrap();
        let la = g.node_by_name("Los Angeles").unwrap();
        assert_eq!(comp[ny], comp[la]);
        // Across the Atlantic they must differ.
        let bude = g.node_by_name("Bude").unwrap();
        assert_ne!(comp[ny], comp[bude]);
    }

    #[test]
    fn moderate_storm_preserves_connectivity() {
        let (g, db) = graph_and_db();
        let report = g.storm_report(
            &db,
            &StormModel::default(),
            &StormScenario::moderate(),
            50,
            7,
        );
        assert!(report.mean_pair_connectivity > 0.99);
        assert!(report.mean_cables_down < 1.0);
    }

    #[test]
    fn carrington_degrades_connectivity_substantially() {
        let (g, db) = graph_and_db();
        let model = StormModel::default();
        let carrington = g.storm_report(&db, &model, &StormScenario::carrington_1859(), 200, 7);
        let moderate = g.storm_report(&db, &model, &StormScenario::moderate(), 200, 7);
        assert!(
            carrington.mean_cables_down > 5.0,
            "cables down {}",
            carrington.mean_cables_down
        );
        assert!(carrington.mean_pair_connectivity <= moderate.mean_pair_connectivity);
        // The direct North Atlantic crossing is at non-trivial risk of
        // total loss under Carrington, and at none under a moderate storm.
        let na_eu_carrington = carrington.direct_loss(Region::NorthAmerica, Region::Europe);
        let na_eu_moderate = moderate.direct_loss(Region::NorthAmerica, Region::Europe);
        assert!(
            na_eu_carrington > 0.005,
            "direct NA-EU loss {na_eu_carrington}"
        );
        assert_eq!(na_eu_moderate, 0.0);
    }

    #[test]
    fn south_america_europe_outlives_north_america_europe() {
        // The Brazil–Europe route survives storms that threaten the
        // North Atlantic — the paper's conclusion 1, at graph level.
        let (g, db) = graph_and_db();
        let report = g.storm_report(
            &db,
            &StormModel::default(),
            &StormScenario::carrington_1859(),
            200,
            11,
        );
        let sa_eu = report.region_connectivity(Region::SouthAmerica, Region::Europe);
        let na_eu = report.region_connectivity(Region::NorthAmerica, Region::Europe);
        // SA–EU can also transit via NA, so compare against the direct
        // threat level instead of requiring a huge gap.
        assert!(
            sa_eu >= na_eu,
            "SA-EU connectivity {sa_eu:.3} should be >= NA-EU {na_eu:.3}"
        );
    }

    #[test]
    fn report_is_deterministic_per_seed() {
        let (g, db) = graph_and_db();
        let model = StormModel::default();
        let a = g.storm_report(&db, &model, &StormScenario::quebec_1989(), 50, 3);
        let b = g.storm_report(&db, &model, &StormScenario::quebec_1989(), 50, 3);
        assert_eq!(a.mean_pair_connectivity, b.mean_pair_connectivity);
        assert_eq!(a.mean_cables_down, b.mean_cables_down);
    }

    #[test]
    fn same_region_connectivity_is_always_one() {
        let (g, db) = graph_and_db();
        let report = g.storm_report(
            &db,
            &StormModel::default(),
            &StormScenario::carrington_1859(),
            20,
            5,
        );
        assert_eq!(
            report.region_connectivity(Region::Europe, Region::Europe),
            1.0
        );
    }
}
