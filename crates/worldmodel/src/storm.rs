//! Storm scenarios and the GIC failure-probability model.
//!
//! Scenario strength is parameterised by the Dst index (nT), the
//! standard measure of geomagnetic storm intensity; the named scenarios
//! are the historical reference events the literature reasons about.
//! The failure model composes three factors, each encoded elsewhere in
//! this crate:
//!
//! * storm intensity — a normalised function of |Dst|,
//! * latitude weighting — [`crate::power::latitude_weight`], a logistic
//!   ramp over geomagnetic latitude,
//! * exposure geometry — repeater counts for cables, structural factors
//!   for grids, grid dependence for data centers.

use crate::cables::SubmarineCable;
use crate::datacenters::DataCenter;
use crate::geomag::geomagnetic_latitude;
use crate::power::{latitude_weight, PowerGrid};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A geomagnetic storm scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StormScenario {
    pub name: String,
    /// Minimum Dst (nT); more negative is stronger.
    pub dst_nt: f64,
    /// Year of the historical event, if any.
    pub year: Option<u16>,
}

impl StormScenario {
    pub fn new(name: &str, dst_nt: f64, year: Option<u16>) -> Self {
        assert!(dst_nt < 0.0, "storm Dst must be negative, got {dst_nt}");
        StormScenario {
            name: name.to_string(),
            dst_nt,
            year,
        }
    }

    /// The 1859 Carrington event (estimated Dst ≈ −1760 nT), the
    /// canonical "Internet apocalypse" scenario.
    pub fn carrington_1859() -> Self {
        Self::new("Carrington event", -1760.0, Some(1859))
    }

    /// The May 1921 New York Railroad storm (estimated Dst ≈ −907 nT).
    pub fn railroad_1921() -> Self {
        Self::new("New York Railroad storm", -907.0, Some(1921))
    }

    /// The March 1989 storm that collapsed the Hydro-Québec grid.
    pub fn quebec_1989() -> Self {
        Self::new("Québec storm", -589.0, Some(1989))
    }

    /// The October 2003 Halloween storms.
    pub fn halloween_2003() -> Self {
        Self::new("Halloween storms", -383.0, Some(2003))
    }

    /// A moderate storm that causes no meaningful infrastructure damage.
    pub fn moderate() -> Self {
        Self::new("moderate storm", -150.0, None)
    }

    /// All named scenarios, strongest first.
    pub fn catalog() -> Vec<StormScenario> {
        vec![
            Self::carrington_1859(),
            Self::railroad_1921(),
            Self::quebec_1989(),
            Self::halloween_2003(),
            Self::moderate(),
        ]
    }

    /// Normalised intensity in [0, 1].
    ///
    /// The cubic exponent encodes the strong nonlinearity of GIC
    /// damage: Dst −150 storms recur yearly without infrastructure
    /// damage, the 1989 Québec event (−589) damaged one exposed grid,
    /// and only Carrington-class events threaten cables at scale.
    pub fn intensity(&self) -> f64 {
        (self.dst_nt.abs() / 2000.0).clamp(0.0, 1.0).powf(3.0)
    }
}

/// The failure-probability model. Holds the tunable coefficients so
/// ablation benches can perturb them.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StormModel {
    /// Per-repeater failure probability at full intensity and full
    /// latitude weight.
    pub repeater_base: f64,
    /// Grid collapse probability at full intensity for a grid with
    /// exposure 1.0.
    pub grid_base: f64,
}

impl Default for StormModel {
    fn default() -> Self {
        StormModel {
            repeater_base: 0.05,
            grid_base: 5.0,
        }
    }
}

impl StormModel {
    /// Probability one repeater at |geomagnetic latitude| `lat` fails.
    pub fn repeater_failure_prob(&self, geomag_lat_abs: f64, storm: &StormScenario) -> f64 {
        (self.repeater_base * storm.intensity() * latitude_weight(geomag_lat_abs)).clamp(0.0, 1.0)
    }

    /// Probability the cable suffers at least one repeater failure
    /// (which severs the span until a cable ship repairs it).
    ///
    /// Repeaters are attributed to path segments; each inherits the
    /// geomagnetic latitude of its segment, so a cable is dominated by
    /// its high-latitude spans rather than its endpoints.
    pub fn cable_failure_prob(&self, cable: &SubmarineCable, storm: &StormScenario) -> f64 {
        let path = cable.path();
        let segments = path.len().saturating_sub(1).max(1);
        let repeaters_per_segment = cable.repeater_count() as f64 / segments as f64;
        let mut survive = 1.0f64;
        for w in path.windows(2) {
            let mid_lat =
                (geomagnetic_latitude(&w[0]).abs() + geomagnetic_latitude(&w[1]).abs()) / 2.0;
            let p = self.repeater_failure_prob(mid_lat, storm);
            survive *= (1.0 - p).powf(repeaters_per_segment);
        }
        1.0 - survive
    }

    /// Sample a concrete outage outcome for the cable.
    pub fn sample_cable_outage(
        &self,
        cable: &SubmarineCable,
        storm: &StormScenario,
        rng: &mut ChaCha8Rng,
    ) -> bool {
        rng.gen::<f64>() < self.cable_failure_prob(cable, storm)
    }

    /// Probability a regional grid suffers a protective collapse or
    /// transformer damage.
    pub fn grid_collapse_prob(&self, grid: &PowerGrid, storm: &StormScenario) -> f64 {
        (self.grid_base * storm.intensity() * grid.exposure()).clamp(0.0, 1.0)
    }

    /// Risk score for a data center: dominated by its grid exposure at
    /// its geomagnetic latitude (on-site generation rides through only
    /// short outages).
    pub fn datacenter_risk(&self, dc: &DataCenter, storm: &StormScenario) -> f64 {
        (storm.intensity() * latitude_weight(dc.geomag_lat_abs())).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cables::CableDatabase;
    use crate::datacenters::DataCenterFleet;
    use crate::power::PowerGridDatabase;
    use rand::SeedableRng;

    #[test]
    fn intensity_orders_the_catalog() {
        let cat = StormScenario::catalog();
        for w in cat.windows(2) {
            assert!(
                w[0].intensity() > w[1].intensity(),
                "{} should outrank {}",
                w[0].name,
                w[1].name
            );
        }
        let carrington = StormScenario::carrington_1859().intensity();
        assert!((0.5..=1.0).contains(&carrington));
        assert!(StormScenario::moderate().intensity() < 0.001);
    }

    #[test]
    fn repeater_probability_scales_with_latitude() {
        let m = StormModel::default();
        let storm = StormScenario::carrington_1859();
        let low = m.repeater_failure_prob(10.0, &storm);
        let high = m.repeater_failure_prob(65.0, &storm);
        assert!(high > 20.0 * low, "high {high} vs low {low}");
    }

    #[test]
    fn us_europe_cables_fail_more_often_than_brazil_europe() {
        let m = StormModel::default();
        let db = CableDatabase::standard();
        let storm = StormScenario::carrington_1859();
        let grace = m.cable_failure_prob(db.find("Grace Hopper").unwrap(), &storm);
        let ella = m.cable_failure_prob(db.find("EllaLink").unwrap(), &storm);
        assert!(
            grace > 1.5 * ella,
            "Grace Hopper {grace:.3} should clearly exceed EllaLink {ella:.3}"
        );
    }

    #[test]
    fn moderate_storm_spares_everything() {
        let m = StormModel::default();
        let db = CableDatabase::standard();
        let storm = StormScenario::moderate();
        for cable in db.iter() {
            assert!(
                m.cable_failure_prob(cable, &storm) < 0.05,
                "{} at risk in a moderate storm",
                cable.name
            );
        }
    }

    #[test]
    fn carrington_threatens_the_north_atlantic() {
        let m = StormModel::default();
        let db = CableDatabase::standard();
        let storm = StormScenario::carrington_1859();
        let farice = m.cable_failure_prob(db.find("FARICE").unwrap(), &storm);
        assert!(farice > 0.3, "FARICE-1 failure prob {farice:.3}");
        let grace = m.cable_failure_prob(db.find("Grace Hopper").unwrap(), &storm);
        assert!(grace > 0.6, "Grace Hopper failure prob {grace:.3}");
    }

    #[test]
    fn grid_collapse_probability_ranks_quebec_over_texas() {
        let m = StormModel::default();
        let grids = PowerGridDatabase::standard();
        let storm = StormScenario::quebec_1989();
        let quebec = m.grid_collapse_prob(grids.find("québec").unwrap(), &storm);
        let texas = m.grid_collapse_prob(grids.find("ercot").unwrap(), &storm);
        assert!(
            quebec > 5.0 * texas,
            "Québec {quebec:.3} vs Texas {texas:.3}"
        );
    }

    #[test]
    fn datacenter_risk_favors_google_fleet() {
        let m = StormModel::default();
        let storm = StormScenario::carrington_1859();
        let mean = |fleet: &DataCenterFleet| {
            fleet
                .iter()
                .map(|d| m.datacenter_risk(d, &storm))
                .sum::<f64>()
                / fleet.len() as f64
        };
        let g = mean(&DataCenterFleet::google());
        let f = mean(&DataCenterFleet::facebook());
        assert!(
            f > g,
            "facebook mean risk {f:.3} should exceed google {g:.3}"
        );
    }

    #[test]
    fn sampling_respects_probability_in_aggregate() {
        let m = StormModel::default();
        let db = CableDatabase::standard();
        let storm = StormScenario::carrington_1859();
        let cable = db.find("Grace Hopper").unwrap();
        let p = m.cable_failure_prob(cable, &storm);
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let trials = 20_000;
        let hits = (0..trials)
            .filter(|_| m.sample_cable_outage(cable, &storm, &mut rng))
            .count();
        let rate = hits as f64 / trials as f64;
        assert!(
            (rate - p).abs() < 0.02,
            "sampled {rate:.3} vs analytic {p:.3}"
        );
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn positive_dst_is_rejected() {
        StormScenario::new("bogus", 100.0, None);
    }
}
