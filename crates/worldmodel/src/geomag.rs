//! Geomagnetic coordinates.
//!
//! Geomagnetically induced currents during a superstorm concentrate at
//! high *geomagnetic* (not geographic) latitudes. We use the standard
//! centred-dipole approximation: the geomagnetic latitude of a point is
//! its angular distance from the geomagnetic equator defined by the
//! dipole axis through the geomagnetic north pole (≈80.7°N, 72.7°W for
//! epoch 2020). The dipole model is accurate to a few degrees, which is
//! ample for ranking infrastructure risk.

use crate::geo::GeoPoint;

/// Geomagnetic north pole, IGRF-13 epoch 2020 dipole.
pub const GEOMAG_POLE: GeoPoint = GeoPoint {
    lat: 80.65,
    lon: -72.68,
};

/// Geomagnetic latitude of `p` in degrees, range [-90, 90].
///
/// Positive values are geomagnetically northern; the magnitude is what
/// drives GIC risk.
pub fn geomagnetic_latitude(p: &GeoPoint) -> f64 {
    let lat = p.lat.to_radians();
    let lon = p.lon.to_radians();
    let pole_lat = GEOMAG_POLE.lat.to_radians();
    let pole_lon = GEOMAG_POLE.lon.to_radians();

    // cos(colatitude) via the spherical law of cosines against the pole.
    let cos_colat =
        lat.sin() * pole_lat.sin() + lat.cos() * pole_lat.cos() * (lon - pole_lon).cos();
    90.0 - cos_colat.clamp(-1.0, 1.0).acos().to_degrees()
}

/// Highest absolute geomagnetic latitude along a polyline path.
///
/// This is the risk-dominating statistic for a submarine cable: a single
/// high-latitude span exposes every repeater in that span.
pub fn max_abs_geomag_latitude(path: &[GeoPoint]) -> f64 {
    path.iter()
        .map(|p| geomagnetic_latitude(p).abs())
        .fold(0.0, f64::max)
}

/// Qualitative risk bands used in generated corpus text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum LatitudeBand {
    /// |geomagnetic latitude| < 30°: historically negligible GIC.
    Low,
    /// 30°–50°: moderate exposure during extreme events.
    Mid,
    /// > 50°: the auroral/sub-auroral zone where GIC concentrates.
    High,
}

impl LatitudeBand {
    pub fn of(geomag_lat_abs: f64) -> Self {
        if geomag_lat_abs < 30.0 {
            LatitudeBand::Low
        } else if geomag_lat_abs < 50.0 {
            LatitudeBand::Mid
        } else {
            LatitudeBand::High
        }
    }

    pub fn description(&self) -> &'static str {
        match self {
            LatitudeBand::Low => "low geomagnetic latitude, historically negligible storm exposure",
            LatitudeBand::Mid => {
                "mid geomagnetic latitude, moderate exposure during extreme events"
            }
            LatitudeBand::High => {
                "high geomagnetic latitude within the auroral zone of strongest induced currents"
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pole_has_maximum_geomag_latitude() {
        let v = geomagnetic_latitude(&GEOMAG_POLE);
        assert!((v - 90.0).abs() < 1e-9);
    }

    #[test]
    fn known_city_bands() {
        // North-American cities sit at notably higher geomagnetic than
        // geographic latitude (the pole leans toward them).
        let montreal = GeoPoint::new(45.50, -73.57);
        let gm = geomagnetic_latitude(&montreal);
        assert!(gm > 50.0, "Montréal geomagnetic latitude {gm}");

        // Singapore is nearly on the geomagnetic equator.
        let singapore = GeoPoint::new(1.35, 103.82);
        assert!(geomagnetic_latitude(&singapore).abs() < 15.0);

        // Fortaleza (Brazil) stays low — the Brazil–Europe route premise.
        let fortaleza = GeoPoint::new(-3.73, -38.52);
        assert!(geomagnetic_latitude(&fortaleza).abs() < 15.0);
    }

    #[test]
    fn us_cities_exceed_their_geographic_latitude() {
        let dc = GeoPoint::new(38.90, -77.04);
        assert!(geomagnetic_latitude(&dc) > dc.lat);
    }

    #[test]
    fn southern_hemisphere_is_negative() {
        let sydney = GeoPoint::new(-33.87, 151.21);
        assert!(geomagnetic_latitude(&sydney) < 0.0);
    }

    #[test]
    fn max_along_ny_london_path_exceeds_endpoints() {
        let ny = GeoPoint::new(40.71, -74.01);
        let ldn = GeoPoint::new(51.51, -0.13);
        let path = ny.great_circle_path(&ldn, 64);
        let max = max_abs_geomag_latitude(&path);
        let ends = geomagnetic_latitude(&ny)
            .abs()
            .max(geomagnetic_latitude(&ldn).abs());
        assert!(max >= ends, "path max {max} vs endpoint max {ends}");
        assert!(
            max > 55.0,
            "NY–London apex should be auroral-adjacent, got {max}"
        );
    }

    #[test]
    fn bands_partition_the_range() {
        assert_eq!(LatitudeBand::of(5.0), LatitudeBand::Low);
        assert_eq!(LatitudeBand::of(29.99), LatitudeBand::Low);
        assert_eq!(LatitudeBand::of(30.0), LatitudeBand::Mid);
        assert_eq!(LatitudeBand::of(49.99), LatitudeBand::Mid);
        assert_eq!(LatitudeBand::of(50.0), LatitudeBand::High);
        assert_eq!(LatitudeBand::of(90.0), LatitudeBand::High);
    }

    #[test]
    fn geomag_latitude_is_bounded() {
        for lat in [-90.0, -45.0, 0.0, 45.0, 90.0] {
            for lon in [-180.0, -90.0, 0.0, 90.0, 180.0] {
                let v = geomagnetic_latitude(&GeoPoint::new(lat, lon));
                assert!((-90.0..=90.0).contains(&v), "({lat},{lon}) -> {v}");
            }
        }
    }
}
