//! First-class incident scenarios.
//!
//! The HotNets '23 vision is an agent that investigates *arbitrary*
//! Internet incidents, not one hard-wired case study. This module makes
//! scenarios enumerable: a [`Scenario`] computes its ground-truth
//! [`ScenarioConclusion`]s *and* emits the matching corpus slice
//! ([`ScenarioDocs`]) from the same world-model facts, so the quiz and
//! the synthetic web can never drift apart. A serializable
//! [`ScenarioSpec`] names a scenario in the [`ScenarioRegistry`] plus
//! the corpus knobs, and is the single currency the assembly surface
//! (`ira-webcorpus`, `ira-core`, `ira-engine`, `ira-serve`) flows
//! through.
//!
//! Four scenarios ship in the standard registry:
//!
//! * [`SolarSuperstorm`] — the canonical path. Its conclusions are the
//!   derived [`ConclusionSet`](crate::ConclusionSet) and its corpus slice is empty (the base
//!   world corpus *is* the solar-superstorm web), so environments built
//!   through the spec are byte-identical to the legacy path.
//! * [`CableCut`] — a subsea landslide severs the most repeater-heavy
//!   transatlantic cable; ground truth derives from the cable database
//!   and great-circle geometry.
//! * [`RegionalGridFailure`] — geomagnetically induced currents collapse
//!   the most exposed power grid; ground truth derives from the GIC
//!   exposure model.
//! * [`RouteLeak`] — a configuration error withdraws a content
//!   provider's DNS prefixes; ground truth derives from the valley-free
//!   BGP model.

use crate::bgp::RoutingSystem;
use crate::cables::SubmarineCable;
use crate::conclusions::{Conclusion, ConclusionId};
use crate::geo::Region;
use crate::power::PowerGrid;
use crate::storm::StormScenario;
use crate::world::World;
use serde::{Deserialize, Serialize};

/// Coarse incident family, for registry listings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ScenarioClass {
    /// Space-weather driven (GIC, repeater failures).
    Geomagnetic,
    /// Physical infrastructure damage (cable cuts, anchor drags).
    PhysicalDamage,
    /// Power-grid collapse.
    PowerFailure,
    /// Control-plane incidents (BGP withdrawals, route leaks).
    Routing,
}

impl ScenarioClass {
    /// Every scenario class, in declaration order. The sim-LLM's
    /// per-class search-term tables (`ira-simllm::classterms`) must
    /// cover each of these labels; the evalkit integration suite pins
    /// the correspondence.
    pub const ALL: [ScenarioClass; 4] = [
        ScenarioClass::Geomagnetic,
        ScenarioClass::PhysicalDamage,
        ScenarioClass::PowerFailure,
        ScenarioClass::Routing,
    ];

    pub fn label(&self) -> &'static str {
        match self {
            ScenarioClass::Geomagnetic => "geomagnetic",
            ScenarioClass::PhysicalDamage => "physical-damage",
            ScenarioClass::PowerFailure => "power-failure",
            ScenarioClass::Routing => "routing",
        }
    }
}

fn default_scenario_name() -> String {
    SOLAR_SUPERSTORM.to_string()
}

fn default_corpus_seed() -> u64 {
    0xC0FFEE
}

fn default_distractors() -> usize {
    150
}

/// Serializable scenario descriptor: which registered scenario to
/// build, plus the corpus knobs. This is what requests, benches, and
/// the CLI carry; resolve it against a [`ScenarioRegistry`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Registry name, e.g. `solar-superstorm` or `cable-cut`.
    #[serde(default = "default_scenario_name")]
    pub scenario: String,
    /// Corpus prose/distractor RNG seed.
    #[serde(default = "default_corpus_seed")]
    pub seed: u64,
    /// Number of distractor documents.
    #[serde(default = "default_distractors")]
    pub distractors: usize,
}

impl ScenarioSpec {
    /// Spec for a named scenario with the canonical corpus knobs.
    pub fn named(scenario: &str) -> Self {
        ScenarioSpec {
            scenario: scenario.to_string(),
            seed: default_corpus_seed(),
            distractors: default_distractors(),
        }
    }

    /// The canonical solar-superstorm spec (the legacy default).
    pub fn solar_superstorm() -> Self {
        Self::named(SOLAR_SUPERSTORM)
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_distractors(mut self, distractors: usize) -> Self {
        self.distractors = distractors;
        self
    }
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        Self::solar_superstorm()
    }
}

/// One ground-truth conclusion of a scenario, in quiz form. The solar
/// scenario derives these from [`ConclusionSet`](crate::ConclusionSet); other scenarios
/// derive them from their slice of the world model. `wrong_terms`
/// carries the losing side of comparison questions (empty otherwise).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioConclusion {
    /// Stable label, e.g. `CableCutCause`.
    pub id: String,
    /// The expert statement being tested.
    pub statement: String,
    /// The question posed to the agent.
    pub question: String,
    /// Canonical expected answer.
    pub expected_answer: String,
    /// Terms indicating the agent reasoned from the right facts.
    pub rationale_terms: Vec<String>,
    /// Terms marking the wrong side of a comparison.
    pub wrong_terms: Vec<String>,
    /// Human-readable evidence computed from the model.
    pub evidence: String,
    /// Whether the model supports the statement.
    pub holds: bool,
}

/// Which kind of site publishes a scenario document. Mirrors the
/// corpus source kinds without depending on `ira-webcorpus` (which
/// sits *above* this crate); the corpus layer maps each channel onto
/// its virtual host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DocChannel {
    Encyclopedia,
    News,
    Blog,
    Forum,
    MicroPost,
    PaperAbstract,
}

/// One scenario-specific document as structured facts; the corpus
/// layer renders it into a page.
#[derive(Debug, Clone)]
pub struct ScenarioDoc {
    pub channel: DocChannel,
    pub title: String,
    /// Canonical fact sentences, joined into the body in order.
    pub sentences: Vec<String>,
}

impl ScenarioDoc {
    fn new(channel: DocChannel, title: &str, sentences: Vec<String>) -> Self {
        ScenarioDoc {
            channel,
            title: title.to_string(),
            sentences,
        }
    }
}

/// The scenario's corpus slice. Every scenario shares the base world
/// corpus (the infrastructure web is common background); `events` are
/// the incident-specific pages appended to it. The solar scenario has
/// no events — the base corpus already *is* its web — which is what
/// keeps the canonical path byte-identical.
#[derive(Debug, Clone, Default)]
pub struct ScenarioDocs {
    pub events: Vec<ScenarioDoc>,
}

impl ScenarioDocs {
    /// Total characters of event text (titles + sentences), for
    /// registry listings.
    pub fn event_count(&self) -> usize {
        self.events.len()
    }
}

/// An enumerable incident scenario: ground truth and corpus slice
/// derived from the same world-model facts.
///
/// Contract: everything `conclusions` asserts must be computable from
/// `world`, and every rationale term must be grounded in the corpus the
/// scenario emits (its `docs` events, or the base world corpus for
/// scenarios without events). [`Scenario::self_check`] verifies the
/// mechanical half of that contract.
pub trait Scenario: Send + Sync {
    /// Stable registry name (kebab-case).
    fn name(&self) -> &'static str;
    /// Incident family.
    fn class(&self) -> ScenarioClass;
    /// One-line description for listings.
    fn description(&self) -> &'static str;
    /// Ground-truth conclusions derived from the world.
    fn conclusions(&self, world: &World) -> Vec<ScenarioConclusion>;
    /// The scenario's corpus slice derived from the same facts.
    fn docs(&self, world: &World) -> ScenarioDocs;

    /// Quiz ground-truth self-consistency: every conclusion must hold
    /// in the model, carry a complete quiz form with a unique id, and —
    /// when the scenario emits event documents — have every rationale
    /// term grounded in that emitted text, so the quiz never asks for
    /// something the corpus does not say.
    fn self_check(&self, world: &World) -> Result<(), String> {
        let conclusions = self.conclusions(world);
        if conclusions.is_empty() {
            return Err(format!("scenario `{}` has no conclusions", self.name()));
        }
        let mut ids: Vec<&str> = conclusions.iter().map(|c| c.id.as_str()).collect();
        ids.sort();
        ids.dedup();
        if ids.len() != conclusions.len() {
            return Err(format!(
                "scenario `{}` has duplicate conclusion ids",
                self.name()
            ));
        }
        let docs = self.docs(world);
        let mut pool = String::new();
        for d in &docs.events {
            pool.push_str(&d.title.to_lowercase());
            pool.push('\n');
            for s in &d.sentences {
                pool.push_str(&s.to_lowercase());
                pool.push('\n');
            }
        }
        for c in &conclusions {
            if !c.holds {
                return Err(format!("conclusion `{}` does not hold in the model", c.id));
            }
            if c.question.is_empty() || c.expected_answer.is_empty() || c.rationale_terms.is_empty()
            {
                return Err(format!("conclusion `{}` has an incomplete quiz form", c.id));
            }
            if !docs.events.is_empty() {
                for term in &c.rationale_terms {
                    if !pool.contains(&term.to_lowercase()) {
                        return Err(format!(
                            "conclusion `{}` rationale term `{term}` is not grounded \
                             in the scenario's emitted documents",
                            c.id
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Registry name of the canonical scenario.
pub const SOLAR_SUPERSTORM: &str = "solar-superstorm";
/// Registry name of the transatlantic cable-cut scenario.
pub const CABLE_CUT: &str = "cable-cut";
/// Registry name of the GIC grid-collapse scenario.
pub const REGIONAL_GRID_FAILURE: &str = "regional-grid-failure";
/// Registry name of the BGP route-withdrawal scenario.
pub const ROUTE_LEAK: &str = "route-leak";

/// Named constructors for every known scenario, in stable (listing)
/// order.
pub struct ScenarioRegistry {
    entries: Vec<(&'static str, ScenarioCtor)>,
}

/// Constructor for a registered scenario.
type ScenarioCtor = fn() -> Box<dyn Scenario>;

impl ScenarioRegistry {
    /// The standard registry: the canonical scenario first, then the
    /// rest in alphabetical order.
    pub fn standard() -> Self {
        ScenarioRegistry {
            entries: vec![
                (SOLAR_SUPERSTORM, || Box::new(SolarSuperstorm)),
                (CABLE_CUT, || Box::new(CableCut)),
                (REGIONAL_GRID_FAILURE, || Box::new(RegionalGridFailure)),
                (ROUTE_LEAK, || Box::new(RouteLeak)),
            ],
        }
    }

    /// Registered names, in listing order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|(n, _)| *n).collect()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Construct the named scenario.
    pub fn get(&self, name: &str) -> Option<Box<dyn Scenario>> {
        self.entries
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, ctor)| ctor())
    }

    /// The interned (static) spelling of `name`, usable as a cache key.
    pub fn static_name(&self, name: &str) -> Option<&'static str> {
        self.entries.iter().map(|(n, _)| *n).find(|n| *n == name)
    }
}

impl Default for ScenarioRegistry {
    fn default() -> Self {
        Self::standard()
    }
}

/// Construct a scenario by name from the standard registry.
pub fn lookup(name: &str) -> Option<Box<dyn Scenario>> {
    ScenarioRegistry::standard().get(name)
}

/// Intern a scenario name against the standard registry.
pub fn static_name(name: &str) -> Option<&'static str> {
    ScenarioRegistry::standard().static_name(name)
}

// ---------------------------------------------------------------------
// Solar superstorm — the canonical path, ported.
// ---------------------------------------------------------------------

/// The canonical scenario: a Carrington-class geomagnetic storm. Its
/// conclusions are exactly the derived [`ConclusionSet`](crate::ConclusionSet) and it emits
/// no event documents (the base world corpus is its web), so the spec
/// path reproduces the legacy construction byte for byte.
pub struct SolarSuperstorm;

/// The losing side of each comparison question, ported verbatim from
/// the legacy quiz bank so the spec path scores identically.
fn solar_wrong_terms(id: ConclusionId) -> Vec<String> {
    match id {
        ConclusionId::BrazilEuropeCableSafer => vec!["brazil".into()],
        ConclusionId::GoogleBetterSpread => vec!["google's data centers are more".into()],
        ConclusionId::UsMoreSusceptibleThanAsia => vec!["asia is more".into()],
        _ => Vec::new(),
    }
}

/// Convert one derived conclusion into the generic scenario form.
pub fn conclusion_to_scenario(c: &Conclusion) -> ScenarioConclusion {
    ScenarioConclusion {
        id: format!("{:?}", c.id),
        statement: c.statement.clone(),
        question: c.question.clone(),
        expected_answer: c.expected_answer.clone(),
        rationale_terms: c.rationale_terms.clone(),
        wrong_terms: solar_wrong_terms(c.id),
        evidence: c.evidence.clone(),
        holds: c.holds,
    }
}

impl Scenario for SolarSuperstorm {
    fn name(&self) -> &'static str {
        SOLAR_SUPERSTORM
    }

    fn class(&self) -> ScenarioClass {
        ScenarioClass::Geomagnetic
    }

    fn description(&self) -> &'static str {
        "Carrington-class geomagnetic storm threatening repeaters, grids, and data centers"
    }

    fn conclusions(&self, world: &World) -> Vec<ScenarioConclusion> {
        world
            .conclusions()
            .iter()
            .map(conclusion_to_scenario)
            .collect()
    }

    fn docs(&self, _world: &World) -> ScenarioDocs {
        ScenarioDocs::default()
    }
}

// ---------------------------------------------------------------------
// Cable cut.
// ---------------------------------------------------------------------

/// A subsea landslide severs the most repeater-heavy transatlantic
/// cable. Target choice, repeater count, span length, and corridor
/// redundancy all derive from the cable database.
pub struct CableCut;

impl CableCut {
    /// The severed cable: the North-America–Europe system with the most
    /// repeaters (longest exposure), ties broken by name for
    /// determinism.
    pub fn target(world: &World) -> &SubmarineCable {
        world
            .cables
            .between(Region::NorthAmerica, Region::Europe)
            .into_iter()
            .max_by(|a, b| {
                a.repeater_count()
                    .cmp(&b.repeater_count())
                    .then_with(|| a.name.cmp(&b.name))
            })
            .expect("standard world has transatlantic cables")
    }

    /// Parallel systems still serving the corridor after the cut.
    fn survivors(world: &World) -> usize {
        world
            .cables
            .between(Region::NorthAmerica, Region::Europe)
            .len()
            .saturating_sub(1)
    }
}

impl Scenario for CableCut {
    fn name(&self) -> &'static str {
        CABLE_CUT
    }

    fn class(&self) -> ScenarioClass {
        ScenarioClass::PhysicalDamage
    }

    fn description(&self) -> &'static str {
        "Subsea landslide severs the most repeater-heavy transatlantic cable"
    }

    fn conclusions(&self, world: &World) -> Vec<ScenarioConclusion> {
        let cable = Self::target(world);
        let survivors = Self::survivors(world);
        let repeaters = cable.repeater_count();
        let length = cable.length_km().round() as u64;
        vec![
            ScenarioConclusion {
                id: "CableCutCause".into(),
                statement: format!(
                    "The {} outage was caused by a subsea landslide that severed the cable.",
                    cable.name
                ),
                question: format!("What caused the {} submarine cable outage?", cable.name),
                expected_answer: "a subsea landslide severed the cable on the continental slope"
                    .into(),
                rationale_terms: vec!["landslide".into(), "severed".into()],
                wrong_terms: Vec::new(),
                evidence: format!(
                    "{} ({} km, RFS {}) is the severed system.",
                    cable.name, length, cable.rfs_year
                ),
                holds: true,
            },
            ScenarioConclusion {
                id: "CableCutCorridorRedundancy".into(),
                statement: format!(
                    "The transatlantic corridor survived the loss of the {}.",
                    cable.name
                ),
                question: format!(
                    "Did North America and Europe stay connected after the {} was cut?",
                    cable.name
                ),
                expected_answer: format!(
                    "yes — traffic rerouted onto {survivors} parallel transatlantic cable systems"
                ),
                rationale_terms: vec!["parallel".into(), "rerouted".into()],
                wrong_terms: vec!["partition".into()],
                evidence: format!(
                    "{survivors} other North-America–Europe systems remain in the database."
                ),
                holds: survivors >= 1,
            },
            ScenarioConclusion {
                id: "CableCutRepeatersLost".into(),
                statement: format!(
                    "The break took about {repeaters} optical repeaters out of service."
                ),
                question: format!(
                    "How many optical repeaters went dark when the {} failed?",
                    cable.name
                ),
                expected_answer: format!("about {repeaters} repeaters"),
                rationale_terms: vec!["repeaters".into()],
                wrong_terms: Vec::new(),
                evidence: format!(
                    "{} km at one repeater per ~70 km gives {repeaters} repeaters.",
                    length
                ),
                holds: repeaters > 0,
            },
            ScenarioConclusion {
                id: "CableCutRepairMethod".into(),
                statement: "A severed submarine cable is repaired at sea by a cable repair ship."
                    .into(),
                question: "How is a severed submarine cable repaired?".into(),
                expected_answer:
                    "a cable repair ship grapples the damaged section and splices in a new span"
                        .into(),
                rationale_terms: vec!["repair ship".into(), "splice".into()],
                wrong_terms: Vec::new(),
                evidence: "Repair doctrine is scenario ground truth (physical-damage class)."
                    .into(),
                holds: true,
            },
            ScenarioConclusion {
                id: "CableCutLength".into(),
                statement: format!("The {} system spans about {length} km.", cable.name),
                question: format!("How long is the {} cable?", cable.name),
                expected_answer: format!("about {length} km"),
                rationale_terms: vec![format!("{length} km")],
                wrong_terms: Vec::new(),
                evidence: format!(
                    "Great-circle length with route slack {:.2}.",
                    cable.route_slack
                ),
                holds: length > 0,
            },
        ]
    }

    fn docs(&self, world: &World) -> ScenarioDocs {
        let cable = Self::target(world);
        let survivors = Self::survivors(world);
        let repeaters = cable.repeater_count();
        let length = cable.length_km().round() as u64;
        let from = &cable.from;
        let to = &cable.to;
        ScenarioDocs {
            events: vec![
                ScenarioDoc::new(
                    DocChannel::News,
                    &format!("{} Cable Severed in Subsea Landslide", cable.name),
                    vec![
                        format!(
                            "The {} cable was severed by a subsea landslide on the \
                             continental slope.",
                            cable.name
                        ),
                        format!(
                            "The system links {}, {} to {}, {}.",
                            from.name, from.country, to.name, to.country
                        ),
                        format!(
                            "Traffic rerouted onto {survivors} parallel transatlantic cable \
                             systems within minutes."
                        ),
                    ],
                ),
                ScenarioDoc::new(
                    DocChannel::Encyclopedia,
                    &format!("{} Cable Disruption", cable.name),
                    vec![
                        format!("The {} system spans about {length} km.", cable.name),
                        format!(
                            "The break took about {repeaters} optical repeaters out of service."
                        ),
                        format!(
                            "Because {survivors} parallel systems serve the corridor, North \
                             America and Europe stayed connected.",
                        ),
                    ],
                ),
                ScenarioDoc::new(
                    DocChannel::Blog,
                    "Anatomy of a Subsea Cable Repair",
                    vec![
                        "A cable repair ship grapples the damaged section and splices in a new \
                         span."
                            .into(),
                        "Splice operations typically take one to two weeks of ship time.".into(),
                        format!(
                            "Until the splice completes, the {} remains dark end to end.",
                            cable.name
                        ),
                    ],
                ),
                ScenarioDoc::new(
                    DocChannel::Forum,
                    &format!("Why did the {} go dark?", cable.name),
                    vec![
                        format!(
                            "Operators confirmed a landslide severed the {} — not a storm, \
                             not an anchor drag.",
                            cable.name
                        ),
                        "Latency between the endpoints jumped as traffic rerouted onto parallel \
                         systems."
                            .into(),
                    ],
                ),
                ScenarioDoc::new(
                    DocChannel::MicroPost,
                    &format!("{} outage thread", cable.name),
                    vec![format!(
                        "The {} is down — landslide on the slope, repair ship en route.",
                        cable.name
                    )],
                ),
            ],
        }
    }
}

// ---------------------------------------------------------------------
// Regional grid failure.
// ---------------------------------------------------------------------

/// Geomagnetically induced currents collapse the most exposed power
/// grid during a Québec-1989-class storm. Target, runner-up, and the
/// low-latitude contrast all derive from the GIC exposure model.
pub struct RegionalGridFailure;

impl RegionalGridFailure {
    /// Grids ranked by GIC exposure, most exposed first; ties broken by
    /// name for determinism.
    pub fn ranked(world: &World) -> Vec<&PowerGrid> {
        let mut grids: Vec<&PowerGrid> = world.grids.iter().collect();
        grids.sort_by(|a, b| {
            b.exposure()
                .partial_cmp(&a.exposure())
                .expect("exposures are finite")
                .then_with(|| a.name.cmp(&b.name))
        });
        grids
    }
}

impl Scenario for RegionalGridFailure {
    fn name(&self) -> &'static str {
        REGIONAL_GRID_FAILURE
    }

    fn class(&self) -> ScenarioClass {
        ScenarioClass::PowerFailure
    }

    fn description(&self) -> &'static str {
        "Geomagnetically induced currents collapse the most exposed power grid"
    }

    fn conclusions(&self, world: &World) -> Vec<ScenarioConclusion> {
        let ranked = Self::ranked(world);
        let target = ranked.first().expect("standard world has grids");
        let runner_up = ranked.get(1).expect("standard world has several grids");
        let least = ranked.last().expect("standard world has grids");
        let storm = StormScenario::railroad_1921();
        let collapse = world.storm_model.grid_collapse_prob(target, &storm);
        vec![
            ScenarioConclusion {
                id: "GridFailureCause".into(),
                statement: format!(
                    "The {} grid collapsed because geomagnetically induced currents saturated \
                     its transformers.",
                    target.name
                ),
                question: format!("What caused the {} power grid collapse?", target.name),
                expected_answer:
                    "geomagnetically induced currents from a severe geomagnetic storm saturated \
                     its extra-high-voltage transformers"
                        .into(),
                rationale_terms: vec![
                    "geomagnetically induced currents".into(),
                    "transformers".into(),
                ],
                wrong_terms: Vec::new(),
                evidence: format!(
                    "Collapse probability {collapse:.2} for {} under the {} storm.",
                    target.name, storm.name
                ),
                holds: collapse > 0.5,
            },
            ScenarioConclusion {
                id: "GridFailureMostExposed".into(),
                statement: format!(
                    "{} is the power grid most exposed to geomagnetic storms.",
                    target.name
                ),
                question: "Which power grid is most exposed to geomagnetic storms?".into(),
                expected_answer: target.name.clone(),
                rationale_terms: vec![target.name.to_lowercase(), "exposure".into()],
                wrong_terms: vec![runner_up.name.to_lowercase()],
                evidence: format!(
                    "Exposure {:.3} ({}) vs {:.3} ({}).",
                    target.exposure(),
                    target.name,
                    runner_up.exposure(),
                    runner_up.name
                ),
                holds: target.exposure() > runner_up.exposure(),
            },
            ScenarioConclusion {
                id: "GridFailureLowLatitudeImmune".into(),
                statement: format!(
                    "Low geomagnetic latitude grids such as {} face negligible GIC risk.",
                    least.name
                ),
                question: format!(
                    "Are equatorial power grids like {} at similar geomagnetic risk?",
                    least.name
                ),
                expected_answer: format!(
                    "no — grids at low geomagnetic latitude such as {} face negligible GIC \
                     exposure",
                    least.name
                ),
                rationale_terms: vec!["low geomagnetic latitude".into(), "negligible".into()],
                wrong_terms: Vec::new(),
                evidence: format!(
                    "Exposure {:.4} ({}) vs {:.3} ({}).",
                    least.exposure(),
                    least.name,
                    target.exposure(),
                    target.name
                ),
                holds: least.exposure() < 0.05 * target.exposure(),
            },
            ScenarioConclusion {
                id: "GridFailureTransformers".into(),
                statement: "Extra-high-voltage transformers are the component that fails in a \
                            GIC-driven grid collapse."
                    .into(),
                question: "Which grid component fails during a severe geomagnetic storm?".into(),
                expected_answer: "extra-high-voltage transformers saturate and overheat".into(),
                rationale_terms: vec!["transformers".into(), "saturate".into()],
                wrong_terms: Vec::new(),
                evidence: format!(
                    "Ground factor {:.1} and line factor {:.1} drive {}'s exposure.",
                    target.ground_factor, target.line_factor, target.name
                ),
                holds: true,
            },
        ]
    }

    fn docs(&self, world: &World) -> ScenarioDocs {
        let ranked = Self::ranked(world);
        let target = ranked.first().expect("standard world has grids");
        let least = ranked.last().expect("standard world has grids");
        let storm = StormScenario::railroad_1921();
        ScenarioDocs {
            events: vec![
                ScenarioDoc::new(
                    DocChannel::News,
                    &format!("{} Grid Collapses During Geomagnetic Storm", target.name),
                    vec![
                        format!(
                            "The {} power grid collapsed when geomagnetically induced currents \
                             saturated its extra-high-voltage transformers.",
                            target.name
                        ),
                        format!(
                            "The storm measured {:.0} nT, comparable to the {} event.",
                            storm.dst_nt, storm.name
                        ),
                        format!(
                            "Data centers in the region fell back to diesel generation while \
                             the {} grid restarted.",
                            target.name
                        ),
                    ],
                ),
                ScenarioDoc::new(
                    DocChannel::Encyclopedia,
                    "Geomagnetically Induced Currents in Power Grids",
                    vec![
                        "Geomagnetically induced currents flow through long transmission lines \
                         and transformer ground connections."
                            .into(),
                        "Extra-high-voltage transformers saturate and overheat under sustained \
                         GIC."
                            .into(),
                        format!(
                            "{} has the highest GIC exposure of any major grid.",
                            target.name
                        ),
                    ],
                ),
                ScenarioDoc::new(
                    DocChannel::PaperAbstract,
                    "Ranking Power Grid Exposure to Geomagnetic Storms",
                    vec![
                        format!(
                            "We rank grids by GIC exposure and find {} most exposed.",
                            target.name
                        ),
                        format!(
                            "Grids at low geomagnetic latitude, such as {}, show negligible \
                             exposure.",
                            least.name
                        ),
                        "Exposure scales with geomagnetic latitude, ground resistivity, and \
                         line length."
                            .into(),
                    ],
                ),
                ScenarioDoc::new(
                    DocChannel::Forum,
                    &format!("Blackout in the {} region — storm related?", target.name),
                    vec![
                        format!(
                            "Confirmed: the {} collapse was storm-driven, not a cyber incident.",
                            target.name
                        ),
                        "Transformer saturation tripped protective relays within ninety \
                         seconds."
                            .into(),
                    ],
                ),
            ],
        }
    }
}

// ---------------------------------------------------------------------
// Route leak.
// ---------------------------------------------------------------------

/// A configuration error withdraws Facebook's DNS prefixes (the 2021
/// outage pattern). Availability numbers derive from the valley-free
/// BGP model's replay.
pub struct RouteLeak;

impl RouteLeak {
    /// (before, during, after) availability fractions from the replay.
    pub fn replay() -> (f64, f64, f64) {
        RoutingSystem::standard().facebook_outage_replay()
    }
}

impl Scenario for RouteLeak {
    fn name(&self) -> &'static str {
        ROUTE_LEAK
    }

    fn class(&self) -> ScenarioClass {
        ScenarioClass::Routing
    }

    fn description(&self) -> &'static str {
        "Configuration error withdraws a content provider's DNS prefixes"
    }

    fn conclusions(&self, _world: &World) -> Vec<ScenarioConclusion> {
        let (before, during, after) = Self::replay();
        let pct = |v: f64| (v * 100.0).round() as u64;
        vec![
            ScenarioConclusion {
                id: "RouteLeakCause".into(),
                statement: "A configuration error withdrew the BGP routes for the DNS prefixes, \
                            taking the service offline."
                    .into(),
                question: "What took facebook.com offline in the routing incident?".into(),
                expected_answer: "a configuration error withdrew the BGP routes for its DNS \
                                  prefixes, so its nameservers became unreachable"
                    .into(),
                rationale_terms: vec!["withdrew".into(), "dns".into()],
                wrong_terms: Vec::new(),
                evidence: format!(
                    "Withdrawing the two DNS prefixes drops availability from {} to {} percent.",
                    pct(before),
                    pct(during)
                ),
                holds: during < before,
            },
            ScenarioConclusion {
                id: "RouteLeakAvailability".into(),
                statement: format!(
                    "During the withdrawal, {} percent of edge networks could reach the service.",
                    pct(during)
                ),
                question: "What fraction of edge networks could reach facebook.com during the \
                           route withdrawal?"
                    .into(),
                expected_answer: format!("about {} percent of edge networks", pct(during)),
                rationale_terms: vec![format!("{} percent", pct(during))],
                wrong_terms: Vec::new(),
                evidence: format!(
                    "Edge-AS availability: before {:.2}, during {:.2}, after {:.2}.",
                    before, during, after
                ),
                holds: during < 0.5,
            },
            ScenarioConclusion {
                id: "RouteLeakContentStillAnnounced".into(),
                statement: "Only the DNS prefixes were withdrawn; the content prefixes stayed \
                            announced but unreachable by name."
                    .into(),
                question: "Were the content prefixes also withdrawn during the outage?".into(),
                expected_answer: "no — the content prefixes stayed announced; only the \
                                  nameservers became unreachable"
                    .into(),
                rationale_terms: vec!["content prefixes".into(), "nameservers".into()],
                wrong_terms: Vec::new(),
                evidence: "The replay withdraws 129.134.30.0/24 and 129.134.31.0/24 only.".into(),
                holds: true,
            },
            ScenarioConclusion {
                id: "RouteLeakRecovery".into(),
                statement: format!(
                    "Re-announcing the prefixes restored availability to {} percent.",
                    pct(after)
                ),
                question: "Did availability recover once the routes were re-announced?".into(),
                expected_answer: format!(
                    "yes — availability was restored to {} percent once the prefixes were \
                     re-announced",
                    pct(after)
                ),
                rationale_terms: vec!["re-announced".into(), "restored".into()],
                wrong_terms: Vec::new(),
                evidence: format!(
                    "Availability after restore equals the pre-incident {:.2}.",
                    before
                ),
                holds: (after - before).abs() < f64::EPSILON,
            },
        ]
    }

    fn docs(&self, _world: &World) -> ScenarioDocs {
        let (before, during, after) = Self::replay();
        let pct = |v: f64| (v * 100.0).round() as u64;
        ScenarioDocs {
            events: vec![
                ScenarioDoc::new(
                    DocChannel::News,
                    "Facebook Unreachable After BGP Withdrawal",
                    vec![
                        "A configuration error withdrew the BGP routes for Facebook's DNS \
                         prefixes."
                            .into(),
                        format!(
                            "Only {} percent of edge networks could reach facebook.com during \
                             the incident.",
                            pct(during)
                        ),
                        "The content prefixes stayed announced, but with the nameservers \
                         unreachable no client could resolve the service."
                            .into(),
                    ],
                ),
                ScenarioDoc::new(
                    DocChannel::Blog,
                    "DNS as a Single Point of Failure",
                    vec![
                        "When authoritative nameservers sit on withdrawn prefixes, reachable \
                         content becomes unreachable by name."
                            .into(),
                        format!(
                            "Availability was restored to {} percent once the prefixes were \
                             re-announced.",
                            pct(after)
                        ),
                    ],
                ),
                ScenarioDoc::new(
                    DocChannel::MicroPost,
                    "BGP withdrawal live thread",
                    vec![format!(
                        "facebook.com availability: {} percent → {} percent → {} percent as \
                         routes were withdrawn and re-announced.",
                        pct(before),
                        pct(during),
                        pct(after)
                    )],
                ),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> World {
        World::standard()
    }

    #[test]
    fn registry_lists_four_scenarios_with_unique_names() {
        let reg = ScenarioRegistry::standard();
        let names = reg.names();
        assert_eq!(names.len(), 4);
        assert_eq!(names[0], SOLAR_SUPERSTORM, "canonical scenario lists first");
        let mut unique = names.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), names.len());
        for name in names {
            assert_eq!(reg.get(name).unwrap().name(), name);
            assert_eq!(reg.static_name(name), Some(name));
        }
        assert!(reg.get("no-such-scenario").is_none());
        assert!(reg.static_name("no-such-scenario").is_none());
    }

    #[test]
    fn spec_serde_round_trips_and_defaults_fill_in() {
        let spec = ScenarioSpec::named(CABLE_CUT)
            .with_seed(7)
            .with_distractors(10);
        let json = serde_json::to_string(&spec).unwrap();
        let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
        // Missing fields take the canonical defaults.
        let default: ScenarioSpec = serde_json::from_str("{}").unwrap();
        assert_eq!(default, ScenarioSpec::default());
        assert_eq!(default.scenario, SOLAR_SUPERSTORM);
        assert_eq!(default.seed, 0xC0FFEE);
        assert_eq!(default.distractors, 150);
    }

    #[test]
    fn solar_conclusions_match_the_derived_set() {
        let w = world();
        let ported = SolarSuperstorm.conclusions(&w);
        let legacy = w.conclusions();
        assert_eq!(ported.len(), 8);
        for (p, l) in ported.iter().zip(legacy.iter()) {
            assert_eq!(p.id, format!("{:?}", l.id));
            assert_eq!(p.statement, l.statement);
            assert_eq!(p.question, l.question);
            assert_eq!(p.expected_answer, l.expected_answer);
            assert_eq!(p.rationale_terms, l.rationale_terms);
            assert_eq!(p.evidence, l.evidence);
            assert_eq!(p.holds, l.holds);
        }
    }

    #[test]
    fn solar_emits_no_event_docs() {
        assert!(SolarSuperstorm.docs(&world()).events.is_empty());
    }

    #[test]
    fn every_scenario_passes_its_self_check() {
        let w = world();
        for name in ScenarioRegistry::standard().names() {
            let sc = lookup(name).unwrap();
            sc.self_check(&w).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn cable_cut_target_is_deterministic_and_transatlantic() {
        let w = world();
        let a = CableCut::target(&w).name.clone();
        let b = CableCut::target(&w).name.clone();
        assert_eq!(a, b);
        let cable = CableCut::target(&w);
        assert!(cable.connects(Region::NorthAmerica, Region::Europe));
        let cs = CableCut.conclusions(&w);
        assert!(cs.iter().all(|c| c.holds));
        assert!(cs.iter().any(|c| c.question.contains(&cable.name)));
    }

    #[test]
    fn grid_failure_targets_the_most_exposed_grid() {
        let w = world();
        let ranked = RegionalGridFailure::ranked(&w);
        assert!(ranked.len() >= 3);
        assert!(ranked[0].exposure() > ranked[1].exposure());
        let cs = RegionalGridFailure.conclusions(&w);
        let most = cs
            .iter()
            .find(|c| c.id == "GridFailureMostExposed")
            .unwrap();
        assert_eq!(most.expected_answer, ranked[0].name);
        assert_eq!(most.wrong_terms, vec![ranked[1].name.to_lowercase()]);
    }

    #[test]
    fn route_leak_numbers_match_the_bgp_replay() {
        let (before, during, after) = RouteLeak::replay();
        assert!(before > during);
        assert_eq!(before, after);
        let cs = RouteLeak.conclusions(&world());
        let avail = cs.iter().find(|c| c.id == "RouteLeakAvailability").unwrap();
        let pct = (during * 100.0).round() as u64;
        assert!(avail.expected_answer.contains(&format!("{pct} percent")));
    }

    #[test]
    fn scenario_classes_and_descriptions_are_stable() {
        let reg = ScenarioRegistry::standard();
        let classes: Vec<&str> = reg
            .names()
            .iter()
            .map(|n| reg.get(n).unwrap().class().label())
            .collect();
        assert_eq!(
            classes,
            vec!["geomagnetic", "physical-damage", "power-failure", "routing"]
        );
        for name in reg.names() {
            assert!(!reg.get(name).unwrap().description().is_empty());
        }
    }
}
