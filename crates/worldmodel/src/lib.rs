//! # ira-worldmodel
//!
//! The ground-truth model of Internet infrastructure and geomagnetic
//! storm physics that the rest of the reproduction is anchored to.
//!
//! The HotNets '23 paper evaluates its research agent by checking the
//! agent's conclusions against *Solar Superstorms: Planning for an
//! Internet Apocalypse* (SIGCOMM '21). That paper's conclusions follow
//! from physical and geographic facts: geomagnetically induced currents
//! (GIC) concentrate at high geomagnetic latitudes, submarine cable
//! repeaters are powered and therefore vulnerable while the fiber itself
//! is not, long trans-Atlantic cables cross high latitudes while the
//! Brazil–Europe route stays low, Google's data centers are more
//! dispersed than Facebook's, and so on.
//!
//! This crate encodes those facts once:
//!
//! * [`geo`] — coordinates, great-circle math, the city gazetteer.
//! * [`geomag`] — dipole geomagnetic latitude.
//! * [`cables`] — a database of real submarine cables with sampled
//!   great-circle paths and repeater counts.
//! * [`datacenters`] — Google and Facebook/Meta data-center sites with
//!   dispersion metrics.
//! * [`power`] — regional power-grid vulnerability.
//! * [`storm`] — storm scenarios (Carrington 1859, 1921, Québec 1989…)
//!   and the GIC failure-probability model.
//! * [`graph`] — the connectivity graph and partition analysis.
//! * [`conclusions`] — the eight expert conclusions, *derived* from the
//!   model rather than hard-coded, so the evaluation harness can verify
//!   them mechanically.
//! * [`scenario`] — enumerable incident scenarios: each derives its
//!   ground-truth conclusions *and* its corpus slice from the same
//!   model facts, with the solar superstorm as the canonical member.
//! * [`world`] — the bundle type tying it together.
//!
//! The synthetic web corpus (`ira-webcorpus`) is generated from this
//! same model, which is what makes "the agent learns from the web and
//! reaches expert conclusions" a checkable statement.

pub mod audit;
pub mod bgp;
pub mod cables;
pub mod conclusions;
pub mod datacenters;
pub mod econ;
pub mod forecast;
pub mod geo;
pub mod geomag;
pub mod graph;
pub mod incidents;
pub mod power;
pub mod scenario;
pub mod storm;
pub mod world;

pub use audit::{audit, AuditReport};
pub use bgp::{AsGraph, AsKind, RoutingSystem};
pub use cables::{CableDatabase, SubmarineCable};
pub use conclusions::{Conclusion, ConclusionId, ConclusionSet};
pub use datacenters::{DataCenter, DataCenterFleet, Operator};
pub use econ::{storm_impact, EconomicImpact};
pub use forecast::{CmeEvent, CostModel, ForecastModel, ShutdownPolicy};
pub use geo::{GeoPoint, Region};
pub use graph::{ConnectivityReport, TopologyGraph};
pub use incidents::{Incident, IncidentCatalog, IncidentClass, IncidentId};
pub use power::{PowerGrid, PowerGridDatabase};
pub use scenario::{
    Scenario, ScenarioClass, ScenarioConclusion, ScenarioDoc, ScenarioDocs, ScenarioRegistry,
    ScenarioSpec,
};
pub use storm::{StormModel, StormScenario};
pub use world::World;
