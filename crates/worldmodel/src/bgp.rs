//! Inter-domain routing and DNS: the substrate behind the
//! configuration-error incident class.
//!
//! The 2021 Facebook outage (§2 of the paper) was a BGP event: a
//! configuration change withdrew the routes covering Facebook's
//! authoritative DNS servers, and with resolution gone every service
//! went dark. To let the reproduction *simulate* that mechanism rather
//! than merely quote it, this module implements:
//!
//! * an AS-level topology with customer–provider and peer links,
//! * Gao–Rexford valley-free reachability (routes travel up through
//!   providers, across at most one peer link, then down through
//!   customers),
//! * prefix announcement/withdrawal, and
//! * a DNS layer where resolving a name requires reachability to at
//!   least one authoritative-server prefix.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Autonomous system number.
pub type Asn = u32;

/// What an AS is for, used for topology generation and reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AsKind {
    /// Global transit-free backbone.
    Tier1,
    /// Regional transit provider.
    Transit,
    /// Eyeball/access network.
    Edge,
    /// Content/hyperscaler network.
    Content,
}

/// One autonomous system.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AsNode {
    pub asn: Asn,
    pub name: String,
    pub kind: AsKind,
}

/// The AS-level topology.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AsGraph {
    nodes: BTreeMap<Asn, AsNode>,
    /// customer → set of providers.
    providers: BTreeMap<Asn, BTreeSet<Asn>>,
    /// Symmetric peering links.
    peers: BTreeMap<Asn, BTreeSet<Asn>>,
}

impl AsGraph {
    pub fn new() -> Self {
        AsGraph::default()
    }

    pub fn add_as(&mut self, asn: Asn, name: &str, kind: AsKind) {
        self.nodes.insert(
            asn,
            AsNode {
                asn,
                name: name.to_string(),
                kind,
            },
        );
    }

    /// Record that `customer` buys transit from `provider`.
    pub fn add_provider(&mut self, customer: Asn, provider: Asn) {
        assert!(
            self.nodes.contains_key(&customer),
            "unknown customer AS{customer}"
        );
        assert!(
            self.nodes.contains_key(&provider),
            "unknown provider AS{provider}"
        );
        assert_ne!(customer, provider, "an AS cannot be its own provider");
        self.providers.entry(customer).or_default().insert(provider);
    }

    /// Record a settlement-free peering between `a` and `b`.
    pub fn add_peering(&mut self, a: Asn, b: Asn) {
        assert!(self.nodes.contains_key(&a) && self.nodes.contains_key(&b));
        assert_ne!(a, b);
        self.peers.entry(a).or_default().insert(b);
        self.peers.entry(b).or_default().insert(a);
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub fn node(&self, asn: Asn) -> Option<&AsNode> {
        self.nodes.get(&asn)
    }

    pub fn ases(&self) -> impl Iterator<Item = &AsNode> {
        self.nodes.values()
    }

    /// The up-cone of `asn`: itself plus the transitive closure of its
    /// providers.
    fn up_cone(&self, asn: Asn) -> BTreeSet<Asn> {
        let mut cone = BTreeSet::new();
        let mut stack = vec![asn];
        while let Some(a) = stack.pop() {
            if cone.insert(a) {
                if let Some(ps) = self.providers.get(&a) {
                    stack.extend(ps.iter().copied());
                }
            }
        }
        cone
    }

    /// Valley-free reachability: can `from` reach a prefix originated
    /// by `origin`? True iff the up-cones intersect (a common provider
    /// ancestor carries the route down) or a single peer link bridges
    /// the two up-cones.
    pub fn can_reach(&self, from: Asn, origin: Asn) -> bool {
        if from == origin {
            return true;
        }
        let up_from = self.up_cone(from);
        let up_origin = self.up_cone(origin);
        if up_from.intersection(&up_origin).next().is_some() {
            return true;
        }
        up_from.iter().any(|a| {
            self.peers
                .get(a)
                .is_some_and(|ps| ps.iter().any(|p| up_origin.contains(p)))
        })
    }

    /// The standard 30-AS evaluation topology: four tier-1 backbones in
    /// a full peering mesh, regional transits, edge ISPs, and the
    /// content networks, loosely modelled on the public Internet.
    pub fn standard() -> Self {
        let mut g = AsGraph::new();
        // Tier 1 backbones (transit-free, fully peered).
        let tier1 = [
            (174, "Cogent"),
            (3356, "Lumen"),
            (1299, "Arelion"),
            (2914, "NTT"),
        ];
        for (asn, name) in tier1 {
            g.add_as(asn, name, AsKind::Tier1);
        }
        for (i, (a, _)) in tier1.iter().enumerate() {
            for (b, _) in tier1.iter().skip(i + 1) {
                g.add_peering(*a, *b);
            }
        }

        // Regional transit providers, each multihomed to two tier-1s.
        let transits = [
            (6939, "Hurricane Electric", 174, 3356),
            (3257, "GTT", 3356, 1299),
            (6453, "Tata", 1299, 2914),
            (4637, "Telstra Global", 2914, 174),
            (7922, "Comcast Wholesale", 174, 1299),
            (5511, "Orange International", 3356, 2914),
        ];
        for (asn, name, p1, p2) in transits {
            g.add_as(asn, name, AsKind::Transit);
            g.add_provider(asn, p1);
            g.add_provider(asn, p2);
        }
        // Some transits peer regionally.
        g.add_peering(6939, 3257);
        g.add_peering(6453, 4637);
        g.add_peering(7922, 5511);

        // Content networks: multihomed to transits and peering widely
        // (the hyperscaler pattern).
        g.add_as(32934, "Facebook", AsKind::Content);
        g.add_provider(32934, 6939);
        g.add_provider(32934, 3257);
        g.add_peering(32934, 7922);
        g.add_as(15169, "Google", AsKind::Content);
        g.add_provider(15169, 6453);
        g.add_provider(15169, 4637);
        g.add_peering(15169, 7922);
        g.add_peering(15169, 5511);

        // Edge ISPs across regions, single- or dual-homed to transits.
        let edges = [
            (7018, "US East ISP", 7922, Some(6939)),
            (209, "US West ISP", 6939, None),
            (12322, "France ISP", 5511, Some(3257)),
            (3320, "Germany ISP", 3257, None),
            (28573, "Brazil ISP", 6453, None),
            (9498, "India ISP", 6453, Some(4637)),
            (4766, "Korea ISP", 4637, None),
            (1221, "Australia ISP", 4637, None),
            (36903, "Morocco ISP", 5511, None),
            (37611, "Kenya ISP", 6453, None),
            (6327, "Canada ISP", 7922, None),
            (27699, "Brazil ISP 2", 6939, Some(6453)),
        ];
        for (asn, name, p1, p2) in edges {
            g.add_as(asn, name, AsKind::Edge);
            g.add_provider(asn, p1);
            if let Some(p2) = p2 {
                g.add_provider(asn, p2);
            }
        }
        g
    }
}

/// A routed prefix with its origin and announcement state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Prefix {
    pub cidr: String,
    pub origin: Asn,
    pub announced: bool,
}

/// The global routing + DNS state over a topology.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoutingSystem {
    pub graph: AsGraph,
    prefixes: BTreeMap<String, Prefix>,
    /// name → prefixes of its authoritative DNS servers.
    dns_zones: BTreeMap<String, Vec<String>>,
    /// name → prefixes serving the content itself.
    service_prefixes: BTreeMap<String, Vec<String>>,
}

impl RoutingSystem {
    pub fn new(graph: AsGraph) -> Self {
        RoutingSystem {
            graph,
            prefixes: BTreeMap::new(),
            dns_zones: BTreeMap::new(),
            service_prefixes: BTreeMap::new(),
        }
    }

    /// Announce a prefix from an origin AS.
    pub fn announce(&mut self, cidr: &str, origin: Asn) {
        assert!(
            self.graph.node(origin).is_some(),
            "unknown origin AS{origin}"
        );
        self.prefixes.insert(
            cidr.to_string(),
            Prefix {
                cidr: cidr.to_string(),
                origin,
                announced: true,
            },
        );
    }

    /// Withdraw a prefix (the configuration-error event).
    pub fn withdraw(&mut self, cidr: &str) -> bool {
        match self.prefixes.get_mut(cidr) {
            Some(p) => {
                p.announced = false;
                true
            }
            None => false,
        }
    }

    /// Re-announce a withdrawn prefix (recovery).
    pub fn restore(&mut self, cidr: &str) -> bool {
        match self.prefixes.get_mut(cidr) {
            Some(p) => {
                p.announced = true;
                true
            }
            None => false,
        }
    }

    /// Register a DNS zone: resolving `name` requires reaching any of
    /// these prefixes.
    pub fn register_zone(&mut self, name: &str, dns_prefixes: &[&str]) {
        self.dns_zones.insert(
            name.to_string(),
            dns_prefixes.iter().map(|s| s.to_string()).collect(),
        );
    }

    /// Register the service prefixes behind `name`.
    pub fn register_service(&mut self, name: &str, prefixes: &[&str]) {
        self.service_prefixes.insert(
            name.to_string(),
            prefixes.iter().map(|s| s.to_string()).collect(),
        );
    }

    /// Can `from` reach the given prefix right now?
    pub fn prefix_reachable(&self, from: Asn, cidr: &str) -> bool {
        self.prefixes
            .get(cidr)
            .is_some_and(|p| p.announced && self.graph.can_reach(from, p.origin))
    }

    /// Can `from` resolve `name` (reach any authoritative DNS prefix)?
    pub fn can_resolve(&self, from: Asn, name: &str) -> bool {
        self.dns_zones
            .get(name)
            .is_some_and(|ps| ps.iter().any(|p| self.prefix_reachable(from, p)))
    }

    /// Full service availability: resolution *and* content reachability.
    pub fn service_available(&self, from: Asn, name: &str) -> bool {
        self.can_resolve(from, name)
            && self
                .service_prefixes
                .get(name)
                .is_some_and(|ps| ps.iter().any(|p| self.prefix_reachable(from, p)))
    }

    /// Fraction of edge ASes for which the service is available.
    pub fn availability(&self, name: &str) -> f64 {
        let edges: Vec<Asn> = self
            .graph
            .ases()
            .filter(|n| n.kind == AsKind::Edge)
            .map(|n| n.asn)
            .collect();
        if edges.is_empty() {
            return 0.0;
        }
        let up = edges
            .iter()
            .filter(|&&a| self.service_available(a, name))
            .count();
        up as f64 / edges.len() as f64
    }

    /// The standard evaluation state: topology plus Facebook's and
    /// Google's zones and prefixes.
    pub fn standard() -> Self {
        let mut sys = RoutingSystem::new(AsGraph::standard());
        // Facebook: DNS on dedicated prefixes (the ones the 2021 config
        // error withdrew) plus content prefixes.
        sys.announce("129.134.30.0/24", 32934);
        sys.announce("129.134.31.0/24", 32934);
        sys.announce("157.240.0.0/16", 32934);
        sys.register_zone("facebook.com", &["129.134.30.0/24", "129.134.31.0/24"]);
        sys.register_service("facebook.com", &["157.240.0.0/16"]);
        // Google for contrast.
        sys.announce("216.239.32.0/24", 15169);
        sys.announce("142.250.0.0/15", 15169);
        sys.register_zone("google.com", &["216.239.32.0/24"]);
        sys.register_service("google.com", &["142.250.0.0/15"]);
        sys
    }

    /// Replay the 2021 Facebook outage: withdraw the DNS prefixes,
    /// measure availability, restore, measure again. Returns
    /// (before, during, after) availability fractions.
    pub fn facebook_outage_replay(&mut self) -> (f64, f64, f64) {
        let before = self.availability("facebook.com");
        self.withdraw("129.134.30.0/24");
        self.withdraw("129.134.31.0/24");
        let during = self.availability("facebook.com");
        self.restore("129.134.30.0/24");
        self.restore("129.134.31.0/24");
        let after = self.availability("facebook.com");
        (before, during, after)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_topology_is_fully_reachable() {
        let sys = RoutingSystem::standard();
        // Every edge AS can reach both content networks pre-incident.
        for node in sys.graph.ases().filter(|n| n.kind == AsKind::Edge) {
            assert!(
                sys.graph.can_reach(node.asn, 32934),
                "{} cannot reach Facebook",
                node.name
            );
            assert!(sys.graph.can_reach(node.asn, 15169));
        }
    }

    #[test]
    fn valley_free_rules_hold() {
        // A customer of one tier-1 reaches a customer of another via
        // the tier-1 peering mesh — but two edge ASes with a common
        // transit never need to climb to the tier-1s at all.
        let mut g = AsGraph::new();
        g.add_as(1, "T1-A", AsKind::Tier1);
        g.add_as(2, "T1-B", AsKind::Tier1);
        g.add_as(10, "edge-a", AsKind::Edge);
        g.add_as(20, "edge-b", AsKind::Edge);
        g.add_provider(10, 1);
        g.add_provider(20, 2);
        // Without peering between the tier-1s: unreachable (no valley
        // crossing allowed).
        assert!(!g.can_reach(10, 20));
        g.add_peering(1, 2);
        assert!(g.can_reach(10, 20));
        assert!(g.can_reach(20, 10));
    }

    #[test]
    fn two_peer_hops_are_forbidden() {
        // a — peer — b — peer — c: a must NOT reach c through b.
        let mut g = AsGraph::new();
        g.add_as(1, "a", AsKind::Transit);
        g.add_as(2, "b", AsKind::Transit);
        g.add_as(3, "c", AsKind::Transit);
        g.add_peering(1, 2);
        g.add_peering(2, 3);
        assert!(g.can_reach(1, 2));
        assert!(g.can_reach(2, 3));
        assert!(!g.can_reach(1, 3), "valley-free forbids peer-peer transit");
    }

    #[test]
    fn customer_cone_reaches_origin_directly() {
        let mut g = AsGraph::new();
        g.add_as(1, "provider", AsKind::Transit);
        g.add_as(2, "customer", AsKind::Edge);
        g.add_provider(2, 1);
        assert!(g.can_reach(2, 1));
        assert!(g.can_reach(1, 2), "providers route down to customers");
    }

    #[test]
    fn withdrawal_kills_reachability_announcement_restores_it() {
        let mut sys = RoutingSystem::standard();
        assert!(sys.prefix_reachable(7018, "157.240.0.0/16"));
        assert!(sys.withdraw("157.240.0.0/16"));
        assert!(!sys.prefix_reachable(7018, "157.240.0.0/16"));
        assert!(sys.restore("157.240.0.0/16"));
        assert!(sys.prefix_reachable(7018, "157.240.0.0/16"));
        assert!(!sys.withdraw("no.such.prefix/8"));
    }

    #[test]
    fn facebook_outage_replay_matches_the_incident_shape() {
        let mut sys = RoutingSystem::standard();
        let (before, during, after) = sys.facebook_outage_replay();
        assert_eq!(before, 1.0, "all edges served pre-incident");
        assert_eq!(during, 0.0, "DNS withdrawal takes every edge down");
        assert_eq!(after, 1.0, "restoration recovers everyone");
    }

    #[test]
    fn dns_and_service_are_both_required() {
        let mut sys = RoutingSystem::standard();
        // Withdraw only the content prefix: resolution works, service
        // does not.
        sys.withdraw("157.240.0.0/16");
        assert!(sys.can_resolve(7018, "facebook.com"));
        assert!(!sys.service_available(7018, "facebook.com"));
        // Unknown names resolve nowhere.
        assert!(!sys.can_resolve(7018, "unknown.example"));
    }

    #[test]
    fn googles_independence_from_facebooks_outage() {
        let mut sys = RoutingSystem::standard();
        sys.withdraw("129.134.30.0/24");
        sys.withdraw("129.134.31.0/24");
        assert_eq!(
            sys.availability("google.com"),
            1.0,
            "the outage is Facebook-local"
        );
    }

    #[test]
    #[should_panic(expected = "unknown provider")]
    fn dangling_provider_edges_are_rejected() {
        let mut g = AsGraph::new();
        g.add_as(1, "a", AsKind::Edge);
        g.add_provider(1, 999);
    }
}
