//! Historical Internet incidents — the disruption classes §2 of the
//! paper motivates beyond solar storms: configuration errors, natural
//! disasters, and black-swan events like the COVID-19 pandemic.
//!
//! Each incident carries ground-truth cause/impact numbers and derives
//! quiz conclusions the same way [`crate::conclusions`] does for
//! storms, so a second agent role ("Alice", the outage analyst) can be
//! evaluated mechanically on a different investigation domain.

use serde::{Deserialize, Serialize};

/// The §2 incident taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IncidentClass {
    /// Large-scale configuration errors in essential infrastructure.
    ConfigurationError,
    /// Natural disasters damaging physical infrastructure.
    NaturalDisaster,
    /// Black-swan events shifting usage and operations.
    BlackSwan,
}

/// Identifiers for the catalogued incidents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum IncidentId {
    /// October 2021: Facebook's BGP/DNS outage.
    FacebookOutage2021,
    /// December 2004: Indian Ocean earthquake and tsunami.
    IndianOceanTsunami2004,
    /// December 2006: Hengchun (Taiwan) earthquake cable cuts.
    TaiwanEarthquake2006,
    /// Spring 2020: the COVID-19 lockdown traffic surge.
    CovidLockdown2020,
}

impl IncidentId {
    pub const ALL: [IncidentId; 4] = [
        IncidentId::FacebookOutage2021,
        IncidentId::IndianOceanTsunami2004,
        IncidentId::TaiwanEarthquake2006,
        IncidentId::CovidLockdown2020,
    ];
}

/// One catalogued incident with its ground-truth numbers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Incident {
    pub id: IncidentId,
    /// Canonical name as it appears in corpus text, e.g. "Facebook
    /// outage".
    pub name: String,
    pub year: u16,
    pub class: IncidentClass,
    /// Canonical cause phrase (appears verbatim in corpus text).
    pub cause: String,
    /// Service disruption duration in hours (0 for usage-shift events).
    pub duration_hours: f64,
    /// Submarine cables severed, if any.
    pub cables_cut: u32,
    /// Peak traffic change in percent (positive = surge), if relevant.
    pub traffic_change_pct: f64,
    /// One-sentence causal mechanism.
    pub mechanism: String,
}

impl Incident {
    /// The canonical "main effect on the Internet" phrase used by the
    /// corpus generator and expected by the extraction layer.
    pub fn effect_summary(&self) -> &'static str {
        match self.id {
            IncidentId::FacebookOutage2021 => {
                "that every service behind its DNS became unreachable at once, while \
                 engineers were locked out of their own remote tooling"
            }
            IncidentId::IndianOceanTsunami2004 => {
                "the destruction of coastal landing stations and regional infrastructure \
                 across South and Southeast Asia"
            }
            IncidentId::TaiwanEarthquake2006 => {
                "weeks of throttled East Asian connectivity while a small fleet of cable \
                 ships repaired the severed submarine cables"
            }
            IncidentId::CovidLockdown2020 => {
                "a sustained traffic surge that operators absorbed by adding capacity, with \
                 congestion staying localised rather than systemic"
            }
        }
    }

    /// The "{year} {name}" string used as the incident's canonical
    /// entity key in fact sentences.
    pub fn entity_key(&self) -> String {
        format!("{} {}", self.year, self.name)
    }
}

/// The built-in incident catalog.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IncidentCatalog {
    incidents: Vec<Incident>,
}

impl IncidentCatalog {
    pub fn standard() -> Self {
        IncidentCatalog {
            incidents: vec![
                Incident {
                    id: IncidentId::FacebookOutage2021,
                    name: "Facebook outage".into(),
                    year: 2021,
                    class: IncidentClass::ConfigurationError,
                    cause: "a faulty BGP configuration change that withdrew the routes to its \
                            own DNS servers"
                        .into(),
                    duration_hours: 7.0,
                    cables_cut: 0,
                    traffic_change_pct: 0.0,
                    mechanism: "With the routes withdrawn, the authoritative DNS servers \
                                became unreachable, taking every Facebook service offline at \
                                once and locking engineers out of their own remote tooling."
                        .into(),
                },
                Incident {
                    id: IncidentId::IndianOceanTsunami2004,
                    name: "Indian Ocean earthquake and tsunami".into(),
                    year: 2004,
                    class: IncidentClass::NaturalDisaster,
                    cause: "a magnitude 9.1 undersea earthquake and the tsunami it triggered"
                        .into(),
                    duration_hours: 336.0,
                    cables_cut: 2,
                    traffic_change_pct: 0.0,
                    mechanism: "Coastal landing stations and terrestrial infrastructure in \
                                the region were destroyed, causing major service disruptions \
                                across South and Southeast Asia."
                        .into(),
                },
                Incident {
                    id: IncidentId::TaiwanEarthquake2006,
                    name: "Hengchun earthquake".into(),
                    year: 2006,
                    class: IncidentClass::NaturalDisaster,
                    cause: "a magnitude 7.0 earthquake off the coast of Taiwan".into(),
                    duration_hours: 1_176.0,
                    cables_cut: 8,
                    traffic_change_pct: 0.0,
                    mechanism: "Submarine landslides snapped the cables in the Luzon Strait \
                                chokepoint; repairs by a small fleet of cable ships took \
                                seven weeks, throttling East Asian connectivity throughout."
                        .into(),
                },
                Incident {
                    id: IncidentId::CovidLockdown2020,
                    name: "COVID-19 lockdown surge".into(),
                    year: 2020,
                    class: IncidentClass::BlackSwan,
                    cause: "the abrupt global shift to working and studying from home during \
                            the COVID-19 pandemic"
                        .into(),
                    duration_hours: 0.0,
                    cables_cut: 0,
                    traffic_change_pct: 20.0,
                    mechanism: "Traffic grew by roughly a fifth within weeks, yet the \
                                Internet absorbed the surge: operators added capacity and \
                                congestion remained localised rather than systemic."
                        .into(),
                },
            ],
        }
    }

    pub fn len(&self) -> usize {
        self.incidents.len()
    }

    pub fn is_empty(&self) -> bool {
        self.incidents.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &Incident> {
        self.incidents.iter()
    }

    pub fn get(&self, id: IncidentId) -> Option<&Incident> {
        self.incidents.iter().find(|i| i.id == id)
    }
}

/// A derived incident conclusion (the quiz form), mirroring
/// [`crate::conclusions::Conclusion`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IncidentConclusion {
    pub id: IncidentId,
    pub statement: String,
    pub question: String,
    pub expected_answer: String,
    pub rationale_terms: Vec<String>,
}

/// Derive the incident quiz from the catalog.
pub fn derive_incident_conclusions(catalog: &IncidentCatalog) -> Vec<IncidentConclusion> {
    catalog
        .iter()
        .map(|incident| {
            let (question, expected_answer, rationale_terms) = match incident.id {
                IncidentId::FacebookOutage2021 => (
                    format!("What caused the {} {}?", incident.year, incident.name),
                    "a faulty BGP configuration change withdrew the routes to its DNS servers"
                        .to_string(),
                    vec!["bgp".into(), "dns".into(), "route".into()],
                ),
                IncidentId::IndianOceanTsunami2004 => (
                    format!(
                        "What caused the Internet disruption during the {} {}?",
                        incident.year, incident.name
                    ),
                    "an undersea earthquake and the tsunami it triggered".to_string(),
                    vec!["earthquake".into(), "tsunami".into(), "coastal".into()],
                ),
                IncidentId::TaiwanEarthquake2006 => (
                    format!(
                        "What was the impact of the {} {} on the Internet?",
                        incident.year, incident.name
                    ),
                    format!(
                        "it severed {} submarine cables and repairs took weeks",
                        incident.cables_cut
                    ),
                    vec!["cable".into(), "sever".into(), "week".into()],
                ),
                IncidentId::CovidLockdown2020 => (
                    format!(
                        "What was the impact of the {} {} on the Internet?",
                        incident.year, incident.name
                    ),
                    format!(
                        "traffic grew by about {:.0} percent and the Internet absorbed the \
                         surge",
                        incident.traffic_change_pct
                    ),
                    vec!["traffic".into(), "percent".into(), "absorb".into()],
                ),
            };
            IncidentConclusion {
                id: incident.id,
                statement: incident.mechanism.clone(),
                question,
                expected_answer,
                rationale_terms,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_the_papers_incident_classes() {
        let catalog = IncidentCatalog::standard();
        assert_eq!(catalog.len(), 4);
        use std::collections::BTreeSet;
        let classes: BTreeSet<_> = catalog.iter().map(|i| format!("{:?}", i.class)).collect();
        assert_eq!(classes.len(), 3, "all three incident classes represented");
    }

    #[test]
    fn facebook_outage_matches_the_papers_description() {
        // §2: "a prolonged Facebook DNS outage of more than seven hours".
        let catalog = IncidentCatalog::standard();
        let fb = catalog.get(IncidentId::FacebookOutage2021).unwrap();
        assert!(fb.duration_hours >= 7.0);
        assert!(fb.cause.contains("BGP"));
        assert!(fb.mechanism.contains("DNS"));
    }

    #[test]
    fn conclusions_derive_for_every_incident() {
        let catalog = IncidentCatalog::standard();
        let conclusions = derive_incident_conclusions(&catalog);
        assert_eq!(conclusions.len(), catalog.len());
        for c in &conclusions {
            assert!(!c.question.is_empty());
            assert!(!c.expected_answer.is_empty());
            assert!(!c.rationale_terms.is_empty());
        }
    }

    #[test]
    fn covid_is_a_surge_not_an_outage() {
        let catalog = IncidentCatalog::standard();
        let covid = catalog.get(IncidentId::CovidLockdown2020).unwrap();
        assert_eq!(covid.duration_hours, 0.0);
        assert!(covid.traffic_change_pct > 0.0);
    }
}
