//! Data-quality audit over the built-in databases.
//!
//! The ground truth is hand-entered data; a wrong coordinate or a
//! duplicated name silently skews every derived conclusion. This audit
//! runs the integrity checks as a library function so downstream users
//! extending the databases (more cables, another fleet) get the same
//! guarantees the built-ins are tested against.

use crate::world::World;
use serde::Serialize;

/// One audit finding.
#[derive(Debug, Clone, Serialize)]
pub struct AuditFinding {
    /// Which database the finding is about.
    pub dataset: &'static str,
    /// What is wrong.
    pub message: String,
}

/// The audit result: empty findings means a clean bill of health.
#[derive(Debug, Clone, Default, Serialize)]
pub struct AuditReport {
    pub findings: Vec<AuditFinding>,
}

impl AuditReport {
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    fn flag(&mut self, dataset: &'static str, message: String) {
        self.findings.push(AuditFinding { dataset, message });
    }
}

/// Audit every database in the world.
pub fn audit(world: &World) -> AuditReport {
    let mut report = AuditReport::default();

    // Cables: unique names, plausible lengths, coherent regions.
    let mut names: Vec<&str> = world.cables.iter().map(|c| c.name.as_str()).collect();
    names.sort_unstable();
    for w in names.windows(2) {
        if w[0] == w[1] {
            report.flag("cables", format!("duplicate cable name {:?}", w[0]));
        }
    }
    for cable in world.cables.iter() {
        let len = cable.length_km();
        if !(80.0..30_000.0).contains(&len) {
            report.flag(
                "cables",
                format!("{}: implausible length {len:.0} km", cable.name),
            );
        }
        if cable.repeater_count() == 0 {
            report.flag("cables", format!("{}: zero repeaters", cable.name));
        }
        if cable.from.name == cable.to.name {
            report.flag(
                "cables",
                format!("{}: both ends land at the same city", cable.name),
            );
        }
    }

    // Fleets: non-empty, sites carry distinct (operator, name) pairs.
    for fleet in [&world.google, &world.facebook] {
        if fleet.is_empty() {
            report.flag("datacenters", format!("{} fleet is empty", fleet.operator));
        }
        let mut sites: Vec<&str> = fleet.iter().map(|d| d.site.name.as_str()).collect();
        sites.sort_unstable();
        for w in sites.windows(2) {
            if w[0] == w[1] {
                report.flag(
                    "datacenters",
                    format!("{}: duplicate site {:?}", fleet.operator, w[0]),
                );
            }
        }
    }

    // Grids: factors within documented ranges.
    for grid in world.grids.iter() {
        if !(0.5..=2.0).contains(&grid.ground_factor) || !(0.5..=2.0).contains(&grid.line_factor) {
            report.flag(
                "grids",
                format!(
                    "{}: factors out of documented range (ground {}, line {})",
                    grid.name, grid.ground_factor, grid.line_factor
                ),
            );
        }
    }

    // Incidents: years sane, causes non-empty.
    for incident in world.incidents.iter() {
        if !(1850..=2100).contains(&incident.year) {
            report.flag(
                "incidents",
                format!("{}: odd year {}", incident.name, incident.year),
            );
        }
        if incident.cause.is_empty() || incident.mechanism.is_empty() {
            report.flag(
                "incidents",
                format!("{}: missing cause/mechanism", incident.name),
            );
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cables::SubmarineCable;
    use crate::geo::{Place, Region};

    #[test]
    fn standard_world_is_clean() {
        let report = audit(&World::standard());
        assert!(report.clean(), "findings: {:#?}", report.findings);
    }

    #[test]
    fn corrupted_world_is_flagged() {
        let mut world = World::standard();
        // Inject a same-city cable through the public type.
        let bogus = SubmarineCable::new(
            "Bogus Loop",
            Place::new("Atlantis", "Nowhere", Region::Europe, 1.0, 1.0),
            Place::new("Atlantis", "Nowhere", Region::Europe, 1.0, 1.01),
            2030,
            1.0,
        );
        // CableDatabase has no push API by design; rebuild through serde.
        let mut value: serde_json::Value = serde_json::to_value(&world.cables).unwrap();
        value["cables"]
            .as_array_mut()
            .unwrap()
            .push(serde_json::to_value(&bogus).unwrap());
        world.cables = serde_json::from_value(value).unwrap();

        let report = audit(&world);
        assert!(!report.clean());
        assert!(report
            .findings
            .iter()
            .any(|f| f.message.contains("Bogus Loop")));
    }
}
