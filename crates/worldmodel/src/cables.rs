//! Submarine cable database.
//!
//! Each entry is a real cable system with approximate landing-point
//! coordinates. Paths are modelled as great circles with a route-slack
//! factor; repeaters are placed at the industry-typical ~70 km spacing.
//! The risk-relevant statistic derived per cable is the maximum absolute
//! geomagnetic latitude along its path (see [`crate::geomag`]).

use crate::geo::{GeoPoint, Place, Region};
use crate::geomag::{self, LatitudeBand};
use serde::{Deserialize, Serialize};

/// Typical spacing between powered optical repeaters, km.
pub const REPEATER_SPACING_KM: f64 = 70.0;

/// Number of great-circle segments used when sampling a cable path.
const PATH_SEGMENTS: usize = 64;

/// A submarine cable system.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubmarineCable {
    /// System name, e.g. "MAREA".
    pub name: String,
    /// Landing at the A end.
    pub from: Place,
    /// Landing at the B end.
    pub to: Place,
    /// Ready-for-service year.
    pub rfs_year: u16,
    /// Multiplier on the great-circle distance accounting for routing
    /// around hazards and landing approaches (≥ 1).
    pub route_slack: f64,
}

impl SubmarineCable {
    pub fn new(name: &str, from: Place, to: Place, rfs_year: u16, route_slack: f64) -> Self {
        assert!(
            route_slack >= 1.0,
            "route slack must be >= 1, got {route_slack}"
        );
        SubmarineCable {
            name: name.to_string(),
            from,
            to,
            rfs_year,
            route_slack,
        }
    }

    /// Cable length in km (great circle × route slack).
    pub fn length_km(&self) -> f64 {
        self.from.point.distance_km(&self.to.point) * self.route_slack
    }

    /// Sampled waypoints along the modelled path.
    pub fn path(&self) -> Vec<GeoPoint> {
        self.from
            .point
            .great_circle_path(&self.to.point, PATH_SEGMENTS)
    }

    /// Number of powered repeaters along the cable.
    pub fn repeater_count(&self) -> u32 {
        (self.length_km() / REPEATER_SPACING_KM).floor() as u32
    }

    /// Maximum |geomagnetic latitude| reached along the path, degrees.
    pub fn max_geomag_latitude(&self) -> f64 {
        geomag::max_abs_geomag_latitude(&self.path())
    }

    /// Qualitative exposure band of the path apex.
    pub fn band(&self) -> LatitudeBand {
        LatitudeBand::of(self.max_geomag_latitude())
    }

    /// Whether the cable connects two different coarse regions.
    pub fn is_intercontinental(&self) -> bool {
        self.from.region != self.to.region
    }

    /// True if the cable connects the given pair of regions (order-free).
    pub fn connects(&self, a: Region, b: Region) -> bool {
        (self.from.region == a && self.to.region == b)
            || (self.from.region == b && self.to.region == a)
    }
}

/// The full cable database.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CableDatabase {
    cables: Vec<SubmarineCable>,
}

/// Shorthand for building a landing-point [`Place`].
fn lp(name: &str, country: &str, region: Region, lat: f64, lon: f64) -> Place {
    Place::new(name, country, region, lat, lon)
}

impl CableDatabase {
    /// The built-in database of ~45 real cable systems.
    pub fn standard() -> Self {
        use Region::*;
        let c = |name: &str, from: Place, to: Place, year: u16, slack: f64| {
            SubmarineCable::new(name, from, to, year, slack)
        };

        // Landing points reused across systems.
        let virginia_beach = || {
            lp(
                "Virginia Beach",
                "United States",
                NorthAmerica,
                36.85,
                -75.98,
            )
        };
        let new_york = || lp("New York", "United States", NorthAmerica, 40.71, -74.01);
        let wall_nj = || {
            lp(
                "Wall Township",
                "United States",
                NorthAmerica,
                40.16,
                -74.06,
            )
        };
        let boston = || lp("Lynn", "United States", NorthAmerica, 42.46, -70.95);
        let halifax = || lp("Halifax", "Canada", NorthAmerica, 44.65, -63.57);
        let miami = || lp("Boca Raton", "United States", NorthAmerica, 26.36, -80.08);
        let los_angeles = || lp("Los Angeles", "United States", NorthAmerica, 33.74, -118.29);
        let oregon = || {
            lp(
                "Pacific City",
                "United States",
                NorthAmerica,
                45.20,
                -123.96,
            )
        };
        let vancouver = || lp("Port Alberni", "Canada", NorthAmerica, 49.23, -124.81);

        let bude = || lp("Bude", "United Kingdom", Europe, 50.83, -4.55);
        let bilbao = || lp("Bilbao", "Spain", Europe, 43.26, -2.93);
        let saint_hilaire = || lp("Saint-Hilaire-de-Riez", "France", Europe, 46.72, -1.95);
        let le_porge = || lp("Le Porge", "France", Europe, 44.87, -1.20);
        let blaabjerg = || lp("Blaabjerg", "Denmark", Europe, 55.63, 8.17);
        let killala = || lp("Killala", "Ireland", Europe, 54.22, -9.22);
        let plerin = || lp("Plérin", "France", Europe, 48.54, -2.77);
        let highbridge = || lp("Highbridge", "United Kingdom", Europe, 51.22, -2.97);
        let brean = || lp("Brean", "United Kingdom", Europe, 51.29, -3.01);
        let lisbon = || lp("Lisbon", "Portugal", Europe, 38.72, -9.14);
        let sines = || lp("Sines", "Portugal", Europe, 37.96, -8.87);
        let marseille = || lp("Marseille", "France", Europe, 43.30, 5.37);
        let toulon = || lp("Toulon", "France", Europe, 43.12, 5.93);
        let reykjavik = || lp("Landeyjasandur", "Iceland", Europe, 63.60, -20.20);
        let scotland = || lp("Dunnet Bay", "United Kingdom", Europe, 58.61, -3.35);
        let denmark_ice = || lp("Blaabjerg (DANICE)", "Denmark", Europe, 55.63, 8.17);
        let longyearbyen = || lp("Longyearbyen", "Norway", Europe, 78.22, 15.64);
        let andoya = || lp("Andøya", "Norway", Europe, 69.14, 15.86);
        let nuuk = || lp("Nuuk", "Greenland", NorthAmerica, 64.18, -51.72);

        let fortaleza = || lp("Fortaleza", "Brazil", SouthAmerica, -3.73, -38.52);
        let santos = || lp("Praia Grande", "Brazil", SouthAmerica, -24.01, -46.41);
        let rio = || lp("Rio de Janeiro", "Brazil", SouthAmerica, -22.91, -43.17);
        let las_toninas = || lp("Las Toninas", "Argentina", SouthAmerica, -36.49, -56.70);
        let valparaiso = || lp("Valparaíso", "Chile", SouthAmerica, -33.05, -71.61);

        let luanda = || lp("Luanda", "Angola", Africa, -8.84, 13.23);
        let kribi = || lp("Kribi", "Cameroon", Africa, 2.94, 9.91);
        let cape_town = || lp("Cape Town", "South Africa", Africa, -33.92, 18.42);
        let yzerfontein = || lp("Yzerfontein", "South Africa", Africa, -33.34, 18.15);
        let mombasa = || lp("Mombasa", "Kenya", Africa, -4.04, 39.67);
        let port_sudan = || lp("Port Sudan", "Sudan", Africa, 19.62, 37.22);
        let maputo = || lp("Maputo", "Mozambique", Africa, -25.97, 32.57);

        let mumbai = || lp("Mumbai", "India", Asia, 19.08, 72.88);
        let singapore = || lp("Singapore", "Singapore", Asia, 1.35, 103.82);
        let chikura = || lp("Chikura", "Japan", Asia, 34.95, 139.95);
        let maruyama = || lp("Maruyama", "Japan", Asia, 35.10, 139.97);
        let shima = || lp("Shima", "Japan", Asia, 34.30, 136.80);
        let hong_kong = || lp("Hong Kong", "China", Asia, 22.32, 114.17);
        let chongming = || lp("Chongming", "China", Asia, 31.62, 121.40);
        let busan = || lp("Busan", "South Korea", Asia, 35.18, 129.08);

        let sesimbra = || lp("Sesimbra", "Portugal", Europe, 38.44, -9.10);
        let santander = || lp("Santander", "Spain", Europe, 43.46, -3.81);
        let murmansk = || lp("Murmansk", "Russia", Europe, 68.97, 33.08);
        let hillsboro = || lp("Hillsboro", "United States", NorthAmerica, 45.52, -122.99);
        let eureka = || lp("Eureka", "United States", NorthAmerica, 40.80, -124.16);
        let grover_beach = || {
            lp(
                "Grover Beach",
                "United States",
                NorthAmerica,
                35.12,
                -120.62,
            )
        };
        let myrtle_beach = || lp("Myrtle Beach", "United States", NorthAmerica, 33.69, -78.89);
        let toyohashi = || lp("Toyohashi", "Japan", Asia, 34.77, 137.39);
        let jakarta = || lp("Tanjung Pakis", "Indonesia", Asia, -5.95, 107.00);
        let vladivostok = || lp("Vladivostok", "Russia", Asia, 43.12, 131.89);
        let maldonado = || lp("Maldonado", "Uruguay", SouthAmerica, -34.91, -54.95);

        let sydney = || lp("Sydney", "Australia", Oceania, -33.87, 151.21);
        let perth = || lp("Perth", "Australia", Oceania, -31.95, 115.86);
        let auckland = || lp("Auckland", "New Zealand", Oceania, -36.85, 174.76);
        let hawaii = || lp("Kahe Point", "United States", Oceania, 21.35, -158.13);

        let cables = vec![
            // --- Trans-Atlantic, US/Canada ↔ Europe (high-latitude arcs) ---
            c("TAT-14", wall_nj(), bude(), 2001, 1.25),
            c("Atlantic Crossing-1 (AC-1)", new_york(), bude(), 1998, 1.28),
            c("MAREA", virginia_beach(), bilbao(), 2017, 1.18),
            c("Dunant", virginia_beach(), saint_hilaire(), 2021, 1.18),
            c("Grace Hopper", new_york(), bude(), 2022, 1.20),
            c("Amitié", boston(), le_porge(), 2023, 1.18),
            c("Havfrue (AEC-2)", wall_nj(), blaabjerg(), 2020, 1.22),
            c(
                "AEC-1 (America Europe Connect)",
                new_york(),
                killala(),
                2016,
                1.20,
            ),
            c("Apollo North", new_york(), bude(), 2003, 1.24),
            c("FLAG Atlantic-1", new_york(), plerin(), 2001, 1.24),
            c("Yellow (AC-2)", new_york(), bude(), 2000, 1.25),
            c("TGN-Atlantic", wall_nj(), highbridge(), 2001, 1.26),
            c("GTT Express", halifax(), brean(), 2015, 1.15),
            // --- North Atlantic, sub-arctic (very high latitude) ---
            c("FARICE-1", reykjavik(), scotland(), 2004, 1.20),
            c("DANICE", reykjavik(), denmark_ice(), 2009, 1.18),
            c("Greenland Connect", nuuk(), reykjavik(), 2009, 1.20),
            c(
                "Svalbard Undersea Cable",
                longyearbyen(),
                andoya(),
                2004,
                1.15,
            ),
            // --- South Atlantic, Brazil ↔ Europe/Africa (low latitude) ---
            c("EllaLink", fortaleza(), sines(), 2021, 1.15),
            c("Atlantis-2", fortaleza(), lisbon(), 2000, 1.35),
            c("SACS", fortaleza(), luanda(), 2018, 1.10),
            c("SAIL", fortaleza(), kribi(), 2020, 1.10),
            // --- Americas north–south ---
            c("Monet", miami(), santos(), 2017, 1.20),
            c("Seabras-1", new_york(), santos(), 2017, 1.18),
            c("BRUSA", virginia_beach(), rio(), 2018, 1.18),
            c("Firmina", virginia_beach(), las_toninas(), 2023, 1.18),
            c("Curie", los_angeles(), valparaiso(), 2019, 1.12),
            // --- Trans-Pacific ---
            c("Unity", los_angeles(), chikura(), 2010, 1.12),
            c("FASTER", oregon(), shima(), 2016, 1.12),
            c("Jupiter", los_angeles(), maruyama(), 2020, 1.12),
            c("Topaz", vancouver(), chikura(), 2023, 1.12),
            c("New Cross Pacific (NCP)", oregon(), chongming(), 2018, 1.15),
            c("Trans-Pacific Express (TPE)", oregon(), busan(), 2008, 1.15),
            // --- Pacific, Oceania ---
            c("Southern Cross", sydney(), hawaii(), 2000, 1.20),
            c("Hawaiki", sydney(), oregon(), 2018, 1.18),
            c("Australia-Japan Cable", sydney(), maruyama(), 2001, 1.18),
            c("Tasman Global Access", sydney(), auckland(), 2017, 1.10),
            c("Indigo-West", perth(), singapore(), 2019, 1.10),
            // --- Europe ↔ Asia / Middle East (mid/low latitude) ---
            c("SEA-ME-WE 4", marseille(), singapore(), 2005, 1.45),
            c("SEA-ME-WE 5", toulon(), singapore(), 2016, 1.45),
            c("AAE-1", marseille(), hong_kong(), 2017, 1.45),
            c("IMEWE", mumbai(), marseille(), 2010, 1.35),
            // --- Africa ---
            c("2Africa (west segment)", bude(), cape_town(), 2023, 1.35),
            c("2Africa (east segment)", marseille(), mombasa(), 2023, 1.40),
            c("WACS", yzerfontein(), highbridge(), 2012, 1.30),
            c("Equiano", lisbon(), cape_town(), 2022, 1.30),
            c("EASSy", port_sudan(), maputo(), 2010, 1.25),
            // --- Intra-Asia ---
            c(
                "Asia Pacific Gateway (APG)",
                chongming(),
                singapore(),
                2016,
                1.30,
            ),
            c(
                "Southeast Asia-Japan Cable (SJC)",
                chikura(),
                singapore(),
                2013,
                1.25,
            ),
            // --- Later additions across the basins ---
            c("SAT-3/WASC", sesimbra(), cape_town(), 2001, 1.35),
            c("Europe India Gateway (EIG)", bude(), mumbai(), 2011, 1.45),
            c("TGN-Pacific", hillsboro(), toyohashi(), 2002, 1.15),
            c("Echo", eureka(), singapore(), 2024, 1.18),
            c("Bifrost", grover_beach(), jakarta(), 2024, 1.20),
            c("Apricot", shima(), singapore(), 2024, 1.25),
            c(
                "Japan-Guam-Australia (JGA)",
                maruyama(),
                sydney(),
                2020,
                1.20,
            ),
            c("Malbec", santos(), las_toninas(), 2021, 1.15),
            c("Tannat", santos(), maldonado(), 2018, 1.15),
            c("Polar Express", murmansk(), vladivostok(), 2026, 1.30),
            c("Anjana", myrtle_beach(), santander(), 2024, 1.20),
        ];

        CableDatabase { cables }
    }

    pub fn len(&self) -> usize {
        self.cables.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cables.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &SubmarineCable> {
        self.cables.iter()
    }

    /// Look up a cable by (case-insensitive) name prefix.
    pub fn find(&self, name: &str) -> Option<&SubmarineCable> {
        let needle = name.to_ascii_lowercase();
        self.cables
            .iter()
            .find(|c| c.name.to_ascii_lowercase().starts_with(&needle))
    }

    /// All cables connecting the two regions.
    pub fn between(&self, a: Region, b: Region) -> Vec<&SubmarineCable> {
        self.cables.iter().filter(|c| c.connects(a, b)).collect()
    }

    /// Cables whose path apex lies in the given band.
    pub fn in_band(&self, band: LatitudeBand) -> Vec<&SubmarineCable> {
        self.cables.iter().filter(|c| c.band() == band).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> CableDatabase {
        CableDatabase::standard()
    }

    #[test]
    fn database_has_expected_scale() {
        assert!(
            db().len() >= 40,
            "cable DB should cover ≥40 systems, has {}",
            db().len()
        );
    }

    #[test]
    fn names_are_unique() {
        let db = db();
        let mut names: Vec<_> = db.iter().map(|c| c.name.as_str()).collect();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate cable names");
    }

    #[test]
    fn lengths_are_physically_plausible() {
        for cable in db().iter() {
            let len = cable.length_km();
            assert!(
                (100.0..25_000.0).contains(&len),
                "{} length {len} km implausible",
                cable.name
            );
            assert!(
                cable.repeater_count() >= 1,
                "{} has no repeaters",
                cable.name
            );
        }
    }

    #[test]
    fn marea_is_roughly_published_length() {
        // MAREA is ~6,600 km.
        let db = db();
        let marea = db.find("MAREA").unwrap();
        let len = marea.length_km();
        assert!(
            (5_800.0..7_400.0).contains(&len),
            "MAREA modelled at {len} km"
        );
    }

    #[test]
    fn ellalink_stays_low_latitude_while_us_europe_goes_high() {
        let db = db();
        let ellalink = db.find("EllaLink").unwrap();
        let grace = db.find("Grace Hopper").unwrap();
        assert!(ellalink.max_geomag_latitude() < 50.0);
        assert!(grace.max_geomag_latitude() > 55.0);
        assert!(grace.max_geomag_latitude() > ellalink.max_geomag_latitude() + 10.0);
    }

    #[test]
    fn every_us_europe_cable_outranks_every_brazil_europe_cable() {
        let db = db();
        let us_eu: Vec<_> = db
            .between(Region::NorthAmerica, Region::Europe)
            .into_iter()
            .filter(|c| c.from.country == "United States" || c.to.country == "United States")
            .collect();
        let br_eu: Vec<_> = db
            .between(Region::SouthAmerica, Region::Europe)
            .into_iter()
            .filter(|c| c.from.country == "Brazil" || c.to.country == "Brazil")
            .collect();
        assert!(!us_eu.is_empty() && !br_eu.is_empty());
        for us in &us_eu {
            for br in &br_eu {
                assert!(
                    us.max_geomag_latitude() > br.max_geomag_latitude(),
                    "{} ({:.1}) should exceed {} ({:.1})",
                    us.name,
                    us.max_geomag_latitude(),
                    br.name,
                    br.max_geomag_latitude()
                );
            }
        }
    }

    #[test]
    fn svalbard_is_the_highest_latitude_cable() {
        let db = db();
        let max = db
            .iter()
            .max_by(|a, b| a.max_geomag_latitude().total_cmp(&b.max_geomag_latitude()))
            .unwrap();
        assert_eq!(max.name, "Svalbard Undersea Cable");
    }

    #[test]
    fn band_filters_are_consistent() {
        let db = db();
        let total = db.in_band(LatitudeBand::Low).len()
            + db.in_band(LatitudeBand::Mid).len()
            + db.in_band(LatitudeBand::High).len();
        assert_eq!(total, db.len());
        // The south-Atlantic systems must land in the low band.
        assert!(db
            .in_band(LatitudeBand::Low)
            .iter()
            .any(|c| c.name == "SACS"));
    }

    #[test]
    fn find_is_case_insensitive_prefix() {
        let db = db();
        assert!(db.find("marea").is_some());
        assert!(db.find("sea-me-we").is_some());
        assert!(db.find("nonexistent cable").is_none());
    }

    #[test]
    fn intercontinental_flag() {
        let db = db();
        assert!(db.find("MAREA").unwrap().is_intercontinental());
        assert!(!db
            .find("Tasman Global Access")
            .unwrap()
            .is_intercontinental());
    }
}
