//! The eight expert conclusions, derived from the world model.
//!
//! The HotNets paper scores its agent against "all the key conclusions"
//! of the SIGCOMM '21 solar-superstorm study (§4.1) and reports 7-of-8
//! consistency (§4.2). We encode those eight conclusions; each is
//! *derived* — the comparison is recomputed from the cable, data-center,
//! grid, and graph models — so the quiz has mechanically verifiable
//! ground truth, and `holds` records that the model actually supports
//! the expert statement.

use crate::datacenters::Operator;
use crate::geo::Region;
use crate::geomag::LatitudeBand;
use crate::storm::StormScenario;
use crate::world::World;
use serde::{Deserialize, Serialize};

/// Identifiers for the eight conclusions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ConclusionId {
    /// C1: the Brazil–Europe cable is less likely to be affected than
    /// US–Europe cables.
    BrazilEuropeCableSafer,
    /// C2: Google's data centers are better spread (Asia, South
    /// America); Facebook is more vulnerable.
    GoogleBetterSpread,
    /// C3: infrastructure at higher geomagnetic latitudes faces higher
    /// risk.
    HigherLatitudeHigherRisk,
    /// C4: powered repeaters are the vulnerable component of submarine
    /// cables; the fiber itself is not susceptible.
    RepeatersAreWeakPoint,
    /// C5: submarine cables are at greater risk than terrestrial fiber.
    SubmarineOverTerrestrial,
    /// C6: the United States is more susceptible than Asia.
    UsMoreSusceptibleThanAsia,
    /// C7: longer cables face higher failure risk.
    LongerCablesHigherRisk,
    /// C8: a strong storm threatens large-scale inter-continental
    /// partition while intra-regional connectivity largely survives.
    InterContinentalPartition,
}

impl ConclusionId {
    pub const ALL: [ConclusionId; 8] = [
        ConclusionId::BrazilEuropeCableSafer,
        ConclusionId::GoogleBetterSpread,
        ConclusionId::HigherLatitudeHigherRisk,
        ConclusionId::RepeatersAreWeakPoint,
        ConclusionId::SubmarineOverTerrestrial,
        ConclusionId::UsMoreSusceptibleThanAsia,
        ConclusionId::LongerCablesHigherRisk,
        ConclusionId::InterContinentalPartition,
    ];
}

/// One derived conclusion with its quiz form and supporting numbers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Conclusion {
    pub id: ConclusionId,
    /// The expert statement, phrased as in the source paper.
    pub statement: String,
    /// The quiz question posed to the agent.
    pub question: String,
    /// Canonical short answer (what a consistent agent must assert).
    pub expected_answer: String,
    /// Terms whose presence in an answer's rationale indicates the
    /// agent reasoned from the right facts (lowercase).
    pub rationale_terms: Vec<String>,
    /// Human-readable evidence computed from the model.
    pub evidence: String,
    /// Whether the model supports the statement.
    pub holds: bool,
}

/// The full derived set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConclusionSet {
    conclusions: Vec<Conclusion>,
}

impl ConclusionSet {
    /// Recompute every conclusion from the given world.
    pub fn derive(world: &World) -> Self {
        let storm = StormScenario::carrington_1859();
        let model = &world.storm_model;

        let mut conclusions = Vec::with_capacity(8);

        // C1 — Brazil–Europe vs US–Europe cables.
        {
            let us_eu: Vec<_> = world
                .cables
                .between(Region::NorthAmerica, Region::Europe)
                .into_iter()
                .filter(|c| c.from.country == "United States" || c.to.country == "United States")
                .collect();
            let br_eu: Vec<_> = world
                .cables
                .between(Region::SouthAmerica, Region::Europe)
                .into_iter()
                .filter(|c| c.from.country == "Brazil" || c.to.country == "Brazil")
                .collect();
            let mean = |cables: &[&crate::cables::SubmarineCable]| {
                cables
                    .iter()
                    .map(|c| model.cable_failure_prob(c, &storm))
                    .sum::<f64>()
                    / cables.len().max(1) as f64
            };
            let us_p = mean(&us_eu);
            let br_p = mean(&br_eu);
            conclusions.push(Conclusion {
                id: ConclusionId::BrazilEuropeCableSafer,
                statement: "The cable between Brazil and Europe has less probability of being \
                            affected compared to the cables connecting the US and Europe."
                    .into(),
                question: "Which is more vulnerable to solar activity? The fiber optic cable \
                           that connects Brazil to Europe or the one that connects the US to \
                           Europe?"
                    .into(),
                expected_answer: "the cable connecting the US to Europe".into(),
                rationale_terms: vec!["latitude".into(), "geomagnetic".into(), "higher".into()],
                evidence: format!(
                    "Carrington-class failure probability: US–Europe mean {:.2} over {} cables \
                     vs Brazil–Europe mean {:.2} over {} cables",
                    us_p,
                    us_eu.len(),
                    br_p,
                    br_eu.len()
                ),
                holds: !us_eu.is_empty() && !br_eu.is_empty() && us_p > br_p,
            });
        }

        // C2 — Google vs Facebook data-center spread.
        {
            let g = &world.google;
            let f = &world.facebook;
            conclusions.push(Conclusion {
                id: ConclusionId::GoogleBetterSpread,
                statement: "Google data centers have a better spread, particularly in Asia and \
                            South America. Facebook is more vulnerable."
                    .into(),
                question: "Whose datacenter is more vulnerable to a solar superstorm, Google's \
                           or Facebook's?"
                    .into(),
                expected_answer: "Facebook's data centers are more vulnerable".into(),
                rationale_terms: vec![
                    "spread".into(),
                    "dispers".into(),
                    "asia".into(),
                    "south america".into(),
                ],
                evidence: format!(
                    "vulnerability score Google {:.3} ({} regions, {:.0}% low-latitude) vs \
                     Facebook {:.3} ({} regions, {:.0}% low-latitude)",
                    g.vulnerability_score(),
                    g.region_coverage(),
                    g.low_band_fraction() * 100.0,
                    f.vulnerability_score(),
                    f.region_coverage(),
                    f.low_band_fraction() * 100.0
                ),
                holds: f.vulnerability_score() > g.vulnerability_score()
                    && g.region_coverage() > f.region_coverage(),
            });
        }

        // C3 — latitude dependence.
        {
            let low = model.repeater_failure_prob(15.0, &storm);
            let high = model.repeater_failure_prob(60.0, &storm);
            conclusions.push(Conclusion {
                id: ConclusionId::HigherLatitudeHigherRisk,
                statement: "Infrastructure at higher geomagnetic latitudes faces significantly \
                            higher risk from solar superstorms."
                    .into(),
                question: "Does the risk a solar superstorm poses to Internet infrastructure \
                           depend on latitude, and if so, how?"
                    .into(),
                expected_answer: "risk increases at higher latitudes".into(),
                rationale_terms: vec!["induced".into(), "geomagnetic".into(), "auroral".into()],
                evidence: format!(
                    "per-repeater failure probability at 60° geomagnetic latitude is {:.1}× the \
                     15° value ({:.4} vs {:.4})",
                    high / low.max(1e-12),
                    high,
                    low
                ),
                holds: high > 10.0 * low,
            });
        }

        // C4 — repeaters are the weak point.
        {
            let repeaters: u32 = world.cables.iter().map(|c| c.repeater_count()).sum();
            conclusions.push(Conclusion {
                id: ConclusionId::RepeatersAreWeakPoint,
                statement: "In submarine cables, the powered repeaters are the vulnerable \
                            component; the optical fiber itself is not susceptible to \
                            geomagnetically induced currents."
                    .into(),
                question: "Which component of a submarine cable system is most at risk during \
                           a geomagnetic storm?"
                    .into(),
                expected_answer: "the powered repeaters".into(),
                rationale_terms: vec!["repeater".into(), "power".into(), "fiber".into()],
                evidence: format!(
                    "the model attributes all cable failures to its {} modelled repeaters; \
                     fiber spans carry no failure probability",
                    repeaters
                ),
                holds: repeaters > 0,
            });
        }

        // C5 — submarine over terrestrial.
        {
            // Terrestrial links in the model are short-span and
            // unrepeated: their storm failure path is only through grid
            // collapse. Compare a representative long submarine cable
            // against that indirect channel.
            let submarine_mean = world
                .cables
                .iter()
                .map(|c| model.cable_failure_prob(c, &storm))
                .sum::<f64>()
                / world.cables.len() as f64;
            conclusions.push(Conclusion {
                id: ConclusionId::SubmarineOverTerrestrial,
                statement: "Submarine cables are at greater risk of outage than terrestrial \
                            fiber, whose spans are short and unrepeated."
                    .into(),
                question: "Are submarine cables or terrestrial fiber links more at risk during \
                           a solar superstorm?"
                    .into(),
                expected_answer: "submarine cables".into(),
                rationale_terms: vec!["repeater".into(), "long".into(), "terrestrial".into()],
                evidence: format!(
                    "mean submarine cable failure probability {:.2} under a Carrington-class \
                     storm; terrestrial links fail only indirectly through grid collapse",
                    submarine_mean
                ),
                holds: submarine_mean > 0.05,
            });
        }

        // C6 — US vs Asia susceptibility.
        {
            let mean_risk = |region: Region| {
                let sites: Vec<_> = world
                    .google
                    .iter()
                    .chain(world.facebook.iter())
                    .filter(|dc| dc.site.region == region)
                    .collect();
                sites
                    .iter()
                    .map(|dc| model.datacenter_risk(dc, &storm))
                    .sum::<f64>()
                    / sites.len().max(1) as f64
            };
            let us = mean_risk(Region::NorthAmerica);
            let asia = mean_risk(Region::Asia);
            conclusions.push(Conclusion {
                id: ConclusionId::UsMoreSusceptibleThanAsia,
                statement: "The United States is more susceptible to Internet disruption from \
                            solar superstorms than Asia."
                    .into(),
                question: "Is the United States or Asia more susceptible to Internet \
                           disruption from a solar superstorm?"
                    .into(),
                expected_answer: "the United States".into(),
                rationale_terms: vec!["latitude".into(), "equator".into(), "singapore".into()],
                evidence: format!(
                    "mean data-center storm risk in North America {:.3} vs Asia {:.3}; Asian \
                     hubs such as Singapore sit near the geomagnetic equator",
                    us, asia
                ),
                holds: us > 2.0 * asia,
            });
        }

        // C7 — longer cables, higher risk (controlled for route).
        //
        // Across the whole database length anti-correlates with risk
        // because the longest systems (SEA-ME-WE, 2Africa) run at low
        // latitude. The expert claim is about length *on a given
        // route*: more repeaters exposed to the same field. We verify
        // it by stretching each cable's route slack 1.5× and checking
        // failure probability rises for every intercontinental cable.
        {
            let mut ratios = Vec::new();
            let mut monotone = true;
            for c in world.cables.iter().filter(|c| c.is_intercontinental()) {
                let base = model.cable_failure_prob(c, &storm);
                let mut longer = c.clone();
                longer.route_slack *= 1.5;
                let stretched = model.cable_failure_prob(&longer, &storm);
                if stretched <= base {
                    monotone = false;
                }
                if base > 1e-9 {
                    ratios.push(stretched / base);
                }
            }
            let mean_ratio = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
            conclusions.push(Conclusion {
                id: ConclusionId::LongerCablesHigherRisk,
                statement: "On a given route, longer submarine cables face higher failure \
                            risk: more powered repeaters are exposed to the same induced \
                            field."
                    .into(),
                question: "Does the length of a submarine cable affect its vulnerability to \
                           solar superstorms?"
                    .into(),
                expected_answer: "yes, longer cables are more vulnerable".into(),
                rationale_terms: vec!["repeater".into(), "length".into(), "more".into()],
                evidence: format!(
                    "stretching every intercontinental cable 1.5× raises its Carrington \
                     failure probability (mean factor {:.2}×)",
                    mean_ratio
                ),
                holds: monotone && mean_ratio > 1.0,
            });
        }

        // C8 — intercontinental partition risk.
        {
            let report = world
                .graph
                .storm_report(&world.cables, model, &storm, 400, 0xC8);
            let na_eu_direct = report.direct_loss(Region::NorthAmerica, Region::Europe);
            conclusions.push(Conclusion {
                id: ConclusionId::InterContinentalPartition,
                statement: "A Carrington-class storm threatens large-scale intercontinental \
                            disconnection — the direct North Atlantic crossing can be lost \
                            entirely — while connectivity within a region largely survives."
                    .into(),
                question: "What is the large-scale connectivity impact of a Carrington-class \
                           solar superstorm on the Internet?"
                    .into(),
                expected_answer: "intercontinental links fail while regional networks survive"
                    .into(),
                rationale_terms: vec!["cable".into(), "partition".into(), "continent".into()],
                evidence: format!(
                    "Monte Carlo ({} trials): mean {:.1} cables down; probability the entire \
                     direct North America–Europe crossing is lost {:.2}; intra-regional \
                     terrestrial meshes unaffected",
                    report.trials, report.mean_cables_down, na_eu_direct
                ),
                holds: report.mean_cables_down > 5.0 && na_eu_direct > 0.005,
            });
        }

        ConclusionSet { conclusions }
    }

    pub fn len(&self) -> usize {
        self.conclusions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.conclusions.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &Conclusion> {
        self.conclusions.iter()
    }

    pub fn get(&self, id: ConclusionId) -> Option<&Conclusion> {
        self.conclusions.iter().find(|c| c.id == id)
    }
}

/// Which operator a conclusion set says is more storm-resilient.
pub fn more_resilient_operator(world: &World) -> Operator {
    if world.google.vulnerability_score() < world.facebook.vulnerability_score() {
        Operator::Google
    } else {
        Operator::Facebook
    }
}

/// Convenience: the latitude band of a named cable, if present.
pub fn cable_band(world: &World, name: &str) -> Option<LatitudeBand> {
    world.cables.find(name).map(|c| c.band())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derives_exactly_eight() {
        let w = World::standard();
        let set = ConclusionSet::derive(&w);
        assert_eq!(set.len(), 8);
        for id in ConclusionId::ALL {
            assert!(set.get(id).is_some(), "{id:?} missing");
        }
    }

    #[test]
    fn all_conclusions_hold_and_carry_evidence() {
        let w = World::standard();
        for c in ConclusionSet::derive(&w).iter() {
            assert!(c.holds, "{:?}: {}", c.id, c.evidence);
            assert!(!c.evidence.is_empty());
            assert!(!c.question.is_empty());
            assert!(!c.expected_answer.is_empty());
            assert!(!c.rationale_terms.is_empty());
        }
    }

    #[test]
    fn google_is_the_resilient_operator() {
        let w = World::standard();
        assert_eq!(more_resilient_operator(&w), Operator::Google);
    }

    #[test]
    fn cable_band_lookup() {
        let w = World::standard();
        assert_eq!(cable_band(&w, "EllaLink"), Some(LatitudeBand::Mid));
        assert_eq!(cable_band(&w, "no such cable"), None);
    }

    #[test]
    fn rationale_terms_are_lowercase() {
        let w = World::standard();
        for c in ConclusionSet::derive(&w).iter() {
            for t in &c.rationale_terms {
                assert_eq!(t, &t.to_lowercase(), "{:?} term {t}", c.id);
            }
        }
    }
}
