//! Geographic primitives: coordinates, great-circle math, regions.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Mean Earth radius in kilometres.
pub const EARTH_RADIUS_KM: f64 = 6_371.0;

/// A point on the Earth's surface, degrees north / degrees east.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    pub lat: f64,
    pub lon: f64,
}

impl GeoPoint {
    /// Construct a point, validating coordinate ranges.
    ///
    /// Panics on out-of-range coordinates: the database is static and an
    /// invalid entry is a bug in this crate, not a runtime condition.
    pub fn new(lat: f64, lon: f64) -> Self {
        assert!((-90.0..=90.0).contains(&lat), "latitude {lat} out of range");
        assert!(
            (-180.0..=180.0).contains(&lon),
            "longitude {lon} out of range"
        );
        GeoPoint { lat, lon }
    }

    /// Great-circle distance to `other` in kilometres (haversine).
    pub fn distance_km(&self, other: &GeoPoint) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
    }

    /// Interpolate along the great circle from `self` to `other`.
    ///
    /// `t` in \[0,1\]; uses spherical linear interpolation so sampled
    /// waypoints actually lie on the shortest path — this matters
    /// because trans-Atlantic great circles arc far north of both
    /// endpoints, which is exactly the effect that makes US–Europe
    /// cables vulnerable to geomagnetic storms.
    pub fn intermediate(&self, other: &GeoPoint, t: f64) -> GeoPoint {
        debug_assert!((0.0..=1.0).contains(&t));
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());

        // Angular distance between the endpoints.
        let d = (self.distance_km(other) / EARTH_RADIUS_KM).max(1e-12);
        let a = ((1.0 - t) * d).sin() / d.sin();
        let b = (t * d).sin() / d.sin();

        let x = a * lat1.cos() * lon1.cos() + b * lat2.cos() * lon2.cos();
        let y = a * lat1.cos() * lon1.sin() + b * lat2.cos() * lon2.sin();
        let z = a * lat1.sin() + b * lat2.sin();

        GeoPoint {
            lat: z.atan2((x * x + y * y).sqrt()).to_degrees(),
            lon: y.atan2(x).to_degrees(),
        }
    }

    /// Sample `n + 1` waypoints (inclusive of endpoints) along the great
    /// circle from `self` to `other`.
    pub fn great_circle_path(&self, other: &GeoPoint, n: usize) -> Vec<GeoPoint> {
        assert!(n >= 1, "path needs at least one segment");
        (0..=n)
            .map(|i| self.intermediate(other, i as f64 / n as f64))
            .collect()
    }
}

impl fmt::Display for GeoPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = if self.lat >= 0.0 { 'N' } else { 'S' };
        let ew = if self.lon >= 0.0 { 'E' } else { 'W' };
        write!(f, "{:.2}°{ns} {:.2}°{ew}", self.lat.abs(), self.lon.abs())
    }
}

/// Coarse world regions, used for dispersion metrics and corpus text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Region {
    NorthAmerica,
    SouthAmerica,
    Europe,
    Africa,
    MiddleEast,
    Asia,
    Oceania,
}

impl Region {
    pub const ALL: [Region; 7] = [
        Region::NorthAmerica,
        Region::SouthAmerica,
        Region::Europe,
        Region::Africa,
        Region::MiddleEast,
        Region::Asia,
        Region::Oceania,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            Region::NorthAmerica => "North America",
            Region::SouthAmerica => "South America",
            Region::Europe => "Europe",
            Region::Africa => "Africa",
            Region::MiddleEast => "Middle East",
            Region::Asia => "Asia",
            Region::Oceania => "Oceania",
        }
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A named place with coordinates — cable landing points, data-center
/// sites, and topology nodes all reference these.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Place {
    pub name: String,
    pub country: String,
    pub region: Region,
    pub point: GeoPoint,
}

impl Place {
    pub fn new(name: &str, country: &str, region: Region, lat: f64, lon: f64) -> Self {
        Place {
            name: name.to_string(),
            country: country.to_string(),
            region,
            point: GeoPoint::new(lat, lon),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn new_york() -> GeoPoint {
        GeoPoint::new(40.71, -74.01)
    }
    fn london() -> GeoPoint {
        GeoPoint::new(51.51, -0.13)
    }

    #[test]
    fn haversine_matches_known_distances() {
        // New York – London is ~5,570 km.
        let d = new_york().distance_km(&london());
        assert!((d - 5_570.0).abs() < 60.0, "NY–London distance {d}");
        // Antipodal-ish check: distance is symmetric.
        assert!((d - london().distance_km(&new_york())).abs() < 1e-9);
    }

    #[test]
    fn zero_distance_to_self() {
        let p = new_york();
        assert!(p.distance_km(&p) < 1e-9);
    }

    #[test]
    fn great_circle_arcs_north_of_endpoints() {
        // The NY–London great circle reaches above 52°N even though both
        // endpoints are below it — the physical reason trans-Atlantic
        // cables pass through high geomagnetic latitudes.
        let path = new_york().great_circle_path(&london(), 64);
        let max_lat = path.iter().map(|p| p.lat).fold(f64::MIN, f64::max);
        assert!(max_lat > 52.0, "great-circle apex {max_lat}");
    }

    #[test]
    fn intermediate_endpoints_are_exact() {
        let a = new_york();
        let b = london();
        let start = a.intermediate(&b, 0.0);
        let end = a.intermediate(&b, 1.0);
        assert!(a.distance_km(&start) < 1.0);
        assert!(b.distance_km(&end) < 1.0);
    }

    #[test]
    fn path_lengths_sum_to_total_distance() {
        let a = new_york();
        let b = london();
        let path = a.great_circle_path(&b, 100);
        let sum: f64 = path.windows(2).map(|w| w[0].distance_km(&w[1])).sum();
        let direct = a.distance_km(&b);
        assert!(
            (sum - direct).abs() / direct < 1e-3,
            "polyline {sum} vs direct {direct}"
        );
    }

    #[test]
    #[should_panic(expected = "latitude")]
    fn invalid_latitude_panics() {
        GeoPoint::new(91.0, 0.0);
    }

    #[test]
    fn display_formats_hemispheres() {
        assert_eq!(GeoPoint::new(-23.55, -46.63).to_string(), "23.55°S 46.63°W");
        assert_eq!(GeoPoint::new(1.35, 103.82).to_string(), "1.35°N 103.82°E");
    }
}
