//! The bundled world: every database plus the storm model.

use crate::cables::CableDatabase;
use crate::conclusions::ConclusionSet;
use crate::datacenters::DataCenterFleet;
use crate::graph::TopologyGraph;
use crate::incidents::IncidentCatalog;
use crate::power::PowerGridDatabase;
use crate::storm::StormModel;

/// Everything the corpus generator and the evaluation harness need,
/// built once and shared.
#[derive(Debug, Clone)]
pub struct World {
    pub cables: CableDatabase,
    pub google: DataCenterFleet,
    pub facebook: DataCenterFleet,
    pub grids: PowerGridDatabase,
    pub graph: TopologyGraph,
    pub storm_model: StormModel,
    pub incidents: IncidentCatalog,
}

impl World {
    /// The standard world used by every experiment.
    pub fn standard() -> Self {
        let cables = CableDatabase::standard();
        let graph = TopologyGraph::from_cables(&cables);
        World {
            cables,
            google: DataCenterFleet::google(),
            facebook: DataCenterFleet::facebook(),
            grids: PowerGridDatabase::standard(),
            graph,
            storm_model: StormModel::default(),
            incidents: IncidentCatalog::standard(),
        }
    }

    /// Derive the expert conclusion set from this world.
    pub fn conclusions(&self) -> ConclusionSet {
        ConclusionSet::derive(self)
    }
}

impl Default for World {
    fn default() -> Self {
        World::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_world_builds_and_is_consistent() {
        let w = World::standard();
        assert!(w.cables.len() >= 40);
        assert!(w.graph.node_count() >= 40);
        assert!(!w.google.is_empty());
        assert!(!w.facebook.is_empty());
        assert!(!w.grids.is_empty());
    }

    #[test]
    fn all_eight_conclusions_hold_in_the_standard_world() {
        let w = World::standard();
        let set = w.conclusions();
        assert_eq!(set.len(), 8);
        for c in set.iter() {
            assert!(
                c.holds,
                "conclusion {:?} does not hold: {}",
                c.id, c.evidence
            );
        }
    }
}
