//! Space-weather forecasting and shutdown-policy economics.
//!
//! §4.3's expert plan leads with *Predictive Shutdown*: "upon receiving
//! information about a CME, start with shutting down the systems that
//! are most vulnerable". Whether that policy is worth running depends
//! on forecast quality and the cost asymmetry between preemptive
//! downtime and storm damage. This module makes the trade-off
//! computable:
//!
//! * a seeded CME event generator with a power-law intensity tail
//!   (moderate storms are yearly events, Carrington-class ones are
//!   century events),
//! * a forecast model with magnitude noise and the 15–72 hour warning
//!   lead time the literature (and our corpus) quotes,
//! * a threshold shutdown policy, and
//! * a cost model: expected repeater damage (from
//!   [`crate::storm::StormModel`] over the cable database) against the
//!   downtime cost of acting.

use crate::cables::CableDatabase;
use crate::storm::{StormModel, StormScenario};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One incoming CME event.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CmeEvent {
    /// True minimum Dst the storm will reach (negative nT).
    pub true_dst: f64,
    /// Forecast estimate of the Dst (noisy).
    pub forecast_dst: f64,
    /// Warning lead time in hours.
    pub lead_time_hours: f64,
}

/// Event generation / forecast-quality knobs.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ForecastModel {
    /// Pareto tail exponent of storm intensity (larger = thinner tail).
    pub tail_alpha: f64,
    /// Minimum |Dst| of a "warnable" event.
    pub min_dst: f64,
    /// Multiplicative forecast noise: forecast = true × (1 ± noise).
    pub magnitude_noise: f64,
}

impl Default for ForecastModel {
    fn default() -> Self {
        // alpha = 2 puts |Dst| > 1000 nT at ~1% of warnable events —
        // roughly the one-per-century intuition at ~1 warnable event
        // per month.
        ForecastModel {
            tail_alpha: 2.0,
            min_dst: 100.0,
            magnitude_noise: 0.30,
        }
    }
}

impl ForecastModel {
    /// Sample one event.
    pub fn sample(&self, rng: &mut ChaCha8Rng) -> CmeEvent {
        // Pareto via inverse CDF, capped at a physical ceiling.
        let u: f64 = rng.gen_range(1e-9..1.0f64);
        let magnitude = (self.min_dst / u.powf(1.0 / self.tail_alpha)).min(2_500.0);
        let noise = 1.0 + rng.gen_range(-self.magnitude_noise..self.magnitude_noise);
        CmeEvent {
            true_dst: -magnitude,
            forecast_dst: -(magnitude * noise).max(self.min_dst),
            lead_time_hours: rng.gen_range(15.0..72.0),
        }
    }

    /// Sample a whole event series.
    pub fn sample_series(&self, count: usize, rng: &mut ChaCha8Rng) -> Vec<CmeEvent> {
        (0..count).map(|_| self.sample(rng)).collect()
    }
}

/// The threshold policy: shut down when the forecast exceeds the
/// trigger.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ShutdownPolicy {
    /// Act when |forecast Dst| ≥ this value (nT).
    pub trigger_dst: f64,
}

/// Cost accounting for a policy over an event series.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct PolicyOutcome {
    pub events: usize,
    /// Events where the policy acted.
    pub shutdowns: usize,
    /// Acted but the storm was harmless (false alarms).
    pub false_alarms: usize,
    /// Did not act and the storm caused damage (misses).
    pub missed_storms: usize,
    /// Expected repeaters destroyed across the series.
    pub repeaters_lost: f64,
    /// Total preemptive downtime, hours.
    pub downtime_hours: f64,
    /// Combined cost in cost units.
    pub total_cost: f64,
}

/// Cost weights: what a lost repeater costs (cable-ship repair,
/// capacity loss over weeks) versus one hour of a preemptive,
/// controlled shutdown.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CostModel {
    pub repeater_loss_cost: f64,
    pub downtime_hour_cost: f64,
    /// Hours of downtime one shutdown decision incurs (shutdown +
    /// gradual reboot).
    pub shutdown_duration_hours: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            repeater_loss_cost: 1_000.0,
            downtime_hour_cost: 10.0,
            shutdown_duration_hours: 36.0,
        }
    }
}

/// Expected repeaters destroyed by a storm of the given Dst across the
/// cable database. A preemptive shutdown is modelled as saving the
/// powered repeaters (unpowered electronics ride the storm out).
pub fn expected_repeater_losses(db: &CableDatabase, model: &StormModel, dst: f64) -> f64 {
    if dst >= -1.0 {
        return 0.0;
    }
    let storm = StormScenario::new("event", dst, None);
    db.iter()
        .map(|cable| {
            let path = cable.path();
            let segments = path.len().saturating_sub(1).max(1);
            let reps = cable.repeater_count() as f64 / segments as f64;
            path.windows(2)
                .map(|w| {
                    let lat = (crate::geomag::geomagnetic_latitude(&w[0]).abs()
                        + crate::geomag::geomagnetic_latitude(&w[1]).abs())
                        / 2.0;
                    model.repeater_failure_prob(lat, &storm) * reps
                })
                .sum::<f64>()
        })
        .sum()
}

/// Evaluate a policy over an event series.
pub fn evaluate_policy(
    policy: ShutdownPolicy,
    events: &[CmeEvent],
    db: &CableDatabase,
    storm_model: &StormModel,
    costs: &CostModel,
) -> PolicyOutcome {
    let mut outcome = PolicyOutcome {
        events: events.len(),
        ..PolicyOutcome::default()
    };
    // A storm "matters" when it would destroy at least one repeater.
    for event in events {
        let damage_if_exposed = expected_repeater_losses(db, storm_model, event.true_dst);
        let acted = event.forecast_dst.abs() >= policy.trigger_dst;
        if acted {
            outcome.shutdowns += 1;
            outcome.downtime_hours += costs.shutdown_duration_hours;
            if damage_if_exposed < 1.0 {
                outcome.false_alarms += 1;
            }
        } else {
            outcome.repeaters_lost += damage_if_exposed;
            if damage_if_exposed >= 1.0 {
                outcome.missed_storms += 1;
            }
        }
    }
    outcome.total_cost = outcome.repeaters_lost * costs.repeater_loss_cost
        + outcome.downtime_hours * costs.downtime_hour_cost;
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn events(n: usize, seed: u64) -> Vec<CmeEvent> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        ForecastModel::default().sample_series(n, &mut rng)
    }

    #[test]
    fn sampled_events_have_sane_ranges() {
        for e in events(2_000, 1) {
            assert!(e.true_dst <= -100.0 + 1e-9);
            assert!(e.true_dst >= -2_500.0);
            assert!(e.forecast_dst < 0.0);
            assert!((15.0..72.0).contains(&e.lead_time_hours));
        }
    }

    #[test]
    fn intensity_tail_is_heavy_but_extremes_are_rare() {
        let es = events(5_000, 2);
        let extreme = es.iter().filter(|e| e.true_dst < -1_000.0).count();
        let moderate = es.iter().filter(|e| e.true_dst > -300.0).count();
        assert!(extreme >= 1, "the tail must produce some extremes");
        assert!(
            extreme < es.len() / 50,
            "extremes must be rare: {extreme}/{}",
            es.len()
        );
        assert!(moderate > es.len() / 2, "most events are moderate");
    }

    #[test]
    fn damage_grows_with_storm_strength_and_vanishes_for_weak_storms() {
        let db = CableDatabase::standard();
        let model = StormModel::default();
        let weak = expected_repeater_losses(&db, &model, -150.0);
        let quebec = expected_repeater_losses(&db, &model, -589.0);
        let carrington = expected_repeater_losses(&db, &model, -1_760.0);
        assert!(weak < 1.0, "moderate storms destroy ~nothing, got {weak}");
        assert!(carrington > quebec);
        assert!(
            carrington > 30.0,
            "a Carrington event is a mass-loss event: {carrington}"
        );
    }

    #[test]
    fn always_act_and_never_act_bracket_the_sensible_policies() {
        let db = CableDatabase::standard();
        let model = StormModel::default();
        let costs = CostModel::default();
        let es = events(500, 3);

        let never = evaluate_policy(
            ShutdownPolicy {
                trigger_dst: f64::MAX,
            },
            &es,
            &db,
            &model,
            &costs,
        );
        let always = evaluate_policy(
            ShutdownPolicy { trigger_dst: 0.0 },
            &es,
            &db,
            &model,
            &costs,
        );
        let tuned = evaluate_policy(
            ShutdownPolicy { trigger_dst: 700.0 },
            &es,
            &db,
            &model,
            &costs,
        );

        assert_eq!(never.shutdowns, 0);
        assert_eq!(always.shutdowns, es.len());
        assert!(
            always.false_alarms > 0,
            "acting on every event must waste downtime"
        );
        assert!(
            tuned.total_cost < never.total_cost,
            "a tuned predictive shutdown must beat doing nothing: {} vs {}",
            tuned.total_cost,
            never.total_cost
        );
        assert!(
            tuned.total_cost < always.total_cost,
            "and beat shutting down for everything: {} vs {}",
            tuned.total_cost,
            always.total_cost
        );
    }

    #[test]
    fn policy_evaluation_is_deterministic() {
        let db = CableDatabase::standard();
        let model = StormModel::default();
        let costs = CostModel::default();
        let es = events(200, 4);
        let a = evaluate_policy(
            ShutdownPolicy { trigger_dst: 600.0 },
            &es,
            &db,
            &model,
            &costs,
        );
        let b = evaluate_policy(
            ShutdownPolicy { trigger_dst: 600.0 },
            &es,
            &db,
            &model,
            &costs,
        );
        assert_eq!(a.total_cost, b.total_cost);
        assert_eq!(a.shutdowns, b.shutdowns);
    }
}
