//! `ira`: the facade crate.
//!
//! One dependency pulling in the whole workspace, plus a [`prelude`]
//! with the types nearly every experiment touches — so examples and
//! bench binaries write
//!
//! ```rust
//! use ira::prelude::*;
//! ```
//!
//! instead of reaching into six `ira-*` crates by deep path. The
//! individual crates remain available as modules ([`core`], [`engine`],
//! [`evalkit`], [`obs`], …) for anything the prelude does not cover.

pub use ira_agentmem as agentmem;
pub use ira_autogpt as autogpt;
pub use ira_core as core;
pub use ira_engine as engine;
pub use ira_evalkit as evalkit;
pub use ira_obs as obs;
pub use ira_serve as serve;
pub use ira_services as services;
pub use ira_simllm as simllm;
pub use ira_simnet as simnet;
pub use ira_webcorpus as webcorpus;
pub use ira_worldmodel as worldmodel;

/// The working set: spawn sessions, train agents, trace runs.
pub mod prelude {
    pub use ira_agentmem::{KnowledgeStore, StoreConfig};
    pub use ira_autogpt::{AutoGptConfig, Budget};
    pub use ira_core::{
        AgentConfig, AgentConfigBuilder, Environment, FaultSpec, InferenceLatency,
        LearningTrajectory, ResearchAgent, RoleDefinition, TrainingReport,
    };
    pub use ira_engine::{Engine, Session, SessionConfig};
    pub use ira_evalkit::quiz::QuizBank;
    pub use ira_evalkit::runner::{
        evaluate_agent, evaluate_baseline, evaluate_scenario, full_paper_run, metrics_rollup,
        sweep, EvalRun,
    };
    pub use ira_obs::{
        Collector, CollectorExt, Fanout, JsonlCollector, MetricsSnapshot, NullCollector,
        SharedCollector, SummaryCollector, TraceEvent,
    };
    pub use ira_serve::{ServeConfig, ServeRequest, ServeResponse, Server};
    pub use ira_services::{IraError, IraResult, ServiceError};
    pub use ira_simnet::{ClientConfig, Duration, Instant};
    pub use ira_webcorpus::CorpusConfig;
    pub use ira_worldmodel::scenario::{Scenario, ScenarioRegistry, ScenarioSpec};
    pub use ira_worldmodel::World;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_covers_the_working_set() {
        let engine = Engine::new();
        let config = AgentConfig::builder()
            .confidence_threshold(7)
            .build()
            .unwrap();
        let mut session_config = SessionConfig::bob();
        session_config.agent = config;
        let session = engine.spawn_session(session_config);
        assert_eq!(session.now_us(), 0);
        let _: SharedCollector = std::sync::Arc::new(NullCollector);
    }

    #[test]
    fn prelude_covers_the_serve_layer() {
        let server = Server::new(ServeConfig::default());
        let mut probe = ServeRequest::new("p", ira_serve::RequestKind::PanicProbe);
        probe.probe_panics = Some(0);
        let responses: Vec<ServeResponse> = server.handle_batch(&[probe], None);
        assert_eq!(responses.len(), 1);
    }
}
