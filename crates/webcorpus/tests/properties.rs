//! Property-based tests for tokenization and BM25 ranking.

use ira_webcorpus::doc::{DocId, Document, SourceKind, Topic};
use ira_webcorpus::index::bm25::SearchEngine;
use ira_webcorpus::index::tokenize::{is_stopword, stem, tokenize};
use proptest::prelude::*;

fn doc(id: DocId, body: String) -> Document {
    Document {
        id,
        source: SourceKind::News,
        path: format!("/d/{id}"),
        title: format!("doc {id}"),
        body,
        topic: Topic::Distractor,
        links: Vec::new(),
    }
}

proptest! {
    #[test]
    fn tokenize_never_panics_and_output_is_clean(s in "\\PC{0,400}") {
        for tok in tokenize(&s) {
            prop_assert!(tok.len() >= 2 || tok.chars().count() >= 2,
                "token too short: {tok:?}");
            prop_assert!(!is_stopword(&tok) || tok != tok.to_lowercase() || !is_stopword(&tok),
                "stopword leaked: {tok:?}");
        }
    }

    #[test]
    fn stemming_is_idempotent_enough_for_indexing(w in "[a-z]{3,15}") {
        // Applying the stem twice must agree with applying it once for
        // indexing purposes (query and document sides stem once each,
        // but nested suffixes like "linkings" resolve within two).
        let once = stem(&w);
        let twice = stem(&once);
        prop_assert_eq!(stem(&twice.clone()), twice);
    }

    #[test]
    fn query_matching_its_own_document_ranks_it_first(
        unique in "[a-z]{12,16}",
        filler_docs in 1usize..10,
    ) {
        prop_assume!(!is_stopword(&unique));
        let mut docs = vec![doc(0, format!("This document mentions the rare word {unique} twice: {unique}."))];
        for i in 0..filler_docs {
            docs.push(doc(
                (i + 1) as DocId,
                "Completely generic filler content about markets and weather patterns.".into(),
            ));
        }
        let engine = SearchEngine::build(&docs);
        let hits = engine.search(&unique, 5);
        prop_assume!(!hits.is_empty()); // stemming may alter very rare shapes
        prop_assert_eq!(hits[0].doc, 0);
    }

    #[test]
    fn search_results_are_sorted_and_bounded(
        query in "[a-z ]{0,40}",
        k in 0usize..20,
    ) {
        let docs: Vec<Document> = (0..15)
            .map(|i| doc(i, format!("content number {i} about cables storms markets weather")))
            .collect();
        let engine = SearchEngine::build(&docs);
        let hits = engine.search(&query, k);
        prop_assert!(hits.len() <= k);
        for w in hits.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn document_frequency_never_exceeds_doc_count(word in "[a-z]{3,10}") {
        let docs: Vec<Document> = (0..8)
            .map(|i| doc(i, format!("body {i} with some shared words and cables")))
            .collect();
        let engine = SearchEngine::build(&docs);
        prop_assert!(engine.document_frequency(&word) <= engine.doc_count());
    }
}
