//! Render a scenario's corpus slice into documents.
//!
//! Scenarios (see [`ira_worldmodel::scenario`]) describe their
//! incident-specific pages abstractly — a channel, a title, and the
//! canonical fact sentences — because the world model sits below this
//! crate. This module maps each [`DocChannel`] onto its corpus
//! [`SourceKind`] and renders the pages with the same path scheme the
//! fact templates use, so scenario pages are indistinguishable from the
//! rest of the synthetic web (searchable, crawlable, linkable).

use crate::doc::{slugify, DocId, Document, SourceKind, Topic};
use ira_worldmodel::scenario::{DocChannel, ScenarioDocs};

/// The corpus source kind publishing a scenario channel.
pub fn source_kind(channel: DocChannel) -> SourceKind {
    match channel {
        DocChannel::Encyclopedia => SourceKind::Encyclopedia,
        DocChannel::News => SourceKind::News,
        DocChannel::Blog => SourceKind::Blog,
        DocChannel::Forum => SourceKind::Forum,
        DocChannel::MicroPost => SourceKind::MicroPost,
        DocChannel::PaperAbstract => SourceKind::PaperAbstract,
    }
}

/// Render the scenario's event pages, ids starting at `first_id`. The
/// path scheme matches the fact templates exactly (slug paths for
/// reference/blog hosts, id paths for feeds), so virtual hosts serve
/// scenario pages with no special cases.
pub fn render(docs: &ScenarioDocs, first_id: DocId) -> Vec<Document> {
    docs.events
        .iter()
        .enumerate()
        .map(|(offset, event)| {
            let id = first_id + offset as DocId;
            let source = source_kind(event.channel);
            let path = match source {
                SourceKind::Encyclopedia => format!("/wiki/{}", slugify(&event.title)),
                SourceKind::News => format!("/articles/{}-{}", id, slugify(&event.title)),
                SourceKind::Blog => format!("/posts/{}", slugify(&event.title)),
                SourceKind::Forum => format!("/thread/{id}"),
                SourceKind::MicroPost => format!("/status/{id}"),
                SourceKind::PaperAbstract => format!("/abs/{id}"),
            };
            Document {
                id,
                source,
                path,
                title: event.title.clone(),
                body: event.sentences.join(" "),
                topic: Topic::ScenarioEvent,
                links: Vec::new(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ira_worldmodel::scenario::{lookup, CABLE_CUT};
    use ira_worldmodel::World;

    #[test]
    fn rendering_preserves_order_ids_and_sentences() {
        let world = World::standard();
        let scenario = lookup(CABLE_CUT).unwrap();
        let slice = scenario.docs(&world);
        let docs = render(&slice, 100);
        assert_eq!(docs.len(), slice.events.len());
        for (i, (doc, event)) in docs.iter().zip(slice.events.iter()).enumerate() {
            assert_eq!(doc.id, 100 + i as DocId);
            assert_eq!(doc.title, event.title);
            assert_eq!(doc.topic, Topic::ScenarioEvent);
            assert_eq!(doc.source, source_kind(event.channel));
            for sentence in &event.sentences {
                assert!(doc.body.contains(sentence), "missing: {sentence}");
            }
        }
    }

    #[test]
    fn paths_follow_the_template_scheme() {
        let world = World::standard();
        let scenario = lookup(CABLE_CUT).unwrap();
        let docs = render(&scenario.docs(&world), 0);
        for doc in &docs {
            let ok = match doc.source {
                SourceKind::Encyclopedia => doc.path.starts_with("/wiki/"),
                SourceKind::News => doc.path.starts_with("/articles/"),
                SourceKind::Blog => doc.path.starts_with("/posts/"),
                SourceKind::Forum => doc.path.starts_with("/thread/"),
                SourceKind::MicroPost => doc.path.starts_with("/status/"),
                SourceKind::PaperAbstract => doc.path.starts_with("/abs/"),
            };
            assert!(ok, "bad path {} for {:?}", doc.path, doc.source);
        }
    }
}
