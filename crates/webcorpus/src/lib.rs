//! # ira-webcorpus
//!
//! A synthetic, multi-source web for the research agent to learn from —
//! the stand-in for "Google, Twitter, and Reddit" in the HotNets '23
//! paper. The corpus is generated from the [`ira_worldmodel::World`]
//! ground truth, which is what makes the evaluation mechanical: the
//! facts the agent can find online are exactly the facts the expert
//! conclusions follow from.
//!
//! * [`doc`] — document and source-kind types.
//! * [`textgen`] — seeded text composition helpers.
//! * [`templates`] — fact-bearing article generation from the world
//!   model (cable route pages, data-center coverage reports, space
//!   weather explainers, storm history, response-planning guidance).
//! * [`distractors`] — plausible but irrelevant documents with keyword
//!   overlap, so retrieval has to actually rank.
//! * [`index`] — tokenizer and BM25 inverted index.
//! * [`scenario_docs`] — renders a scenario's incident pages (see
//!   `ira_worldmodel::scenario`) into corpus documents.
//! * [`corpus`] — the assembled corpus.
//! * [`sites`] — simnet virtual hosts: a search engine front-end plus
//!   one content host per source kind.
//!
//! ## Fact sentence contract
//!
//! Articles embed facts in canonical sentence shapes (see
//! [`templates`]) such as
//!
//! > "The EllaLink submarine cable connects Fortaleza, Brazil to Sines,
//! > Portugal, linking South America and Europe." / "Along its route it
//! > reaches a maximum geomagnetic latitude of 46.3 degrees."
//!
//! The simulated LLM's extraction layer (in `ira-simllm`) parses these
//! shapes. This mirrors the real-world situation: an LLM can read the
//! prose humans actually publish; our extractor can read the prose this
//! corpus actually publishes.

pub mod corpus;
pub mod distractors;
pub mod doc;
pub mod index;
pub mod scenario_docs;
pub mod sites;
pub mod templates;
pub mod textgen;

pub use corpus::{Corpus, CorpusConfig};
pub use doc::{DocId, Document, SourceKind, Topic};
pub use index::bm25::{SearchEngine, SearchHit};
pub use sites::{register_sites, SearchResultPage, SEARCH_HOST};
