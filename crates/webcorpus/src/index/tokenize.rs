//! Tokenization for indexing and querying.
//!
//! Lowercase, split on non-alphanumerics, drop stopwords, and apply a
//! light suffix-stripping stem so "cables"/"cable" and
//! "repeaters"/"repeater" co-rank. The stemmer is deliberately tiny —
//! it only strips plural/verbal suffixes that actually occur in this
//! corpus — because an aggressive stemmer would conflate distractor
//! vocabulary with topic vocabulary.

/// Words too common to carry ranking signal.
const STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "but", "by", "can", "do", "for", "from", "had",
    "has", "have", "he", "her", "his", "how", "i", "if", "in", "into", "is", "it", "its", "more",
    "most", "no", "not", "of", "on", "one", "or", "our", "she", "so", "such", "than", "that",
    "the", "their", "them", "then", "there", "these", "they", "this", "those", "to", "two", "up",
    "was", "we", "were", "what", "when", "where", "which", "while", "who", "will", "with", "you",
    "your",
];

/// True if `w` is a stopword (after lowercasing).
pub fn is_stopword(w: &str) -> bool {
    STOPWORDS.binary_search(&w).is_ok()
}

/// Light stemming: strip common English suffixes, keeping at least a
/// 3-character stem.
pub fn stem(word: &str) -> String {
    // "vulnerabilities" -> "vulnerability"
    if let Some(stripped) = word.strip_suffix("ies") {
        if stripped.len() >= 3 {
            return format!("{stripped}y");
        }
    }
    // "linking" -> "link", "connected" -> "connect", "cables" -> "cable"
    for suffix in ["ing", "ed", "ly", "s"] {
        if let Some(stripped) = word.strip_suffix(suffix) {
            if stripped.len() >= 3 {
                return stripped.to_string();
            }
        }
    }
    word.to_string()
}

/// Tokenize text into stemmed index terms.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            for lower in ch.to_lowercase() {
                current.push(lower);
            }
        } else if !current.is_empty() {
            push_token(&mut out, std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        push_token(&mut out, current);
    }
    out
}

fn push_token(out: &mut Vec<String>, token: String) {
    if token.len() < 2 || is_stopword(&token) {
        return;
    }
    out.push(stem(&token));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopword_table_is_sorted_for_binary_search() {
        let mut sorted = STOPWORDS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, STOPWORDS, "STOPWORDS must stay sorted");
    }

    #[test]
    fn tokenize_lowercases_and_splits() {
        assert_eq!(
            tokenize("Submarine Cables, repeaters!"),
            vec!["submarine", "cable", "repeater"]
        );
    }

    #[test]
    fn stopwords_are_dropped() {
        assert_eq!(
            tokenize("the cable is in the ocean"),
            vec!["cable", "ocean"]
        );
    }

    #[test]
    fn stemming_unifies_plurals_and_gerunds() {
        assert_eq!(stem("cables"), "cable");
        assert_eq!(stem("linking"), "link");
        assert_eq!(stem("connected"), "connect");
        assert_eq!(stem("latitudes"), "latitude");
        // short words survive
        assert_eq!(stem("gas"), "gas");
        assert_eq!(stem("bus"), "bus");
    }

    #[test]
    fn numbers_survive_tokenization() {
        assert_eq!(
            tokenize("Dst of -1760 nanotesla in 1859"),
            vec!["dst", "1760", "nanotesla", "1859"]
        );
    }

    #[test]
    fn single_chars_are_dropped() {
        assert_eq!(tokenize("a b c cable"), vec!["cable"]);
    }

    #[test]
    fn unicode_is_handled() {
        let tokens = tokenize("Luleå data-center résumé");
        assert!(tokens.contains(&"luleå".to_string()));
        assert!(tokens.contains(&"résumé".to_string()));
    }

    #[test]
    fn query_and_document_tokenize_identically() {
        let doc = tokenize("The EllaLink submarine cable connects Fortaleza");
        let query = tokenize("ellalink submarine cable fortaleza");
        for q in &query {
            assert!(
                doc.contains(q),
                "query token {q} missing from doc tokens {doc:?}"
            );
        }
    }
}
