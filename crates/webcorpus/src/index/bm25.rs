//! BM25 inverted index.
//!
//! Okapi BM25 with the standard parameters (k1 = 1.2, b = 0.75). The
//! index is immutable after build and fully thread-safe, so the
//! self-learning loop can fan searches out across threads.

use super::tokenize::tokenize;
use crate::doc::{DocId, Document};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// BM25 term-frequency saturation parameter.
const K1: f64 = 1.2;
/// BM25 length-normalization parameter.
const B: f64 = 0.75;

/// One ranked search result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchHit {
    pub doc: DocId,
    pub score: f64,
}

#[derive(Debug, Clone)]
struct Posting {
    doc: DocId,
    term_freq: u32,
}

/// The search engine: inverted index over a document set.
#[derive(Debug, Clone)]
pub struct SearchEngine {
    postings: HashMap<String, Vec<Posting>>,
    doc_len: HashMap<DocId, u32>,
    avg_doc_len: f64,
    doc_count: usize,
}

impl SearchEngine {
    /// Build the index over `docs` (title + body are indexed).
    pub fn build<'a>(docs: impl IntoIterator<Item = &'a Document>) -> Self {
        let mut postings: HashMap<String, Vec<Posting>> = HashMap::new();
        let mut doc_len = HashMap::new();
        let mut total_len = 0u64;

        for doc in docs {
            let tokens = tokenize(&doc.full_text());
            total_len += tokens.len() as u64;
            doc_len.insert(doc.id, tokens.len() as u32);

            let mut counts: HashMap<String, u32> = HashMap::new();
            for t in tokens {
                *counts.entry(t).or_insert(0) += 1;
            }
            for (term, term_freq) in counts {
                postings.entry(term).or_default().push(Posting {
                    doc: doc.id,
                    term_freq,
                });
            }
        }

        let doc_count = doc_len.len();
        let avg_doc_len = if doc_count == 0 {
            0.0
        } else {
            total_len as f64 / doc_count as f64
        };
        // Deterministic posting order (build iterates a HashMap).
        let mut engine = SearchEngine {
            postings,
            doc_len,
            avg_doc_len,
            doc_count,
        };
        for list in engine.postings.values_mut() {
            list.sort_by_key(|p| p.doc);
        }
        engine
    }

    pub fn doc_count(&self) -> usize {
        self.doc_count
    }

    pub fn vocabulary_size(&self) -> usize {
        self.postings.len()
    }

    /// Number of documents containing `term` (post-stemming).
    pub fn document_frequency(&self, term: &str) -> usize {
        let toks = tokenize(term);
        toks.first()
            .and_then(|t| self.postings.get(t))
            .map_or(0, Vec::len)
    }

    /// Rank documents for a free-text query, best first, at most `k`.
    pub fn search(&self, query: &str, k: usize) -> Vec<SearchHit> {
        if k == 0 || self.doc_count == 0 {
            return Vec::new();
        }
        let mut scores: HashMap<DocId, f64> = HashMap::new();
        let n = self.doc_count as f64;

        for term in tokenize(query) {
            let Some(list) = self.postings.get(&term) else {
                continue;
            };
            let df = list.len() as f64;
            // BM25 idf with the +1 smoothing that keeps it positive.
            let idf = ((n - df + 0.5) / (df + 0.5) + 1.0).ln();
            for p in list {
                let len = self.doc_len[&p.doc] as f64;
                let tf = p.term_freq as f64;
                let norm = tf * (K1 + 1.0) / (tf + K1 * (1.0 - B + B * len / self.avg_doc_len));
                *scores.entry(p.doc).or_insert(0.0) += idf * norm;
            }
        }

        let mut hits: Vec<SearchHit> = scores
            .into_iter()
            .map(|(doc, score)| SearchHit { doc, score })
            .collect();
        // Stable order: score desc, then doc id asc for ties.
        hits.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.doc.cmp(&b.doc)));
        hits.truncate(k);
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc::{SourceKind, Topic};

    fn doc(id: DocId, title: &str, body: &str) -> Document {
        Document {
            id,
            source: SourceKind::Encyclopedia,
            path: format!("/wiki/{id}"),
            title: title.into(),
            body: body.into(),
            topic: Topic::SubmarineCables,
            links: Vec::new(),
        }
    }

    fn small_corpus() -> Vec<Document> {
        vec![
            doc(0, "EllaLink", "The EllaLink submarine cable connects Fortaleza, Brazil to Sines, Portugal, linking South America and Europe."),
            doc(1, "Grace Hopper", "The Grace Hopper submarine cable connects New York, United States to Bude, United Kingdom across the North Atlantic."),
            doc(2, "Solar storms", "A solar superstorm ejects magnetized plasma. Geomagnetically induced currents grow stronger at higher geomagnetic latitudes."),
            doc(3, "Pasta recipes", "Cook the spaghetti cable-thick and drain. Add plenty of olive oil and basil."),
            doc(4, "Data centers", "Google operates data centers in seven major regions across the world, including Asia and South America."),
        ]
    }

    #[test]
    fn relevant_doc_ranks_first() {
        let engine = SearchEngine::build(&small_corpus());
        let hits = engine.search("fiber optic cable Brazil Europe", 5);
        assert!(!hits.is_empty());
        assert_eq!(hits[0].doc, 0, "EllaLink doc should rank first: {hits:?}");
    }

    #[test]
    fn query_about_storms_finds_physics_doc() {
        let engine = SearchEngine::build(&small_corpus());
        let hits = engine.search("geomagnetic latitude induced currents", 3);
        assert_eq!(hits[0].doc, 2);
    }

    #[test]
    fn distractor_with_shared_keyword_ranks_below_topic_doc() {
        let engine = SearchEngine::build(&small_corpus());
        let hits = engine.search("submarine cable", 5);
        let pasta_rank = hits.iter().position(|h| h.doc == 3);
        let ella_rank = hits.iter().position(|h| h.doc == 0).unwrap();
        if let Some(p) = pasta_rank {
            assert!(ella_rank < p);
        }
    }

    #[test]
    fn k_limits_results() {
        let engine = SearchEngine::build(&small_corpus());
        assert!(engine.search("cable", 1).len() <= 1);
        assert!(engine.search("cable", 0).is_empty());
    }

    #[test]
    fn unknown_terms_return_empty() {
        let engine = SearchEngine::build(&small_corpus());
        assert!(engine.search("xylophone quixotic", 5).is_empty());
    }

    #[test]
    fn scores_are_descending_and_ties_broken_by_id() {
        let engine = SearchEngine::build(&small_corpus());
        let hits = engine.search("cable connects submarine", 10);
        for w in hits.windows(2) {
            assert!(w[0].score > w[1].score || (w[0].score == w[1].score && w[0].doc < w[1].doc));
        }
    }

    #[test]
    fn empty_index_is_harmless() {
        let engine = SearchEngine::build(std::iter::empty());
        assert_eq!(engine.doc_count(), 0);
        assert!(engine.search("anything", 5).is_empty());
    }

    #[test]
    fn document_frequency_counts_docs_not_occurrences() {
        let engine = SearchEngine::build(&small_corpus());
        assert_eq!(engine.document_frequency("cable"), 3); // docs 0, 1, 3
        assert_eq!(engine.document_frequency("cables"), 3); // stemmed same
        assert_eq!(engine.document_frequency("nonexistentterm"), 0);
    }

    #[test]
    fn search_is_deterministic() {
        let engine = SearchEngine::build(&small_corpus());
        let a = engine.search("submarine cable europe", 5);
        let b = engine.search("submarine cable europe", 5);
        assert_eq!(a, b);
    }
}
