//! Text indexing: tokenizer, BM25 search, and lookup-op accounting.

pub mod bm25;
pub mod opstats;
pub mod tokenize;
