//! Text indexing: tokenizer and BM25 search.

pub mod bm25;
pub mod tokenize;
