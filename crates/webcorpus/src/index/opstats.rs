//! Process-wide deterministic lookup-op counters for corpus serving.
//!
//! Same philosophy as `ira_simllm::lexicon::ops`: counts are *work
//! units* (lookup calls, documents examined), not timers, so the same
//! workload always produces the same counts and a perf baseline built
//! on them can be enforced with strict equality in CI.

use std::sync::atomic::{AtomicU64, Ordering};

static LOOKUP_CALLS: AtomicU64 = AtomicU64::new(0);
static DOCS_SCANNED: AtomicU64 = AtomicU64::new(0);

/// One host+path document lookup was served.
pub fn lookup_call() {
    LOOKUP_CALLS.fetch_add(1, Ordering::Relaxed);
}

/// `n` documents were examined to serve a lookup: the whole prefix
/// walked by the legacy linear scan, or exactly 1 for an index probe.
pub fn docs_scanned(n: usize) {
    DOCS_SCANNED.fetch_add(n as u64, Ordering::Relaxed);
}

/// A point-in-time reading of the lookup counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LookupSnapshot {
    pub lookup_calls: u64,
    pub docs_scanned: u64,
}

impl LookupSnapshot {
    /// Counter-wise difference since `earlier` (saturating).
    pub fn since(&self, earlier: &LookupSnapshot) -> LookupSnapshot {
        LookupSnapshot {
            lookup_calls: self.lookup_calls.saturating_sub(earlier.lookup_calls),
            docs_scanned: self.docs_scanned.saturating_sub(earlier.docs_scanned),
        }
    }
}

pub fn snapshot() -> LookupSnapshot {
    LookupSnapshot {
        lookup_calls: LOOKUP_CALLS.load(Ordering::Relaxed),
        docs_scanned: DOCS_SCANNED.load(Ordering::Relaxed),
    }
}

/// Zero every counter. Benchmarks call this between phases; tests must
/// NOT rely on it (tests in one binary run concurrently) and should
/// measure snapshot deltas instead.
pub fn reset() {
    LOOKUP_CALLS.store(0, Ordering::Relaxed);
    DOCS_SCANNED.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_as_deltas() {
        let before = snapshot();
        lookup_call();
        docs_scanned(37);
        let delta = snapshot().since(&before);
        // Other tests may add concurrently; ours are a lower bound.
        assert!(delta.lookup_calls >= 1);
        assert!(delta.docs_scanned >= 37);
    }
}
