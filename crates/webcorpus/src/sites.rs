//! Virtual hosts serving the corpus over `ira-simnet`.
//!
//! * `search.test` — the search engine front-end. `GET
//!   sim://search.test/q?query=...&k=10` returns a JSON
//!   [`SearchResultPage`]. Search is rate-limited like a real engine.
//! * one content host per [`SourceKind`] (`encyclopedia.test`,
//!   `news.test`, …) serving document bodies at their paths.

use crate::corpus::Corpus;
use crate::doc::SourceKind;
use ira_simnet::latency::LatencyModel;
use ira_simnet::ratelimit::TokenBucket;
use ira_simnet::server::{Host, HostConfig, HostCtx, Network, Request, Response};
use ira_simnet::Duration;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Hostname of the search engine.
pub const SEARCH_HOST: &str = "search.test";

/// Default number of results per query when `k` is absent.
const DEFAULT_K: usize = 8;
/// Hard cap on results per query.
const MAX_K: usize = 25;

/// One search result as served to clients.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchResult {
    pub url: String,
    pub title: String,
    pub snippet: String,
    pub score: f64,
}

/// The JSON page returned by the search host.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchResultPage {
    pub query: String,
    pub results: Vec<SearchResult>,
}

struct SearchSite {
    corpus: Arc<Corpus>,
}

impl Host for SearchSite {
    fn handle(&self, req: &Request, ctx: &mut HostCtx<'_>) -> Response {
        if req.url.path() != "/q" {
            return Response::not_found();
        }
        let Some(query) = req.url.query_param("query") else {
            return Response::not_found();
        };
        let k = req
            .url
            .query_param("k")
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(DEFAULT_K)
            .min(MAX_K);

        // Charge index scan time proportional to corpus size — keeps
        // the "retrieval dominates" timing split realistic (exp. F1).
        ctx.charge(Duration::from_micros(5 * self.corpus.len() as u64));

        let hits = self.corpus.search(query, k);
        let results = hits
            .into_iter()
            .filter_map(|h| self.corpus.doc(h.doc).map(|d| (d, h.score)))
            .map(|(d, score)| SearchResult {
                url: d.url().to_string(),
                title: d.title.clone(),
                snippet: d.snippet(160),
                score,
            })
            .collect();
        let page = SearchResultPage {
            query: query.to_string(),
            results,
        };
        Response::json(serde_json::to_string(&page).expect("search page serializes"))
    }
}

struct ContentSite {
    corpus: Arc<Corpus>,
    host: &'static str,
}

impl Host for ContentSite {
    fn handle(&self, req: &Request, ctx: &mut HostCtx<'_>) -> Response {
        match self.corpus.doc_by_host_path(self.host, req.url.path()) {
            Some(doc) => {
                // Larger pages take longer to render/transfer.
                ctx.charge(Duration::from_micros(doc.body.len() as u64 / 4));
                let mut page = format!("{}\n\n{}", doc.title, doc.body);
                for link in &doc.links {
                    page.push_str(&format!("\nRelated: {link}"));
                }
                Response::ok(page)
            }
            None => Response::not_found(),
        }
    }
}

/// Hostname of the permalink archive: `sim://archive.test/doc/<id>`
/// issues a permanent redirect to the document's canonical URL (the
/// moved-page case real crawlers must handle).
pub const ARCHIVE_HOST: &str = "archive.test";

struct ArchiveSite {
    corpus: Arc<Corpus>,
}

impl Host for ArchiveSite {
    fn handle(&self, req: &Request, _ctx: &mut HostCtx<'_>) -> Response {
        let mut segments = req.url.path_segments();
        match (
            segments.next(),
            segments.next().and_then(|s| s.parse::<u32>().ok()),
        ) {
            (Some("doc"), Some(id)) => match self.corpus.doc(id) {
                Some(doc) => Response::redirect(doc.url().to_string()),
                None => Response::not_found(),
            },
            _ => Response::not_found(),
        }
    }
}

/// Register the search engine and every content host on `net`.
pub fn register_sites(net: &mut Network, corpus: Arc<Corpus>) {
    net.register_with(
        SEARCH_HOST,
        Arc::new(SearchSite {
            corpus: Arc::clone(&corpus),
        }),
        HostConfig {
            latency: LatencyModel::fast(),
            // A realistic automated-client quota: burst of 30, then 5/s.
            rate_limit: TokenBucket::new(30, 5.0),
        },
    );
    net.register_with(
        ARCHIVE_HOST,
        Arc::new(ArchiveSite {
            corpus: Arc::clone(&corpus),
        }),
        HostConfig {
            latency: LatencyModel::fast(),
            rate_limit: TokenBucket::unlimited(),
        },
    );
    for kind in SourceKind::ALL {
        let latency = match kind {
            SourceKind::Encyclopedia | SourceKind::MicroPost => LatencyModel::fast(),
            SourceKind::Forum => LatencyModel::slow(),
            _ => LatencyModel::typical(),
        };
        net.register_with(
            kind.host(),
            Arc::new(ContentSite {
                corpus: Arc::clone(&corpus),
                host: kind.host(),
            }),
            HostConfig {
                latency,
                rate_limit: TokenBucket::unlimited(),
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusConfig;
    use ira_simnet::{Client, NetworkConfig, Url};
    use ira_worldmodel::World;

    fn setup() -> (Client, Arc<Corpus>) {
        let corpus = Arc::new(Corpus::generate(
            &World::standard(),
            CorpusConfig::default(),
        ));
        let mut net = Network::new(NetworkConfig::default(), 77);
        register_sites(&mut net, Arc::clone(&corpus));
        (Client::new(Arc::new(net)), corpus)
    }

    #[test]
    fn search_returns_ranked_json() {
        let (client, _) = setup();
        let url = Url::build(
            SEARCH_HOST,
            "/q",
            &[
                ("query", "submarine cable geomagnetic latitude"),
                ("k", "5"),
            ],
        );
        let body = client.get_text(&url.to_string()).unwrap();
        let page: SearchResultPage = serde_json::from_str(&body).unwrap();
        assert!(!page.results.is_empty());
        assert!(page.results.len() <= 5);
        for w in page.results.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn search_result_urls_are_fetchable() {
        let (client, _) = setup();
        let url = Url::build(SEARCH_HOST, "/q", &[("query", "EllaLink cable Brazil")]);
        let body = client.get_text(&url.to_string()).unwrap();
        let page: SearchResultPage = serde_json::from_str(&body).unwrap();
        let first = &page.results[0];
        let content = client.get_text(&first.url).unwrap();
        assert!(content.contains("EllaLink"), "fetched: {content:.100}");
    }

    #[test]
    fn missing_query_is_not_found() {
        let (client, _) = setup();
        let url = Url::build(SEARCH_HOST, "/q", &[]);
        assert!(client.get_text(&url.to_string()).is_err());
    }

    #[test]
    fn unknown_document_path_is_not_found() {
        let (client, _) = setup();
        assert!(client
            .get_text("sim://encyclopedia.test/wiki/does-not-exist")
            .is_err());
    }

    #[test]
    fn k_is_capped() {
        let (client, _) = setup();
        let url = Url::build(SEARCH_HOST, "/q", &[("query", "cable"), ("k", "9999")]);
        let body = client.get_text(&url.to_string()).unwrap();
        let page: SearchResultPage = serde_json::from_str(&body).unwrap();
        assert!(page.results.len() <= MAX_K);
    }

    #[test]
    fn archive_permalinks_redirect_to_canonical_pages() {
        let (client, corpus) = setup();
        let doc = corpus.iter().next().unwrap();
        let via_archive = client
            .get_text(&format!("sim://archive.test/doc/{}", doc.id))
            .unwrap();
        assert!(
            via_archive.contains(&doc.title),
            "redirect should land on the page"
        );
        assert!(client.get_text("sim://archive.test/doc/999999").is_err());
        assert!(client.get_text("sim://archive.test/nonsense").is_err());
    }

    #[test]
    fn every_source_host_serves_its_documents() {
        let (client, corpus) = setup();
        for kind in SourceKind::ALL {
            if let Some(doc) = corpus.iter().find(|d| d.source == kind) {
                let content = client.get_text(&doc.url().to_string()).unwrap();
                assert!(content.contains(&doc.title), "host {} failed", kind.host());
            }
        }
    }
}
