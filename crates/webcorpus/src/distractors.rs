//! Distractor documents.
//!
//! A search engine over only on-topic documents would make retrieval
//! trivial. These generators produce plausible off-topic content with
//! deliberate keyword overlap — "storm" in weather reports, "cable" in
//! television articles, "solar" in renewable-energy pieces, "center" in
//! sports coverage — so BM25 has to rank, not merely match.

use crate::doc::{slugify, DocId, Document, SourceKind, Topic};
use crate::textgen::{paragraph, TextGen};
use rand_chacha::ChaCha8Rng;

/// One distractor theme: a title pool and sentence pool sharing some
/// vocabulary with the real topics.
struct Theme {
    titles: &'static [&'static str],
    sentences: &'static [&'static str],
    source: SourceKind,
}

const THEMES: &[Theme] = &[
    Theme {
        titles: &[
            "Storm watch: weekend weather outlook",
            "Tropical storm season arrives early",
            "Winter storm disrupts regional flights",
            "Thunderstorm safety for campers",
        ],
        sentences: &[
            "Meteorologists expect the storm to weaken before landfall.",
            "Residents are advised to secure outdoor furniture ahead of the storm.",
            "The storm dropped five centimetres of rain in an hour.",
            "Lightning from the storm knocked out a local radio transmitter.",
            "Forecast models disagree about the storm's track over the weekend.",
        ],
        source: SourceKind::News,
    },
    Theme {
        titles: &[
            "Cable television's slow decline",
            "Best HDMI cable for your new monitor",
            "The cable car routes of San Francisco",
            "Why your gym's cable machine is underrated",
        ],
        sentences: &[
            "Streaming services continue to erode the cable subscriber base.",
            "A braided cable jacket resists fraying far better than rubber.",
            "The cable car grips a moving loop of steel beneath the street.",
            "Cable exercises keep constant tension through the whole movement.",
            "Premium cable brands rarely outperform budget ones in blind tests.",
        ],
        source: SourceKind::Blog,
    },
    Theme {
        titles: &[
            "Solar panel payback periods explained",
            "A beginner's guide to solar gardening lights",
            "Solar farm construction hits record pace",
            "Do solar chargers work on cloudy days?",
        ],
        sentences: &[
            "Rooftop solar output peaks around noon local time.",
            "The solar farm will power forty thousand homes when complete.",
            "Solar inverters convert direct current to alternating current.",
            "Panel efficiency degrades roughly half a percent per year.",
            "Community solar lets renters buy into shared arrays.",
        ],
        source: SourceKind::News,
    },
    Theme {
        titles: &[
            "Training for your first marathon",
            "The center forward position in modern football",
            "Community center reopens after renovation",
            "Yoga for desk workers",
        ],
        sentences: &[
            "The team's new center anchors both defense and offense.",
            "A strong core keeps your running form stable late in the race.",
            "The community center now hosts evening coding classes.",
            "Interval sessions build speed faster than steady mileage alone.",
            "Stretching the hip flexors relieves lower back tension.",
        ],
        source: SourceKind::Forum,
    },
    Theme {
        titles: &[
            "Sourdough starter troubleshooting",
            "Weeknight pasta that actually delivers",
            "A field guide to regional barbecue",
            "Fermentation basics for beginners",
        ],
        sentences: &[
            "Let the dough rest until it doubles in volume.",
            "Salt the pasta water until it tastes like the sea.",
            "Low and slow is the whole secret to brisket.",
            "A healthy starter smells pleasantly sour, never acrid.",
            "Finish the sauce with a splash of the starchy cooking water.",
        ],
        source: SourceKind::Blog,
    },
    Theme {
        titles: &[
            "The best travel routes through the Alps",
            "Island hopping on a budget",
            "A connection guide for long layovers",
            "Rail network expansion announced",
        ],
        sentences: &[
            "The scenic route adds an hour but repays every minute.",
            "Book the first connection of the day to absorb delays.",
            "The new rail link connects two regions that lacked direct service.",
            "Overnight ferries free up a day of sightseeing.",
            "Regional passes beat point-to-point tickets past three legs.",
        ],
        source: SourceKind::Blog,
    },
    Theme {
        titles: &[
            "Patch notes: season of storms",
            "Server maintenance scheduled this weekend",
            "Ranked ladder resets explained",
            "The best builds after the balance patch",
        ],
        sentences: &[
            "The game servers will be offline for four hours during the update.",
            "Storm-themed cosmetics arrive with the new season.",
            "Latency to the regional server cluster improved after the migration.",
            "The balance team nerfed the dominant strategy again.",
            "Cross-region play remains disabled in ranked queues.",
        ],
        source: SourceKind::Forum,
    },
    Theme {
        titles: &[
            "Strength training for beginners",
            "Sleep hygiene that actually works",
            "Reading the nutrition label properly",
            "A sensible approach to supplements",
        ],
        sentences: &[
            "Consistency beats intensity for long-term progress.",
            "Caffeine's half-life means the afternoon cup disrupts sleep.",
            "Protein needs scale with training volume, not ambition.",
            "Most supplements underdeliver compared to sleep and diet.",
            "Progressive overload is the whole principle in two words.",
        ],
        source: SourceKind::Blog,
    },
    Theme {
        titles: &[
            "Quarterly earnings roundup",
            "Markets wobble on rate speculation",
            "The quiet rise of index funds",
            "Currency networks and settlement latency",
        ],
        sentences: &[
            "Analysts had expected stronger guidance for the next quarter.",
            "The index closed half a percent lower on thin volume.",
            "Settlement networks batch transactions to cut costs.",
            "Dividend growth has outpaced inflation for a decade.",
            "Volatility returned as traders repriced rate expectations.",
        ],
        source: SourceKind::News,
    },
];

/// Generate `count` distractor documents starting at `first_id`.
pub fn generate(count: usize, rng: &mut ChaCha8Rng, first_id: DocId) -> Vec<Document> {
    let mut docs = Vec::with_capacity(count);
    for i in 0..count {
        let mut tg = TextGen::new(rng);
        let theme = &THEMES[i % THEMES.len()];
        let title = tg.pick(theme.titles);
        let n_sentences = tg.int(3, 6) as usize;
        let mut sentences = Vec::with_capacity(n_sentences);
        for _ in 0..n_sentences {
            sentences.push(tg.pick(theme.sentences).to_string());
        }
        let id = first_id + i as DocId;
        let path = match theme.source {
            SourceKind::News => format!("/articles/{id}-{}", slugify(title)),
            SourceKind::Blog => format!("/posts/{id}-{}", slugify(title)),
            SourceKind::Forum => format!("/thread/{id}"),
            _ => format!("/d/{id}"),
        };
        docs.push(Document {
            id,
            source: theme.source,
            path,
            title: format!("{title} ({id})"),
            body: paragraph(&sentences),
            topic: Topic::Distractor,
            links: Vec::new(),
        });
    }
    docs
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn generates_requested_count() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(generate(50, &mut rng, 100).len(), 50);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert!(generate(0, &mut rng, 0).is_empty());
    }

    #[test]
    fn ids_start_at_first_id_and_are_dense() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let docs = generate(10, &mut rng, 500);
        for (i, d) in docs.iter().enumerate() {
            assert_eq!(d.id, 500 + i as DocId);
        }
    }

    #[test]
    fn all_are_tagged_distractor() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        assert!(generate(20, &mut rng, 0)
            .iter()
            .all(|d| d.topic == Topic::Distractor));
    }

    #[test]
    fn distractors_share_keywords_with_real_topics() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let docs = generate(60, &mut rng, 0);
        let all: String = docs
            .iter()
            .map(|d| d.full_text().to_lowercase())
            .collect::<Vec<_>>()
            .join(" ");
        for kw in ["storm", "cable", "solar", "center"] {
            assert!(all.contains(kw), "expected keyword overlap on {kw}");
        }
    }

    #[test]
    fn distractors_never_mention_core_facts() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let docs = generate(100, &mut rng, 0);
        for d in &docs {
            assert!(
                !d.body.contains("geomagnetic latitude"),
                "distractor leaks facts: {}",
                d.title
            );
            assert!(!d.body.contains("optical repeaters"));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let run = |seed| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            generate(30, &mut rng, 0)
                .into_iter()
                .map(|d| d.body)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
    }
}
