//! Seeded text composition helpers.
//!
//! Articles should not all read identically — a corpus of carbon-copy
//! templates would make BM25 ranking trivial and unrealistic. These
//! helpers pick phrasing variants from a seeded RNG so generation stays
//! deterministic per seed while varying across documents.

use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// A deterministic phrase picker bound to one document's RNG stream.
pub struct TextGen<'a> {
    rng: &'a mut ChaCha8Rng,
}

impl<'a> TextGen<'a> {
    pub fn new(rng: &'a mut ChaCha8Rng) -> Self {
        TextGen { rng }
    }

    /// Choose one variant uniformly.
    pub fn pick<'v>(&mut self, variants: &[&'v str]) -> &'v str {
        assert!(!variants.is_empty());
        variants[self.rng.gen_range(0..variants.len())]
    }

    /// Choose one owned variant uniformly.
    pub fn pick_string(&mut self, variants: &[String]) -> String {
        assert!(!variants.is_empty());
        variants[self.rng.gen_range(0..variants.len())].clone()
    }

    /// A filler sentence of loosely on-topic color, to vary document
    /// length and dilute term frequencies.
    pub fn filler(&mut self, topic_hint: &str) -> String {
        let openers = [
            "Industry observers note that",
            "According to operators,",
            "Analysts point out that",
            "It is widely reported that",
            "Engineers familiar with the matter say",
        ];
        let closers = [
            "the picture continues to evolve year over year.",
            "investment in the sector has accelerated recently.",
            "reliability remains the overriding design goal.",
            "capacity demand keeps growing steadily.",
            "maintenance planning is a constant concern.",
        ];
        format!(
            "{} {} {}",
            self.pick(&openers),
            topic_hint,
            self.pick(&closers)
        )
    }

    /// Draw a boolean with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.gen::<f64>() < p
    }

    /// Random integer in `[lo, hi)`.
    pub fn int(&mut self, lo: u32, hi: u32) -> u32 {
        self.rng.gen_range(lo..hi)
    }
}

/// Join sentences into a paragraph.
pub fn paragraph(sentences: &[String]) -> String {
    sentences.join(" ")
}

/// Join paragraphs into a body.
pub fn body(paragraphs: &[String]) -> String {
    paragraphs.join("\n\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn pick_is_deterministic_per_seed() {
        let variants = ["a", "b", "c", "d"];
        let run = |seed| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut tg = TextGen::new(&mut rng);
            (0..10).map(|_| tg.pick(&variants)).collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn pick_covers_all_variants_eventually() {
        let variants = ["a", "b", "c"];
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut tg = TextGen::new(&mut rng);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(tg.pick(&variants));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn filler_embeds_the_hint() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut tg = TextGen::new(&mut rng);
        let s = tg.filler("submarine cable capacity");
        assert!(s.contains("submarine cable capacity"));
    }

    #[test]
    fn paragraph_and_body_join() {
        let p = paragraph(&["One.".into(), "Two.".into()]);
        assert_eq!(p, "One. Two.");
        let b = body(&[p.clone(), "Three.".into()]);
        assert_eq!(b, "One. Two.\n\nThree.");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut tg = TextGen::new(&mut rng);
        assert!(!tg.chance(0.0));
        assert!(tg.chance(1.0));
    }
}
