//! Fact-bearing article generation.
//!
//! This module is one side of the *fact sentence contract* (the other
//! side is the extraction layer in `ira-simllm`). Every quantitative or
//! causal fact the agent can learn appears in one of the canonical
//! sentence shapes below, embedded in otherwise varied prose:
//!
//! | fact | canonical shape |
//! |------|-----------------|
//! | cable route | `The {name} submarine cable connects {cityA}, {countryA} to {cityB}, {countryB}, linking {regionA} and {regionB}.` |
//! | cable length | `The system spans approximately {km} kilometres.` |
//! | cable apex | `Along its route it reaches a maximum geomagnetic latitude of {deg} degrees.` |
//! | cable repeaters | `The cable is powered through roughly {n} optical repeaters.` |
//! | fleet coverage | `{op} operates data centers in {n} of the world's 7 major regions.` |
//! | fleet low-lat share | `About {p} percent of {op}'s data center sites sit at low geomagnetic latitudes.` |
//! | dc presence | `{op} operates a data center in {city}, {country}, in {region}.` |
//! | storm Dst | `The {year} {name} reached an estimated Dst of {dst} nanotesla.` |
//! | principles | fixed sentences, see [`principles`] |
//!
//! The shapes are stable; the surrounding filler, ordering, and which
//! subset of facts each secondary article repeats are all seeded-random.

use crate::doc::{slugify, DocId, Document, SourceKind, Topic};
use crate::textgen::{body, paragraph, TextGen};
use ira_worldmodel::cables::SubmarineCable;
use ira_worldmodel::storm::StormScenario;
use ira_worldmodel::World;
use rand_chacha::ChaCha8Rng;

/// The fixed principle sentences. Centralised so tests (and the
/// extractor's own test suite) can reference them verbatim.
pub mod principles {
    pub const LATITUDE_RISK: &str =
        "Geomagnetically induced currents grow stronger at higher geomagnetic latitudes.";
    pub const REPEATER_WEAKNESS: &str = "The powered repeaters are the most vulnerable component \
         of a submarine cable, while the optical fiber itself is unaffected by induced currents.";
    pub const DISPERSION_RESILIENCE: &str = "A geographically dispersed data center footprint \
         improves resilience against regional disasters.";
    pub const LENGTH_RISK: &str =
        "Longer cables contain more repeaters and therefore accumulate greater failure risk.";
    pub const TERRESTRIAL_SAFETY: &str = "Terrestrial fiber links are short and unrepeated, \
         leaving them far less exposed than submarine cables.";
    pub const GRID_THREAT: &str = "An extreme geomagnetic storm can induce damaging currents in \
         long power lines, threatening grid transformers.";
    pub const PARTITION_RISK: &str = "If enough transoceanic cables fail at once, entire \
         continents could be partitioned from the Internet even as regional networks keep running.";
    pub const PREDICTIVE_SHUTDOWN: &str = "Upon warning of a coronal mass ejection, operators \
         should preemptively shut down the most vulnerable systems, especially those at higher \
         latitudes.";
    pub const REDUNDANCY_UTILIZATION: &str = "Traffic and operations should be redirected to \
         redundant systems located in safer, lower-latitude zones.";
    pub const PHASED_SHUTDOWN: &str = "A phased shutdown sequence, ordered by vulnerability, \
         reduces the damage from abrupt power loss.";
    pub const DATA_PRESERVATION: &str =
        "Critical data should be backed up and preserved before the storm's impact.";
    pub const GRADUAL_REBOOT: &str = "After the storm passes, systems should be rebooted \
         gradually while checking for damage.";
}

/// Canonical fact-sentence builders, shared by articles and microposts.
pub mod facts {
    use ira_worldmodel::cables::SubmarineCable;
    use ira_worldmodel::datacenters::{DataCenter, DataCenterFleet};
    use ira_worldmodel::storm::StormScenario;

    pub fn cable_route(c: &SubmarineCable) -> String {
        format!(
            "The {} submarine cable connects {}, {} to {}, {}, linking {} and {}.",
            c.name,
            c.from.name,
            c.from.country,
            c.to.name,
            c.to.country,
            c.from.region,
            c.to.region
        )
    }

    pub fn cable_length(c: &SubmarineCable) -> String {
        format!(
            "The system spans approximately {:.0} kilometres.",
            c.length_km()
        )
    }

    pub fn cable_apex(c: &SubmarineCable) -> String {
        format!(
            "Along its route it reaches a maximum geomagnetic latitude of {:.1} degrees.",
            c.max_geomag_latitude()
        )
    }

    pub fn cable_repeaters(c: &SubmarineCable) -> String {
        format!(
            "The cable is powered through roughly {} optical repeaters.",
            c.repeater_count()
        )
    }

    pub fn fleet_coverage(f: &DataCenterFleet) -> String {
        format!(
            "{} operates data centers in {} of the world's 7 major regions.",
            f.operator,
            f.region_coverage()
        )
    }

    pub fn fleet_low_lat(f: &DataCenterFleet) -> String {
        format!(
            "About {:.0} percent of {}'s data center sites sit at low geomagnetic latitudes.",
            f.low_band_fraction() * 100.0,
            f.operator
        )
    }

    pub fn dc_presence(dc: &DataCenter) -> String {
        format!(
            "{} operates a data center in {}, {}, in {}.",
            dc.operator, dc.site.name, dc.site.country, dc.site.region
        )
    }

    pub fn storm_dst(s: &StormScenario) -> String {
        let year = s
            .year
            .map(|y| y.to_string())
            .unwrap_or_else(|| "hypothetical".into());
        format!(
            "The {} {} reached an estimated Dst of {:.0} nanotesla.",
            year, s.name, s.dst_nt
        )
    }
}

/// Internal helper carrying generation state.
struct Gen<'w> {
    world: &'w World,
    next_id: DocId,
    docs: Vec<Document>,
}

impl<'w> Gen<'w> {
    fn push(&mut self, source: SourceKind, topic: Topic, title: String, text: String) {
        let id = self.next_id;
        self.next_id += 1;
        let path = match source {
            SourceKind::Encyclopedia => format!("/wiki/{}", slugify(&title)),
            SourceKind::News => format!("/articles/{}-{}", id, slugify(&title)),
            SourceKind::Blog => format!("/posts/{}", slugify(&title)),
            SourceKind::Forum => format!("/thread/{}", id),
            SourceKind::MicroPost => format!("/status/{}", id),
            SourceKind::PaperAbstract => format!("/abs/{}", id),
        };
        self.docs.push(Document {
            id,
            source,
            path,
            title,
            body: text,
            topic,
            links: Vec::new(),
        });
    }
}

/// Generate every fact-bearing document for the world. IDs start at
/// `first_id` and increase densely.
pub fn generate(world: &World, rng: &mut ChaCha8Rng, first_id: DocId) -> Vec<Document> {
    let mut g = Gen {
        world,
        next_id: first_id,
        docs: Vec::new(),
    };
    cable_articles(&mut g, rng);
    landing_hubs(&mut g, rng);
    solar_physics(&mut g, rng);
    storm_history(&mut g, rng);
    cable_engineering(&mut g, rng);
    fleet_articles(&mut g, rng);
    power_grids(&mut g, rng);
    infrastructure_overviews(&mut g, rng);
    planning_guides(&mut g, rng);
    incident_articles(&mut g, rng);
    social_chatter(&mut g, rng);
    g.docs
}

/// Historical-incident coverage: one encyclopedia entry and one news
/// retrospective per catalogued incident, carrying the canonical
/// incident fact sentences (cause, effect, duration / cables severed /
/// traffic change).
fn incident_articles(g: &mut Gen<'_>, rng: &mut ChaCha8Rng) {
    let incidents: Vec<_> = g.world.incidents.iter().cloned().collect();
    for incident in &incidents {
        let mut tg = TextGen::new(rng);
        let mut sentences = vec![
            format!(
                "The {} was caused by {}.",
                incident.entity_key(),
                incident.cause
            ),
            format!(
                "The main effect on the Internet was {}.",
                incident.effect_summary()
            ),
        ];
        if incident.duration_hours > 0.0 {
            sentences.push(format!(
                "Service was disrupted for about {:.0} hours.",
                incident.duration_hours
            ));
        }
        if incident.cables_cut > 0 {
            sentences.push(format!(
                "The {} severed {} submarine cables.",
                incident.entity_key(),
                incident.cables_cut
            ));
        }
        if incident.traffic_change_pct > 0.0 {
            sentences.push(format!(
                "During the {}, global Internet traffic grew by about {:.0} percent.",
                incident.entity_key(),
                incident.traffic_change_pct
            ));
        }
        sentences.push(incident.mechanism.clone());
        sentences.push(tg.filler("incident post-mortems"));
        g.push(
            SourceKind::Encyclopedia,
            Topic::Incidents,
            format!("{} ({})", incident.name, incident.year),
            paragraph(&sentences),
        );

        // News retrospective repeating the cause.
        let mut tg = TextGen::new(rng);
        g.push(
            SourceKind::News,
            Topic::Incidents,
            format!(
                "{} the {} {}",
                tg.pick(&["Looking back at", "What we learned from", "Revisiting"]),
                incident.year,
                incident.name
            ),
            paragraph(&[
                format!(
                    "The {} was caused by {}.",
                    incident.entity_key(),
                    incident.cause
                ),
                incident.mechanism.clone(),
                tg.filler("large-scale outage reporting"),
            ]),
        );
    }
}

fn cable_articles(g: &mut Gen<'_>, rng: &mut ChaCha8Rng) {
    let cables: Vec<SubmarineCable> = g.world.cables.iter().cloned().collect();
    for cable in &cables {
        // Encyclopedia article: all four canonical facts.
        let mut tg = TextGen::new(rng);
        let intro = tg.pick(&[
            "is one of the submarine cable systems carrying intercontinental Internet traffic.",
            "is a fiber optic submarine cable system.",
            "is an undersea telecommunications cable.",
        ]);
        let sentences = [
            format!("{} {}", cable.name, intro),
            facts::cable_route(cable),
            facts::cable_length(cable),
            facts::cable_apex(cable),
            facts::cable_repeaters(cable),
            format!("It entered service in {}.", cable.rfs_year),
            tg.filler("submarine cable capacity"),
        ];
        let text = body(&[paragraph(&sentences[..3]), paragraph(&sentences[3..])]);
        g.push(
            SourceKind::Encyclopedia,
            Topic::SubmarineCables,
            cable.name.clone(),
            text,
        );

        // Secondary coverage for about half the cables: a news or blog
        // piece repeating the route plus one more fact.
        let mut tg = TextGen::new(rng);
        if tg.chance(0.55) {
            let extra = if tg.chance(0.5) {
                facts::cable_apex(cable)
            } else {
                facts::cable_repeaters(cable)
            };
            let sentences = vec![
                format!(
                    "{} the {} system continues to anchor traffic between {} and {}.",
                    tg.pick(&["Years after launch,", "Today,", "In daily operation,"]),
                    cable.name,
                    cable.from.region,
                    cable.to.region
                ),
                facts::cable_route(cable),
                extra,
                tg.filler("undersea connectivity demand"),
            ];
            let source = if tg.chance(0.5) {
                SourceKind::News
            } else {
                SourceKind::Blog
            };
            g.push(
                source,
                Topic::SubmarineCables,
                format!("Inside the {} cable", cable.name),
                paragraph(&sentences),
            );
        }
    }
}

/// Landing-hub profiles: one article per coastal city terminating at
/// least three cable systems, repeating each cable's route fact. These
/// give the corpus redundancy (facts reachable through several pages)
/// and embody the concentration point behind conclusion C8.
fn landing_hubs(g: &mut Gen<'_>, rng: &mut ChaCha8Rng) {
    use std::collections::BTreeMap;
    let mut by_city: BTreeMap<String, Vec<SubmarineCable>> = BTreeMap::new();
    for cable in g.world.cables.iter() {
        by_city
            .entry(cable.from.name.clone())
            .or_default()
            .push(cable.clone());
        by_city
            .entry(cable.to.name.clone())
            .or_default()
            .push(cable.clone());
    }
    for (city, cables) in by_city {
        if cables.len() < 3 {
            continue;
        }
        let mut tg = TextGen::new(rng);
        let mut sentences = vec![format!(
            "{city} is one of the Internet's landing hubs: {} cable systems terminate on \
             this stretch of coast.",
            cables.len()
        )];
        for cable in &cables {
            sentences.push(facts::cable_route(cable));
        }
        sentences.push(
            "Such concentration of landing stations creates shared-fate risk for every \
             system coming ashore here."
                .into(),
        );
        sentences.push(tg.filler("coastal landing-station operations"));
        g.push(
            SourceKind::Blog,
            Topic::InternetInfrastructure,
            format!("Landing hub profile: {city}"),
            paragraph(&sentences),
        );
    }
}

fn solar_physics(g: &mut Gen<'_>, rng: &mut ChaCha8Rng) {
    let mut tg = TextGen::new(rng);
    let cme_doc = body(&[
        paragraph(&[
            "A coronal mass ejection, or CME, is a powerful eruption of magnetized plasma from \
             the Sun's corona."
                .into(),
            "When a CME is directed at Earth, it compresses the magnetosphere and drives a \
             geomagnetic storm."
                .into(),
            principles::LATITUDE_RISK.into(),
        ]),
        paragraph(&[
            "Storm strength is commonly summarised with the Dst index, measured in nanotesla; \
             more negative values indicate stronger storms."
                .into(),
            tg.filler("space weather forecasting"),
        ]),
    ]);
    g.push(
        SourceKind::Encyclopedia,
        Topic::SolarPhysics,
        "Coronal mass ejection".into(),
        cme_doc,
    );

    g.push(
        SourceKind::Encyclopedia,
        Topic::SolarPhysics,
        "Solar superstorm".into(),
        paragraph(&[
            "A solar superstorm is an extreme space weather event caused by a fast, \
             Earth-directed coronal mass ejection."
                .into(),
            "Superstorms induce electric fields in the Earth's crust that drive currents \
             through long conductors such as power lines and cable systems."
                .into(),
            principles::LATITUDE_RISK.into(),
            "Regions near the geomagnetic equator, such as Singapore and northern Brazil, have \
             historically seen negligible effects."
                .into(),
        ]),
    );

    g.push(
        SourceKind::PaperAbstract,
        Topic::SolarPhysics,
        "Ionospheric response to geomagnetic storms at high and mid latitudes".into(),
        paragraph(&[
            "We study the ionospheric and thermospheric response to solar flares and \
             geomagnetic storms."
                .into(),
            principles::LATITUDE_RISK.into(),
            "Auroral-zone measurements show induced electric fields an order of magnitude \
             stronger than equatorial measurements during the same events."
                .into(),
        ]),
    );

    let mut tg = TextGen::new(rng);
    g.push(
        SourceKind::Blog,
        Topic::SolarPhysics,
        "How magnetic fields affect electronic devices".into(),
        paragraph(&[
            "Rapidly changing magnetic fields induce currents in any closed conducting loop, a \
             direct consequence of Faraday's law."
                .into(),
            "Integrated circuits themselves are small enough to be largely immune; the \
             danger is to power supply systems and other long conductors that integrate the \
             induced field over distance."
                .into(),
            principles::GRID_THREAT.into(),
            tg.filler("electronics reliability under field exposure"),
        ]),
    );
}

fn storm_history(g: &mut Gen<'_>, rng: &mut ChaCha8Rng) {
    for storm in StormScenario::catalog() {
        if storm.year.is_none() {
            continue;
        }
        let mut tg = TextGen::new(rng);
        let consequence = match storm.year {
            Some(1859) => {
                "Telegraph systems failed across Europe and North America, with \
                 operators reporting sparks from their equipment."
            }
            Some(1921) => {
                "The storm caused extensive power outages and severe damage to the \
                 telegraph network, the predominant communication system of that era."
            }
            Some(1989) => {
                "The Hydro-Québec grid collapsed within 92 seconds, leaving six \
                 million people without power for nine hours."
            }
            _ => "Airlines rerouted polar flights and several satellites suffered anomalies.",
        };
        g.push(
            SourceKind::Encyclopedia,
            Topic::StormHistory,
            format!("{} ({})", storm.name, storm.year.unwrap()),
            body(&[
                paragraph(&[facts::storm_dst(&storm), consequence.into()]),
                paragraph(&[
                    principles::GRID_THREAT.into(),
                    tg.filler("historical space weather records"),
                ]),
            ]),
        );
    }

    g.push(
        SourceKind::News,
        Topic::StormHistory,
        "What a Carrington-class storm would do today".into(),
        paragraph(&[
            "A repeat of the 1859 Carrington event would meet an electrified, networked world."
                .into(),
            principles::GRID_THREAT.into(),
            principles::PARTITION_RISK.into(),
            "Higher-latitude countries would bear the brunt of the damage.".into(),
        ]),
    );
}

fn cable_engineering(g: &mut Gen<'_>, rng: &mut ChaCha8Rng) {
    let mut tg = TextGen::new(rng);
    g.push(
        SourceKind::Blog,
        Topic::SubmarineCables,
        "Diving deep into submarine cables".into(),
        body(&[
            paragraph(&[
                "Undersea fiber optic cables are the lifelines of Internet connectivity, carrying \
                 the vast majority of intercontinental traffic."
                    .into(),
                "Every few dozen kilometres, an optical repeater amplifies the signal; the \
                 repeaters are fed by a constant current supplied from the shore ends."
                    .into(),
                principles::REPEATER_WEAKNESS.into(),
            ]),
            paragraph(&[
                principles::LENGTH_RISK.into(),
                principles::TERRESTRIAL_SAFETY.into(),
                tg.filler("cable ship repair logistics"),
            ]),
        ]),
    );

    g.push(
        SourceKind::Encyclopedia,
        Topic::SubmarineCables,
        "Submarine communications cable".into(),
        paragraph(&[
            "A submarine communications cable is a fiber optic cable laid on the seabed to \
             carry telecommunication signals."
                .into(),
            "Modern systems use optical fiber and powered repeaters spaced roughly seventy \
             kilometres apart."
                .into(),
            principles::REPEATER_WEAKNESS.into(),
            principles::LENGTH_RISK.into(),
        ]),
    );

    let mut tg = TextGen::new(rng);
    g.push(
        SourceKind::Forum,
        Topic::SubmarineCables,
        "Why do cables fail during geomagnetic storms?".into(),
        paragraph(&[
            "Question from a networking student about fiber optic cables: the fiber is glass, \
             so why would a storm matter at all?"
                .into(),
            principles::REPEATER_WEAKNESS.into(),
            "Top reply: it is the powering chain, not the glass. Kill the repeaters and the \
             whole span goes dark until a cable ship gets there."
                .into(),
            principles::TERRESTRIAL_SAFETY.into(),
            tg.filler("community discussion of undersea infrastructure"),
        ]),
    );
}

fn fleet_articles(g: &mut Gen<'_>, rng: &mut ChaCha8Rng) {
    for fleet in [&g.world.google.clone(), &g.world.facebook.clone()] {
        let mut tg = TextGen::new(rng);
        // Overview with the two aggregate facts.
        g.push(
            SourceKind::News,
            Topic::DataCenters,
            format!("{}'s global data center footprint", fleet.operator),
            body(&[
                paragraph(&[
                    facts::fleet_coverage(fleet),
                    facts::fleet_low_lat(fleet),
                    principles::DISPERSION_RESILIENCE.into(),
                ]),
                paragraph(&[tg.filler("hyperscale capacity expansion")]),
            ]),
        );

        // Per-region presence articles.
        use std::collections::BTreeMap;
        let mut by_region: BTreeMap<_, Vec<_>> = BTreeMap::new();
        for dc in fleet.iter() {
            by_region
                .entry(dc.site.region)
                .or_default()
                .push(dc.clone());
        }
        for (region, sites) in by_region {
            let mut tg = TextGen::new(rng);
            let mut sentences: Vec<String> = sites.iter().map(facts::dc_presence).collect();
            sentences.push(tg.filler("regional cloud infrastructure"));
            g.push(
                SourceKind::Blog,
                Topic::DataCenters,
                format!("{} data centers in {}", fleet.operator, region),
                paragraph(&sentences),
            );
        }

        // Site profiles for a sample of the fleet: short news pieces
        // repeating the presence fact with local color.
        let profiled: Vec<_> = fleet.iter().cloned().collect();
        for dc in profiled.iter().step_by(4) {
            let mut tg = TextGen::new(rng);
            g.push(
                SourceKind::News,
                Topic::DataCenters,
                format!("Inside {}'s {} campus", dc.operator, dc.site.name),
                paragraph(&[
                    facts::dc_presence(dc),
                    format!(
                        "The {} site {} and anchors the operator's presence in {}.",
                        dc.site.name,
                        tg.pick(&[
                            "has grown through several construction phases",
                            "runs some of the fleet's newest hardware",
                            "was sited for cheap power and network proximity",
                        ]),
                        dc.site.region
                    ),
                    tg.filler("hyperscale site operations"),
                ]),
            );
        }
    }
}

fn power_grids(g: &mut Gen<'_>, rng: &mut ChaCha8Rng) {
    let mut tg = TextGen::new(rng);
    let mut sentences = vec![
        "High-voltage transmission grids are the power supply systems behind every data \
         center and cable landing station."
            .into(),
        principles::GRID_THREAT.into(),
    ];
    for grid in g.world.grids.iter() {
        sentences.push(format!(
            "The {} serves {} and sits at about {:.0} degrees geomagnetic latitude.",
            grid.name,
            grid.region,
            grid.geomag_lat_abs()
        ));
    }
    sentences.push(tg.filler("transformer replacement lead times"));
    g.push(
        SourceKind::Encyclopedia,
        Topic::PowerGrids,
        "Geomagnetically induced currents and power grids".into(),
        paragraph(&sentences),
    );

    g.push(
        SourceKind::News,
        Topic::PowerGrids,
        "Lessons of the 1989 Québec blackout".into(),
        paragraph(&[
            "The March 1989 storm remains the canonical example of power supply fragility \
             at high geomagnetic latitude."
                .into(),
            principles::GRID_THREAT.into(),
            principles::LATITUDE_RISK.into(),
        ]),
    );
}

fn infrastructure_overviews(g: &mut Gen<'_>, rng: &mut ChaCha8Rng) {
    let mut tg = TextGen::new(rng);
    g.push(
        SourceKind::Blog,
        Topic::InternetInfrastructure,
        "The geography of the Internet".into(),
        paragraph(&[
            "The Internet's physical layout is far from uniform: fiber optic cable landing \
             stations cluster on a handful of coastlines, and the North Atlantic carries a \
             dense bundle of crossings."
                .into(),
            principles::PARTITION_RISK.into(),
            "The United States terminates many of the highest-latitude crossings, while Asian \
             hubs such as Singapore sit near the geomagnetic equator."
                .into(),
            tg.filler("peering and interconnection economics"),
        ]),
    );

    g.push(
        SourceKind::PaperAbstract,
        Topic::InternetInfrastructure,
        "Topology of intercontinental fiber and its failure modes".into(),
        paragraph(&[
            "We map intercontinental fiber routes and analyse correlated failure scenarios.".into(),
            principles::PARTITION_RISK.into(),
            principles::LENGTH_RISK.into(),
        ]),
    );
}

fn planning_guides(g: &mut Gen<'_>, rng: &mut ChaCha8Rng) {
    let mut tg = TextGen::new(rng);
    g.push(
        SourceKind::Blog,
        Topic::ResponsePlanning,
        "Preparing networks for extreme space weather".into(),
        body(&[
            paragraph(&[
                "Space weather forecasts give between fifteen hours and three days of warning \
                 before a coronal mass ejection arrives."
                    .into(),
                principles::PREDICTIVE_SHUTDOWN.into(),
                principles::REDUNDANCY_UTILIZATION.into(),
            ]),
            paragraph(&[
                principles::PHASED_SHUTDOWN.into(),
                principles::DATA_PRESERVATION.into(),
                principles::GRADUAL_REBOOT.into(),
                tg.filler("operator runbook design"),
            ]),
        ]),
    );

    g.push(
        SourceKind::Forum,
        Topic::ResponsePlanning,
        "What would you actually do if a Carrington warning came in?".into(),
        paragraph(&[
            "Thread started by an SRE: we have maybe a day of warning. What is the playbook?"
                .into(),
            principles::PREDICTIVE_SHUTDOWN.into(),
            principles::DATA_PRESERVATION.into(),
            "Reply: shed load to the southern regions first, then power down the exposed edge."
                .into(),
            principles::REDUNDANCY_UTILIZATION.into(),
        ]),
    );

    g.push(
        SourceKind::PaperAbstract,
        Topic::ResponsePlanning,
        "Graceful degradation strategies for solar superstorm response".into(),
        paragraph(&[
            "We propose operational strategies for Internet operators facing extreme \
             geomagnetic storms."
                .into(),
            principles::PHASED_SHUTDOWN.into(),
            principles::GRADUAL_REBOOT.into(),
            principles::REDUNDANCY_UTILIZATION.into(),
        ]),
    );
}

/// Micro-posts and forum chatter restating individual facts. These give
/// the Twitter/Reddit channels real content and exercise retrieval over
/// very short documents.
fn social_chatter(g: &mut Gen<'_>, rng: &mut ChaCha8Rng) {
    let cables: Vec<SubmarineCable> = g.world.cables.iter().cloned().collect();
    let mut tg_seed = Vec::new();
    {
        let mut tg = TextGen::new(rng);
        for cable in &cables {
            if tg.chance(0.4) {
                tg_seed.push(cable.clone());
            }
        }
    }
    for cable in tg_seed {
        let mut tg = TextGen::new(rng);
        let lead = tg.pick(&[
            "TIL:",
            "Cable fact of the day:",
            "From today's reading:",
            "Infra nerd corner:",
        ]);
        let fact = if tg.chance(0.5) {
            // The short social form names its entity inline so the fact
            // is extractable without article context.
            format!(
                "The {} cable reaches a maximum geomagnetic latitude of {:.1} degrees.",
                cable.name,
                cable.max_geomag_latitude()
            )
        } else {
            facts::cable_route(&cable)
        };
        g.push(
            SourceKind::MicroPost,
            Topic::SubmarineCables,
            format!("{} {}", lead, cable.name),
            format!("{lead} {fact}"),
        );
    }

    for fleet in [g.world.google.clone(), g.world.facebook.clone()] {
        let mut tg = TextGen::new(rng);
        g.push(
            SourceKind::MicroPost,
            Topic::DataCenters,
            format!("{} regions", fleet.operator),
            format!(
                "{} {}",
                tg.pick(&["Worth knowing:", "Quick stat:"]),
                facts::fleet_coverage(&fleet)
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn gen_docs(seed: u64) -> Vec<Document> {
        let world = World::standard();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        generate(&world, &mut rng, 0)
    }

    #[test]
    fn generates_a_substantial_corpus() {
        let docs = gen_docs(1);
        assert!(docs.len() > 100, "got {} docs", docs.len());
    }

    #[test]
    fn ids_are_dense_and_unique() {
        let docs = gen_docs(1);
        for (i, d) in docs.iter().enumerate() {
            assert_eq!(d.id, i as DocId);
        }
    }

    #[test]
    fn every_cable_has_an_encyclopedia_article_with_all_facts() {
        let world = World::standard();
        let docs = gen_docs(2);
        for cable in world.cables.iter() {
            let article = docs
                .iter()
                .find(|d| d.source == SourceKind::Encyclopedia && d.title == cable.name)
                .unwrap_or_else(|| panic!("no article for {}", cable.name));
            assert!(article.body.contains("maximum geomagnetic latitude"));
            assert!(article.body.contains("optical repeaters"));
            assert!(article.body.contains("kilometres"));
            assert!(article.body.contains(&cable.from.country));
        }
    }

    #[test]
    fn principle_sentences_appear_in_corpus() {
        let docs = gen_docs(3);
        let all_text: String = docs
            .iter()
            .map(|d| d.body.clone())
            .collect::<Vec<_>>()
            .join("\n");
        for p in [
            principles::LATITUDE_RISK,
            principles::REPEATER_WEAKNESS,
            principles::DISPERSION_RESILIENCE,
            principles::LENGTH_RISK,
            principles::TERRESTRIAL_SAFETY,
            principles::GRID_THREAT,
            principles::PARTITION_RISK,
            principles::PREDICTIVE_SHUTDOWN,
            principles::REDUNDANCY_UTILIZATION,
            principles::PHASED_SHUTDOWN,
            principles::DATA_PRESERVATION,
            principles::GRADUAL_REBOOT,
        ] {
            assert!(all_text.contains(p), "missing principle: {p}");
        }
    }

    #[test]
    fn fleet_facts_present_for_both_operators() {
        let docs = gen_docs(4);
        let all: String = docs
            .iter()
            .map(|d| d.body.clone())
            .collect::<Vec<_>>()
            .join("\n");
        assert!(all.contains("Google operates data centers in"));
        assert!(all.contains("Facebook operates data centers in"));
        assert!(all.contains("percent of Google's data center sites"));
        assert!(all.contains("percent of Facebook's data center sites"));
    }

    #[test]
    fn storm_history_covers_named_events() {
        let docs = gen_docs(5);
        let all: String = docs
            .iter()
            .map(|d| d.body.clone())
            .collect::<Vec<_>>()
            .join("\n");
        assert!(all.contains("Carrington event reached an estimated Dst of -1760"));
        assert!(all.contains("1921"));
        assert!(all.contains("1989"));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = gen_docs(9);
        let b = gen_docs(9);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.body, y.body);
        }
    }

    #[test]
    fn different_seeds_vary_prose_but_not_facts() {
        let a = gen_docs(10);
        let b = gen_docs(11);
        // Document counts may differ slightly (secondary cable coverage
        // is sampled), but both corpora carry the full fact base...
        for docs in [&a, &b] {
            let all: String = docs
                .iter()
                .map(|d| d.body.clone())
                .collect::<Vec<_>>()
                .join("\n");
            assert!(all.contains("maximum geomagnetic latitude"));
            assert!(all.contains("Google operates data centers in"));
        }
        // ...and at least some prose differs between seeds.
        let differing = a.iter().zip(&b).filter(|(x, y)| x.body != y.body).count();
        assert!(differing > 0, "seeds should vary prose");
    }

    #[test]
    fn paths_are_unique() {
        let docs = gen_docs(12);
        let mut paths: Vec<_> = docs
            .iter()
            .map(|d| format!("{}{}", d.source.host(), d.path))
            .collect();
        paths.sort();
        let before = paths.len();
        paths.dedup();
        assert_eq!(before, paths.len());
    }

    #[test]
    fn micro_posts_are_short() {
        let docs = gen_docs(13);
        for d in docs.iter().filter(|d| d.source == SourceKind::MicroPost) {
            assert!(d.body.len() < 300, "micropost too long: {}", d.body.len());
        }
    }
}
