//! The assembled corpus: fact-bearing documents plus distractors, with
//! a BM25 index and URL lookup.

use crate::distractors;
use crate::doc::{DocId, Document, SourceKind, Topic};
use crate::index::bm25::{SearchEngine, SearchHit};
use crate::templates;
use ira_worldmodel::World;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// Corpus generation knobs.
#[derive(Debug, Clone, Copy)]
pub struct CorpusConfig {
    /// RNG seed for prose variation and distractor sampling.
    pub seed: u64,
    /// Number of distractor documents to interleave.
    pub distractor_count: usize,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            seed: 0xC0FFEE,
            distractor_count: 150,
        }
    }
}

/// The synthetic web corpus.
pub struct Corpus {
    docs: Vec<Document>,
    engine: SearchEngine,
    by_url: HashMap<String, DocId>,
}

impl Corpus {
    /// Generate the corpus for `world`.
    pub fn generate(world: &World, config: CorpusConfig) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut docs = templates::generate(world, &mut rng, 0);
        let first_distractor = docs.len() as DocId;
        docs.extend(distractors::generate(
            config.distractor_count,
            &mut rng,
            first_distractor,
        ));
        link_related(&mut docs);

        let engine = SearchEngine::build(docs.iter());
        let by_url = docs.iter().map(|d| (d.url().to_string(), d.id)).collect();
        Corpus {
            docs,
            engine,
            by_url,
        }
    }

    pub fn len(&self) -> usize {
        self.docs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    pub fn doc(&self, id: DocId) -> Option<&Document> {
        self.docs.get(id as usize)
    }

    pub fn doc_by_url(&self, url: &str) -> Option<&Document> {
        self.by_url.get(url).and_then(|&id| self.doc(id))
    }

    /// Fetch a document by host + path (what a virtual host sees).
    pub fn doc_by_host_path(&self, host: &str, path: &str) -> Option<&Document> {
        self.docs
            .iter()
            .find(|d| d.source.host() == host && d.path == path)
    }

    pub fn iter(&self) -> impl Iterator<Item = &Document> {
        self.docs.iter()
    }

    pub fn search(&self, query: &str, k: usize) -> Vec<SearchHit> {
        self.engine.search(query, k)
    }

    pub fn engine(&self) -> &SearchEngine {
        &self.engine
    }

    /// Number of documents per topic, for corpus statistics.
    pub fn topic_counts(&self) -> Vec<(Topic, usize)> {
        use std::collections::BTreeMap;
        let mut counts: BTreeMap<Topic, usize> = BTreeMap::new();
        for d in &self.docs {
            *counts.entry(d.topic).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }

    /// Number of documents per source kind.
    pub fn source_counts(&self) -> Vec<(SourceKind, usize)> {
        use std::collections::BTreeMap;
        let mut counts: BTreeMap<SourceKind, usize> = BTreeMap::new();
        for d in &self.docs {
            *counts.entry(d.source).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }
}

/// Give every fact-bearing document up to two "Related" links to the
/// next documents of the same topic (cyclically), the hypertext the
/// crawler extension follows.
fn link_related(docs: &mut [Document]) {
    use std::collections::BTreeMap;
    let mut by_topic: BTreeMap<Topic, Vec<usize>> = BTreeMap::new();
    for (i, d) in docs.iter().enumerate() {
        if d.topic != Topic::Distractor {
            by_topic.entry(d.topic).or_default().push(i);
        }
    }
    for indices in by_topic.values() {
        let n = indices.len();
        if n < 2 {
            continue;
        }
        for (pos, &i) in indices.iter().enumerate() {
            let mut links = Vec::new();
            for step in 1..=2usize {
                let j = indices[(pos + step) % n];
                if j != i {
                    links.push(docs[j].url().to_string());
                }
            }
            links.dedup();
            docs[i].links = links;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Corpus {
        Corpus::generate(&World::standard(), CorpusConfig::default())
    }

    #[test]
    fn corpus_contains_facts_and_distractors() {
        let c = corpus();
        assert!(c.len() > 200, "corpus size {}", c.len());
        let topics = c.topic_counts();
        let distractors = topics
            .iter()
            .find(|(t, _)| *t == Topic::Distractor)
            .map(|(_, n)| *n)
            .unwrap_or(0);
        assert_eq!(distractors, 150);
    }

    #[test]
    fn url_lookup_round_trips() {
        let c = corpus();
        let doc = c.iter().next().unwrap();
        let found = c.doc_by_url(&doc.url().to_string()).unwrap();
        assert_eq!(found.id, doc.id);
    }

    #[test]
    fn host_path_lookup_works() {
        let c = corpus();
        let doc = c
            .iter()
            .find(|d| d.source == SourceKind::Encyclopedia)
            .unwrap();
        let found = c.doc_by_host_path(doc.source.host(), &doc.path).unwrap();
        assert_eq!(found.id, doc.id);
    }

    #[test]
    fn search_surfaces_cable_article_over_distractors() {
        let c = corpus();
        let hits = c.search("fiber optic cable route Brazil Europe geomagnetic", 5);
        assert!(!hits.is_empty());
        let top = c.doc(hits[0].doc).unwrap();
        assert_ne!(top.topic, Topic::Distractor, "top hit was {}", top.title);
    }

    #[test]
    fn search_for_distractor_topic_finds_distractor() {
        let c = corpus();
        let hits = c.search("sourdough starter dough", 3);
        assert!(!hits.is_empty());
        assert_eq!(c.doc(hits[0].doc).unwrap().topic, Topic::Distractor);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Corpus::generate(&World::standard(), CorpusConfig::default());
        let b = Corpus::generate(&World::standard(), CorpusConfig::default());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.body, y.body);
        }
    }

    #[test]
    fn distractor_scaling_works() {
        let c = Corpus::generate(
            &World::standard(),
            CorpusConfig {
                seed: 1,
                distractor_count: 10,
            },
        );
        let d = Corpus::generate(
            &World::standard(),
            CorpusConfig {
                seed: 1,
                distractor_count: 400,
            },
        );
        assert_eq!(d.len() - c.len(), 390);
    }
}
